"""Lifetime study: how much longer does a 4 KB PCM page live under each
recovery scheme?  A miniature of the paper's Figures 5 and 6, runnable in
about a minute.

Run:  python examples/lifetime_study.py [pages]
"""

import sys

from repro.sim import (
    aegis_rw_spec,
    aegis_spec,
    ecp_spec,
    rdis_spec,
    run_page_study,
    safer_spec,
)
from repro.util.tables import render_table


def main() -> None:
    n_pages = int(sys.argv[1]) if len(sys.argv) > 1 else 16
    specs = [
        ecp_spec(6, 512),
        safer_spec(32, 512),
        safer_spec(64, 512),
        rdis_spec(512),
        aegis_spec(23, 23, 512),
        aegis_spec(17, 31, 512),
        aegis_spec(9, 61, 512),
        aegis_rw_spec(9, 61, 512),
    ]
    rows = []
    for spec in specs:
        study = run_page_study(spec, n_pages=n_pages, seed=1)
        rows.append(
            (
                spec.label,
                spec.overhead_bits,
                f"{100 * spec.overhead_fraction:.1f}%",
                f"{study.faults.mean:.0f} ± {study.faults.half_width:.0f}",
                f"{study.lifetime.mean:.3g}",
                f"{study.improvement:.0f}x",
            )
        )
        print(f"[{spec.label} done]")
    print()
    print(
        render_table(
            (
                "Scheme",
                "Overhead bits",
                "Overhead",
                "Faults recovered/page",
                "Page lifetime (writes)",
                "Improvement",
            ),
            rows,
            title=f"# Page lifetime study ({n_pages} pages, 512-bit blocks, "
            "endurance ~ Normal(1e8, 25%))",
        )
    )
    print(
        "\nReading the table: Aegis 9x61 spends fewer metadata bits than"
        "\nSAFER64 or RDIS-3 yet recovers roughly twice the faults, which"
        "\ntranslates into the longest page lifetime — the paper's headline."
    )


if __name__ == "__main__":
    main()
