"""Hardware walkthrough: the paper's Figures 2, 3 and 4, reproduced on the
32-bit / 5x7 example the paper itself uses.

Prints the Cartesian partition under two slopes (Figure 2), exercises the
group-ID lookup ROM (Figure 3) and the inversion-mask ROM (Figure 4), and
sizes the Aegis-rw collision ROM (§2.4).

Run:  python examples/hardware_walkthrough.py
"""

import numpy as np

from repro.core.geometry import rectangle_for
from repro.core.partition import partition_for
from repro.hardware import CollisionSlopeRom, GroupIdRom, InversionMaskRom, chip_cost
from repro.core.formations import formation

GLYPHS = "0123456"


def draw_partition(rect, slope: int) -> str:
    """ASCII rendering of the rectangle; each cell shows its group ID."""
    lines = []
    for b in reversed(range(rect.b_size)):  # top row first, like the figure
        row = []
        for a in range(rect.a_size):
            offset = rect.offset_of(a, b)
            row.append("." if offset is None else GLYPHS[rect.group_of(offset, slope)])
        lines.append(" ".join(row))
    return "\n".join(lines)


def main() -> None:
    rect = rectangle_for(32, 7)
    print("=== Figure 2: a 32-bit block in a 5x7 rectangle ===")
    for slope in (0, 1):
        print(f"\nslope k = {slope} (dots are the three unmapped positions):")
        print(draw_partition(rect, slope))
    print("\nany two bits sharing a symbol above share a group; change the"
          "\nslope and no pair ever shares a group twice (Theorem 2).")

    print("\n=== Figure 3: the group-ID lookup ROM ===")
    rom = GroupIdRom(rect)
    print(f"membership ROM: {rom.membership.shape[0]} x {rom.membership.shape[1]} bits "
          f"(the paper's 49 x 32), ID ROM: 49 x 7")
    for address, slope in [(13, 0), (13, 3), (27, 5)]:
        print(f"  fault at address {address:2d}, slope {slope} -> group "
              f"{rom.lookup(address, slope)}")

    print("\n=== Figure 4: the inversion-mask ROM ===")
    mask_rom = InversionMaskRom(rect)
    vector = np.zeros(7, dtype=np.uint8)
    vector[[2, 5]] = 1  # groups 2 and 5 are stored inverted
    mask = mask_rom.mask_for(1, vector)
    partition = partition_for(rect)
    print(f"slope 1, inversion vector {vector.tolist()}")
    print(f"  -> invert bits {sorted(int(b) for b in np.flatnonzero(mask))}")
    expected = sorted(
        int(b) for b in np.flatnonzero(partition.members_mask(1, [2, 5]))
    )
    print(f"  (arithmetic check: {expected})")

    print("\n=== §2.4: the Aegis-rw collision ROM ===")
    collision = CollisionSlopeRom(rect)
    print(f"for the 5x7 example: {collision.storage_bits} bits")
    for o1, o2 in [(0, 1), (0, 5), (3, 19)]:
        slope = collision.lookup(o1, o2)
        where = f"collide only on slope {slope}" if slope >= 0 else "never collide (same column)"
        print(f"  bits {o1:2d} and {o2:2d}: {where}")

    print("\n=== chip-shared cost for a production formation (Aegis 9x61) ===")
    cost = chip_cost(formation(9, 61, 512))
    print(f"membership ROM {cost.group_rom_bits} b + ID ROM {cost.id_rom_bits} b "
          f"+ {cost.and_gates} AND gates; Aegis-rw adds a "
          f"{cost.collision_rom_bits} b collision ROM")
    print("these structures are shared by every block on the chip — the"
          "\nper-block cost stays the 67 bits of Table 1.")


if __name__ == "__main__":
    main()
