"""Device aging: drive a miniature PCM device write-by-write through the
bit-accurate model — real cells, real verification reads, real wear —
and watch pages fail, with and without protection.

This is the slow, fully mechanistic path (the Monte Carlo engines in
``repro.sim`` reproduce the paper at scale); a tiny endurance makes it
finish in seconds.  Also compares perfect wear leveling against a real
Start-Gap rotation.

Run:  python examples/device_aging.py
"""

import numpy as np

from repro import PCMDevice, formation
from repro.core.aegis import AegisScheme
from repro.pcm.lifetime import NormalLifetime
from repro.pcm.wear import PerfectWearLeveling, StartGapWearLeveling
from repro.schemes.ecp import EcpScheme
from repro.schemes.ideal import NoProtectionScheme

ENDURANCE = NormalLifetime(mean_lifetime=60, cov=0.25)  # tiny, for speed
N_PAGES = 12


def run_device(name, scheme_factory, wear_leveling=None, seed=3):
    device = PCMDevice(
        N_PAGES,
        block_bits=512,
        blocks_per_page=4,
        scheme_factory=scheme_factory,
        lifetime_model=ENDURANCE,
        wear_leveling=wear_leveling,
        rng=np.random.default_rng(seed),
    )
    milestones = []
    while device.live_page_count:
        device.issue_write()
        if device.page_death_times and device.page_death_times[-1] == device.total_writes_issued:
            milestones.append((device.total_writes_issued, device.survival_rate))
    half = device.half_lifetime()
    print(f"{name}: all pages dead after {device.total_writes_issued} writes, "
          f"half lifetime {half}")
    trail = ", ".join(f"{w}w->{s:.0%}" for w, s in milestones[:6])
    print(f"  first deaths: {trail}")
    return half


def main() -> None:
    print(f"=== {N_PAGES}-page device, 4 x 512-bit blocks/page, "
          f"endurance ~ Normal({ENDURANCE.mean_lifetime:.0f}, 25%) ===\n")
    aegis_form = formation(9, 61, 512)
    baseline = run_device("no protection     ", NoProtectionScheme)
    ecp = run_device("ECP6              ", lambda c: EcpScheme(c, 6))
    aegis = run_device("Aegis 9x61        ", lambda c: AegisScheme(c, aegis_form))
    print(f"\nhalf-lifetime gain: ECP6 {ecp / baseline:.1f}x, "
          f"Aegis 9x61 {aegis / baseline:.1f}x over no protection\n")

    print("=== wear-leveling ablation (Aegis 9x61) ===")
    perfect = run_device(
        "perfect (round-robin)", lambda c: AegisScheme(c, aegis_form),
        wear_leveling=PerfectWearLeveling(),
    )
    startgap = run_device(
        "Start-Gap rotation   ", lambda c: AegisScheme(c, aegis_form),
        wear_leveling=StartGapWearLeveling(N_PAGES, gap_interval=8),
    )
    print(f"\nStart-Gap reaches {startgap / perfect:.0%} of the perfect-leveling "
          "half lifetime,\nsupporting the paper's perfect-wear-leveling assumption (§3.1).")


if __name__ == "__main__":
    main()
