"""The OS tier above in-chip recovery: PAYG pooling, FREE-p spare blocks,
and dynamic page pairing, composed with Aegis.

The paper's §1.1/§4 argue that OS-level mechanisms are complements — not
substitutes — for strong in-chip recovery.  This example walks the three
mechanisms this library implements:

1. PAYG: pay for Aegis metadata only where faults actually appear;
2. FREE-p: remap exhausted blocks to spares;
3. Dynamic pairing: fuse dead pages with disjoint failed blocks.

Run:  python examples/os_tier.py
"""

from repro.core.formations import formation
from repro.pairing.sim import pairing_study
from repro.payg.sim import payg_page_study
from repro.remap.sim import remap_page_study
from repro.sim.roster import aegis_spec, ecp_spec


def main() -> None:
    form = formation(17, 31, 512)

    print("=== PAYG: Aegis metadata allocated on demand (16-block pages) ===")
    for fraction in (0.25, 0.5, 1.0):
        pool = max(1, round(fraction * 16))
        result = payg_page_study(
            form, pool_entries=pool, blocks_per_page=16, n_pages=16, seed=1
        )
        print(f"  pool {fraction:>4.0%}: {result.overhead_bits_per_block:5.1f} avg "
              f"bits/block -> {result.faults.mean:6.1f} faults/page "
              f"({result.pool_exhaustion_deaths} pool-exhaustion deaths)")
    print("  under run-to-death horizons most blocks eventually need the pool;"
          "\n  PAYG pays off at early-life horizons where few do.\n")

    print("=== FREE-p: spare blocks vs in-chip strength ===")
    for spec in (ecp_spec(6, 512), aegis_spec(17, 31, 512)):
        for spares in (0, 4):
            result = remap_page_study(
                spec, spares=spares, blocks_per_page=16, n_pages=16, seed=2
            )
            print(f"  {spec.label:12s} +{spares} spares: lifetime "
                  f"{result.lifetime.mean:.4g}, {result.remaps.mean:.1f} remaps")
    print("  bare Aegis outlives spare-padded ECP6: strong in-chip recovery"
          "\n  delays redirection (the paper's §4 FREE-p remark).\n")

    print("=== Dynamic pairing: reclaiming dead pages ===")
    for spec in (ecp_spec(2, 512), aegis_spec(17, 31, 512)):
        study = pairing_study(spec, n_pages=24, blocks_per_page=16, seed=3)
        first_loss = next(
            (age for age, frac in zip(study.ages, study.usable_without) if frac < 1.0),
            study.ages[-1],
        )
        print(f"  {spec.label:12s}: first page lost at age {first_loss:.3g}, "
              f"peak pairing gain {study.peak_gain:.0%}")
    print("  pairing reclaims capacity in the failure tail for both, but the"
          "\n  stronger scheme pushes the whole failure window out — in-chip"
          "\n  recovery first, OS tricks second (§1.1).")


if __name__ == "__main__":
    main()
