"""Failure timeline: watch a 4 KB page's faults accumulate until death.

Uses the simulator's tracing hook to capture every cell death of one page
under Aegis 9x61 and under ECP6, then prints the fault timeline as an ASCII
strip chart: the paper's observation that "faults mostly occur when a page
approaches the end of its lifetime" (§3.2) is directly visible — which is
why tolerating ~5x more faults buys "only" ~20-30% more lifetime.

Run:  python examples/failure_timeline.py
"""

import numpy as np

from repro.sim import aegis_spec, ecp_spec, simulate_page
from repro.sim.page_sim import FaultEvent

BUCKETS = 30
BAR_WIDTH = 50


def trace(spec, seed=11):
    events: list[FaultEvent] = []
    result = simulate_page(
        spec, 64, np.random.default_rng(seed), observer=events.append
    )
    return events, result


def strip_chart(events, lifetime):
    counts = np.zeros(BUCKETS, dtype=int)
    for event in events:
        bucket = min(int(event.time / lifetime * BUCKETS), BUCKETS - 1)
        counts[bucket] += 1
    peak = counts.max()
    lines = []
    for i, count in enumerate(counts):
        low = i / BUCKETS
        bar = "#" * int(round(count / peak * BAR_WIDTH)) if peak else ""
        lines.append(f"  {low:4.0%}..{(i + 1) / BUCKETS:4.0%} | {bar} {count or ''}")
    return "\n".join(lines)


def main() -> None:
    for spec in (ecp_spec(6, 512), aegis_spec(9, 61, 512)):
        events, result = trace(spec)
        lifetime = result.lifetime_writes
        print(f"=== {spec.label}: page died at {lifetime:.3g} page writes with "
              f"{result.faults_recovered} faults recovered ===")
        print("fault arrivals by fraction of the page's lifetime:")
        print(strip_chart(events, lifetime))
        fatal = events[-1]
        print(f"fatal fault: block {fatal.block}, offset {fatal.offset} — the "
              f"block's fault #{fatal.block_fault_count}\n")
    print("Both charts pile up hard against the right edge: the endurance"
          "\ndistribution makes faults cluster at end of life, so Aegis's much"
          "\nlarger fault capacity shows up as a modest lifetime extension"
          "\n(the paper's Figure 5 vs Figure 6 contrast).")


if __name__ == "__main__":
    main()
