"""Quickstart: protect a PCM data block with Aegis and watch it survive
stuck-at faults that defeat weaker schemes.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import (
    AegisScheme,
    CellArray,
    EcpScheme,
    SaferScheme,
    UncorrectableError,
    formation,
)


def fresh_block_with_faults(n_faults: int, rng: np.random.Generator) -> CellArray:
    """A 512-bit PCM row with ``n_faults`` cells permanently stuck."""
    cells = CellArray(512)
    for offset in rng.choice(512, size=n_faults, replace=False):
        cells.inject_fault(int(offset), stuck_value=int(rng.integers(0, 2)))
    return cells


def drive(scheme, rng, writes: int = 200) -> int:
    """Random writes until the scheme fails; returns successful writes."""
    for i in range(writes):
        data = rng.integers(0, 2, scheme.cells.n_bits, dtype=np.uint8)
        try:
            scheme.write(data)
        except UncorrectableError:
            return i
        assert np.array_equal(scheme.read(), data), "read-back mismatch!"
    return writes


def main() -> None:
    rng = np.random.default_rng(7)

    print("=== one stuck-at-wrong fault, step by step ===")
    cells = fresh_block_with_faults(0, rng)
    cells.inject_fault(100, stuck_value=1)
    aegis = AegisScheme(cells, formation(9, 61, 512))
    data = np.zeros(512, dtype=np.uint8)  # wants 0 where the cell is stuck at 1
    receipt = aegis.write(data)
    group = aegis.partition.group_of(100, aegis.slope)
    print(f"wrote all-zeros over a cell stuck at 1 -> recovered by inverting "
          f"group {group} (slope {aegis.slope})")
    print(f"  cell writes: {receipt.cell_writes}, verification reads: "
          f"{receipt.verification_reads}, inversion writes: {receipt.inversion_writes}")
    print(f"  read back intact: {bool(np.array_equal(aegis.read(), data))}")
    print(f"  per-block metadata: {aegis.overhead_bits} bits "
          f"({aegis.overhead_bits / 512:.1%} of the data)")

    print("\n=== 16 faults: Aegis 9x61 vs SAFER32 vs ECP6 on identical blocks ===")
    fault_rng = np.random.default_rng(42)
    offsets = fault_rng.choice(512, size=16, replace=False)
    stuck = [int(fault_rng.integers(0, 2)) for _ in offsets]
    for name, build in [
        ("Aegis 9x61", lambda c: AegisScheme(c, formation(9, 61, 512))),
        ("SAFER32   ", lambda c: SaferScheme(c, 32)),
        ("ECP6      ", lambda c: EcpScheme(c, 6)),
    ]:
        cells = CellArray(512)
        for offset, value in zip(offsets, stuck):
            cells.inject_fault(int(offset), stuck_value=value)
        scheme = build(cells)
        survived = drive(scheme, np.random.default_rng(1))
        verdict = "all 200 writes served" if survived == 200 else f"failed at write {survived}"
        print(f"  {name} ({scheme.overhead_bits:3d} overhead bits): {verdict}")

    print("\n16 scattered faults sit just past Aegis 9x61's hard guarantee of 11"
          "\nbut well inside its soft tolerance, far past ECP6's 6 pointers, and"
          "\nusually past what SAFER32's 5-bit partition vector can separate.")


if __name__ == "__main__":
    main()
