"""Multi-tenant cluster front-end over sharded memory arrays.

The cluster layer places tenant keys on a fleet of
:class:`~repro.service.MemoryArray`\\ s with deterministic consistent
hashing, enforces two-class QoS admission at each array's write buffer,
and runs a control plane that live-migrates keys off degraded or draining
arrays.  :mod:`repro.cluster.frontend` exposes it over asyncio
(``repro serve``); :mod:`repro.cluster.bench` drives it deterministically
(``repro cluster-bench``).
"""

from repro.cluster.bench import (
    ClusterBenchReport,
    ClusterBenchTask,
    run_cluster_bench,
)
from repro.cluster.frontend import (
    ClusterFrontend,
    LoopbackClient,
    decode_payload,
    encode_payload,
    loopback_selftest,
)
from repro.cluster.qos import QoSClass, TenantSpec, default_tenants, qos_from_name
from repro.cluster.ring import HashRing, stable_hash64
from repro.cluster.service import ClusterNode, ClusterService

__all__ = [
    "ClusterBenchReport",
    "ClusterBenchTask",
    "ClusterFrontend",
    "ClusterNode",
    "ClusterService",
    "HashRing",
    "LoopbackClient",
    "QoSClass",
    "TenantSpec",
    "decode_payload",
    "default_tenants",
    "encode_payload",
    "loopback_selftest",
    "qos_from_name",
    "run_cluster_bench",
    "stable_hash64",
]
