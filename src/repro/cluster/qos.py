"""Tenant identity and QoS classes for the cluster front-end.

Two service classes, mirroring the latency/throughput split every
storage front-end ends up with:

``INTERACTIVE``
    Latency-sensitive.  Writes are always admitted; when the target
    array's write buffer fills, an interactive write *triggers* the drain
    (paying the flush inline) instead of waiting behind it.
``BULK``
    Throughput traffic.  Admission-controlled: once the target array's
    write-buffer occupancy crosses the bulk watermark, bulk writes are
    refused with :class:`~repro.errors.BackpressureError` carrying a
    ``retry_after`` hint, so interactive writers keep draining while bulk
    writers back off — the classic two-class admission policy.

A :class:`TenantSpec` is the whole per-tenant contract: identity, QoS
class, a scheduling ``weight`` (its share of a closed-loop schedule) and
its read mix.  Tenants get *disjoint address namespaces* by construction:
every cluster key is ``(tenant_id, address)``, so two tenants writing
address 0 never collide.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from repro.errors import ConfigurationError


class QoSClass(Enum):
    INTERACTIVE = "interactive"
    BULK = "bulk"


def qos_from_name(name: str) -> QoSClass:
    """Parse a QoS class from its wire name (``"interactive"``/``"bulk"``)."""
    for qos in QoSClass:
        if qos.value == name:
            return qos
    raise ConfigurationError(
        f"unknown QoS class {name!r}; expected one of "
        f"{[qos.value for qos in QoSClass]}"
    )


@dataclass(frozen=True)
class TenantSpec:
    """One tenant's service contract (frozen, picklable).

    Parameters
    ----------
    tenant_id:
        Namespace identity; part of every routing key.
    qos:
        Service class (see module docstring).
    weight:
        Relative share of a weighted round-robin schedule (load harness).
    read_fraction:
        Fraction of the tenant's operations that are reads.
    """

    tenant_id: str
    qos: QoSClass = QoSClass.INTERACTIVE
    weight: int = 1
    read_fraction: float = 0.25

    def __post_init__(self) -> None:
        if not self.tenant_id:
            raise ConfigurationError("tenant_id cannot be empty")
        if self.weight < 1:
            raise ConfigurationError("tenant weight must be positive")
        if not 0 <= self.read_fraction <= 1:
            raise ConfigurationError("read fraction must be in [0, 1]")


def default_tenants(count: int) -> tuple[TenantSpec, ...]:
    """The standard mixed-QoS tenant roster: even indices interactive,
    odd indices bulk (with double weight, as bulk traffic dominates)."""
    if count < 1:
        raise ConfigurationError("a cluster needs at least one tenant")
    specs = []
    for index in range(count):
        interactive = index % 2 == 0
        specs.append(
            TenantSpec(
                tenant_id=f"tenant{index}",
                qos=QoSClass.INTERACTIVE if interactive else QoSClass.BULK,
                weight=1 if interactive else 2,
            )
        )
    return tuple(specs)
