"""A deterministic multi-tenant load harness for :class:`ClusterService`.

``repro cluster-bench`` drives a weighted round-robin schedule of tenant
operations through the cluster and audits read-after-write integrity
end-to-end — including through backpressure retries and a mid-run degrade
drill that drains one array live.

Determinism contract
--------------------
The harness is a pure function of its :class:`ClusterBenchTask`:

* The interleave schedule is computed from the tenant weights alone.
* Tenant ``i``'s operation stream (addresses, read/write mix, payloads)
  is a pure function of ``(task, i)`` — drawn from ``rng_for(seed, i, 47)``
  — and is *pre-generated*, optionally in parallel over
  :class:`~repro.sim.parallel.SimExecutor` workers.  ``--workers`` only
  changes how fast the streams are generated, never their contents.
* The drive loop itself is serial and clocked by the schedule step, so
  backpressure retries (``retry_after`` steps later) and maintenance
  passes land at identical points in every run.
* The audit digest hashes the cluster's *actual* post-flush contents in
  sorted key order — bit-identical across worker counts and drain
  engines, which is exactly what the CI smoke job asserts.
"""

from __future__ import annotations

import hashlib
import heapq
import json
import time
from dataclasses import dataclass, field

import numpy as np

from repro.cluster.qos import TenantSpec, default_tenants
from repro.cluster.service import (
    DEFAULT_BULK_WATERMARK,
    DEFAULT_MIGRATE_BATCH,
    DEFAULT_SPARE_LOW,
    ClusterService,
)
from repro.errors import BackpressureError, ConfigurationError, RetiredBlockError
from repro.obs.slo import SLOSpec, write_slo_jsonl
from repro.pcm.faults import fault_model_for
from repro.pcm.lifetime import LifetimeModel, NormalLifetime
from repro.service.kernels import validate_engine
from repro.service.policy import validate_policy
from repro.service.telemetry import ServiceTelemetry
from repro.sim.parallel import SimExecutor
from repro.sim.rng import rng_for
from repro.sim.roster import SchemeSpec

#: schedule steps between control-plane maintenance passes
DEFAULT_MAINTENANCE_INTERVAL = 16

#: extra drain-phase steps allowed per leftover retry before the harness
#: forces the writes through with admission disabled (bounded liveness)
DRAIN_STEPS_PER_RETRY = 8


@dataclass(frozen=True)
class ClusterBenchTask:
    """Everything that determines one cluster-bench run (frozen, picklable)."""

    spec: SchemeSpec
    tenants: tuple[TenantSpec, ...]
    n_arrays: int
    ops: int
    seed: int
    tenant_addresses: int
    n_addresses: int
    spares: int
    buffer_capacity: int
    bulk_watermark: float
    lifetime_model: LifetimeModel
    maintenance_interval: int
    #: schedule step at which to drain ``degrade_array`` (0 disables)
    degrade_at: int = 0
    degrade_array: int = 0
    #: per-block fault count at which health degrades (None = scheme
    #: default, one below the hard FTC); lower thresholds widen the
    #: DEGRADED window the alert/pressure migration sweeps act on
    degrade_threshold: int | None = None
    engine: str = "auto"
    #: fault model every array's cells fail under (see docs/fault_models.md)
    fault_model: str = "hard"
    #: per-array scheme policy ("fixed" or "adaptive")
    policy: str = "fixed"
    spare_low_blocks: int = DEFAULT_SPARE_LOW
    migrate_batch: int = DEFAULT_MIGRATE_BATCH
    proactive_migration: bool = False
    #: op-clock bucket width for the cluster time series (0 disables);
    #: the resulting series + SLO verdicts enter the digested snapshot
    series_bucket: int = DEFAULT_MAINTENANCE_INTERVAL
    #: SLO roster (None = default_cluster_slos when series are on)
    slos: tuple[SLOSpec, ...] | None = None

    def schedule(self) -> list[int]:
        """The weighted round-robin interleave: tenant indices, one per
        operation, repeating each tenant ``weight`` times per cycle."""
        order: list[int] = []
        for index, spec in enumerate(self.tenants):
            order.extend([index] * spec.weight)
        return [order[step % len(order)] for step in range(self.ops)]

    def ops_for(self, tenant_index: int) -> int:
        return sum(1 for index in self.schedule() if index == tenant_index)


@dataclass
class TenantStream:
    """Tenant ``i``'s pre-generated operation stream — a pure function of
    ``(task, i)``, so worker count cannot change the run."""

    tenant_index: int
    addresses: np.ndarray
    is_read: np.ndarray
    payloads: np.ndarray


def generate_stream(task: ClusterBenchTask, tenant_index: int) -> TenantStream:
    """Generate one tenant's stream (module-level: picklable for workers)."""
    spec = task.tenants[tenant_index]
    ops = task.ops_for(tenant_index)
    rng = rng_for(task.seed, tenant_index, 47)
    return TenantStream(
        tenant_index=tenant_index,
        addresses=rng.integers(0, task.tenant_addresses, ops),
        is_read=rng.random(ops) < spec.read_fraction,
        payloads=rng.integers(0, 2, (ops, task.spec.n_bits), dtype=np.uint8),
    )


@dataclass
class ClusterBenchReport:
    """Outcome of one run: the deterministic ``snapshot``/digests plus
    wall-clock ``elapsed`` (which is not part of the contract)."""

    ops: int
    workers: int
    elapsed: float
    retries: int
    forced_writes: int
    audit_checked: int
    audit_failures: int
    dead_keys: int
    audit_digest: str
    snapshot_digest: str
    snapshot: dict
    telemetry: ServiceTelemetry
    per_tenant: dict = field(default_factory=dict)
    #: the SLO roster evaluated during the run (empty when series off)
    slos: tuple[SLOSpec, ...] = ()

    @property
    def ops_per_second(self) -> float:
        return self.ops / self.elapsed if self.elapsed > 0 else 0.0

    def write_metrics(self, path: str) -> int:
        """Export the labeled metrics (Prometheus text) for obs-report."""
        return self.telemetry.metrics.write_prometheus(path)

    def write_telemetry_jsonl(self, path: str) -> int:
        return self.telemetry.write_jsonl(path)

    def write_series_jsonl(self, path: str) -> int:
        """Export the time series (plus SLO verdicts and alerts when a
        roster was evaluated) as the ``repro slo-report`` JSONL input."""
        recorder = self.telemetry.timeseries
        if recorder is None:
            raise ConfigurationError(
                "time series were not recorded (pass series_bucket >= 1)"
            )
        if self.slos:
            return write_slo_jsonl(path, recorder, self.slos)
        return recorder.write_jsonl(path)


def _audit(
    cluster: ClusterService,
    shadow: dict[tuple[str, int], np.ndarray],
) -> tuple[int, int, int, str]:
    """Final read-after-write sweep: compare every surviving key against
    its shadow copy and hash the actual contents in sorted key order."""
    checked = failures = dead = 0
    digest = hashlib.sha256()
    for key in sorted(shadow):
        if cluster.is_dead(*key):
            dead += 1
            continue
        got = cluster.read(*key)
        checked += 1
        if not np.array_equal(got, shadow[key]):
            failures += 1
        digest.update(f"{key[0]}:{key[1]}:".encode("utf-8"))
        digest.update(np.packbits(got).tobytes())
    return checked, failures, dead, digest.hexdigest()


def run_cluster_bench(
    spec: SchemeSpec,
    *,
    ops: int,
    n_arrays: int = 3,
    tenants: tuple[TenantSpec, ...] | int = 4,
    seed: int = 2013,
    tenant_addresses: int = 32,
    n_addresses: int = 64,
    spares: int = 16,
    buffer_capacity: int = 8,
    bulk_watermark: float = DEFAULT_BULK_WATERMARK,
    lifetime_model: LifetimeModel | None = None,
    maintenance_interval: int = DEFAULT_MAINTENANCE_INTERVAL,
    degrade_at: int = 0,
    degrade_array: int = 0,
    degrade_threshold: int | None = None,
    engine: str = "auto",
    fault_model: str = "hard",
    policy: str = "fixed",
    spare_low_blocks: int = DEFAULT_SPARE_LOW,
    migrate_batch: int = DEFAULT_MIGRATE_BATCH,
    proactive_migration: bool = False,
    series_bucket: int | None = None,
    slos: tuple[SLOSpec, ...] | None = None,
    workers: int | None = 1,
    executor: SimExecutor | None = None,
) -> ClusterBenchReport:
    """Drive ``ops`` multi-tenant operations through a fresh cluster.

    ``tenants`` is either an explicit roster or a count (expanded by
    :func:`~repro.cluster.qos.default_tenants` to the standard mixed-QoS
    mix).  ``degrade_at=N`` drains ``degrade_array`` after schedule step
    ``N`` — the live-migration drill; its keys must survive the final
    audit with zero failures.  ``workers`` parallelizes only the stream
    pre-generation; the report's digests are worker-count invariant.

    Time series and SLO evaluation are on by default: ``series_bucket``
    defaults to ``maintenance_interval`` (one bucket per control-plane
    pass) and ``slos`` to :func:`~repro.obs.slo.default_cluster_slos`,
    so the series export and SLO verdicts are part of the digested
    snapshot — a ``--check`` digest match asserts they too are
    bit-identical across workers and engines.  Pass ``series_bucket=0``
    to disable both.
    """
    if ops < 1:
        raise ConfigurationError("cluster bench needs at least one op")
    if tenant_addresses < 1:
        raise ConfigurationError("tenants need at least one address")
    if maintenance_interval < 1:
        raise ConfigurationError("maintenance interval must be positive")
    if series_bucket is None:
        series_bucket = maintenance_interval
    if series_bucket < 0:
        raise ConfigurationError(
            "series bucket width must be >= 0 (0 disables time series)"
        )
    roster = (
        default_tenants(tenants) if isinstance(tenants, int) else tuple(tenants)
    )
    if degrade_at and not 0 <= degrade_array < n_arrays:
        raise ConfigurationError(f"no array at index {degrade_array} to degrade")
    task = ClusterBenchTask(
        spec=spec,
        tenants=roster,
        n_arrays=n_arrays,
        ops=ops,
        seed=seed,
        tenant_addresses=tenant_addresses,
        n_addresses=n_addresses,
        spares=spares,
        buffer_capacity=buffer_capacity,
        bulk_watermark=bulk_watermark,
        lifetime_model=(
            lifetime_model if lifetime_model is not None else NormalLifetime()
        ),
        maintenance_interval=maintenance_interval,
        degrade_at=degrade_at,
        degrade_array=degrade_array,
        degrade_threshold=degrade_threshold,
        engine=validate_engine(engine),
        fault_model=fault_model_for(fault_model).key,
        policy=validate_policy(policy),
        spare_low_blocks=spare_low_blocks,
        migrate_batch=migrate_batch,
        proactive_migration=proactive_migration,
        series_bucket=series_bucket,
        slos=slos,
    )
    own_executor = executor is None
    runner = executor if executor is not None else SimExecutor(workers, chunk_pages=1)
    try:
        streams: list[TenantStream] = runner.map_indices(
            generate_stream, task, range(len(roster))
        )
    finally:
        if own_executor:
            runner.close()
    return _drive(task, streams, workers=runner.workers)


def _drive(
    task: ClusterBenchTask, streams: list[TenantStream], *, workers: int
) -> ClusterBenchReport:
    """The serial, schedule-clocked drive loop (see module docstring)."""
    cluster = ClusterService(
        task.n_arrays,
        task.spec,
        n_addresses=task.n_addresses,
        spares=task.spares,
        seed=task.seed,
        buffer_capacity=task.buffer_capacity,
        bulk_watermark=task.bulk_watermark,
        spare_low_blocks=task.spare_low_blocks,
        migrate_batch=task.migrate_batch,
        lifetime_model=task.lifetime_model,
        proactive_migration=task.proactive_migration,
        degrade_threshold=task.degrade_threshold,
        engine=task.engine,
        fault_model=task.fault_model,
        policy=task.policy,
        series_bucket=task.series_bucket,
        slos=task.slos,
    )
    for spec in task.tenants:
        cluster.register_tenant(spec)
    telemetry = cluster.telemetry
    schedule = task.schedule()
    cursors = [0] * len(task.tenants)
    shadow: dict[tuple[str, int], np.ndarray] = {}
    #: deferred bulk writes: (due_step, sequence, tenant_index, op_index)
    pending: list[tuple[int, int, int, int]] = []
    sequence = 0
    retries = forced = 0
    start = time.perf_counter()

    def attempt_write(tenant_index: int, op_index: int, *, admit: bool) -> int | None:
        """One write attempt; returns the ``retry_after`` hint when
        backpressured, ``None`` on success."""
        stream = streams[tenant_index]
        spec = task.tenants[tenant_index]
        address = int(stream.addresses[op_index])
        payload = stream.payloads[op_index]
        try:
            cluster.write(spec.tenant_id, address, payload, admit=admit)
        except BackpressureError as error:
            return max(1, error.retry_after)
        shadow[(spec.tenant_id, address)] = payload
        return None

    def run_reads_and_writes(step: int, tenant_index: int) -> None:
        nonlocal sequence, retries
        stream = streams[tenant_index]
        op_index = cursors[tenant_index]
        cursors[tenant_index] += 1
        spec = task.tenants[tenant_index]
        if bool(stream.is_read[op_index]):
            address = int(stream.addresses[op_index])
            key = (spec.tenant_id, address)
            try:
                got = cluster.read(spec.tenant_id, address)
            except RetiredBlockError:
                telemetry.count("bench_dead_reads")
                return
            expected = shadow.get(key)
            if expected is not None and not np.array_equal(got, expected):
                telemetry.count("integrity_failures")
            return
        delay = attempt_write(tenant_index, op_index, admit=True)
        if delay is not None:
            retries += 1
            heapq.heappush(pending, (step + delay, sequence, tenant_index, op_index))
            sequence += 1

    def run_due_retries(step: int) -> None:
        nonlocal sequence, retries
        while pending and pending[0][0] <= step:
            _, _, tenant_index, op_index = heapq.heappop(pending)
            delay = attempt_write(tenant_index, op_index, admit=True)
            if delay is not None:
                retries += 1
                heapq.heappush(
                    pending, (step + delay, sequence, tenant_index, op_index)
                )
                sequence += 1
                break  # same array is still saturated; wait for maintenance

    for step, tenant_index in enumerate(schedule):
        run_due_retries(step)
        run_reads_and_writes(step, tenant_index)
        if task.degrade_at and step + 1 == task.degrade_at:
            moved = cluster.drain_array(task.degrade_array)
            telemetry.emit("bench_degrade_drill", op=step + 1, moved=moved)
        if (step + 1) % task.maintenance_interval == 0:
            cluster.maintenance()

    # drain phase: retries left over from the schedule get maintenance
    # flushes until they are admitted, then a bounded forced fallback
    step = len(schedule)
    budget = len(pending) * DRAIN_STEPS_PER_RETRY
    while pending and budget > 0:
        cluster.maintenance()
        run_due_retries(step)
        step += 1
        budget -= 1
    while pending:  # liveness backstop — never triggers in practice
        _, _, tenant_index, op_index = heapq.heappop(pending)
        attempt_write(tenant_index, op_index, admit=False)
        forced += 1

    cluster.maintenance()
    cluster.flush_all()
    checked, failures, dead, audit_digest = _audit(cluster, shadow)
    # final sample: fold the audit reads and post-flush state into the
    # last bucket so the exported series covers the whole run
    cluster.observe()
    elapsed = time.perf_counter() - start
    snapshot = {
        "config": {
            "spec": task.spec.key,
            "ops": task.ops,
            "arrays": task.n_arrays,
            "tenants": [spec.tenant_id for spec in task.tenants],
            "tenant_addresses": task.tenant_addresses,
            "addresses_per_array": task.n_addresses,
            "spares_per_array": task.spares,
            "seed": task.seed,
            "degrade_at": task.degrade_at,
            "degrade_array": task.degrade_array if task.degrade_at else None,
            "degrade_threshold": task.degrade_threshold,
            "series_bucket": task.series_bucket,
        },
        "audit": {
            "checked": checked,
            "failures": failures,
            "dead_keys": dead,
            "digest": audit_digest,
            "retries": retries,
            "forced_writes": forced,
        },
        **cluster.snapshot(),
    }
    # non-default dimensions only, so historical digests stay byte-identical
    if task.fault_model != "hard":
        snapshot["config"]["fault_model"] = task.fault_model
    if task.policy != "fixed":
        snapshot["config"]["policy"] = task.policy
    snapshot_digest = hashlib.sha256(
        json.dumps(snapshot, sort_keys=True).encode("utf-8")
    ).hexdigest()
    return ClusterBenchReport(
        ops=task.ops,
        workers=workers,
        elapsed=elapsed,
        retries=retries,
        forced_writes=forced,
        audit_checked=checked,
        audit_failures=failures,
        dead_keys=dead,
        audit_digest=audit_digest,
        snapshot_digest=snapshot_digest,
        snapshot=snapshot,
        telemetry=telemetry,
        per_tenant=snapshot["tenants"],
        slos=cluster.slo_engine.specs if cluster.slo_engine is not None else (),
    )
