"""The asyncio front-end: ``repro serve`` and its loopback client.

:class:`ClusterFrontend` multiplexes per-tenant sessions over one
:class:`~repro.cluster.service.ClusterService` behind a JSON-lines TCP
protocol (one request object per line, one response object per line):

``{"cmd": "hello", "tenant": "tenant0"}``
    Bind the session to a registered tenant (its QoS class is echoed).
``{"cmd": "write", "address": 3, "payload": "<hex>"}``
    Payload is the block's bits packed MSB-first (``np.packbits``) and
    hex-encoded.  Interactive writes are serviced inline.  Bulk writes
    that hit the admission watermark are *queued* on a bounded per-array
    ``asyncio.Queue`` (``{"status": "queued"}``) and applied by that
    array's drainer task; when the queue itself is full the client gets
    ``{"ok": false, "error": "backpressure", "retry_after": N}`` and must
    back off — the two-level backpressure the cluster design calls for.
``{"cmd": "read", "address": 3}``
    Read-your-writes: queued-but-unapplied bulk writes are forwarded from
    the pending table, then the cluster (whose write buffers forward
    their own pending entries).
``{"cmd": "stats"}``
    Per-tenant and per-array snapshot sections, the cluster op clock,
    and — when the cluster records time series — the series geometry
    plus a compact per-SLO budget summary.
``{"cmd": "watch", "count": N}``
    Stream ``N`` time-series bucket frames, one JSON line each (the only
    multi-line response in the protocol).  The first frame is the newest
    bucket as of the request; each further frame waits for the
    maintenance loop's next sample (an idle cluster re-samples the same
    bucket, so consecutive frames may repeat it).  Frames carry the bucket
    index, its end clock, and the bucket's non-zero counter deltas and
    gauges.  Requires the cluster to have been built with
    ``series_bucket >= 1`` (``{"error": "no_series"}`` otherwise).
``{"cmd": "quit"}``
    End the session.

The service core is synchronous and not thread-safe, so every touch of it
happens on the event loop under one :class:`asyncio.Lock`; concurrency
lives in the sessions, the per-array drainers, and the maintenance loop
(which periodically runs the control plane: watermark flushes, spare
rebalancing, migration off draining arrays).
"""

from __future__ import annotations

import asyncio
import contextlib
import json

import numpy as np

from repro.cluster.service import ClusterService
from repro.errors import (
    BackpressureError,
    ConfigurationError,
    ReproError,
    RetiredBlockError,
)

#: queued bulk writes per array before clients see hard backpressure
DEFAULT_BULK_QUEUE_DEPTH = 64

#: seconds between control-plane maintenance passes
DEFAULT_MAINTENANCE_INTERVAL = 0.05


def encode_payload(bits: np.ndarray) -> str:
    """Hex wire form of a block payload (bits packed MSB-first)."""
    return np.packbits(np.asarray(bits, dtype=np.uint8)).tobytes().hex()


def decode_payload(text: str, block_bits: int) -> np.ndarray:
    """Inverse of :func:`encode_payload`; validates the bit length."""
    try:
        raw = bytes.fromhex(text)
    except ValueError as error:
        raise ConfigurationError(f"payload is not valid hex: {error}") from error
    if len(raw) * 8 < block_bits or len(raw) != (block_bits + 7) // 8:
        raise ConfigurationError(
            f"payload encodes {len(raw) * 8} bits; expected {block_bits}"
        )
    return np.unpackbits(np.frombuffer(raw, dtype=np.uint8))[:block_bits]


class ClusterFrontend:
    """Serve one cluster over TCP (see module docstring for the protocol).

    Parameters
    ----------
    cluster:
        The service core; tenants must already be registered.
    host, port:
        Bind address; ``port=0`` picks a free port (see :attr:`port`).
    bulk_queue_depth:
        Bound of each array's queued-bulk-write queue.
    maintenance_interval:
        Seconds between control-plane passes.
    """

    def __init__(
        self,
        cluster: ClusterService,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        bulk_queue_depth: int = DEFAULT_BULK_QUEUE_DEPTH,
        maintenance_interval: float = DEFAULT_MAINTENANCE_INTERVAL,
    ) -> None:
        if bulk_queue_depth < 1:
            raise ConfigurationError("bulk queue depth must be positive")
        if maintenance_interval <= 0:
            raise ConfigurationError("maintenance interval must be positive")
        self.cluster = cluster
        self.host = host
        self._requested_port = port
        self.bulk_queue_depth = bulk_queue_depth
        self.maintenance_interval = maintenance_interval
        self._lock = asyncio.Lock()
        #: watch sessions block on this until maintenance samples a bucket
        self._watch_cond = asyncio.Condition()
        self._sample_count = 0
        self._queues: dict[str, asyncio.Queue] = {}
        #: queued-but-unapplied bulk payloads, for read-your-writes
        self._pending: dict[tuple[str, int], np.ndarray] = {}
        self._tasks: list[asyncio.Task] = []
        self._server: asyncio.AbstractServer | None = None

    @property
    def port(self) -> int:
        """The bound port (valid after :meth:`start`)."""
        assert self._server is not None and self._server.sockets
        return self._server.sockets[0].getsockname()[1]

    # -- lifecycle ----------------------------------------------------------

    async def start(self) -> None:
        """Bind the server and launch the drainer/maintenance tasks."""
        for node in self.cluster.nodes:
            queue: asyncio.Queue = asyncio.Queue(maxsize=self.bulk_queue_depth)
            self._queues[node.name] = queue
            self._tasks.append(
                asyncio.create_task(
                    self._drain_queue(node.name, queue),
                    name=f"drain-{node.name}",
                )
            )
        self._tasks.append(
            asyncio.create_task(self._maintenance_loop(), name="maintenance")
        )
        self._server = await asyncio.start_server(
            self._handle_session, self.host, self._requested_port
        )

    async def stop(self) -> None:
        """Cancel background tasks and close the server."""
        for task in self._tasks:
            task.cancel()
        await asyncio.gather(*self._tasks, return_exceptions=True)
        self._tasks.clear()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    async def serve_forever(self) -> None:
        assert self._server is not None, "call start() first"
        await self._server.serve_forever()

    async def join_queues(self) -> None:
        """Wait until every queued bulk write has been applied."""
        for queue in self._queues.values():
            await queue.join()

    # -- background tasks ---------------------------------------------------

    async def _drain_queue(self, name: str, queue: asyncio.Queue) -> None:
        """Apply queued bulk writes for one array.  Admission was paid at
        enqueue time (the bounded queue), so the drainer flushes the
        watermarked buffer itself and writes with admission disabled."""
        node = self.cluster.node_named(name)
        while True:
            tenant_id, address, payload = await queue.get()
            try:
                async with self._lock:
                    if node.occupancy >= self.cluster.bulk_watermark:
                        node.controller.flush()
                    try:
                        self.cluster.write(tenant_id, address, payload, admit=False)
                    finally:
                        key = (tenant_id, address)
                        if self._pending.get(key) is payload:
                            del self._pending[key]
            except ReproError:
                # a lost write surfaces through telemetry (writes_lost);
                # the drainer must keep draining for every other key
                pass
            finally:
                queue.task_done()

    async def _maintenance_loop(self) -> None:
        while True:
            await asyncio.sleep(self.maintenance_interval)
            async with self._lock:
                self.cluster.maintenance()
                recorder = self.cluster.telemetry.timeseries
                samples = recorder.samples if recorder is not None else 0
            if samples != self._sample_count:
                async with self._watch_cond:
                    self._sample_count = samples
                    self._watch_cond.notify_all()

    # -- protocol -----------------------------------------------------------

    async def _handle_session(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        tenant_id: str | None = None
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                try:
                    request = json.loads(line)
                except json.JSONDecodeError as error:
                    response: dict = {"ok": False, "error": "bad_json", "detail": str(error)}
                else:
                    if isinstance(request, dict) and request.get("cmd") == "watch":
                        # the one streaming command: multiple lines out
                        await self._handle_watch(request, writer)
                        continue
                    response, tenant_id = await self._dispatch(request, tenant_id)
                writer.write((json.dumps(response, sort_keys=True) + "\n").encode())
                await writer.drain()
                if response.get("bye"):
                    break
        finally:
            writer.close()
            with contextlib.suppress(Exception):
                await writer.wait_closed()

    async def _dispatch(
        self, request: dict, tenant_id: str | None
    ) -> tuple[dict, str | None]:
        cmd = request.get("cmd")
        if cmd == "hello":
            requested = request.get("tenant", "")
            try:
                spec = self.cluster.tenant(requested)
            except ConfigurationError as error:
                return {"ok": False, "error": "unknown_tenant", "detail": str(error)}, tenant_id
            return (
                {
                    "ok": True,
                    "tenant": spec.tenant_id,
                    "qos": spec.qos.value,
                    "block_bits": self.cluster.block_bits,
                },
                spec.tenant_id,
            )
        if cmd == "quit":
            return {"ok": True, "bye": True}, tenant_id
        if cmd == "stats":
            async with self._lock:
                response = {
                    "ok": True,
                    "tenants": self.cluster.tenant_summary(),
                    "arrays": self.cluster.array_summary(),
                    "keys": self.cluster.key_count,
                    "clock": self.cluster.clock,
                }
                recorder = self.cluster.telemetry.timeseries
                if recorder is not None:
                    response["series"] = {
                        "bucket_width": recorder.bucket_width,
                        "buckets": recorder.bucket_count,
                        "start_bucket": recorder.start_bucket,
                        "samples": recorder.samples,
                        "buckets_dropped": recorder.dropped,
                    }
                summary = self.cluster.slo_summary()
                if summary is not None:
                    response["slo"] = {
                        name: {
                            "budget_left_fraction": entry["budget_left_fraction"],
                            "violating_buckets": entry["violating_buckets"],
                            "alerts": len(entry["alerts"]),
                            "action": entry["action"],
                        }
                        for name, entry in summary["slos"].items()
                    }
                return response, tenant_id
        session_tenant = request.get("tenant", tenant_id)
        if session_tenant is None:
            return {"ok": False, "error": "no_tenant", "detail": "send hello first"}, tenant_id
        if cmd == "write":
            return await self._handle_write(request, session_tenant), tenant_id
        if cmd == "read":
            return await self._handle_read(request, session_tenant), tenant_id
        return {"ok": False, "error": "unknown_cmd", "detail": repr(cmd)}, tenant_id

    async def _handle_watch(
        self, request: dict, writer: asyncio.StreamWriter
    ) -> None:
        """Stream ``count`` bucket frames (see module docstring).

        The first frame reflects the newest bucket immediately; every
        further frame waits on the maintenance loop's sample signal, so
        a watcher observes samples in order without polling.
        """

        async def send(payload: dict) -> None:
            writer.write((json.dumps(payload, sort_keys=True) + "\n").encode())
            await writer.drain()

        recorder = self.cluster.telemetry.timeseries
        if recorder is None:
            await send(
                {
                    "ok": False,
                    "error": "no_series",
                    "detail": "cluster records no time series (series_bucket=0)",
                }
            )
            return
        try:
            count = int(request.get("count", 1))
        except (TypeError, ValueError):
            count = 0
        if count < 1:
            await send(
                {"ok": False, "error": "bad_request", "detail": "count must be >= 1"}
            )
            return
        seen: int | None = None
        for index in range(count):
            async with self._watch_cond:
                await self._watch_cond.wait_for(
                    lambda: self._sample_count != seen
                )
                seen = self._sample_count
            async with self._lock:
                frame = recorder.last_bucket_snapshot()
            frame.update(ok=True, remaining=count - index - 1)
            await send(frame)

    async def _handle_write(self, request: dict, tenant_id: str) -> dict:
        try:
            address = int(request["address"])
            payload = decode_payload(
                str(request.get("payload", "")), self.cluster.block_bits
            )
        except (KeyError, TypeError, ValueError, ConfigurationError) as error:
            return {"ok": False, "error": "bad_request", "detail": str(error)}
        async with self._lock:
            try:
                self.cluster.write(tenant_id, address, payload)
                return {"ok": True, "status": "serviced"}
            except BackpressureError as error:
                saturated = error.array
                retry_after = error.retry_after
            except ReproError as error:
                return {"ok": False, "error": "rejected", "detail": str(error)}
        queue = self._queues[saturated]
        if queue.full():
            return {
                "ok": False,
                "error": "backpressure",
                "array": saturated,
                "retry_after": retry_after,
            }
        self._pending[(tenant_id, address)] = payload
        queue.put_nowait((tenant_id, address, payload))
        return {"ok": True, "status": "queued", "array": saturated}

    async def _handle_read(self, request: dict, tenant_id: str) -> dict:
        try:
            address = int(request["address"])
        except (KeyError, TypeError, ValueError) as error:
            return {"ok": False, "error": "bad_request", "detail": str(error)}
        forwarded = self._pending.get((tenant_id, address))
        if forwarded is not None:
            return {"ok": True, "payload": encode_payload(forwarded), "source": "queued"}
        async with self._lock:
            try:
                bits = self.cluster.read(tenant_id, address)
            except RetiredBlockError as error:
                return {
                    "ok": False,
                    "error": "retired",
                    "address": error.address,
                    "array": error.array,
                    "scheme": error.scheme,
                }
            except ReproError as error:
                return {"ok": False, "error": "rejected", "detail": str(error)}
        return {"ok": True, "payload": encode_payload(bits), "source": "cluster"}


class LoopbackClient:
    """A minimal asyncio client for the JSON-lines protocol (tests, the
    ``--selftest`` path, and a template for external clients)."""

    def __init__(self, host: str, port: int) -> None:
        self.host = host
        self.port = port
        self._reader: asyncio.StreamReader | None = None
        self._writer: asyncio.StreamWriter | None = None

    async def connect(self) -> None:
        self._reader, self._writer = await asyncio.open_connection(
            self.host, self.port
        )

    async def close(self) -> None:
        if self._writer is not None:
            self._writer.close()
            with contextlib.suppress(Exception):
                await self._writer.wait_closed()
            self._reader = self._writer = None

    async def request(self, **fields: object) -> dict:
        assert self._reader is not None and self._writer is not None
        self._writer.write((json.dumps(fields) + "\n").encode())
        await self._writer.drain()
        line = await self._reader.readline()
        if not line:
            raise ConnectionError("server closed the session")
        return json.loads(line)

    async def hello(self, tenant: str) -> dict:
        return await self.request(cmd="hello", tenant=tenant)

    async def write(self, address: int, bits: np.ndarray) -> dict:
        return await self.request(
            cmd="write", address=address, payload=encode_payload(bits)
        )

    async def read(self, address: int) -> dict:
        return await self.request(cmd="read", address=address)

    async def stats(self) -> dict:
        return await self.request(cmd="stats")

    async def watch(self, count: int = 1) -> list[dict]:
        """Collect ``count`` streamed bucket frames (or the error frame)."""
        assert self._reader is not None and self._writer is not None
        self._writer.write(
            (json.dumps({"cmd": "watch", "count": count}) + "\n").encode()
        )
        await self._writer.drain()
        frames: list[dict] = []
        for _ in range(count):
            line = await self._reader.readline()
            if not line:
                raise ConnectionError("server closed the session")
            frame = json.loads(line)
            frames.append(frame)
            if not frame.get("ok"):
                break
        return frames

    async def quit(self) -> dict:
        return await self.request(cmd="quit")


async def loopback_selftest(
    cluster: ClusterService, *, ops_per_tenant: int = 8, seed: int = 2013
) -> dict:
    """Start a frontend on a free port, drive every registered tenant over
    a loopback session, verify read-your-writes, and return a summary.

    This is what ``repro serve --selftest`` runs: an end-to-end exercise
    of the wire protocol, the admission path, and the drainers without
    needing an external client.
    """
    from repro.sim.rng import rng_for

    frontend = ClusterFrontend(cluster, maintenance_interval=0.01)
    await frontend.start()
    summary = {"writes": 0, "queued": 0, "backpressured": 0, "reads": 0, "mismatches": 0}
    try:
        for index, spec in enumerate(cluster.tenants):
            rng = rng_for(seed, index, 53)
            client = LoopbackClient(frontend.host, frontend.port)
            await client.connect()
            hello = await client.hello(spec.tenant_id)
            assert hello["ok"], hello
            written: dict[int, np.ndarray] = {}
            for _ in range(ops_per_tenant):
                address = int(rng.integers(0, 16))
                bits = rng.integers(0, 2, cluster.block_bits, dtype=np.uint8)
                response = await client.write(address, bits)
                if response.get("ok"):
                    summary["writes"] += 1
                    if response.get("status") == "queued":
                        summary["queued"] += 1
                    written[address] = bits
                else:
                    summary["backpressured"] += 1
            for address, bits in sorted(written.items()):
                response = await client.read(address)
                summary["reads"] += 1
                if not response.get("ok") or response.get("payload") != encode_payload(bits):
                    summary["mismatches"] += 1
            await client.quit()
            await client.close()
        await frontend.join_queues()
    finally:
        await frontend.stop()
    return summary
