"""Multi-tenant cluster over sharded :class:`~repro.service.MemoryArray`\\ s.

:class:`ClusterService` is the synchronous core the asyncio front-end
(:mod:`repro.cluster.frontend`) and the deterministic load harness
(:mod:`repro.cluster.bench`) both drive.  It composes the pieces the
service layer already provides:

* **Routing** — every tenant key ``(tenant_id, address)`` is placed by the
  deterministic consistent-hash ring (:class:`~repro.cluster.ring.HashRing`)
  over the arrays; placement happens lazily on a key's *first write* and is
  remembered in an explicit placement table, so live migration can move a
  key without the ring ever lying about where data actually lives.
* **Namespaces** — tenants address disjoint spaces by construction: the
  routing key embeds the tenant, and each array-local logical address is
  owned by exactly one tenant key (the ``owners`` reverse map — also how
  per-row service cost is attributed back to tenants).
* **QoS admission** — bulk writes are refused with
  :class:`~repro.errors.BackpressureError` once the target array's write
  buffer crosses the bulk watermark; interactive writes are always
  admitted (and trigger the drain when the buffer fills).  A background
  :meth:`maintenance` pass flushes any watermarked buffer so bulk-only
  workloads make progress without an interactive writer to pay the flush.
* **Control plane** — :meth:`maintenance` watches per-array spare-pool
  occupancy and block health (the ``health_transitions_total`` signal) and
  migrates keys off pressured or draining arrays with copy-then-switch:
  flush the source, read the payload, write it (buffered) on the target,
  then switch the placement entry.  Read-your-writes holds throughout —
  before the switch reads hit the flushed source block, after it the
  target controller's write buffer forwards the pending copy.

Everything here is deterministic: no wall clocks, dict iteration in
insertion/sorted order, and ring placement from BLAKE2b — the property
``repro cluster-bench`` audits bit-identically across worker counts.
"""

from __future__ import annotations

import hashlib
import heapq

import numpy as np

from repro.cluster.qos import QoSClass, TenantSpec
from repro.cluster.ring import DEFAULT_REPLICAS, HashRing
from repro.errors import (
    BackpressureError,
    ClusterCapacityError,
    ConfigurationError,
)
from repro.obs.slo import SLOEngine, SLOSpec, default_cluster_slos
from repro.obs.timeseries import TimeSeriesRecorder
from repro.pcm.failcache import DirectMappedFailCache, SequentialBlockKeys
from repro.pcm.lifetime import LifetimeModel, NormalLifetime
from repro.service.array import MemoryArray
from repro.service.controller import ServiceController
from repro.service.health import BlockHealth
from repro.service.telemetry import DEFAULT_COST_EDGES, ServiceTelemetry
from repro.sim.rng import rng_for
from repro.sim.roster import SchemeSpec

#: write-buffer occupancy fraction above which bulk writes are refused
DEFAULT_BULK_WATERMARK = 0.75

#: spare-pool remaining at (or below) which an array is "pressured" and the
#: control plane starts migrating its degraded-block keys elsewhere
DEFAULT_SPARE_LOW = 2

#: pressure migrations per maintenance pass (draining arrays are unbounded)
DEFAULT_MIGRATE_BATCH = 8


class ClusterNode:
    """One array + its controller + the local-address bookkeeping.

    The node hands out *local* logical addresses to cluster keys through a
    deterministic allocator (lowest freed address first, then the next
    fresh one) and keeps the ``owners`` reverse map — local address →
    cluster key — that migration and per-tenant cost attribution read.
    """

    def __init__(
        self, index: int, array: MemoryArray, controller: ServiceController
    ) -> None:
        self.index = index
        self.array = array
        self.controller = controller
        self.name = array.name
        #: local logical address -> owning (tenant_id, tenant_address) key
        self.owners: dict[int, tuple[str, int]] = {}
        self._free: list[int] = []
        self._next_local = 0
        #: set once the control plane decided to move everything off this
        #: array; a draining node accepts no new placements
        self.draining = False

    @property
    def has_capacity(self) -> bool:
        return bool(self._free) or self._next_local < self.array.n_addresses

    @property
    def occupancy(self) -> int:
        """Pending writes in this node's buffer (the admission signal)."""
        return len(self.controller.buffer)

    def allocate_local(self) -> int:
        """Claim a free local address (lowest freed first — deterministic)."""
        if self._free:
            return heapq.heappop(self._free)
        if self._next_local < self.array.n_addresses:
            local = self._next_local
            self._next_local += 1
            return local
        raise ClusterCapacityError(
            f"array {self.name}: logical address space exhausted"
        )

    def free_local(self, local: int) -> None:
        """Return a local address to the allocator (dead addresses are
        permanently lost capacity and are never reissued)."""
        self.owners.pop(local, None)
        if not self.array.is_dead(local):
            heapq.heappush(self._free, local)


class ClusterService:
    """Tenant-facing façade over ``n_arrays`` independent memory arrays.

    Parameters
    ----------
    n_arrays:
        Arrays in the cluster (named ``array0`` … ``arrayN-1``; the names
        are the ring's node identities).
    spec:
        Recovery-scheme spec every array's blocks use.
    n_addresses, spares, buffer_capacity, lifetime_model,
    fail_cache_capacity, use_fail_cache, proactive_migration,
    degrade_threshold, engine, fault_model, policy:
        Per-array service-layer knobs, as in
        :func:`repro.service.loadgen.run_load`.
    seed:
        Root seed; array ``i`` draws wear randomness from
        ``rng_for(seed, i, 43)`` so the cluster is a pure function of the
        seed regardless of construction order elsewhere.
    bulk_watermark:
        Write-buffer occupancy fraction at which bulk admission closes.
    spare_low_blocks, migrate_batch:
        Control-plane thresholds (see module docstring).
    telemetry:
        Shared :class:`ServiceTelemetry` sink; one is created if omitted.
    ring_replicas:
        Virtual points per array on the consistent-hash ring.
    series_bucket:
        Op-clock bucket width for time-series sampling (0 disables it);
        :meth:`observe` and :meth:`maintenance` are the sampling points.
    slos:
        SLO roster evaluated over the series (defaults to
        :func:`repro.obs.slo.default_cluster_slos` when series are on);
        firing ``action="migrate"`` alerts make :meth:`maintenance`
        sweep degraded keys immediately — the observe→act loop.
    """

    def __init__(
        self,
        n_arrays: int,
        spec: SchemeSpec,
        *,
        n_addresses: int = 64,
        spares: int = 16,
        seed: int = 2013,
        buffer_capacity: int = 8,
        bulk_watermark: float = DEFAULT_BULK_WATERMARK,
        spare_low_blocks: int = DEFAULT_SPARE_LOW,
        migrate_batch: int = DEFAULT_MIGRATE_BATCH,
        lifetime_model: LifetimeModel | None = None,
        fail_cache_capacity: int | None = 1024,
        use_fail_cache: bool = True,
        proactive_migration: bool = False,
        degrade_threshold: int | None = None,
        engine: str = "auto",
        fault_model: str = "hard",
        policy: str = "fixed",
        telemetry: ServiceTelemetry | None = None,
        ring_replicas: int = DEFAULT_REPLICAS,
        series_bucket: int = 0,
        slos: tuple[SLOSpec, ...] | None = None,
    ) -> None:
        if n_arrays < 1:
            raise ConfigurationError("a cluster needs at least one array")
        if not 0 < bulk_watermark <= 1:
            raise ConfigurationError("bulk watermark must be in (0, 1]")
        if spare_low_blocks < 0:
            raise ConfigurationError("spare-low threshold cannot be negative")
        if migrate_batch < 1:
            raise ConfigurationError("migrate batch must be positive")
        if series_bucket < 0:
            raise ConfigurationError(
                "series bucket width must be >= 0 (0 disables time series)"
            )
        if slos is not None and series_bucket == 0:
            raise ConfigurationError(
                "SLO evaluation needs time series (pass series_bucket >= 1)"
            )
        self.spec = spec
        self.telemetry = telemetry if telemetry is not None else ServiceTelemetry()
        self.bulk_watermark = max(1, int(round(buffer_capacity * bulk_watermark)))
        self.spare_low_blocks = spare_low_blocks
        self.migrate_batch = migrate_batch
        model = lifetime_model if lifetime_model is not None else NormalLifetime()
        self.nodes: list[ClusterNode] = []
        for index in range(n_arrays):
            fail_cache = (
                DirectMappedFailCache(
                    fail_cache_capacity, key_of=SequentialBlockKeys()
                )
                if use_fail_cache
                else None
            )
            array = MemoryArray(
                n_addresses,
                spec.n_bits,
                spec.make_controller,
                spares=spares,
                lifetime_model=model,
                fail_cache=fail_cache,
                degrade_fault_threshold=degrade_threshold,
                telemetry=self.telemetry,
                rng=rng_for(seed, index, 43),
                engine=engine,
                name=f"array{index}",
                fault_model=fault_model,
                scheme_key=spec.key,
            )
            controller = ServiceController(
                array,
                buffer_capacity=buffer_capacity,
                proactive_migration=proactive_migration,
                policy=policy,
            )
            node = ClusterNode(index, array, controller)
            controller.cost_hook = self._make_cost_hook(node)
            self.nodes.append(node)
        self.block_bits = self.nodes[0].array.block_bits
        self.ring = HashRing(
            (node.name for node in self.nodes), replicas=ring_replicas
        )
        self._by_name = {node.name: node for node in self.nodes}
        #: (tenant_id, address) -> (node index, local address)
        self._placement: dict[tuple[str, int], tuple[int, int]] = {}
        self._tenants: dict[str, TenantSpec] = {}
        self._tenant_keys: dict[str, dict[str, tuple]] = {}
        #: the cluster op clock — admitted writes + reads, the time axis
        #: every observation and alert is stamped with (never wall time)
        self.clock = 0
        self.slo_engine: SLOEngine | None = None
        if series_bucket:
            recorder = self.telemetry.attach_timeseries(
                TimeSeriesRecorder(
                    self.telemetry.metrics, bucket_width=series_bucket, auto=False
                )
            )
            self.slo_engine = SLOEngine(
                recorder, slos if slos is not None else default_cluster_slos()
            )

    # -- tenants ------------------------------------------------------------

    def register_tenant(self, spec: TenantSpec) -> None:
        """Admit a tenant (its id becomes part of every routing key)."""
        if spec.tenant_id in self._tenants:
            raise ConfigurationError(f"tenant {spec.tenant_id!r} already registered")
        self._tenants[spec.tenant_id] = spec
        metrics = self.telemetry.metrics
        labels = {"qos": spec.qos.value, "tenant": spec.tenant_id}
        self._tenant_keys[spec.tenant_id] = {
            "writes": metrics.series_key("tenant_writes_total", **labels),
            "reads": metrics.series_key("tenant_reads_total", **labels),
            "backpressure": metrics.series_key(
                "tenant_backpressure_total", **labels
            ),
        }

    @property
    def tenants(self) -> tuple[TenantSpec, ...]:
        """Registered tenants in registration order."""
        return tuple(self._tenants.values())

    def tenant(self, tenant_id: str) -> TenantSpec:
        spec = self._tenants.get(tenant_id)
        if spec is None:
            raise ConfigurationError(f"unknown tenant {tenant_id!r}")
        return spec

    def _make_cost_hook(self, node: ClusterNode):
        """Per-row cost attribution: the controller reports every serviced
        row's cell writes (engine-invariantly), the owners map names the
        tenant, and the labeled histogram buckets it."""
        owners = node.owners
        metrics = self.telemetry.metrics

        def hook(local: int, cell_writes: int) -> None:
            owner = owners.get(local)
            if owner is not None:
                metrics.observe(
                    "tenant_stage_cost",
                    cell_writes,
                    edges=DEFAULT_COST_EDGES,
                    tenant=owner[0],
                )

        return hook

    # -- placement ----------------------------------------------------------

    @staticmethod
    def routing_key(tenant_id: str, address: int) -> str:
        return f"{tenant_id}:{address}"

    def node_named(self, name: str) -> ClusterNode:
        node = self._by_name.get(name)
        if node is None:
            raise ConfigurationError(f"no array named {name!r}")
        return node

    def node_of(self, tenant_id: str, address: int) -> ClusterNode | None:
        """Node currently holding the key (``None`` before its first write)."""
        placed = self._placement.get((tenant_id, address))
        return self.nodes[placed[0]] if placed is not None else None

    def is_dead(self, tenant_id: str, address: int) -> bool:
        """True when the key's data was lost to spare-pool exhaustion."""
        placed = self._placement.get((tenant_id, address))
        if placed is None:
            return False
        return self.nodes[placed[0]].array.is_dead(placed[1])

    @property
    def key_count(self) -> int:
        return len(self._placement)

    def _place_node(self, key: tuple[str, int]) -> ClusterNode:
        """First placement: the ring's preference walk, skipping draining
        or full arrays — fallback placement equals post-retirement
        placement, so a later drain moves the minimum number of keys."""
        for name in self.ring.preference(self.routing_key(*key)):
            node = self._by_name[name]
            if not node.draining and node.has_capacity:
                return node
        raise ClusterCapacityError(
            "no array in the cluster has a free logical address"
        )

    def placement_digest(self) -> str:
        """SHA-256 over the sorted placement table — the cross-process,
        cross-worker-count placement fingerprint the bench audits."""
        digest = hashlib.sha256()
        for key in sorted(self._placement):
            node_index, local = self._placement[key]
            digest.update(
                f"{key[0]}:{key[1]}->{node_index}:{local}\n".encode("utf-8")
            )
        return digest.hexdigest()

    # -- data path ----------------------------------------------------------

    def write(
        self,
        tenant_id: str,
        address: int,
        payload: np.ndarray,
        *,
        admit: bool = True,
    ) -> None:
        """Accept a tenant write (serviced at the owning array's next drain).

        Raises :class:`BackpressureError` for a bulk tenant whose target
        array is watermarked (no state is consumed — the caller retries);
        pass ``admit=False`` to bypass admission (migration/replay paths).
        """
        spec = self.tenant(tenant_id)
        if address < 0:
            raise ConfigurationError("tenant addresses cannot be negative")
        key = (tenant_id, address)
        placed = self._placement.get(key)
        node = self.nodes[placed[0]] if placed is not None else self._place_node(key)
        if admit and spec.qos is QoSClass.BULK:
            occupancy = node.occupancy
            if occupancy >= self.bulk_watermark:
                self.telemetry.metrics.inc_key(
                    self._tenant_keys[tenant_id]["backpressure"]
                )
                raise BackpressureError(
                    f"array {node.name} buffer at {occupancy}/"
                    f"{node.controller.buffer.capacity} (bulk watermark "
                    f"{self.bulk_watermark})",
                    retry_after=max(1, occupancy - self.bulk_watermark + 1),
                    array=node.name,
                    tenant=tenant_id,
                )
        if placed is None:
            local = node.allocate_local()
            node.owners[local] = key
            self._placement[key] = (node.index, local)
        else:
            local = placed[1]
        self.telemetry.metrics.inc_key(self._tenant_keys[tenant_id]["writes"])
        node.controller.write(local, payload)
        self.clock += 1

    def read(self, tenant_id: str, address: int) -> np.ndarray:
        """The payload last written by ``tenant_id`` at ``address``.

        Unwritten keys read as zeros *at the cluster level* (no placement
        is created, and a recycled local address can never leak another
        key's stale data).  Dead keys raise the typed
        :class:`~repro.errors.RetiredBlockError` from the owning array.
        """
        self.tenant(tenant_id)
        self.telemetry.metrics.inc_key(self._tenant_keys[tenant_id]["reads"])
        self.clock += 1
        placed = self._placement.get((tenant_id, address))
        if placed is None:
            return np.zeros(self.block_bits, dtype=np.uint8)
        return self.nodes[placed[0]].controller.read(placed[1])

    def flush_all(self) -> None:
        """Drain every array's write buffer (call before final audits)."""
        for node in self.nodes:
            node.controller.flush()

    # -- control plane ------------------------------------------------------

    def observe(self) -> int | None:
        """Refresh the capacity-retention gauges and sample the time
        series at the current op clock; returns the bucket index sampled
        (``None`` when time series are disabled).

        This is the cluster's only sampling point — callers (the bench
        drive loop, the frontend maintenance loop) invoke it at
        deterministic schedule positions, so the bucket contents are a
        pure function of the operation sequence.
        """
        recorder = self.telemetry.timeseries
        if recorder is None:
            return None
        metrics = self.telemetry.metrics
        cluster_live = cluster_total = 0
        for node in self.nodes:
            summary = node.array.capacity_summary()
            live = int(summary["live_addresses"])
            total = int(summary["total_addresses"])
            cluster_live += live
            cluster_total += total
            metrics.set_gauge(
                "capacity_retention",
                live / total if total else 0.0,
                scope=node.name,
            )
        metrics.set_gauge(
            "capacity_retention",
            cluster_live / cluster_total if cluster_total else 0.0,
            scope="cluster",
        )
        return recorder.sample(self.clock)

    def maintenance(self) -> dict[str, int]:
        """One control-plane pass; returns ``{"flushed", "migrated",
        "alerts", "alert_migrated"}`` counts.

        1. Flush any watermarked buffer, so bulk writers blocked by
           admission control always see the occupancy fall (liveness).
        2. Observe: sample the time series and poll the SLO engine for
           burn-rate alerts; every alert is counted
           (``slo_alerts_total{slo, action}``) and logged as an
           ``slo_alert`` event.  While any ``action="migrate"`` spec is
           firing (level-triggered — the sweep keeps running for as long
           as the burn condition holds, not just at the rising edge),
           degraded-block keys across *all* non-draining arrays are
           migrated (up to ``migrate_batch``) — acting on the burn
           signal without waiting for spare-pool pressure.
        3. Migrate keys off arrays under spare pressure (degraded-block
           keys only, up to ``migrate_batch``) and off draining arrays
           (everything), onto the array with the most spare headroom.
        """
        flushed = 0
        for node in self.nodes:
            if node.occupancy >= self.bulk_watermark:
                node.controller.flush()
                flushed += 1
        alerts: list = []
        alert_migrated = 0
        if self.slo_engine is not None:
            self.observe()
            alerts = self.slo_engine.poll()
            for alert in alerts:
                self.telemetry.metrics.inc(
                    "slo_alerts_total",
                    slo=alert.slo,
                    action=alert.action or "observe",
                )
                self.telemetry.emit(
                    "slo_alert",
                    op=self.clock,
                    slo=alert.slo,
                    bucket=alert.bucket,
                    clock=alert.clock,
                    burn_fast=alert.burn_fast,
                    burn_slow=alert.burn_slow,
                    action=alert.action,
                )
            if "migrate" in self.slo_engine.active_actions():
                for node in self.nodes:
                    if node.draining or alert_migrated >= self.migrate_batch:
                        continue
                    for key in self._degraded_keys(node):
                        if alert_migrated >= self.migrate_batch:
                            break
                        if self.migrate_key(key, kind="alert"):
                            alert_migrated += 1
        migrated = 0
        for node in self.nodes:
            if node.draining:
                keys = [node.owners[local] for local in sorted(node.owners)]
            elif node.array.pool.remaining <= self.spare_low_blocks:
                keys = self._degraded_keys(node)[: self.migrate_batch]
            else:
                continue
            for key in keys:
                if not node.draining and migrated >= self.migrate_batch:
                    break
                if self.migrate_key(key):
                    migrated += 1
        return {
            "flushed": flushed,
            "migrated": migrated,
            "alerts": len(alerts),
            "alert_migrated": alert_migrated,
        }

    def _degraded_keys(self, node: ClusterNode) -> list[tuple[str, int]]:
        """Keys on this node whose backing block is ``DEGRADED`` (the
        health machine's proactive-migration signal), in local order."""
        keys = []
        for local in sorted(node.owners):
            if node.array.is_dead(local):
                continue
            if node.array.health_of(local) is BlockHealth.DEGRADED:
                keys.append(node.owners[local])
        return keys

    def migrate_key(self, key: tuple[str, int], *, kind: str = "cross_array") -> bool:
        """Copy-then-switch one key to the healthiest other array.

        Returns ``False`` (leaving the key in place) when it has no
        placement, its data is already lost, or no other array has
        capacity — migration is an optimisation, never a correctness
        requirement.  Read-your-writes holds at every step: the source is
        flushed before the copy, and after the placement switch the
        target's write buffer forwards the pending payload.  ``kind``
        labels the migration counter (``"cross_array"`` for pressure /
        drain sweeps, ``"alert"`` when an SLO burn-rate alert triggered
        the move).
        """
        placed = self._placement.get(key)
        if placed is None:
            return False
        source = self.nodes[placed[0]]
        local = placed[1]
        target = self._migration_target(exclude=source)
        if target is None:
            return False
        source.controller.flush()
        if source.array.is_dead(local):
            return False
        data = source.array.read(local)
        new_local = target.allocate_local()
        target.owners[new_local] = key
        with self.telemetry.tracer.span(
            "cluster_migration",
            tenant=key[0],
            source=source.name,
            target=target.name,
        ):
            target.controller.write(new_local, data)
        self._placement[key] = (target.index, new_local)
        source.free_local(local)
        self.telemetry.count("cluster_migrations")
        self.telemetry.metrics.inc(
            "migrations_total",
            scheme=source.array.scheme_name,
            kind=kind,
        )
        self.telemetry.emit(
            "cluster_migrate",
            op=source.array.op_clock,
            tenant=key[0],
            address=key[1],
            source=source.name,
            target=target.name,
            kind=kind,
        )
        return True

    def _migration_target(self, *, exclude: ClusterNode) -> ClusterNode | None:
        """The non-draining array with the most spare blocks left (ties by
        index — deterministic), or ``None`` when nowhere can take a key."""
        best = None
        for node in self.nodes:
            if node is exclude or node.draining or not node.has_capacity:
                continue
            if best is None or node.array.pool.remaining > best.array.pool.remaining:
                best = node
        return best

    def drain_array(self, index: int) -> int:
        """Take ``array{index}`` out of rotation and move its keys off.

        Marks the array draining (no new placements), removes it from the
        ring (future placements of its arc land where its keys migrate
        to), force-degrades every mapped block — the transition shows up
        in ``health_transitions_total{to="degraded", reason="drained"}`` —
        then migrates every resident key.  Keys that cannot move yet (no
        capacity elsewhere) are retried by :meth:`maintenance`.  Returns
        the number of keys migrated now.
        """
        if not 0 <= index < len(self.nodes):
            raise ConfigurationError(f"no array at index {index}")
        node = self.nodes[index]
        if node.draining:
            return 0
        node.draining = True
        self.ring.remove_node(node.name)
        node.controller.flush()
        array = node.array
        for local in sorted(node.owners):
            physical = array.physical_of(local)
            if physical is not None:
                array.health.degrade(physical, op=array.op_clock, reason="drained")
        self.telemetry.count("arrays_draining")
        self.telemetry.emit("array_draining", op=array.op_clock, array=node.name)
        moved = 0
        for key in [node.owners[local] for local in sorted(node.owners)]:
            if self.migrate_key(key):
                moved += 1
        return moved

    # -- snapshots ----------------------------------------------------------

    def tenant_summary(self) -> dict[str, dict[str, object]]:
        """Per-tenant SLO roll-up (sorted by tenant id, deterministic)."""
        metrics = self.telemetry.metrics
        summary: dict[str, dict[str, object]] = {}
        for tenant_id in sorted(self._tenants):
            spec = self._tenants[tenant_id]
            labels = {"qos": spec.qos.value, "tenant": tenant_id}
            histogram = metrics.histograms.get(
                ("tenant_stage_cost", (("tenant", tenant_id),))
            )
            keys = [key for key in self._placement if key[0] == tenant_id]
            dead = sum(1 for key in keys if self.is_dead(*key))
            summary[tenant_id] = {
                "qos": spec.qos.value,
                "writes": metrics.counter_value("tenant_writes_total", **labels),
                "reads": metrics.counter_value("tenant_reads_total", **labels),
                "backpressure": metrics.counter_value(
                    "tenant_backpressure_total", **labels
                ),
                "keys": len(keys),
                "dead_keys": dead,
                "stage_cost_ops": histogram.total if histogram else 0,
                "stage_cost_p50": histogram.quantile_label(0.5)
                if histogram
                else "0",
                "stage_cost_p99": histogram.quantile_label(0.99)
                if histogram
                else "0",
            }
        return summary

    def array_summary(self) -> list[dict[str, object]]:
        """Per-array capacity/health roll-up, in array order."""
        return [
            {
                "array": node.name,
                "draining": node.draining,
                "resident_keys": len(node.owners),
                "buffer_occupancy": node.occupancy,
                **node.array.capacity_summary(),
            }
            for node in self.nodes
        ]

    def slo_summary(self) -> dict | None:
        """The SLO engine's full evaluation (budgets, burn series,
        alerts) over the retained buckets, or ``None`` when time series
        are disabled.  Deterministic — safe to fold into digests."""
        if self.slo_engine is None:
            return None
        return self.slo_engine.evaluate()

    def write_slo_jsonl(self, path: str) -> int:
        """Export the time series + SLO verdicts + alerts as one JSONL
        artifact (the ``repro slo-report`` input); returns the line count."""
        if self.slo_engine is None:
            raise ConfigurationError(
                "time series were not recorded (pass series_bucket >= 1)"
            )
        from repro.obs.slo import write_slo_jsonl

        return write_slo_jsonl(
            path, self.slo_engine.recorder, self.slo_engine.specs
        )

    def snapshot(self) -> dict:
        """The deterministic cluster state summary: per-tenant and
        per-array sections, the placement fingerprint, the SLO verdicts
        (when time series are on — the series themselves ride the
        telemetry snapshot's ``timeseries`` block), and the shared
        telemetry snapshot — bit-identical across worker counts."""
        snapshot = {
            "tenants": self.tenant_summary(),
            "arrays": self.array_summary(),
            "placement_digest": self.placement_digest(),
            "clock": self.clock,
            **self.telemetry.snapshot(),
        }
        slo = self.slo_summary()
        if slo is not None:
            snapshot["slo"] = slo
        return snapshot
