"""A deterministic consistent-hash ring for cluster routing.

The cluster front-end places tenant keys on :class:`~repro.service.MemoryArray`
nodes with classic consistent hashing: every node projects ``replicas``
virtual points onto a 64-bit ring, and a key routes to the first node
point clockwise of the key's own hash.  The properties the cluster (and
``tests/test_cluster_ring.py``) relies on:

* **Deterministic across processes.**  Points come from BLAKE2b over the
  node/key strings — no ``hash()``, no ``PYTHONHASHSEED`` sensitivity —
  so placement computed in a worker process equals placement computed in
  the parent, byte for byte.
* **Minimal movement.**  Adding or retiring a node only moves the keys
  whose ring arcs that node's points own (~``1/n`` of the space); every
  other key keeps its node.  This is what makes live migration tractable:
  retiring a degraded array re-routes only its own residents.
* **No retired placements.**  ``node_for`` can only return currently
  registered nodes, and ``preference`` walks the ring so callers that
  need capacity fallback visit every live node exactly once, in a
  deterministic key-specific order.
"""

from __future__ import annotations

import bisect
import hashlib
from collections.abc import Iterable, Iterator

from repro.errors import ConfigurationError

#: virtual points per node — enough that 3-16 node rings balance within
#: a few percent while keeping the ring small and cheap to rebuild
DEFAULT_REPLICAS = 64


def stable_hash64(text: str) -> int:
    """A process-stable 64-bit hash of ``text`` (BLAKE2b, not ``hash()``)."""
    return int.from_bytes(
        hashlib.blake2b(text.encode("utf-8"), digest_size=8).digest(), "big"
    )


class HashRing:
    """Consistent-hash ring over named nodes.

    Parameters
    ----------
    nodes:
        Initial node names (order-insensitive: the ring layout depends
        only on the set of names).
    replicas:
        Virtual points per node.
    """

    def __init__(
        self, nodes: Iterable[str] = (), *, replicas: int = DEFAULT_REPLICAS
    ) -> None:
        if replicas < 1:
            raise ConfigurationError("a hash ring needs at least one replica point")
        self.replicas = replicas
        self._nodes: set[str] = set()
        self._points: list[int] = []
        self._owners: list[str] = []
        for node in nodes:
            self.add_node(node)

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, node: str) -> bool:
        return node in self._nodes

    @property
    def nodes(self) -> tuple[str, ...]:
        """Registered node names, sorted (deterministic)."""
        return tuple(sorted(self._nodes))

    def _rebuild(self) -> None:
        pairs = sorted(
            (stable_hash64(f"{node}#{replica}"), node)
            for node in self._nodes
            for replica in range(self.replicas)
        )
        self._points = [point for point, _ in pairs]
        self._owners = [owner for _, owner in pairs]

    def add_node(self, node: str) -> None:
        """Register ``node``; idempotent."""
        if not node:
            raise ConfigurationError("ring node names cannot be empty")
        if node in self._nodes:
            return
        self._nodes.add(node)
        self._rebuild()

    def remove_node(self, node: str) -> None:
        """Retire ``node`` from the ring; idempotent.  Keys it owned move
        to their next clockwise neighbour; every other key stays put."""
        if node not in self._nodes:
            return
        self._nodes.remove(node)
        self._rebuild()

    def node_for(self, key: str) -> str:
        """The node owning ``key`` (first point clockwise of the key)."""
        if not self._nodes:
            raise ConfigurationError("cannot route on an empty ring")
        index = bisect.bisect_right(self._points, stable_hash64(key))
        if index == len(self._points):
            index = 0
        return self._owners[index]

    def preference(self, key: str) -> Iterator[str]:
        """Every live node exactly once, in ``key``'s clockwise ring order.

        The first yielded node is :meth:`node_for`; callers that need
        capacity fallback (a full primary) take the next distinct node,
        which is also where consistent hashing would place the key if the
        primary retired — so fallback placement equals post-retirement
        placement.
        """
        if not self._nodes:
            return
        start = bisect.bisect_right(self._points, stable_hash64(key))
        seen: set[str] = set()
        count = len(self._points)
        for step in range(count):
            owner = self._owners[(start + step) % count]
            if owner not in seen:
                seen.add(owner)
                yield owner
