"""Closed-form soft-FTC estimates, cross-checked against the Monte Carlo.

The paper distinguishes *hard* FTC (guaranteed) from *soft* FTC (what a
block tolerates in practice, Figure 8).  The Monte Carlo measures the soft
side; this module derives the same quantities analytically where the
combinatorics permit, giving the test suite an independent oracle:

* **Aegis** — a block with ``f`` faults survives iff its ``C(f,2)`` fault
  pairs have not poisoned all ``B`` slopes.  For faults at uniformly random
  positions, each *inter-column* pair poisons a uniformly random slope
  (independence across pairs is an approximation — pairs sharing a fault
  are weakly dependent), so the poisoned-slope count follows a
  coupon-collector occupancy law and the failure probability is a classic
  surjection bound.
* **SAFER-N** (full vector) — once the partition vector is full, the block
  holds at most one fault per group; the birthday bound over ``N`` groups
  estimates the soft FTC.
* **ECP** — soft equals hard: ``p`` faults exactly.
"""

from __future__ import annotations

import math
from functools import lru_cache

from repro.errors import ConfigurationError


def birthday_collision_probability(items: int, bins: int) -> float:
    """P(some bin holds >= 2 of ``items`` uniform balls).

    >>> round(birthday_collision_probability(23, 365), 3)
    0.507
    """
    if bins <= 0:
        raise ConfigurationError("bins must be positive")
    if items > bins:
        return 1.0
    log_no_collision = sum(
        math.log1p(-k / bins) for k in range(1, items)
    )
    return 1.0 - math.exp(log_no_collision)


@lru_cache(maxsize=None)
def _occupancy_full_probability(throws: int, bins: int) -> float:
    """P(all ``bins`` occupied after ``throws`` uniform throws) by
    inclusion-exclusion (exact, numerically careful for small bins)."""
    if throws < bins:
        return 0.0
    total = 0.0
    for j in range(bins + 1):
        sign = -1.0 if j % 2 else 1.0
        total += sign * math.comb(bins, j) * (1.0 - j / bins) ** throws
    return min(max(total, 0.0), 1.0)


def aegis_failure_probability(fault_count: int, b_size: int, a_size: int) -> float:
    """Approximate P(an ``A x B`` Aegis block has failed | ``fault_count``
    faults at uniform positions) — the analytic twin of a Figure 8 point.

    Model: of the ``C(f,2)`` pairs, a pair is *inter-column* (and poisons
    exactly one uniform slope) with probability ``1 - 1/A`` (two uniform
    positions share a column w.p. ~1/A); intra-column pairs poison nothing.
    Failure requires the poisoned slopes to cover all ``B`` values.
    """
    if fault_count < 2:
        return 0.0
    pairs = fault_count * (fault_count - 1) // 2
    effective = pairs * (1.0 - 1.0 / a_size)
    return _occupancy_full_probability(round(effective), b_size)


def aegis_expected_soft_ftc(b_size: int, a_size: int, max_faults: int = 200) -> float:
    """Expected faults at block death for ``A x B`` Aegis under uniform
    fault arrival: ``sum_f P(alive with f faults)`` (+1 for the fatal one)."""
    expected = 1.0
    for f in range(1, max_faults):
        survive = 1.0 - aegis_failure_probability(f, b_size, a_size)
        expected += survive
        if survive < 1e-9:
            break
    return expected


def safer_birthday_soft_ftc(group_count: int) -> float:
    """Median-style soft-FTC estimate for SAFER-N with a full vector: the
    fault count at which a same-group (birthday) collision reaches 50%.

    This deliberately models the *post-saturation* regime — the paper's
    point that SAFER's group count must grow exponentially to keep pace.
    """
    f = 1
    while birthday_collision_probability(f, group_count) < 0.5:
        f += 1
    return float(f)


def ecp_soft_ftc(pointers: int) -> int:
    """ECP's soft FTC equals its hard FTC: the pointer budget."""
    return pointers
