"""Write-service latency model.

The paper argues latency qualitatively — the double-write option is
rejected because "its latency [is] too high", and the fail cache's
viability depends on "relative times of reading from the cache and writing
into the PCM" (§2.4).  This module prices a serviced write from its
:class:`~repro.schemes.base.WriteReceipt` under a simple device timing
model, so those arguments become numbers:

* every write *pass* costs one program pulse plus its verification read
  (the receipt's ``verification_reads`` counts the passes);
* every re-partition trial costs a combinational lookup (the Figure 3
  ROM);
* cache-assisted schemes pay one SRAM lookup before the first pass.

Default timings follow common PCM literature values (array read ~120 ns,
program ~150 ns, SRAM ~5 ns); all are parameters.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass

from repro.analysis.writecost import write_cost_study
from repro.errors import ConfigurationError
from repro.pcm.cell import CellArray
from repro.schemes.base import RecoveryScheme, WriteReceipt


@dataclass(frozen=True)
class LatencyModel:
    """Operation timings in nanoseconds."""

    array_read_ns: float = 120.0
    program_ns: float = 150.0
    cache_lookup_ns: float = 5.0
    logic_ns: float = 1.0

    def __post_init__(self) -> None:
        for name in ("array_read_ns", "program_ns", "cache_lookup_ns", "logic_ns"):
            if getattr(self, name) < 0:
                raise ConfigurationError(f"{name} must be non-negative")

    def write_latency_ns(
        self, receipt: WriteReceipt, *, cache_assisted: bool = False
    ) -> float:
        """Service latency of one write given its receipt."""
        passes = max(receipt.verification_reads, 1)
        latency = passes * (self.program_ns + self.array_read_ns)
        latency += receipt.repartitions * self.logic_ns
        if cache_assisted:
            latency += self.cache_lookup_ns
        return latency


@dataclass(frozen=True)
class LatencySummary:
    """Average service latency of a scheme at a fixed fault count."""

    label: str
    fault_count: int
    mean_latency_ns: float
    passes_per_write: float

    @property
    def slowdown_vs_single_pass(self) -> float:
        """Latency relative to a clean single-pass write."""
        single = LatencyModel()
        baseline = single.program_ns + single.array_read_ns
        return self.mean_latency_ns / baseline


def latency_study(
    label: str,
    scheme_factory: Callable[[CellArray], RecoveryScheme],
    *,
    fault_count: int = 8,
    cache_assisted: bool = False,
    model: LatencyModel | None = None,
    n_bits: int = 512,
    writes: int = 40,
    trials: int = 8,
    seed: int = 0,
) -> LatencySummary:
    """Average write latency of a scheme at a given resident fault count."""
    timing = model if model is not None else LatencyModel()
    costs = write_cost_study(
        label,
        scheme_factory,
        n_bits=n_bits,
        fault_count=fault_count,
        writes=writes,
        trials=trials,
        seed=seed,
    )
    # verification_reads is a per-write average, so fractional passes are
    # priced directly for a faithful mean latency
    passes = max(costs.verification_reads, 1.0)
    latency = passes * (timing.program_ns + timing.array_read_ns)
    latency += costs.repartitions * timing.logic_ns
    if cache_assisted:
        latency += timing.cache_lookup_ns
    return LatencySummary(
        label=label,
        fault_count=fault_count,
        mean_latency_ns=latency,
        passes_per_write=passes,
    )
