"""Analytic companions to the Monte Carlo evaluation."""

from repro.analysis.frontier import FrontierAnalysis, SchemePoint, pareto_frontier
from repro.analysis.latency import LatencyModel, LatencySummary, latency_study
from repro.analysis.softftc import (
    aegis_expected_soft_ftc,
    aegis_failure_probability,
    birthday_collision_probability,
    ecp_soft_ftc,
    safer_birthday_soft_ftc,
)
from repro.analysis.writecost import WriteCostSummary, write_cost_study

__all__ = [
    "FrontierAnalysis",
    "LatencyModel",
    "LatencySummary",
    "SchemePoint",
    "WriteCostSummary",
    "pareto_frontier",
    "aegis_expected_soft_ftc",
    "aegis_failure_probability",
    "birthday_collision_probability",
    "ecp_soft_ftc",
    "latency_study",
    "safer_birthday_soft_ftc",
    "write_cost_study",
]
