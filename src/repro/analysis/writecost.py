"""Write-overhead accounting: the latency/wear side of each scheme.

The paper argues two service-cost points qualitatively: basic Aegis
"generates intensive inversion writes" as faults accumulate, while the
cache-assisted variants complete every request in a single pass.  This
module measures those costs directly on the bit-accurate controllers —
cell programming operations, verification reads, inversion re-writes, and
re-partition trials per serviced write, as a function of the block's fault
count — giving the reproduction a quantitative version of the paper's
§2.4/§3.3 service-cost narrative.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass

import numpy as np

from repro.errors import UncorrectableError
from repro.pcm.cell import CellArray
from repro.schemes.base import RecoveryScheme


@dataclass(frozen=True)
class WriteCostSummary:
    """Average per-write service costs at a fixed fault count."""

    label: str
    fault_count: int
    writes_measured: int
    cell_writes: float
    verification_reads: float
    inversion_writes: float
    repartitions: float

    @property
    def wear_per_write(self) -> float:
        """Cell programming ops per serviced write (the wear rate the
        inversion-wear model in the simulator approximates)."""
        return self.cell_writes


def write_cost_study(
    label: str,
    scheme_factory: Callable[[CellArray], RecoveryScheme],
    *,
    n_bits: int = 512,
    fault_count: int = 8,
    writes: int = 50,
    trials: int = 10,
    seed: int = 0,
) -> WriteCostSummary:
    """Measure average service costs of a scheme at a given fault count.

    Each trial places ``fault_count`` faults uniformly, then services
    ``writes`` random writes, accumulating the controllers' receipts.
    Trials whose fault placement exceeds the scheme's soft capability are
    skipped (they would retire the block, not service writes).
    """
    totals = np.zeros(4, dtype=np.float64)  # cells, verifies, inversions, reparts
    measured = 0
    for trial in range(trials):
        rng = np.random.default_rng((seed, trial))
        cells = CellArray(n_bits)
        for offset in rng.choice(n_bits, size=fault_count, replace=False):
            cells.inject_fault(int(offset), stuck_value=int(rng.integers(0, 2)))
        scheme = scheme_factory(cells)
        try:
            for _ in range(writes):
                receipt = scheme.write(rng.integers(0, 2, n_bits, dtype=np.uint8))
                totals += (
                    receipt.cell_writes,
                    receipt.verification_reads,
                    receipt.inversion_writes,
                    receipt.repartitions,
                )
                measured += 1
        except UncorrectableError:
            continue  # fault placement beyond soft capability: skip trial
    if measured == 0:
        raise UncorrectableError(
            f"{label}: no fault placement of size {fault_count} was serviceable"
        )
    return WriteCostSummary(
        label=label,
        fault_count=fault_count,
        writes_measured=measured,
        cell_writes=float(totals[0] / measured),
        verification_reads=float(totals[1] / measured),
        inversion_writes=float(totals[2] / measured),
        repartitions=float(totals[3] / measured),
    )
