"""Pareto-frontier analysis of the overhead/capability trade (§3.2's
cost-effectiveness argument, distilled).

The paper's comparisons repeatedly take the form "scheme X tolerates more
faults with fewer bits than scheme Y" — i.e. Pareto dominance in the
(overhead, capability) plane.  This module computes the frontier of a set
of measured schemes, identifies which schemes each point dominates, and
ranks the dominated by their distance from the frontier.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class SchemePoint:
    """One scheme's position in the overhead/capability plane."""

    label: str
    overhead_bits: float
    capability: float  # e.g. faults/page (higher is better)

    def dominates(self, other: "SchemePoint") -> bool:
        """Weak Pareto dominance: no worse on both axes, better on one."""
        no_worse = (
            self.overhead_bits <= other.overhead_bits
            and self.capability >= other.capability
        )
        better = (
            self.overhead_bits < other.overhead_bits
            or self.capability > other.capability
        )
        return no_worse and better


@dataclass(frozen=True)
class FrontierAnalysis:
    """The Pareto frontier and per-scheme dominance relations."""

    frontier: tuple[SchemePoint, ...]  # sorted by overhead
    dominated: tuple[tuple[SchemePoint, tuple[str, ...]], ...]

    def is_on_frontier(self, label: str) -> bool:
        return any(point.label == label for point in self.frontier)

    def dominators_of(self, label: str) -> tuple[str, ...]:
        for point, dominators in self.dominated:
            if point.label == label:
                return dominators
        return ()


def pareto_frontier(points: list[SchemePoint]) -> FrontierAnalysis:
    """Partition schemes into the efficient frontier and the dominated set.

    >>> a = SchemePoint("a", 10, 100.0)
    >>> b = SchemePoint("b", 20, 90.0)
    >>> pareto_frontier([a, b]).is_on_frontier("b")
    False
    """
    if not points:
        raise ValueError("frontier analysis needs at least one scheme")
    frontier = []
    dominated = []
    for point in points:
        dominators = tuple(
            other.label for other in points if other.dominates(point)
        )
        if dominators:
            dominated.append((point, dominators))
        else:
            frontier.append(point)
    frontier.sort(key=lambda p: (p.overhead_bits, -p.capability))
    dominated.sort(key=lambda pair: pair[0].overhead_bits)
    return FrontierAnalysis(frontier=tuple(frontier), dominated=tuple(dominated))
