"""Gate-level models of the paper's lookup hardware (Figures 3 and 4)."""

from repro.hardware.area import AreaBudget, TechnologyModel, area_budget, lookup_energy_pj
from repro.hardware.cost import ChipCost, chip_cost, fail_cache_bits
from repro.hardware.rom import CollisionSlopeRom, GroupIdRom, InversionMaskRom

__all__ = [
    "AreaBudget",
    "ChipCost",
    "CollisionSlopeRom",
    "GroupIdRom",
    "InversionMaskRom",
    "TechnologyModel",
    "area_budget",
    "chip_cost",
    "fail_cache_bits",
    "lookup_energy_pj",
]
