"""Hardware cost accounting beyond the per-block Table 1 bits.

Separates the two kinds of cost the paper discusses:

* **per-block** metadata (slope counter, inversion vector / pointers) —
  Table 1, already covered by :mod:`repro.core.formations`;
* **chip-shared** structures (the Figure 3/4 ROMs, the Aegis-rw collision
  ROM, SAFER's fail cache) whose cost amortises over every block and is
  therefore excluded from Table 1 — but matters when comparing variants,
  which is why the paper concludes plain Aegis "is likely more efficient"
  once the fail cache is priced in.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.formations import Formation
from repro.util.bitops import ceil_log2


@dataclass(frozen=True)
class ChipCost:
    """Chip-shared hardware for one Aegis formation."""

    formation_name: str
    group_rom_bits: int
    id_rom_bits: int
    and_gates: int
    collision_rom_bits: int

    @property
    def base_total_bits(self) -> int:
        """ROM bits for basic Aegis (Figures 3 and 4 share the membership ROM)."""
        return self.group_rom_bits + self.id_rom_bits

    @property
    def rw_total_bits(self) -> int:
        """ROM bits for Aegis-rw (adds the collision ROM)."""
        return self.base_total_bits + self.collision_rom_bits


def chip_cost(form: Formation) -> ChipCost:
    """Chip-shared structure sizes for a formation (cf. the paper's 49x32
    and 49x7 ROMs for the 5x7 example)."""
    b = form.b_size
    n = form.n_bits
    return ChipCost(
        formation_name=form.name,
        group_rom_bits=b * b * n,
        id_rom_bits=b * b * b,
        and_gates=b * b,
        collision_rom_bits=n * n * ceil_log2(b),
    )


def fail_cache_bits(entries: int, n_bits: int = 512, address_bits: int = 32) -> int:
    """SRAM bits for a fail cache of ``entries`` lines: block address,
    in-block offset, stuck value, valid bit."""
    line = address_bits + ceil_log2(n_bits) + 1 + 1
    return entries * line
