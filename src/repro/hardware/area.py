"""Area and energy estimates for the recovery hardware.

§2.3's cost comparison counts metadata *bits*; this module extends it to
first-order silicon estimates so the chip-shared structures (ROMs, the
fail cache) can be compared against the per-block metadata they amortise.
The technology parameters are deliberately simple — one area and one
access-energy number per structure class, defaulting to round 45 nm-class
figures — and every number is a parameter, because the point is relative
comparison, not sign-off.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.formations import Formation
from repro.errors import ConfigurationError
from repro.hardware.cost import chip_cost, fail_cache_bits


@dataclass(frozen=True)
class TechnologyModel:
    """First-order per-bit area/energy figures."""

    rom_bit_um2: float = 0.05       # mask ROM bit
    sram_bit_um2: float = 0.35      # 6T SRAM bit (fail cache)
    pcm_bit_um2: float = 0.10       # PCM metadata bit (per-block state)
    gate_um2: float = 0.8           # one 2-input gate
    rom_read_pj_per_bit: float = 0.01
    sram_read_pj_per_bit: float = 0.05

    def __post_init__(self) -> None:
        for name in (
            "rom_bit_um2",
            "sram_bit_um2",
            "pcm_bit_um2",
            "gate_um2",
            "rom_read_pj_per_bit",
            "sram_read_pj_per_bit",
        ):
            if getattr(self, name) <= 0:
                raise ConfigurationError(f"{name} must be positive")


@dataclass(frozen=True)
class AreaBudget:
    """Silicon budget of one Aegis deployment on a chip."""

    formation_name: str
    per_block_metadata_um2: float
    shared_rom_um2: float
    shared_gates_um2: float
    fail_cache_um2: float

    def total_um2(self, n_blocks: int, *, with_cache: bool = False) -> float:
        """Whole-chip recovery area for ``n_blocks`` protected blocks."""
        total = n_blocks * self.per_block_metadata_um2
        total += self.shared_rom_um2 + self.shared_gates_um2
        if with_cache:
            total += self.fail_cache_um2
        return total

    def amortised_per_block_um2(self, n_blocks: int, *, with_cache: bool = False) -> float:
        return self.total_um2(n_blocks, with_cache=with_cache) / n_blocks


def area_budget(
    form: Formation,
    *,
    tech: TechnologyModel | None = None,
    variant: str = "aegis",
    cache_entries: int = 4096,
) -> AreaBudget:
    """Silicon budget of a formation under a technology model.

    ``variant`` selects the metadata/ROM set: ``"aegis"`` (vector + the
    Figure 3/4 ROMs) or ``"aegis-rw"`` (adds the §2.4 collision ROM; the
    fail cache is sized separately via ``cache_entries``).
    """
    model = tech if tech is not None else TechnologyModel()
    if variant not in ("aegis", "aegis-rw"):
        raise ConfigurationError(f"unknown variant {variant!r}")
    cost = chip_cost(form)
    rom_bits = cost.base_total_bits
    if variant == "aegis-rw":
        rom_bits += cost.collision_rom_bits
    return AreaBudget(
        formation_name=form.name,
        per_block_metadata_um2=form.aegis_overhead_bits * model.pcm_bit_um2,
        shared_rom_um2=rom_bits * model.rom_bit_um2,
        shared_gates_um2=cost.and_gates * model.gate_um2,
        fail_cache_um2=fail_cache_bits(cache_entries, form.n_bits) * model.sram_bit_um2,
    )


def lookup_energy_pj(
    form: Formation,
    *,
    tech: TechnologyModel | None = None,
    cache_assisted: bool = False,
    cache_entries: int = 4096,
) -> float:
    """Energy of one group-ID lookup (plus a fail-cache probe when
    cache-assisted): the per-write controller overhead."""
    model = tech if tech is not None else TechnologyModel()
    del cache_entries  # a direct-mapped probe reads one line regardless
    # one membership column (B rows) plus one ID row of the Figure 3 ROMs
    rom_bits_read = form.b_size + form.b_size
    energy = rom_bits_read * model.rom_read_pj_per_bit
    if cache_assisted:
        energy += fail_cache_bits(1, form.n_bits) * model.sram_read_pj_per_bit
    return energy
