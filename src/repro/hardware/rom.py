"""Gate-level models of the paper's Figure 3 and Figure 4 lookup logic.

The Aegis controller needs two combinational functions, both implemented in
the paper with small ROMs shared by all blocks of a chip:

* **Figure 3** — *which group does a fault belong to?*  A ``B*B x n`` ROM
  holds, for every (slope, group) combination, the one-hot membership word
  of that group; a second ``B*B x B`` ROM maps each combination row to its
  group ID.  Looking up a fault address selects the membership column; the
  row that fires under the current slope yields the group ID.
* **Figure 4** — *which bits must be written inverted?*  An AND-gate array
  combines the decoded slope with the inversion vector to select
  combination rows; OR-ing the selected membership words produces the
  inversion mask for the whole block.

These classes emulate the ROMs bit-for-bit and are cross-validated against
the arithmetic partition tables in ``tests/test_hardware.py`` — the
hardware and the math must agree everywhere.
"""

from __future__ import annotations

import numpy as np

from repro.core.geometry import Rectangle
from repro.core.partition import partition_for
from repro.util.bitops import ceil_log2


class GroupIdRom:
    """The Figure 3 structure: fault address + slope -> group ID."""

    def __init__(self, rect: Rectangle) -> None:
        self.rect = rect
        b = rect.b_size
        partition = partition_for(rect)
        # membership[slope * B + group, bit] = 1 when the bit is in the group
        self.membership = np.zeros((b * b, rect.n_bits), dtype=np.uint8)
        # group_id[combination] = the combination's group
        self.group_ids = np.zeros(b * b, dtype=np.int16)
        for slope in range(b):
            ids = partition.group_ids(slope)
            for group in range(b):
                row = slope * b + group
                self.membership[row] = (ids == group).astype(np.uint8)
                self.group_ids[row] = group

    @property
    def membership_bits(self) -> int:
        """Size of the left ROM (the paper's 49 x 32 for a 32-bit block)."""
        return self.membership.size

    @property
    def id_bits(self) -> int:
        """Size of the right ROM (the paper's 49 x 7)."""
        return self.group_ids.size * self.rect.b_size

    def lookup(self, address: int, slope: int) -> int:
        """Group ID of the bit at ``address`` under ``slope`` (the Figure 3
        datapath: select the address column, find the firing row among the
        current slope's combinations, read its ID)."""
        if not 0 <= address < self.rect.n_bits:
            raise ValueError(f"address {address} outside block")
        if not 0 <= slope < self.rect.b_size:
            raise ValueError(f"slope {slope} outside [0, {self.rect.b_size})")
        b = self.rect.b_size
        column = self.membership[slope * b : (slope + 1) * b, address]
        fired = np.flatnonzero(column)
        if fired.size != 1:
            raise AssertionError(
                "exactly one group row must fire (Theorem 1)"
            )  # pragma: no cover - guaranteed by construction
        return int(self.group_ids[slope * b + fired[0]])


class InversionMaskRom:
    """The Figure 4 structure: slope + inversion vector -> inversion mask."""

    def __init__(self, rect: Rectangle) -> None:
        self.rect = rect
        self._group_rom = GroupIdRom(rect)

    @property
    def and_gate_count(self) -> int:
        """One AND gate per (slope, group) combination."""
        return self.rect.b_size**2

    def mask_for(self, slope: int, inversion_vector: np.ndarray) -> np.ndarray:
        """0/1 mask of bits to invert, given the decoded slope and the
        per-group inversion flags."""
        inversion_vector = np.asarray(inversion_vector, dtype=np.uint8)
        if inversion_vector.shape != (self.rect.b_size,):
            raise ValueError(
                f"inversion vector must have {self.rect.b_size} bits"
            )
        b = self.rect.b_size
        # the AND array: combination row (slope*B + group) fires when the
        # slope matches and the group's inversion flag is set
        selected = np.zeros(b * b, dtype=bool)
        selected[slope * b : (slope + 1) * b] = inversion_vector.astype(bool)
        # the OR plane over selected membership words
        if not selected.any():
            return np.zeros(self.rect.n_bits, dtype=np.uint8)
        return np.bitwise_or.reduce(self._group_rom.membership[selected], axis=0)


class CollisionSlopeRom:
    """The §2.4 Aegis-rw ROM: two fault addresses -> their colliding slope.

    A thin hardware-accounting wrapper over
    :class:`~repro.core.collision.CollisionROM`.
    """

    def __init__(self, rect: Rectangle) -> None:
        from repro.core.collision import collision_rom_for

        self.rect = rect
        self._rom = collision_rom_for(rect)

    @property
    def storage_bits(self) -> int:
        """``n * n * ceil(log2 B)`` bits, chip-shared."""
        return self.rect.n_bits**2 * ceil_log2(self.rect.b_size)

    def lookup(self, address1: int, address2: int) -> int:
        """Colliding slope of two fault addresses (-1 when they never
        collide)."""
        return self._rom.slope_of(address1, address2)
