"""Memory blocks ("pages"): the allocation granularity (paper §3.1).

A page groups a number of protected data blocks — 64 x 512-bit or
128 x 256-bit blocks for the paper's 4 KB pages.  The page is the unit the
OS allocates and the unit whose failure the evaluation measures: "when any
of its data blocks has an unrecoverable fault, the memory block is
considered to be a failed one ... which concludes the lifetime of the
memory block."
"""

from __future__ import annotations

import numpy as np

from repro.errors import BlockRetiredError, UncorrectableError
from repro.pcm.block import ProtectedBlock, SchemeFactory
from repro.pcm.lifetime import LifetimeModel

#: bits in a 4 KB OS page
PAGE_BITS_4KB = 4096 * 8


class Page:
    """A memory block of ``n_blocks`` protected data blocks."""

    def __init__(
        self,
        block_bits: int,
        n_blocks: int,
        scheme_factory: SchemeFactory,
        *,
        lifetime_model: LifetimeModel | None = None,
        rng: np.random.Generator | None = None,
    ) -> None:
        self.rng = rng if rng is not None else np.random.default_rng()
        self.block_bits = block_bits
        self.blocks = [
            ProtectedBlock(
                block_bits,
                scheme_factory,
                lifetime_model=lifetime_model,
                rng=self.rng,
            )
            for _ in range(n_blocks)
        ]
        self.writes_serviced = 0
        self._failed = False

    @classmethod
    def page_4kb(
        cls,
        block_bits: int,
        scheme_factory: SchemeFactory,
        *,
        lifetime_model: LifetimeModel | None = None,
        rng: np.random.Generator | None = None,
    ) -> "Page":
        """A 4 KB page of ``block_bits``-bit data blocks."""
        if PAGE_BITS_4KB % block_bits:
            raise ValueError(f"4 KB page is not a multiple of {block_bits}-bit blocks")
        return cls(
            block_bits,
            PAGE_BITS_4KB // block_bits,
            scheme_factory,
            lifetime_model=lifetime_model,
            rng=rng,
        )

    @property
    def n_bits(self) -> int:
        return self.block_bits * len(self.blocks)

    @property
    def failed(self) -> bool:
        return self._failed

    @property
    def fault_count(self) -> int:
        """Total stuck cells across the page."""
        return sum(block.fault_count for block in self.blocks)

    def write(self, data: np.ndarray) -> None:
        """Service a full-page write (one write per data block).

        The first block failure marks the whole page failed; the page raises
        :class:`UncorrectableError` and accepts no further traffic.
        """
        if self._failed:
            raise BlockRetiredError("page already failed")
        data = np.asarray(data, dtype=np.uint8)
        if data.shape != (self.n_bits,):
            raise ValueError(f"page write needs shape ({self.n_bits},), got {data.shape}")
        for i, block in enumerate(self.blocks):
            chunk = data[i * self.block_bits : (i + 1) * self.block_bits]
            try:
                block.write(chunk)
            except UncorrectableError:
                self._failed = True
                raise
        self.writes_serviced += 1

    def write_random(self) -> None:
        self.write(self.rng.integers(0, 2, size=self.n_bits, dtype=np.uint8))

    def read(self) -> np.ndarray:
        return np.concatenate([block.read() for block in self.blocks])

    def run_until_failure(self, max_writes: int | None = None) -> tuple[int, int]:
        """Random page writes until failure.

        Returns ``(writes serviced, faults recovered)`` where the fault
        count is the page's stuck cells just before the unrecoverable one —
        the paper's Figure 5 metric.
        """
        limit = max_writes if max_writes is not None else np.inf
        while self.writes_serviced < limit and not self._failed:
            try:
                self.write_random()
            except UncorrectableError:
                break
        recovered = max(0, self.fault_count - 1) if self._failed else self.fault_count
        return self.writes_serviced, recovered
