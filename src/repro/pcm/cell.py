"""Bit-accurate model of a row of PCM cells with stuck-at faults.

A :class:`CellArray` is the raw storage substrate every recovery scheme
drives.  Each cell stores one bit; a cell may be *stuck-at* 0 or 1, in which
case reads always return the stuck value and writes to it are silently
ineffective (paper §1: "its stuck-at value is still readable but cannot be
changed").

The array also does the wear bookkeeping the paper's evaluation relies on:

* every *actual* cell write (a write whose value differs from the stored
  value, after differential-write filtering) increments that cell's write
  counter, and
* the total write counter feeds the Monte Carlo lifetime model.

The array itself never decides *when* a cell fails — fault injection is
driven from outside (by tests or by the lifetime model in
:mod:`repro.pcm.lifetime`) through :meth:`CellArray.inject_fault`.

*How* a cell fails is delegated to a pluggable
:class:`~repro.pcm.faults.FaultModel`: the default
:class:`~repro.pcm.faults.HardStuckAt` keeps the paper's semantics
byte-identical, while richer models (partially stuck, drift bursts) can
mark injected faults as *partial* — still readable, maskable at low cost.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.pcm.faults import FaultModel, fault_model_for


class CellArray:
    """A fixed-width row of PCM cells supporting stuck-at faults.

    Parameters
    ----------
    n_bits:
        Number of cells.
    differential_writes:
        When ``True`` (the default, matching the paper's setup §3.1), a
        write only programs cells whose stored value differs from the new
        value, and only those cells accrue wear.
    fault_model:
        A :class:`~repro.pcm.faults.FaultModel` (or its registry name)
        governing injection and verification semantics.  Defaults to the
        paper's hard stuck-at model.
    """

    def __init__(
        self,
        n_bits: int,
        *,
        differential_writes: bool = True,
        fault_model: "FaultModel | str | None" = None,
    ) -> None:
        if n_bits <= 0:
            raise ConfigurationError("a cell array needs a positive number of cells")
        self.n_bits = n_bits
        self.differential_writes = differential_writes
        self.fault_model = fault_model_for(fault_model)
        self._stored = np.zeros(n_bits, dtype=np.uint8)
        self._stuck = np.zeros(n_bits, dtype=bool)
        self._stuck_value = np.zeros(n_bits, dtype=np.uint8)
        self._partial = np.zeros(n_bits, dtype=bool)
        self._write_counts = np.zeros(n_bits, dtype=np.int64)

    # -- fault management ---------------------------------------------------

    def inject_fault(
        self,
        offset: int,
        stuck_value: int | None = None,
        *,
        partial: bool = False,
    ) -> None:
        """Make the cell at ``offset`` permanently stuck (delegated to the
        array's fault model).

        When ``stuck_value`` is ``None`` the cell freezes at its currently
        stored value — the physically faithful behaviour: a cell dies during
        a write and keeps the last value it held.  ``partial=True`` injects
        a partially-stuck fault, which only models with partial semantics
        accept.  Raises :class:`~repro.errors.FaultInjectionError` for an
        out-of-range offset, a non-bit stuck value, or an already-stuck
        cell.
        """
        self.fault_model.inject(self, offset, stuck_value, partial=partial)

    @property
    def fault_offsets(self) -> list[int]:
        """Offsets of stuck cells, sorted (oracle view, used by tests and
        by cache-assisted schemes via the fail cache)."""
        return [int(i) for i in np.flatnonzero(self._stuck)]

    @property
    def fault_count(self) -> int:
        return int(np.count_nonzero(self._stuck))

    @property
    def maskable_offsets(self) -> list[int]:
        """Stuck offsets the fault model lets a scheme mask at negligible
        cost (partially stuck cells); empty under the hard model."""
        return self.fault_model.maskable_offsets(self)

    def stuck_value_of(self, offset: int) -> int:
        """Stuck-at value of a faulty cell (oracle view)."""
        if not self._stuck[offset]:
            raise ValueError(f"cell {offset} is not stuck")
        return int(self._stuck_value[offset])

    # -- data path ------------------------------------------------------------

    def read(self) -> np.ndarray:
        """Raw read of all cells (stuck cells return their stuck value)."""
        return self._stored.copy()

    def write(self, data: np.ndarray, mask: np.ndarray | None = None) -> int:
        """Program cells with ``data`` (0/1 array of width ``n_bits``).

        ``mask`` optionally restricts the write to a subset of cells (1 =
        write).  Stuck cells silently retain their stuck value.  Returns the
        number of cells actually programmed (the wear incurred).
        """
        data = np.asarray(data, dtype=np.uint8)
        if data.shape != (self.n_bits,):
            raise ValueError(f"data must have shape ({self.n_bits},), got {data.shape}")
        target = np.ones(self.n_bits, dtype=bool) if mask is None else np.asarray(mask, dtype=bool)
        if target.shape != (self.n_bits,):
            raise ValueError(f"mask must have shape ({self.n_bits},)")
        if self.differential_writes:
            programmed = target & (self._stored != data)
        else:
            programmed = target
        healthy = programmed & ~self._stuck
        self._stored[healthy] = data[healthy]
        self._write_counts[programmed] += 1
        return int(np.count_nonzero(programmed))

    def verify(self, expected: np.ndarray) -> np.ndarray:
        """Verification read (paper §2.2): offsets where the stored value
        disagrees with ``expected``.  With current faults these are exactly
        the stuck-at-*wrong* cells for that data.  Mismatch semantics are
        delegated to the array's fault model."""
        expected = np.asarray(expected, dtype=np.uint8)
        if expected.shape != (self.n_bits,):
            raise ValueError(f"expected must have shape ({self.n_bits},)")
        return self.fault_model.mismatch_offsets(self, expected)

    # -- wear accounting -------------------------------------------------------

    @property
    def write_counts(self) -> np.ndarray:
        """Per-cell count of actual programming operations."""
        return self._write_counts.copy()

    @property
    def total_writes(self) -> int:
        return int(self._write_counts.sum())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"CellArray(n_bits={self.n_bits}, faults={self.fault_count})"
