"""Pluggable stuck-at fault models for the cell, sim and service layers.

Every layer of the reproduction historically hard-coded the paper's fault
model: a worn-out cell freezes *hard* at one value, fault arrivals are
independent, and nothing about a fault is cheap.  The partially-stuck
literature (Wachter-Zeh & Yaakobi, arXiv:1505.03281; Kim et al.,
arXiv:1911.02904) and multi-level drift studies motivate two richer
regimes, so the model is now a first-class object threaded through the
stack:

``HardStuckAt`` (key ``"hard"``)
    The paper's model and the default everywhere.  Byte-identical to the
    historical behaviour: it draws no extra randomness and transforms
    nothing, so every existing digest (BENCH files, campaign checkpoints,
    telemetry snapshots) is reproduced exactly.

``PartiallyStuck`` (key ``"partial"``)
    A fraction of fault arrivals are *partial*: the cell is stuck only
    above a resistance level, so it still reads as ``1`` and can still be
    programmed to the subset of values at-or-above the level.  Such cells
    are maskable at far lower cost than a hard fault (bias the encoding so
    the cell stores its stuck side); the model grants each block a
    ``mask_budget`` of free masks — the first ``mask_budget`` partial
    arrivals never reach the recovery scheme's checker.  At the service
    layer the same fraction of cells are *weak* (selected by a stable
    positional hash, so both drain engines classify identically): they
    wear out early, and the policy engine can treat their faults as
    maskable when scoring schemes.

``DriftBurst`` (key ``"drift"``)
    Time-correlated burst arrivals: cells live in aligned spans of
    ``burst_span`` neighbours, and with probability ``burst_probability``
    a span's deaths collapse onto its earliest member — the whole span
    fails together (a resistance-drift avalanche).  Implemented as a pure
    input transform on death times / arrival order, so the existing
    scalar and vector engines stay bit-identical automatically.

All model randomness is drawn *before* engine dispatch from the caller's
substream in a fixed order, which is what keeps ``--engine vector`` and
``--engine scalar`` (and every ``--workers`` count) bit-identical for the
new models; the vectorized transforms themselves live in
:mod:`repro.sim.kernels`.
"""

from __future__ import annotations

from abc import ABC

import numpy as np

from repro.errors import ConfigurationError, FaultInjectionError
from repro.pcm.lifetime import LifetimeModel

__all__ = [
    "FAULT_MODEL_CHOICES",
    "DriftBurst",
    "FaultModel",
    "HARD",
    "HardStuckAt",
    "PartiallyStuck",
    "fault_model_for",
]

#: the public fault-model switch values (CLI ``--fault-model`` choices)
FAULT_MODEL_CHOICES = ("hard", "partial", "drift")

#: multiplicative hash constant (Knuth) for the positional weak-cell hash
_HASH_MULT = 2654435761
_HASH_MOD = 1 << 32


def _weak_mask(n_cells: int, fraction: float, salt: int) -> np.ndarray:
    """Stable positional weak-cell selection: a pure function of the cell
    index, so scalar and vector service paths classify identically without
    storing any extra per-cell state."""
    if fraction <= 0:
        return np.zeros(n_cells, dtype=bool)
    idx = np.arange(n_cells, dtype=np.uint64)
    hashed = (idx * np.uint64(_HASH_MULT) + np.uint64(salt)) % np.uint64(_HASH_MOD)
    return (hashed.astype(np.float64) / _HASH_MOD) < fraction


class FaultModel(ABC):
    """How cells fail: injection semantics, arrival statistics, masking.

    The base class implements the paper's hard stuck-at semantics; the
    richer models override only the hooks where they differ.  Models are
    stateless (parameters only), picklable, and safe to share across
    arrays, shards and worker processes.
    """

    key: str = "abstract"

    # -- cell layer ---------------------------------------------------------

    def inject(
        self,
        cells,
        offset: int,
        stuck_value: int | None = None,
        *,
        partial: bool = False,
    ) -> None:
        """Make ``cells[offset]`` permanently stuck (the delegation target
        of :meth:`repro.pcm.cell.CellArray.inject_fault`)."""
        if not 0 <= offset < cells.n_bits:
            raise FaultInjectionError(
                f"offset {offset} outside array of {cells.n_bits} cells",
                offset=offset,
            )
        if cells._stuck[offset]:
            raise FaultInjectionError(
                f"cell {offset} is already stuck at "
                f"{int(cells._stuck_value[offset])}; a stuck cell never changes",
                offset=offset,
            )
        if partial:
            self._inject_partial(cells, offset, stuck_value)
            return
        value = int(cells._stored[offset]) if stuck_value is None else int(stuck_value)
        if value not in (0, 1):
            raise FaultInjectionError(
                f"stuck value must be 0 or 1, got {stuck_value!r}", offset=offset
            )
        cells._stuck[offset] = True
        cells._stuck_value[offset] = value
        cells._stored[offset] = value

    def _inject_partial(self, cells, offset: int, stuck_value: int | None) -> None:
        raise FaultInjectionError(
            f"the {self.key!r} fault model has no partial faults", offset=offset
        )

    def mismatch_offsets(self, cells, expected: np.ndarray) -> np.ndarray:
        """Verification-read mismatches (the delegation target of
        :meth:`repro.pcm.cell.CellArray.verify`): offsets whose stored
        value disagrees with ``expected``."""
        return np.flatnonzero(cells._stored != expected)

    def maskable_offsets(self, cells) -> list[int]:
        """Stuck offsets this model lets a scheme mask at negligible cost."""
        return []

    def is_maskable(self, offset: int) -> bool:
        """Positional maskability (service layer): whether a fault at this
        offset would be partial/maskable under this model.  A pure function
        of the offset so every drain engine agrees without shared state."""
        return False

    # -- sim layer: arrival-count domain (failure_curve) --------------------

    def transform_arrivals(
        self, positions: np.ndarray, rng: np.random.Generator
    ) -> tuple[np.ndarray, np.ndarray | None]:
        """Rewrite one trial's fault-arrival permutation.

        Returns ``(stream, arrival_numbers)``: ``stream`` is the cell
        order actually fed to the checker and ``arrival_numbers[j]`` the
        fault count to report when the ``j``-th stream arrival is fatal
        (``None`` means the identity ``1..n``).  Any model randomness is
        drawn from ``rng`` here, before engine dispatch, in a fixed order.
        """
        return positions, None

    # -- sim layer: time domain (page/block lifetime) -----------------------

    def transform_base_death(
        self, base_death: np.ndarray, n_bits: int, rng: np.random.Generator
    ) -> tuple[np.ndarray, np.ndarray | None]:
        """Rewrite a population's intrinsic cell death times.

        ``base_death`` is flat ``(blocks * n_bits,)`` in block-major
        order.  Returns ``(transformed, masked)`` where ``masked`` flags
        cells whose faults are masked for free (their arrivals never reach
        the checker; ``None`` = nothing masked).  The transform must not
        mutate its input — callers keep the original for baselines.
        """
        return base_death, None

    # -- service layer ------------------------------------------------------

    def shape_lifetime(self, model: LifetimeModel) -> LifetimeModel:
        """Wrap a lifetime model with this fault model's arrival shaping
        (used when a served array is built under this model)."""
        return model

    def describe(self) -> dict:
        return {"model": self.key}

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        params = ", ".join(
            f"{k}={v}" for k, v in self.describe().items() if k != "model"
        )
        return f"{type(self).__name__}({params})"


class HardStuckAt(FaultModel):
    """The paper's model: a dead cell freezes hard at one value.

    Deliberately identical to the historical behaviour — no extra RNG
    draws, no transforms — so the default path reproduces every existing
    digest byte for byte.
    """

    key = "hard"


class PartiallyStuck(FaultModel):
    """Cells stuck above a level: readable as ``1``, maskable cheaply.

    Parameters
    ----------
    partial_fraction:
        Probability a fault arrival (sim layer) — or a cell (service
        layer, via the positional hash) — is partial rather than hard.
    mask_budget:
        Free masks per block: the first ``mask_budget`` partial arrivals
        in a block never reach its checker.
    weak_scale:
        Service-layer endurance multiplier for weak (partial-prone)
        cells; weak cells wear out early, shifting the observed fault mix
        toward maskable faults.
    salt:
        Salt of the positional weak-cell hash.
    """

    key = "partial"

    def __init__(
        self,
        *,
        partial_fraction: float = 0.5,
        mask_budget: int = 4,
        weak_scale: float = 0.45,
        salt: int = 23,
    ) -> None:
        if not 0 <= partial_fraction <= 1:
            raise ConfigurationError("partial fraction must be in [0, 1]")
        if mask_budget < 0:
            raise ConfigurationError("mask budget cannot be negative")
        if not 0 < weak_scale <= 1:
            raise ConfigurationError("weak scale must be in (0, 1]")
        self.partial_fraction = float(partial_fraction)
        self.mask_budget = int(mask_budget)
        self.weak_scale = float(weak_scale)
        self.salt = int(salt)

    def _inject_partial(self, cells, offset: int, stuck_value: int | None) -> None:
        # stuck above the level: the cell reads as 1 and stays writable to
        # the values at-or-above it, so the frozen image is always 1
        if stuck_value not in (None, 1):
            raise FaultInjectionError(
                "a partially stuck cell freezes above its level and reads as 1",
                offset=offset,
            )
        cells._stuck[offset] = True
        cells._stuck_value[offset] = 1
        cells._stored[offset] = 1
        cells._partial[offset] = True

    def maskable_offsets(self, cells) -> list[int]:
        return [int(i) for i in np.flatnonzero(cells._stuck & cells._partial)]

    def is_maskable(self, offset: int) -> bool:
        hashed = (offset * _HASH_MULT + self.salt) % _HASH_MOD
        return (hashed / _HASH_MOD) < self.partial_fraction

    def transform_arrivals(
        self, positions: np.ndarray, rng: np.random.Generator
    ) -> tuple[np.ndarray, np.ndarray | None]:
        from repro.sim import kernels

        flags = rng.random(positions.shape[0]) < self.partial_fraction
        return kernels.masked_arrival_order(positions, flags, self.mask_budget)

    def transform_base_death(
        self, base_death: np.ndarray, n_bits: int, rng: np.random.Generator
    ) -> tuple[np.ndarray, np.ndarray | None]:
        from repro.sim import kernels

        flags = rng.random(base_death.shape[0]) < self.partial_fraction
        masked = kernels.mask_partial_deaths(
            base_death, flags, n_bits, self.mask_budget
        )
        if not masked.any():
            return base_death, None
        transformed = base_death.copy()
        transformed[masked] = np.inf
        return transformed, masked

    def shape_lifetime(self, model: LifetimeModel) -> LifetimeModel:
        return _WeakCellLifetime(
            model, self.partial_fraction, self.weak_scale, self.salt
        )

    def describe(self) -> dict:
        return {
            "model": self.key,
            "partial_fraction": self.partial_fraction,
            "mask_budget": self.mask_budget,
            "weak_scale": self.weak_scale,
        }


class DriftBurst(FaultModel):
    """Time-correlated bursts: aligned spans of neighbours fail together.

    Parameters
    ----------
    burst_span:
        Cells per aligned span (spans never cross block boundaries as
        long as ``burst_span`` divides the block size, which the default
        does for every roster block width).
    burst_probability:
        Probability a span is bursty — its members' deaths collapse onto
        the span's earliest death (time domain) or earliest arrival
        (count domain).
    """

    key = "drift"

    def __init__(
        self, *, burst_span: int = 8, burst_probability: float = 0.25
    ) -> None:
        if burst_span < 2:
            raise ConfigurationError("burst span must cover at least two cells")
        if not 0 <= burst_probability <= 1:
            raise ConfigurationError("burst probability must be in [0, 1]")
        self.burst_span = int(burst_span)
        self.burst_probability = float(burst_probability)

    def _span_flags(self, n_cells: int, rng: np.random.Generator) -> np.ndarray:
        n_spans = -(-n_cells // self.burst_span)
        return rng.random(n_spans) < self.burst_probability

    def transform_arrivals(
        self, positions: np.ndarray, rng: np.random.Generator
    ) -> tuple[np.ndarray, np.ndarray | None]:
        from repro.sim import kernels

        n = positions.shape[0]
        bursty = self._span_flags(n, rng)
        ranks = np.empty(n, dtype=np.float64)
        ranks[positions] = np.arange(n, dtype=np.float64)
        collapsed = kernels.burst_collapse(ranks, self.burst_span, bursty)
        # stable: tied (collapsed) ranks arrive in cell-index order
        return np.argsort(collapsed, kind="stable"), None

    def transform_base_death(
        self, base_death: np.ndarray, n_bits: int, rng: np.random.Generator
    ) -> tuple[np.ndarray, np.ndarray | None]:
        from repro.sim import kernels

        bursty = self._span_flags(base_death.shape[0], rng)
        if not bursty.any():
            return base_death, None
        return (
            kernels.burst_collapse(base_death, self.burst_span, bursty),
            None,
        )

    def shape_lifetime(self, model: LifetimeModel) -> LifetimeModel:
        return _BurstLifetime(model, self.burst_span, self.burst_probability)

    def describe(self) -> dict:
        return {
            "model": self.key,
            "burst_span": self.burst_span,
            "burst_probability": self.burst_probability,
        }


# ---------------------------------------------------------------------------
# Service-layer lifetime shaping
# ---------------------------------------------------------------------------


class _WeakCellLifetime(LifetimeModel):
    """Weak (partial-prone) cells wear out early: the hash-selected weak
    subset's endurance is scaled down, shifting the served fault mix
    toward early, maskable faults."""

    def __init__(
        self, base: LifetimeModel, fraction: float, scale: float, salt: int
    ) -> None:
        self.base = base
        self.fraction = float(fraction)
        self.scale = float(scale)
        self.salt = int(salt)

    def sample(self, n_cells: int, rng: np.random.Generator) -> np.ndarray:
        endurance = np.asarray(self.base.sample(n_cells, rng), dtype=np.float64)
        weak = _weak_mask(n_cells, self.fraction, self.salt)
        if weak.any():
            endurance = endurance.copy()
            endurance[weak] *= self.scale
        return endurance

    @property
    def mean(self) -> float:
        return self.base.mean * (1.0 - self.fraction + self.fraction * self.scale)


class _BurstLifetime(LifetimeModel):
    """Span-correlated endurance: bursty spans share their minimum draw,
    so neighbours wear out (and fail) together under served traffic."""

    def __init__(self, base: LifetimeModel, span: int, probability: float) -> None:
        self.base = base
        self.span = int(span)
        self.probability = float(probability)

    def sample(self, n_cells: int, rng: np.random.Generator) -> np.ndarray:
        from repro.sim import kernels

        endurance = np.asarray(self.base.sample(n_cells, rng), dtype=np.float64)
        n_spans = -(-n_cells // self.span)
        bursty = rng.random(n_spans) < self.probability
        if not bursty.any():
            return endurance
        return kernels.burst_collapse(endurance, self.span, bursty)

    @property
    def mean(self) -> float:
        # the span-minimum pull is workload-order statistics; report the
        # base mean (the shaping is a correlation, not a rescale)
        return self.base.mean


#: the shared stateless default model (the paper's behaviour)
HARD = HardStuckAt()

_BUILTIN = {
    "hard": HardStuckAt,
    "partial": PartiallyStuck,
    "drift": DriftBurst,
}


def fault_model_for(model: "str | FaultModel | None", **params) -> FaultModel:
    """Resolve a fault-model selection to a model instance.

    Accepts a ready :class:`FaultModel` (returned as-is), ``None`` (the
    hard default), or one of :data:`FAULT_MODEL_CHOICES` with optional
    constructor ``params``.
    """
    if model is None:
        return HARD
    if isinstance(model, FaultModel):
        return model
    try:
        cls = _BUILTIN[model]
    except KeyError:
        raise ConfigurationError(
            f"unknown fault model {model!r}; known: "
            f"{', '.join(FAULT_MODEL_CHOICES)}"
        ) from None
    if cls is HardStuckAt and not params:
        return HARD
    return cls(**params)
