"""A coalescing write buffer in front of the memory array (DESIGN.md §2).

PCM writes are slow and wear the cells, so real controllers sit a small
SRAM write buffer in front of the array: pending writes to the *same*
address coalesce (only the last payload reaches the cells), and reads are
served from the buffer when they hit — the classic store-queue forwarding
path.  :class:`WriteBuffer` models that structure for the service layer's
request pipeline (:mod:`repro.service.controller`): a bounded, ordered,
coalescing queue with hit/coalesce statistics.

Coalescing keeps the entry's original queue position (a CAM-style buffer
updates the payload in place rather than re-enqueueing), so drain order is
first-enqueue order — deterministic, which the service layer's
cross-worker determinism contract relies on.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError


class WriteBuffer:
    """A bounded coalescing buffer of pending ``(address, payload)`` writes.

    Parameters
    ----------
    capacity:
        Maximum number of distinct addresses held before the caller must
        drain; must be positive.  ``full`` turning true is the caller's
        signal to flush (the buffer never drops or flushes on its own, so
        the owner controls write-back ordering).
    """

    def __init__(self, capacity: int = 32) -> None:
        if capacity < 1:
            raise ConfigurationError("write buffer capacity must be positive")
        self.capacity = capacity
        self._pending: dict[int, np.ndarray] = {}
        self.enqueued = 0
        self.coalesced = 0
        self.read_hits = 0
        self.drains = 0

    def __len__(self) -> int:
        return len(self._pending)

    @property
    def full(self) -> bool:
        return len(self._pending) >= self.capacity

    def put(self, address: int, payload: np.ndarray) -> bool:
        """Enqueue a write; returns ``True`` when it coalesced into an
        already-pending write to the same address.

        The payload is copied, so callers may reuse their buffers.
        """
        hit = address in self._pending
        self._pending[address] = np.array(payload, dtype=np.uint8, copy=True)
        self.enqueued += 1
        self.coalesced += hit
        return hit

    def lookup(self, address: int) -> np.ndarray | None:
        """Store-to-load forwarding: the pending payload for ``address``,
        or ``None`` on a buffer miss."""
        payload = self._pending.get(address)
        if payload is None:
            return None
        self.read_hits += 1
        return payload.copy()

    def drain(self) -> list[tuple[int, np.ndarray]]:
        """Remove and return every pending write in first-enqueue order."""
        entries = [(addr, payload) for addr, payload in self._pending.items()]
        self._pending.clear()
        if entries:
            self.drains += 1
        return entries
