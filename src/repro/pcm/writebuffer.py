"""A coalescing write buffer in front of the memory array (DESIGN.md §2).

PCM writes are slow and wear the cells, so real controllers sit a small
SRAM write buffer in front of the array: pending writes to the *same*
address coalesce (only the last payload reaches the cells), and reads are
served from the buffer when they hit — the classic store-queue forwarding
path.  :class:`WriteBuffer` models that structure for the service layer's
request pipeline (:mod:`repro.service.controller`): a bounded, ordered,
coalescing queue with hit/coalesce statistics.

Coalescing keeps the entry's original queue position (a CAM-style buffer
updates the payload in place rather than re-enqueueing), so drain order is
first-enqueue order — deterministic, which the service layer's
cross-worker determinism contract relies on.

The storage is columnar: payloads live in one preallocated
``(capacity, n_bits)`` uint8 matrix, one row per pending address.  A
``put`` copies the payload exactly once — into its row — and ``lookup``
forwards a *read-only view* of that row instead of copying again, which
removes the double copy the original dict-of-arrays design paid on every
store-to-load forwarding hit.  ``drain`` hands the whole batch back as
columnar arrays (addresses plus a payload matrix) so the service layer
can run batched kernels over it without reassembling Python tuples.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError


class WriteBuffer:
    """A bounded coalescing buffer of pending ``(address, payload)`` writes.

    Parameters
    ----------
    capacity:
        Maximum number of distinct addresses held before the caller must
        drain; must be positive.  ``full`` turning true is the caller's
        signal to flush (the buffer never drops or flushes on its own, so
        the owner controls write-back ordering).
    n_bits:
        Payload width in bits.  When known up front the columnar store is
        preallocated; otherwise it is sized lazily from the first ``put``.
    """

    def __init__(self, capacity: int = 32, n_bits: int | None = None) -> None:
        if capacity < 1:
            raise ConfigurationError("write buffer capacity must be positive")
        self.capacity = capacity
        self.n_bits = n_bits
        #: address → row index into the payload matrix, in enqueue order
        #: (slots are assigned sequentially and coalescing keeps the slot,
        #: so insertion order of this dict *is* first-enqueue order)
        self._slots: dict[int, int] = {}
        self._payloads: np.ndarray | None = (
            np.empty((capacity, n_bits), dtype=np.uint8) if n_bits is not None else None
        )
        self.enqueued = 0
        self.coalesced = 0
        self.read_hits = 0
        self.drains = 0

    def __len__(self) -> int:
        return len(self._slots)

    @property
    def full(self) -> bool:
        return len(self._slots) >= self.capacity

    def put(self, address: int, payload: np.ndarray) -> bool:
        """Enqueue a write; returns ``True`` when it coalesced into an
        already-pending write to the same address.

        The payload is copied (once, into its columnar row), so callers
        may reuse their buffers.
        """
        payloads = self._payloads
        if payloads is None:
            self.n_bits = len(payload)
            payloads = self._payloads = np.empty(
                (self.capacity, self.n_bits), dtype=np.uint8
            )
        slots = self._slots
        slot = slots.get(address)
        hit = slot is not None
        if not hit:
            slot = len(slots)
            if slot >= self.capacity:
                raise ConfigurationError("write buffer overflow: drain before put")
            slots[address] = slot
        payloads[slot] = payload
        self.enqueued += 1
        self.coalesced += hit
        return hit

    def lookup(self, address: int) -> np.ndarray | None:
        """Store-to-load forwarding: a read-only view of the pending
        payload for ``address``, or ``None`` on a buffer miss.

        The view stays valid until the next ``put``/``drain``; callers
        that need the payload beyond that must copy it themselves.
        """
        slot = self._slots.get(address)
        if slot is None:
            return None
        self.read_hits += 1
        row = self._payloads[slot]
        row.flags.writeable = False
        return row

    def drain(self) -> tuple[np.ndarray, np.ndarray]:
        """Remove and return every pending write as columnar arrays
        ``(addresses, payloads)`` in first-enqueue order.

        ``addresses`` is int64 of shape ``(n,)`` and ``payloads`` uint8 of
        shape ``(n, n_bits)``; the payload matrix is an owned copy, so the
        buffer can keep accepting writes while the batch is serviced.
        """
        count = len(self._slots)
        if count == 0:
            width = self.n_bits or 0
            return (
                np.empty(0, dtype=np.int64),
                np.empty((0, width), dtype=np.uint8),
            )
        addresses = np.fromiter(self._slots, dtype=np.int64, count=count)
        payloads = self._payloads[:count].copy()
        self._slots.clear()
        self.drains += 1
        return addresses, payloads
