"""PCM device substrate: cells, blocks, pages, devices, wear, fail cache."""

from repro.pcm.block import ProtectedBlock, SchemeFactory
from repro.pcm.cell import CellArray
from repro.pcm.device import PCMDevice
from repro.pcm.failcache import DirectMappedFailCache, SequentialBlockKeys
from repro.pcm.faults import (
    FAULT_MODEL_CHOICES,
    DriftBurst,
    FaultModel,
    HardStuckAt,
    PartiallyStuck,
    fault_model_for,
)
from repro.pcm.lifetime import (
    PAPER_COV,
    PAPER_MEAN_LIFETIME,
    CorrelatedLifetime,
    FixedLifetime,
    LifetimeModel,
    LogNormalLifetime,
    NormalLifetime,
)
from repro.pcm.page import PAGE_BITS_4KB, Page
from repro.pcm.wear import (
    NoWearLeveling,
    PerfectWearLeveling,
    SecurityRefreshWearLeveling,
    StartGapWearLeveling,
    WearLevelingPolicy,
)
from repro.pcm.workload import (
    HotColdWorkload,
    TraceWorkload,
    UniformWorkload,
    Workload,
    ZipfWorkload,
)
from repro.pcm.writebuffer import WriteBuffer

__all__ = [
    "FAULT_MODEL_CHOICES",
    "PAGE_BITS_4KB",
    "PAPER_COV",
    "PAPER_MEAN_LIFETIME",
    "CellArray",
    "CorrelatedLifetime",
    "DirectMappedFailCache",
    "DriftBurst",
    "FaultModel",
    "FixedLifetime",
    "HardStuckAt",
    "HotColdWorkload",
    "LifetimeModel",
    "LogNormalLifetime",
    "NoWearLeveling",
    "NormalLifetime",
    "PCMDevice",
    "Page",
    "PartiallyStuck",
    "PerfectWearLeveling",
    "ProtectedBlock",
    "SchemeFactory",
    "SecurityRefreshWearLeveling",
    "SequentialBlockKeys",
    "StartGapWearLeveling",
    "TraceWorkload",
    "UniformWorkload",
    "WearLevelingPolicy",
    "Workload",
    "WriteBuffer",
    "ZipfWorkload",
    "fault_model_for",
]
