"""Cell-lifetime models (paper §3.1).

The paper assigns every PCM cell an endurance limit — the number of writes
it sustains before becoming stuck — drawn from a normal distribution with a
mean of 1e8 writes and a 25% coefficient of variation, with no spatial
correlation between neighbouring cells.  This module implements that model
(plus a couple of alternatives useful for sensitivity studies) behind a
single small interface.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError

#: the paper's mean endurance in writes
PAPER_MEAN_LIFETIME = 1e8

#: the paper's coefficient of variation
PAPER_COV = 0.25


class LifetimeModel(ABC):
    """Draws per-cell endurance limits (in cell writes)."""

    @abstractmethod
    def sample(self, n_cells: int, rng: np.random.Generator) -> np.ndarray:
        """Return ``n_cells`` positive endurance values (float64)."""

    @property
    @abstractmethod
    def mean(self) -> float:
        """Mean endurance of the distribution."""


@dataclass(frozen=True)
class NormalLifetime(LifetimeModel):
    """The paper's model: Normal(mean, cov*mean), truncated below at one write.

    With cov = 0.25 the probability mass below zero is ~3e-5, so truncation
    is a negligible correction rather than a distortion.
    """

    mean_lifetime: float = PAPER_MEAN_LIFETIME
    cov: float = PAPER_COV

    def __post_init__(self) -> None:
        if self.mean_lifetime <= 0:
            raise ConfigurationError("mean lifetime must be positive")
        if self.cov < 0:
            raise ConfigurationError("coefficient of variation must be non-negative")

    def sample(self, n_cells: int, rng: np.random.Generator) -> np.ndarray:
        draws = rng.normal(self.mean_lifetime, self.cov * self.mean_lifetime, size=n_cells)
        return np.maximum(draws, 1.0)

    @property
    def mean(self) -> float:
        return self.mean_lifetime


@dataclass(frozen=True)
class LogNormalLifetime(LifetimeModel):
    """Log-normal endurance — a heavier-tailed alternative used in
    sensitivity ablations (some PCM endurance studies report log-normal
    variation; the paper itself uses the normal model above)."""

    mean_lifetime: float = PAPER_MEAN_LIFETIME
    cov: float = PAPER_COV

    def __post_init__(self) -> None:
        if self.mean_lifetime <= 0:
            raise ConfigurationError("mean lifetime must be positive")
        if self.cov <= 0:
            raise ConfigurationError("coefficient of variation must be positive")

    def sample(self, n_cells: int, rng: np.random.Generator) -> np.ndarray:
        sigma2 = np.log1p(self.cov**2)
        mu = np.log(self.mean_lifetime) - sigma2 / 2
        return np.exp(rng.normal(mu, np.sqrt(sigma2), size=n_cells))

    @property
    def mean(self) -> float:
        return self.mean_lifetime


@dataclass(frozen=True)
class CorrelatedLifetime(LifetimeModel):
    """Spatially correlated endurance — probes the paper's "no correlation
    between neighbouring cells" assumption (§3.1).

    Cells are grouped into clusters of ``cluster_size`` adjacent cells;
    each cluster draws a common multiplicative factor (log-normal with
    coefficient of variation ``cluster_cov``) applied on top of per-cell
    Normal draws.  ``cluster_cov = 0`` degenerates to the paper's model.
    Correlated weak clusters concentrate faults inside individual data
    blocks, which is exactly the regime partition schemes handle worst.
    """

    mean_lifetime: float = PAPER_MEAN_LIFETIME
    cov: float = PAPER_COV
    cluster_size: int = 64
    cluster_cov: float = 0.25

    def __post_init__(self) -> None:
        if self.mean_lifetime <= 0:
            raise ConfigurationError("mean lifetime must be positive")
        if self.cov < 0 or self.cluster_cov < 0:
            raise ConfigurationError("coefficients of variation must be non-negative")
        if self.cluster_size < 1:
            raise ConfigurationError("cluster size must be positive")

    def sample(self, n_cells: int, rng: np.random.Generator) -> np.ndarray:
        base = rng.normal(self.mean_lifetime, self.cov * self.mean_lifetime, size=n_cells)
        n_clusters = -(-n_cells // self.cluster_size)
        if self.cluster_cov > 0:
            sigma2 = np.log1p(self.cluster_cov**2)
            factors = np.exp(
                rng.normal(-sigma2 / 2, np.sqrt(sigma2), size=n_clusters)
            )
        else:
            factors = np.ones(n_clusters)
        per_cell = np.repeat(factors, self.cluster_size)[:n_cells]
        return np.maximum(base * per_cell, 1.0)

    @property
    def mean(self) -> float:
        return self.mean_lifetime


@dataclass(frozen=True)
class WearSkewLifetime(LifetimeModel):
    """Wear-leveling quality expressed as an endurance skew.

    A perfect wear-leveler spreads traffic evenly, so a cell's sampled
    endurance *is* its observed lifetime; weaker policies concentrate
    writes on a hot fraction of cells, which therefore reach their limit
    early.  This wrapper models that as a deterministic positional skew:
    cells whose position hashes into the hot set have their sampled
    endurance divided by ``hot_rate`` (they see ``hot_rate``× the average
    write rate).  Positions — not RNG draws — select the hot set, so the
    wrapper never perturbs the base model's random stream:
    ``hot_fraction=0`` (or ``hot_rate=1``) is bit-identical to the base
    model, which is what keeps default fleet-campaign digests stable.
    """

    base: LifetimeModel
    hot_fraction: float
    hot_rate: float
    salt: int = 0

    def __post_init__(self) -> None:
        if not 0.0 <= self.hot_fraction <= 1.0:
            raise ConfigurationError("hot fraction must be in [0, 1]")
        if self.hot_rate < 1.0:
            raise ConfigurationError("hot rate must be >= 1")

    def sample(self, n_cells: int, rng: np.random.Generator) -> np.ndarray:
        draws = self.base.sample(n_cells, rng)
        if self.hot_fraction <= 0.0 or self.hot_rate == 1.0:
            return draws
        positions = np.arange(n_cells, dtype=np.uint64)
        hashed = (
            positions * np.uint64(2654435761) + np.uint64(self.salt)
        ) & np.uint64(0xFFFFFFFF)
        hot = hashed < np.uint64(int(round(self.hot_fraction * 2**32)))
        draws[hot] = np.maximum(draws[hot] / self.hot_rate, 1.0)
        return draws

    @property
    def mean(self) -> float:
        # the base distribution's mean: retention edges and ages derived
        # from it stay comparable across wear policies in the same grid
        return self.base.mean


@dataclass(frozen=True)
class FixedLifetime(LifetimeModel):
    """Deterministic endurance — every cell dies after exactly the same
    number of writes.  Useful for unit tests that need reproducible fault
    arrival without seeding games."""

    mean_lifetime: float = PAPER_MEAN_LIFETIME

    def __post_init__(self) -> None:
        if self.mean_lifetime <= 0:
            raise ConfigurationError("mean lifetime must be positive")

    def sample(self, n_cells: int, rng: np.random.Generator) -> np.ndarray:
        return np.full(n_cells, float(self.mean_lifetime))

    @property
    def mean(self) -> float:
        return self.mean_lifetime
