"""A PCM memory device: a population of pages behind wear leveling.

:class:`PCMDevice` models the paper's 8 MB test chip at whatever scale the
caller asks for: pages of protected data blocks, a wear-leveling policy
distributing page writes, and device-level lifetime statistics (live-page
fraction over time, the Figure 9 curve; half lifetime as defined in §3.2).

This is the bit-accurate slow path; :mod:`repro.sim.survival` reproduces
Figure 9 at full scale with the event-driven engine and is validated
against this model on small configurations.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError, UncorrectableError
from repro.pcm.block import SchemeFactory
from repro.pcm.lifetime import LifetimeModel
from repro.pcm.page import Page
from repro.pcm.wear import PerfectWearLeveling, WearLevelingPolicy
from repro.pcm.workload import UniformWorkload, Workload


class PCMDevice:
    """A device of ``n_pages`` pages, each of ``n_blocks`` data blocks."""

    def __init__(
        self,
        n_pages: int,
        block_bits: int,
        blocks_per_page: int,
        scheme_factory: SchemeFactory,
        *,
        lifetime_model: LifetimeModel | None = None,
        wear_leveling: WearLevelingPolicy | None = None,
        workload: Workload | None = None,
        rng: np.random.Generator | None = None,
    ) -> None:
        if n_pages < 1:
            raise ConfigurationError("a device needs at least one page")
        self.rng = rng if rng is not None else np.random.default_rng()
        self.pages = [
            Page(
                block_bits,
                blocks_per_page,
                scheme_factory,
                lifetime_model=lifetime_model,
                rng=self.rng,
            )
            for _ in range(n_pages)
        ]
        self.wear_leveling = (
            wear_leveling if wear_leveling is not None else PerfectWearLeveling()
        )
        self.workload = workload if workload is not None else UniformWorkload()
        self.total_writes_issued = 0
        #: total_writes_issued value at each page death, in death order
        self.page_death_times: list[int] = []

    @property
    def n_pages(self) -> int:
        return len(self.pages)

    @property
    def alive_mask(self) -> np.ndarray:
        return np.array([not page.failed for page in self.pages], dtype=bool)

    @property
    def live_page_count(self) -> int:
        return int(self.alive_mask.sum())

    @property
    def survival_rate(self) -> float:
        return self.live_page_count / self.n_pages

    def issue_write(self) -> bool:
        """Issue one page write of random data: the workload picks a logical
        page, the wear-leveling policy maps it to a live physical page.

        Returns ``True`` when the write succeeded, ``False`` when it killed
        its page.  Raises :class:`ConfigurationError` when no pages remain.
        """
        alive = self.alive_mask
        if not alive.any():
            raise ConfigurationError("device exhausted: all pages failed")
        logical = self.workload.next_logical_page(self.n_pages, self.rng)
        index = self.wear_leveling.place(logical, alive, self.rng)
        self.total_writes_issued += 1
        try:
            self.pages[index].write_random()
        except UncorrectableError:
            self.wear_leveling.on_page_failed(index)
            self.page_death_times.append(self.total_writes_issued)
            return False
        return True

    def run_until_dead(self, max_writes: int | None = None) -> list[int]:
        """Issue writes until every page fails (the paper's stopping rule)
        or ``max_writes`` is reached.  Returns the page death times."""
        limit = max_writes if max_writes is not None else np.inf
        while self.live_page_count and self.total_writes_issued < limit:
            self.issue_write()
        return list(self.page_death_times)

    def half_lifetime(self) -> int | None:
        """Writes issued when half the pages had failed (§3.2's metric);
        ``None`` if fewer than half have failed so far."""
        threshold = (self.n_pages + 1) // 2
        if len(self.page_death_times) < threshold:
            return None
        return self.page_death_times[threshold - 1]
