"""The fail cache (paper §2.4): an SRAM-side map of known faults.

SAFER proposed — and Aegis-rw/-rw-p assume — a small, direct-mapped SRAM
cache holding the locations and stuck-at values of recently discovered
faults, consulted before each write so the controller can classify faults
as stuck-at-wrong/right without trial writes.

:class:`DirectMappedFailCache` models that structure faithfully enough for
the evaluation: fixed entry count, direct mapping by a hash of
(block, offset), conflict eviction, and hit/miss statistics.  An unbounded
variant (``capacity=None``) behaves like the paper's "sufficiently large
cache" while still exercising the record/lookup code paths.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass

from repro.errors import CacheMissError, ConfigurationError
from repro.pcm.cell import CellArray


@dataclass
class _Entry:
    block_key: int
    offset: int
    stuck_value: int


class SequentialBlockKeys:
    """Stable block keys for a deterministic fail cache.

    The cache's default key is ``id(cells)`` — fine for correctness, but
    memory addresses differ between processes, so direct-mapped conflict
    patterns (and therefore hit/eviction statistics) are not reproducible
    run to run.  This keyer assigns each distinct :class:`CellArray` a
    sequential integer in first-seen order instead; when blocks are probed
    in a deterministic order (as the service layer does), every statistic
    becomes a pure function of the workload and seed.
    """

    def __init__(self) -> None:
        self._keys: dict[int, int] = {}

    def __call__(self, cells: CellArray) -> int:
        return self._keys.setdefault(id(cells), len(self._keys))


class DirectMappedFailCache:
    """A direct-mapped fault cache usable as a
    :class:`~repro.schemes.base.FaultKnowledge` provider.

    Parameters
    ----------
    capacity:
        Number of entries; ``None`` for an unbounded (perfect) cache.
    strict:
        When ``True``, a lookup that misses any of the block's true faults
        raises :class:`~repro.errors.CacheMissError` instead of returning a
        partial view — for experiments that must *know* the cache-hit
        assumption held rather than silently degrade to retry behaviour.
    key_of:
        Maps a :class:`CellArray` to its cache key; defaults to ``id``.
        Pass a :class:`SequentialBlockKeys` instance when hit/eviction
        statistics must be reproducible across processes.
    """

    def __init__(
        self,
        capacity: int | None = 4096,
        *,
        strict: bool = False,
        key_of: Callable[[CellArray], int] | None = None,
    ) -> None:
        if capacity is not None and capacity < 1:
            raise ConfigurationError("fail cache capacity must be positive")
        self.capacity = capacity
        self.strict = strict
        self._key_of = key_of if key_of is not None else id
        self._entries: dict[int, _Entry] = {}
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def _index(self, block_key: int, offset: int) -> int:
        key = hash((block_key, offset))
        if self.capacity is None:
            return key
        return key % self.capacity

    # -- FaultKnowledge interface -------------------------------------------

    def known_faults(self, cells: CellArray) -> dict[int, int]:
        """Every cached fault belonging to this block.

        Also tallies hit/miss statistics against the block's true faults so
        experiments can report cache effectiveness.
        """
        block_key = self._key_of(cells)
        known: dict[int, int] = {}
        missing: list[int] = []
        for offset in cells.fault_offsets:
            entry = self._entries.get(self._index(block_key, offset))
            if entry is not None and entry.block_key == block_key and entry.offset == offset:
                known[offset] = entry.stuck_value
                self.hits += 1
            else:
                self.misses += 1
                missing.append(offset)
        if self.strict and missing:
            raise CacheMissError(
                f"fail cache missing {len(missing)} fault(s) at offsets {missing}"
            )
        return known

    def record(self, cells: CellArray, offset: int, stuck_value: int) -> None:
        """Insert a fault discovered by a verification read."""
        block_key = self._key_of(cells)
        index = self._index(block_key, offset)
        existing = self._entries.get(index)
        if existing is not None and (existing.block_key, existing.offset) != (block_key, offset):
            self.evictions += 1
        self._entries[index] = _Entry(block_key, offset, int(stuck_value))

    # -- statistics -----------------------------------------------------------

    @property
    def occupancy(self) -> int:
        return len(self._entries)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 1.0
