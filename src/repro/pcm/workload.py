"""Write-traffic workload generators.

The paper's evaluation assumes uniform page-write traffic plus perfect wear
leveling (§3.1).  Real traffic is skewed — which is precisely why wear
leveling exists — so the device model accepts a workload generator and a
leveling policy separately, letting the ablation benchmarks measure how
close Start-Gap gets to the perfect-leveling assumption under realistic
skew.

A workload draws *logical* page indices; the wear-leveling policy maps them
to physical pages.

Fork-safety contract
--------------------
Workload instances may carry mutable draw state (a trace cursor, a cached
CDF).  To be safe to fan out across :class:`~repro.sim.parallel.SimExecutor`
workers — or any sharded run — a caller must give **each shard its own
instance** via :meth:`Workload.clone`; sharing one instance means every
forked worker replays the same prefix of the stream (each child process
gets a copy-on-write snapshot of the cursor), silently correlating shards
that are meant to be independent.  Stateless workloads are trivially
fork-safe; stateful ones (:class:`TraceWorkload`) must implement ``clone``
so the copies start from a well-defined position.
"""

from __future__ import annotations

import copy
from abc import ABC, abstractmethod
from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigurationError


class Workload(ABC):
    """Draws logical page indices for successive write requests.

    Implementations must be deterministic given the ``rng`` stream, and
    must support :meth:`clone` (see the module docstring's fork-safety
    contract) — the default deep-copies the instance, which is correct for
    any workload whose state is plain data.
    """

    @abstractmethod
    def next_logical_page(self, n_pages: int, rng: np.random.Generator) -> int:
        """Logical index in ``[0, n_pages)`` of the next write."""

    def clone(self) -> "Workload":
        """An independent copy safe to hand to another worker or shard."""
        return copy.deepcopy(self)


class UniformWorkload(Workload):
    """The paper's workload: every logical page equally likely."""

    def next_logical_page(self, n_pages: int, rng: np.random.Generator) -> int:
        return int(rng.integers(0, n_pages))


@dataclass
class ZipfWorkload(Workload):
    """Zipf-distributed page popularity (rank ``r`` gets weight ``r^-alpha``).

    A fixed random permutation decouples popularity rank from page index,
    so hot pages are scattered across the address space.
    """

    alpha: float = 1.0
    _cdf: np.ndarray | None = field(default=None, repr=False)
    _perm: np.ndarray | None = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if self.alpha <= 0:
            raise ConfigurationError("Zipf exponent must be positive")

    def _prepare(self, n_pages: int, rng: np.random.Generator) -> None:
        weights = np.arange(1, n_pages + 1, dtype=np.float64) ** (-self.alpha)
        self._cdf = np.cumsum(weights / weights.sum())
        self._perm = rng.permutation(n_pages)

    def next_logical_page(self, n_pages: int, rng: np.random.Generator) -> int:
        if self._cdf is None or self._cdf.size != n_pages:
            self._prepare(n_pages, rng)
        rank = int(np.searchsorted(self._cdf, rng.random()))
        return int(self._perm[rank])


class TraceWorkload(Workload):
    """Replays a recorded sequence of logical page indices, wrapping around
    when exhausted — the hook for driving the device model with real
    application traces.

    The replay cursor is mutable state, so a single instance must never be
    shared across :class:`~repro.sim.parallel.SimExecutor` workers or
    shards: each forked worker would replay the same trace prefix instead
    of an independent stream.  Give every shard its own :meth:`clone`
    (copies share the immutable trace but carry their own cursor), and use
    :meth:`reset` to rewind between runs.
    """

    def __init__(self, trace: list[int] | np.ndarray) -> None:
        trace = np.asarray(trace, dtype=np.int64)
        if trace.size == 0:
            raise ConfigurationError("a trace workload needs at least one access")
        if trace.min() < 0:
            raise ConfigurationError("trace entries must be non-negative")
        self.trace = trace
        self._cursor = 0

    def next_logical_page(self, n_pages: int, rng: np.random.Generator) -> int:
        value = int(self.trace[self._cursor % self.trace.size])
        self._cursor += 1
        return value % n_pages

    def reset(self) -> None:
        """Rewind the replay cursor to the start of the trace."""
        self._cursor = 0

    def clone(self) -> "TraceWorkload":
        """A cursor-independent copy sharing the (immutable) trace array,
        starting from the trace's beginning."""
        fresh = TraceWorkload.__new__(TraceWorkload)
        fresh.trace = self.trace
        fresh._cursor = 0
        return fresh


@dataclass
class HotColdWorkload(Workload):
    """A fraction of pages receives a disproportionate share of writes
    (the classic 90/10 skew by default)."""

    hot_fraction: float = 0.1
    hot_share: float = 0.9

    def __post_init__(self) -> None:
        if not 0 < self.hot_fraction < 1:
            raise ConfigurationError("hot fraction must be in (0, 1)")
        if not 0 < self.hot_share < 1:
            raise ConfigurationError("hot share must be in (0, 1)")

    def next_logical_page(self, n_pages: int, rng: np.random.Generator) -> int:
        hot_pages = max(1, int(self.hot_fraction * n_pages))
        if rng.random() < self.hot_share:
            return int(rng.integers(0, hot_pages))
        if hot_pages >= n_pages:
            return int(rng.integers(0, n_pages))
        return int(rng.integers(hot_pages, n_pages))
