"""A protected data block: cells + recovery scheme + endurance-driven wear.

:class:`ProtectedBlock` composes a :class:`~repro.pcm.cell.CellArray` with a
:class:`~repro.schemes.base.RecoveryScheme` and a per-cell endurance budget
drawn from a :class:`~repro.pcm.lifetime.LifetimeModel`.  Every serviced
write consumes endurance on the cells actually programmed; a cell whose
programming count crosses its endurance becomes permanently stuck at the
value it last held — the wear-out mechanism of §3.1, reproduced
write-by-write.

This is the *bit-accurate but slow* device path: it is what the examples
drive and what the fast Monte Carlo engines in :mod:`repro.sim` are
validated against (with small endurance values so blocks die quickly).
"""

from __future__ import annotations

from collections.abc import Callable

import numpy as np

from repro.errors import UncorrectableError
from repro.pcm.cell import CellArray
from repro.pcm.lifetime import LifetimeModel, NormalLifetime
from repro.schemes.base import RecoveryScheme, SchemeStats, WriteReceipt

#: builds a scheme for a fresh cell array
SchemeFactory = Callable[[CellArray], RecoveryScheme]


class ProtectedBlock:
    """One data block under wear, protected by a recovery scheme."""

    def __init__(
        self,
        n_bits: int,
        scheme_factory: SchemeFactory,
        *,
        lifetime_model: LifetimeModel | None = None,
        rng: np.random.Generator | None = None,
        fault_model: object | None = None,
    ) -> None:
        self.rng = rng if rng is not None else np.random.default_rng()
        self.cells = CellArray(n_bits, fault_model=fault_model)
        self.scheme = scheme_factory(self.cells)
        model = lifetime_model if lifetime_model is not None else NormalLifetime()
        self.endurance = model.sample(n_bits, self.rng)
        self.stats = SchemeStats()
        self.writes_serviced = 0

    @property
    def n_bits(self) -> int:
        return self.cells.n_bits

    @property
    def failed(self) -> bool:
        return self.scheme.retired

    @property
    def fault_count(self) -> int:
        return self.cells.fault_count

    def _apply_wear(self) -> list[int]:
        """Kill cells whose programming count crossed their endurance.

        Returns the offsets that died.  A dying cell freezes at the value it
        currently holds (its last successfully stored value).
        """
        counts = self.cells.write_counts
        dead = np.flatnonzero(
            (counts.astype(np.float64) >= self.endurance) & ~self.cells._stuck
        )
        for offset in dead:
            self.cells.inject_fault(int(offset))
        return [int(d) for d in dead]

    def write(self, data: np.ndarray) -> WriteReceipt:
        """Service one write request, then age the cells it programmed.

        Raises :class:`UncorrectableError` when the scheme cannot recover,
        which retires the block permanently.
        """
        try:
            receipt = self.scheme.write(data)
        except UncorrectableError:
            self.stats.failures += 1
            raise
        finally:
            self._apply_wear()
        self.stats.record(receipt)
        self.writes_serviced += 1
        return receipt

    def read(self) -> np.ndarray:
        return self.scheme.read()

    def write_random(self) -> WriteReceipt:
        """Service a write of uniformly random data (the evaluation's
        workload model)."""
        data = self.rng.integers(0, 2, size=self.n_bits, dtype=np.uint8)
        return self.write(data)

    def run_until_failure(self, max_writes: int | None = None) -> int:
        """Issue random writes until the block fails; returns the number of
        writes successfully serviced.  ``max_writes`` bounds the run for
        tests (``None`` = no bound)."""
        limit = max_writes if max_writes is not None else np.inf
        while self.writes_serviced < limit:
            try:
                self.write_random()
            except UncorrectableError:
                break
        return self.writes_serviced
