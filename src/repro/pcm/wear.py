"""Wear-leveling policies at the device level (paper §3.1).

The paper assumes *perfect* wear leveling: "writes are uniformly distributed
over the live memory blocks", justified by Start-Gap and Security Refresh.
A policy maps the workload's *logical* page index to a *physical* page,
restricted to pages still alive:

* :class:`PerfectWearLeveling` — the paper's assumption: logical identity is
  ignored and live pages are cycled round-robin, so every live page ages at
  exactly the same rate regardless of traffic skew.
* :class:`StartGapWearLeveling` — the Randomized Start-Gap mechanism
  (Qureshi et al., MICRO 2009) implemented for real: a rotating gap slot
  shifts the logical-to-physical mapping so hot logical pages sweep across
  physical pages.  The ablation benchmarks measure how close it gets to
  perfect under skewed workloads.
* :class:`NoWearLeveling` — the identity mapping, the ablation's lower
  bound: skewed traffic burns hot physical pages directly.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.errors import ConfigurationError


class WearLevelingPolicy(ABC):
    """Maps logical write targets to live physical pages."""

    @abstractmethod
    def place(
        self, logical: int, alive: np.ndarray, rng: np.random.Generator
    ) -> int:
        """Physical index of the page to write.

        ``alive`` is a boolean array over physical pages with at least one
        True entry; the returned index must be a live page.
        """

    def on_page_failed(self, page_index: int) -> None:
        """Notification that a page has been retired (optional hook)."""


def _first_live_from(start: int, alive: np.ndarray) -> int:
    """First live physical index at or after ``start`` (wrapping)."""
    n = alive.size
    for step in range(n):
        candidate = (start + step) % n
        if alive[candidate]:
            return candidate
    raise ConfigurationError("no live pages remain")


class PerfectWearLeveling(WearLevelingPolicy):
    """Round-robin over live pages — every live page ages at the same rate,
    whatever the traffic looks like."""

    def __init__(self) -> None:
        self._cursor = 0

    def place(self, logical: int, alive: np.ndarray, rng: np.random.Generator) -> int:
        chosen = _first_live_from(self._cursor % alive.size, alive)
        self._cursor = chosen + 1
        return chosen


class NoWearLeveling(WearLevelingPolicy):
    """Identity mapping: logical page N lives at physical page N.  Writes
    aimed at a dead physical page spill to the next live one (a minimal
    remap, so traffic is never lost)."""

    def place(self, logical: int, alive: np.ndarray, rng: np.random.Generator) -> int:
        return _first_live_from(logical % alive.size, alive)


class SecurityRefreshWearLeveling(WearLevelingPolicy):
    """Security Refresh (Seong et al., ISCA 2010), single level, simplified.

    Logical addresses are remapped by XOR with a random key; every
    ``refresh_interval`` writes a new random key is drawn (the real design
    migrates pages incrementally during the round — here the swap is
    modelled as instantaneous, which preserves the long-run uniformity the
    paper's §3.1 assumption relies on while remaining obliviously keyed,
    the scheme's security property).
    """

    def __init__(
        self, n_pages: int, refresh_interval: int = 64, seed: int = 0
    ) -> None:
        if n_pages < 2:
            raise ConfigurationError("Security Refresh needs at least two pages")
        if refresh_interval < 1:
            raise ConfigurationError("refresh interval must be positive")
        if n_pages & (n_pages - 1):
            raise ConfigurationError(
                "Security Refresh XOR-remapping needs a power-of-two page count"
            )
        self.n_pages = n_pages
        self.refresh_interval = refresh_interval
        self._key_rng = np.random.default_rng(seed)
        self.key = int(self._key_rng.integers(0, n_pages))
        self._writes = 0

    def place(self, logical: int, alive: np.ndarray, rng: np.random.Generator) -> int:
        if not alive.any():
            raise ConfigurationError("no live pages remain")
        self._writes += 1
        if self._writes % self.refresh_interval == 0:
            self.key = int(self._key_rng.integers(0, self.n_pages))
        physical = (logical % self.n_pages) ^ self.key
        if physical < alive.size and alive[physical]:
            return physical
        return _first_live_from(physical % alive.size, alive)


class StartGapWearLeveling(WearLevelingPolicy):
    """Randomized Start-Gap (Qureshi et al., MICRO 2009), simplified.

    One physical slot is the *gap* (holds no data); every ``gap_interval``
    writes the gap moves one slot, and a full gap revolution advances the
    ``start`` offset — so the logical-to-physical mapping slowly rotates
    and hot logical pages sweep across the physical array.
    """

    def __init__(self, n_pages: int, gap_interval: int = 16) -> None:
        if n_pages < 2:
            raise ConfigurationError("Start-Gap needs at least two pages")
        if gap_interval < 1:
            raise ConfigurationError("gap interval must be positive")
        self.n_pages = n_pages
        self.gap_interval = gap_interval
        self.gap = n_pages - 1  # the spare slot
        self.start = 0
        self._writes = 0

    def _physical_of(self, logical: int) -> int:
        physical = (logical + self.start) % self.n_pages
        if physical >= self.gap:
            physical = (physical + 1) % self.n_pages
        return physical

    def _move_gap(self) -> None:
        self.gap = (self.gap - 1) % self.n_pages
        if self.gap == self.n_pages - 1:
            self.start = (self.start + 1) % self.n_pages

    def place(self, logical: int, alive: np.ndarray, rng: np.random.Generator) -> int:
        if not alive.any():
            raise ConfigurationError("no live pages remain")
        self._writes += 1
        if self._writes % self.gap_interval == 0:
            self._move_gap()
        # Start-Gap addresses n-1 logical pages over n physical slots
        physical = self._physical_of(logical % (self.n_pages - 1))
        if physical < alive.size and alive[physical]:
            return physical
        # the mapped page has died: spill to the next live slot
        return _first_live_from(physical % alive.size, alive)
