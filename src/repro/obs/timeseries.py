"""Deterministic time series over :class:`MetricsRegistry` deltas.

The metrics layer (PR 3) answers "how many writes were remapped" — one
number at the end of the run.  This module adds the *time axis*: a
:class:`TimeSeriesRecorder` periodically samples a registry and folds the
deltas since the previous sample into fixed-width **op-clock buckets**,
so capacity retention, error ratios and burn rates become curves instead
of post-mortem totals.

Determinism contract (the same one the tracer and registry obey):

* The bucket axis is the deterministic op clock (``MemoryArray.op_clock``
  or the cluster's request clock) — **never wall time**.  Two runs that
  service the same operations sample at the same clocks and land deltas
  in the same buckets, whatever the worker count or drain engine.
* Storage is bounded: per-series numpy ring buffers hold the newest
  ``capacity`` buckets; evicted buckets are counted in
  :attr:`TimeSeriesRecorder.dropped`, never silently lost.
* :meth:`TimeSeriesRecorder.merge` is commutative per bucket (counter and
  histogram deltas add; gauges add, matching the registry's per-shard
  gauge semantics), so sharded runs merge to byte-identical series for
  any worker count and shard order.

Sampling records three kinds of per-bucket data:

* **counters** — the delta of each counter series inside the bucket;
* **gauges** — the last value sampled inside the bucket;
* **histograms** — per-bucket bucket-count/total/sum deltas, enough to
  estimate per-bucket quantiles (the SLO layer's latency objectives).

The exporter writes one JSONL record per series (plus a meta header) and
a flat CSV; :func:`read_series_jsonl` is the inverse the ``slo-report``
renderer consumes.
"""

from __future__ import annotations

import json

import numpy as np

from repro.errors import ConfigurationError
from repro.obs.metrics import LabelItems, MetricsRegistry, render_series

__all__ = [
    "DEFAULT_CAPACITY",
    "TimeSeriesRecorder",
    "read_series_jsonl",
]

#: default retained buckets per series (bounded memory whatever the run length)
DEFAULT_CAPACITY = 512

#: internal registry-style key: ``(name, sorted label items)``
_SeriesKey = tuple[str, LabelItems]


def _match(key: _SeriesKey, name: str, labels: dict[str, object]) -> bool:
    """True when the series has ``name`` and its labels include ``labels``."""
    if key[0] != name:
        return False
    items = dict(key[1])
    return all(items.get(k) == str(v) for k, v in labels.items())


class TimeSeriesRecorder:
    """Sample a :class:`MetricsRegistry` into op-clock buckets.

    Parameters
    ----------
    registry:
        The registry to diff on :meth:`sample`; ``None`` builds a
        merge-only recorder (the parent-side aggregation target).
    bucket_width:
        Op-clock ticks per bucket (must be positive).
    capacity:
        Newest buckets retained per series; older buckets are evicted
        and counted in :attr:`dropped`.
    auto:
        Marks the recorder as driven by the service pipeline itself
        (the controller samples after every drain); explicit callers
        (the cluster control plane) leave it ``False`` and call
        :meth:`sample` at their own deterministic points.
    """

    def __init__(
        self,
        registry: MetricsRegistry | None,
        *,
        bucket_width: int,
        capacity: int = DEFAULT_CAPACITY,
        auto: bool = False,
    ) -> None:
        if bucket_width < 1:
            raise ConfigurationError("time-series bucket width must be positive")
        if capacity < 1:
            raise ConfigurationError("time-series capacity must be positive")
        self.registry = registry
        self.bucket_width = int(bucket_width)
        self.capacity = int(capacity)
        self.auto = auto
        #: absolute index of the first retained bucket (slot 0)
        self._base = 0
        #: absolute index one past the last written bucket
        self._hi = 0
        self.samples = 0
        self.dropped = 0
        self.last_clock = -1
        self._counters: dict[_SeriesKey, np.ndarray] = {}
        self._gauges: dict[_SeriesKey, np.ndarray] = {}
        #: series key -> {"edges", "counts" (capacity, n+1), "totals", "sums"}
        self._histograms: dict[_SeriesKey, dict] = {}
        self._sample_counts = np.zeros(self.capacity, dtype=np.int64)
        # last-seen absolute values, diffed on each sample
        self._last_counters: dict[_SeriesKey, int] = {}
        self._last_histograms: dict[_SeriesKey, tuple[list[int], int, float]] = {}

    # -- geometry ------------------------------------------------------------

    @property
    def bucket_count(self) -> int:
        """Retained buckets (0 before the first sample)."""
        return self._hi - self._base

    @property
    def start_bucket(self) -> int:
        """Absolute index of the first retained bucket."""
        return self._base

    def bucket_clocks(self) -> list[int]:
        """The op-clock *end* of each retained bucket, oldest first."""
        return [
            (bucket + 1) * self.bucket_width
            for bucket in range(self._base, self._hi)
        ]

    def _counter_array(self, key: _SeriesKey) -> np.ndarray:
        array = self._counters.get(key)
        if array is None:
            array = self._counters[key] = np.zeros(self.capacity, dtype=np.int64)
        return array

    def _gauge_array(self, key: _SeriesKey) -> np.ndarray:
        array = self._gauges.get(key)
        if array is None:
            array = self._gauges[key] = np.zeros(self.capacity, dtype=np.float64)
        return array

    def _histogram_entry(self, key: _SeriesKey, edges: tuple[float, ...]) -> dict:
        entry = self._histograms.get(key)
        if entry is None:
            entry = self._histograms[key] = {
                "edges": tuple(edges),
                "counts": np.zeros((self.capacity, len(edges) + 1), dtype=np.int64),
                "totals": np.zeros(self.capacity, dtype=np.int64),
                "sums": np.zeros(self.capacity, dtype=np.float64),
            }
        return entry

    def _shift(self, amount: int) -> None:
        """Evict the oldest ``amount`` slots (ring advance by copy).

        The base always advances the full ``amount`` — a clock jump far
        past the window must not leave stale slots addressable — but the
        array copy is clamped to the capacity (everything is zeroed when
        the jump clears the whole window).
        """
        self.dropped += max(0, min(amount, self.bucket_count))
        move = min(amount, self.capacity)
        tables: list[np.ndarray] = [self._sample_counts]
        tables.extend(self._counters.values())
        tables.extend(self._gauges.values())
        for entry in self._histograms.values():
            tables.extend((entry["counts"], entry["totals"], entry["sums"]))
        for array in tables:
            if move >= self.capacity:
                array[...] = 0
            else:
                array[:-move] = array[move:]
                array[-move:] = 0
        self._base += amount

    def _slot_for(self, bucket: int) -> int:
        """Slot index of an absolute bucket, advancing the ring if needed."""
        if self.samples == 0:
            self._base = bucket
            self._hi = bucket + 1
        else:
            if bucket >= self._base + self.capacity:
                self._shift(bucket - (self._base + self.capacity) + 1)
            self._hi = max(self._hi, bucket + 1)
        return bucket - self._base

    # -- sampling ------------------------------------------------------------

    def sample(self, clock: int) -> int:
        """Fold the registry deltas since the last sample into the bucket
        containing ``clock``; returns the absolute bucket index.

        The clock must be monotonic — it is the deterministic time axis,
        and a sample that runs backwards would mean a caller leaked wall
        time or mixed clocks.
        """
        if self.registry is None:
            raise ConfigurationError("recorder has no registry to sample")
        if clock < self.last_clock:
            raise ConfigurationError(
                f"time-series clock ran backwards ({clock} < {self.last_clock})"
            )
        bucket = int(clock) // self.bucket_width
        slot = self._slot_for(bucket)
        last = self._last_counters
        for key, value in self.registry.counters.items():
            delta = value - last.get(key, 0)
            if delta:
                self._counter_array(key)[slot] += delta
                last[key] = value
        for key, value in self.registry.gauges.items():
            self._gauge_array(key)[slot] = value
        hist_last = self._last_histograms
        for key, histogram in self.registry.histograms.items():
            seen = hist_last.get(key)
            if seen is not None and seen[1] == histogram.total:
                continue
            entry = self._histogram_entry(key, histogram.edges)
            if entry["edges"] != histogram.edges:
                raise ConfigurationError(
                    f"histogram edges changed for series {render_series(*key)!r}"
                )
            prev_counts = seen[0] if seen is not None else [0] * len(histogram.counts)
            prev_total = seen[1] if seen is not None else 0
            prev_sum = seen[2] if seen is not None else 0.0
            entry["counts"][slot] += np.asarray(histogram.counts) - prev_counts
            entry["totals"][slot] += histogram.total - prev_total
            entry["sums"][slot] += histogram.sum - prev_sum
            hist_last[key] = (list(histogram.counts), histogram.total, histogram.sum)
        self._sample_counts[slot] += 1
        self.samples += 1
        self.last_clock = int(clock)
        return bucket

    # -- merge ---------------------------------------------------------------

    def merge(self, other: "TimeSeriesRecorder") -> None:
        """Fold another recorder in (commutative per bucket).

        Counter/histogram deltas and sample counts add; gauges add too,
        matching the registry rule that per-shard gauges hold additive
        quantities.  The merged window is the union of both ranges,
        clipped to the newest ``capacity`` buckets.
        """
        if other.bucket_width != self.bucket_width:
            raise ConfigurationError(
                "cannot merge recorders with different bucket widths "
                f"({self.bucket_width} vs {other.bucket_width})"
            )
        if other.capacity != self.capacity:
            raise ConfigurationError(
                "cannot merge recorders with different capacities"
            )
        self.dropped += other.dropped
        self.samples += other.samples
        self.last_clock = max(self.last_clock, other.last_clock)
        if other.bucket_count == 0:
            return
        if self.bucket_count == 0:
            self._base, self._hi = other._base, other._hi
            self._sample_counts = other._sample_counts.copy()
            self._counters = {k: v.copy() for k, v in other._counters.items()}
            self._gauges = {k: v.copy() for k, v in other._gauges.items()}
            self._histograms = {
                key: {
                    "edges": entry["edges"],
                    "counts": entry["counts"].copy(),
                    "totals": entry["totals"].copy(),
                    "sums": entry["sums"].copy(),
                }
                for key, entry in other._histograms.items()
            }
            return
        new_base = min(self._base, other._base)
        new_hi = max(self._hi, other._hi)
        if new_hi - new_base > self.capacity:
            clipped_base = new_hi - self.capacity
            self.dropped += max(0, min(clipped_base, self._hi) - self._base)
            self.dropped += max(0, min(clipped_base, other._hi) - other._base)
            new_base = clipped_base

        def rebase(array: np.ndarray, base: int, hi: int) -> np.ndarray:
            out = np.zeros_like(array)
            lo = max(base, new_base)
            if lo < hi:
                out[lo - new_base : hi - new_base] = array[lo - base : hi - base]
            return out

        def fold(mine: np.ndarray | None, theirs: np.ndarray | None) -> np.ndarray:
            left = (
                rebase(mine, self._base, self._hi)
                if mine is not None
                else None
            )
            right = (
                rebase(theirs, other._base, other._hi)
                if theirs is not None
                else None
            )
            if left is None:
                assert right is not None
                return right
            if right is None:
                return left
            return left + right

        self._sample_counts = fold(self._sample_counts, other._sample_counts)
        for key in sorted(set(self._counters) | set(other._counters)):
            self._counters[key] = fold(
                self._counters.get(key), other._counters.get(key)
            )
        for key in sorted(set(self._gauges) | set(other._gauges)):
            self._gauges[key] = fold(self._gauges.get(key), other._gauges.get(key))
        for key in sorted(set(self._histograms) | set(other._histograms)):
            mine = self._histograms.get(key)
            theirs = other._histograms.get(key)
            if mine is not None and theirs is not None:
                if mine["edges"] != theirs["edges"]:
                    raise ConfigurationError(
                        "cannot merge histogram series with different edges"
                    )
            edges = (mine or theirs)["edges"]  # type: ignore[index]
            self._histograms[key] = {
                "edges": edges,
                "counts": fold(
                    mine["counts"] if mine else None,
                    theirs["counts"] if theirs else None,
                ),
                "totals": fold(
                    mine["totals"] if mine else None,
                    theirs["totals"] if theirs else None,
                ),
                "sums": fold(
                    mine["sums"] if mine else None,
                    theirs["sums"] if theirs else None,
                ),
            }
        self._base, self._hi = new_base, new_hi

    # -- derived views -------------------------------------------------------

    def _window(self, array: np.ndarray) -> np.ndarray:
        return array[: self.bucket_count]

    def counter_view(self, name: str, **labels: object) -> np.ndarray:
        """Per-bucket deltas of every counter series matching the
        selector (name plus a label subset), summed — oldest first."""
        out = np.zeros(self.bucket_count, dtype=np.int64)
        for key, array in self._counters.items():
            if _match(key, name, labels):
                out += self._window(array)
        return out

    def rate_view(self, name: str, **labels: object) -> np.ndarray:
        """Counter deltas per op-clock tick (the burn-rate numerator)."""
        return self.counter_view(name, **labels) / float(self.bucket_width)

    def gauge_view(self, name: str, **labels: object) -> np.ndarray:
        """Per-bucket gauge values (summed over matching series)."""
        out = np.zeros(self.bucket_count, dtype=np.float64)
        for key, array in self._gauges.items():
            if _match(key, name, labels):
                out += self._window(array)
        return out

    def histogram_view(
        self, name: str, **labels: object
    ) -> tuple[tuple[float, ...], np.ndarray, np.ndarray, np.ndarray] | None:
        """Summed per-bucket histogram deltas for a selector, as
        ``(edges, counts, totals, sums)`` — ``None`` when nothing matches."""
        edges: tuple[float, ...] | None = None
        counts = totals = sums = None
        for key, entry in self._histograms.items():
            if not _match(key, name, labels):
                continue
            if edges is None:
                edges = entry["edges"]
                counts = self._window(entry["counts"]).copy()
                totals = self._window(entry["totals"]).copy()
                sums = self._window(entry["sums"]).copy()
            else:
                if entry["edges"] != edges:
                    raise ConfigurationError(
                        f"selector {name!r} matches histograms with differing edges"
                    )
                counts += self._window(entry["counts"])
                totals += self._window(entry["totals"])
                sums += self._window(entry["sums"])
        if edges is None:
            return None
        return edges, counts, totals, sums

    def sampled_mask(self) -> np.ndarray:
        """Boolean per-bucket mask of buckets that saw >= 1 sample."""
        return self._window(self._sample_counts) > 0

    def last_bucket_snapshot(self) -> dict:
        """The newest bucket's deltas (the ``watch`` streaming payload)."""
        if self.bucket_count == 0:
            return {"bucket": None, "clock": None, "counters": {}, "gauges": {}}
        slot = self.bucket_count - 1
        bucket = self._hi - 1
        return {
            "bucket": bucket,
            "clock": (bucket + 1) * self.bucket_width,
            "counters": {
                render_series(*key): int(array[slot])
                for key, array in sorted(self._counters.items())
                if array[slot]
            },
            "gauges": {
                render_series(*key): round(float(array[slot]), 6)
                for key, array in sorted(self._gauges.items())
                if array[slot]
            },
        }

    # -- snapshots / export --------------------------------------------------

    def snapshot(self) -> dict:
        """Deterministic series→values mapping over the retained window,
        sorted by series id — the digest-bearing surface."""
        count = self.bucket_count
        return {
            "bucket_width": self.bucket_width,
            "capacity": self.capacity,
            "start_bucket": self._base,
            "buckets": count,
            "samples": self.samples,
            "buckets_dropped": self.dropped,
            "samples_per_bucket": self._window(self._sample_counts).tolist(),
            "counters": {
                render_series(*key): self._window(self._counters[key]).tolist()
                for key in sorted(self._counters)
            },
            "gauges": {
                render_series(*key): [
                    round(float(v), 6) for v in self._window(self._gauges[key])
                ]
                for key in sorted(self._gauges)
            },
            "histograms": {
                render_series(*key): {
                    "edges": list(self._histograms[key]["edges"]),
                    "counts": self._window(self._histograms[key]["counts"]).tolist(),
                    "totals": self._window(self._histograms[key]["totals"]).tolist(),
                    "sums": [
                        round(float(v), 6)
                        for v in self._window(self._histograms[key]["sums"])
                    ],
                }
                for key in sorted(self._histograms)
            },
        }

    def export_records(self) -> list[dict]:
        """The JSONL record stream: one meta header + one record per
        series (the shape :func:`read_series_jsonl` reads back)."""
        snapshot = self.snapshot()
        records: list[dict] = [
            {
                "record": "meta",
                "bucket_width": snapshot["bucket_width"],
                "capacity": snapshot["capacity"],
                "start_bucket": snapshot["start_bucket"],
                "buckets": snapshot["buckets"],
                "samples": snapshot["samples"],
                "buckets_dropped": snapshot["buckets_dropped"],
                "samples_per_bucket": snapshot["samples_per_bucket"],
            }
        ]
        for series, values in snapshot["counters"].items():
            records.append({"record": "series", "kind": "counter",
                            "series": series, "values": values})
        for series, values in snapshot["gauges"].items():
            records.append({"record": "series", "kind": "gauge",
                            "series": series, "values": values})
        for series, entry in snapshot["histograms"].items():
            records.append({"record": "series", "kind": "histogram",
                            "series": series, **entry})
        return records

    def write_jsonl(self, path: str) -> int:
        """Write the series export as JSONL; returns the line count."""
        records = self.export_records()
        with open(path, "w") as handle:
            for record in records:
                handle.write(json.dumps(record, sort_keys=True) + "\n")
        return len(records)

    def write_csv(self, path: str) -> int:
        """Flat CSV export (counters and gauges; histogram totals/sums as
        derived ``_count``/``_sum`` series); returns the row count."""
        clocks = self.bucket_clocks()
        rows: list[tuple[str, str, int, int, float]] = []
        for key in sorted(self._counters):
            series = render_series(*key)
            for index, value in enumerate(self._window(self._counters[key])):
                rows.append(("counter", series, self._base + index,
                             clocks[index], float(value)))
        for key in sorted(self._gauges):
            series = render_series(*key)
            for index, value in enumerate(self._window(self._gauges[key])):
                rows.append(("gauge", series, self._base + index,
                             clocks[index], float(value)))
        for key in sorted(self._histograms):
            entry = self._histograms[key]
            for suffix, values in (
                ("_count", self._window(entry["totals"])),
                ("_sum", self._window(entry["sums"])),
            ):
                series = render_series(key[0] + suffix, key[1])
                for index, value in enumerate(values):
                    rows.append(("histogram", series, self._base + index,
                                 clocks[index], float(value)))
        with open(path, "w") as handle:
            handle.write("kind,series,bucket,clock,value\n")
            for kind, series, bucket, clock, value in rows:
                handle.write(f'{kind},"{series}",{bucket},{clock},{value:g}\n')
        return len(rows)


def read_series_jsonl(path: str) -> dict:
    """Read a series JSONL export back into a structured dict.

    Returns ``{"meta": {...}, "series": [records...], "slos": [...],
    "alerts": [...]}`` — the ``slo``/``alert`` records are appended by
    :func:`repro.obs.slo.write_slo_jsonl` and absent from a plain
    recorder export.
    """
    meta: dict = {}
    series: list[dict] = []
    slos: list[dict] = []
    alerts: list[dict] = []
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            record = json.loads(line)
            kind = record.get("record")
            if kind == "meta":
                meta = record
            elif kind == "series":
                series.append(record)
            elif kind == "slo":
                slos.append(record)
            elif kind == "alert":
                alerts.append(record)
    return {"meta": meta, "series": series, "slos": slos, "alerts": alerts}
