"""Unified observability: deterministic tracing, labeled metrics, profiling.

The reproduction's measurement layers answer *what* happened (telemetry
counters, benchmark numbers); this package answers *why* and *where*:

:mod:`repro.obs.tracer`
    Deterministic, op-clock-stamped span trees around every service
    pipeline stage and Monte Carlo study phase, with every-Nth / always-
    on-error sampling, shard-order merging and JSONL export — the same
    bit-identical-across-worker-counts contract as the telemetry layer.
:mod:`repro.obs.metrics`
    :class:`MetricsRegistry` — counters, gauges and histograms keyed by
    ``(name, labels)``, with commutative merge, a deterministic snapshot
    and Prometheus text exposition.  Absorbs the service layer's flat
    counters behind a compatibility shim.
:mod:`repro.obs.profiler`
    Opt-in ``perf_counter`` phase timing for the executor and service
    stages — wall-clock by nature, therefore kept strictly outside every
    deterministic snapshot and reported on its own channel.
:mod:`repro.obs.report`
    ``aegis-repro obs-report`` — renders a run's trace + metrics
    artifacts into a markdown report (slowest spans, per-scheme stage
    cost, repartition/remap timeline).

The split mirrors the determinism rule that runs through the whole
codebase: anything merged into a snapshot must be a pure function of the
inputs; anything wall-clock lives on a clearly separate surface.
"""

from repro.obs.metrics import (
    Histogram,
    MetricsRegistry,
    get_metrics,
    parse_prometheus_text,
    render_series,
    set_metrics,
)
from repro.obs.profiler import NullProfiler, Profiler, get_profiler, set_profiler
from repro.obs.report import render_obs_report, write_obs_report
from repro.obs.tracer import (
    NullTracer,
    Span,
    Tracer,
    get_tracer,
    read_trace_jsonl,
    set_tracer,
)

__all__ = [
    "Histogram",
    "MetricsRegistry",
    "NullProfiler",
    "NullTracer",
    "Profiler",
    "Span",
    "Tracer",
    "get_metrics",
    "get_profiler",
    "get_tracer",
    "parse_prometheus_text",
    "read_trace_jsonl",
    "render_obs_report",
    "render_series",
    "set_metrics",
    "set_profiler",
    "set_tracer",
    "write_obs_report",
]
