"""Unified observability: deterministic tracing, labeled metrics, profiling.

The reproduction's measurement layers answer *what* happened (telemetry
counters, benchmark numbers); this package answers *why* and *where*:

:mod:`repro.obs.tracer`
    Deterministic, op-clock-stamped span trees around every service
    pipeline stage and Monte Carlo study phase, with every-Nth / always-
    on-error sampling, shard-order merging and JSONL export — the same
    bit-identical-across-worker-counts contract as the telemetry layer.
:mod:`repro.obs.metrics`
    :class:`MetricsRegistry` — counters, gauges and histograms keyed by
    ``(name, labels)``, with commutative merge, a deterministic snapshot
    and Prometheus text exposition.  Absorbs the service layer's flat
    counters behind a compatibility shim.
:mod:`repro.obs.profiler`
    Opt-in ``perf_counter`` phase timing for the executor and service
    stages — wall-clock by nature, therefore kept strictly outside every
    deterministic snapshot and reported on its own channel.
:mod:`repro.obs.report`
    ``aegis-repro obs-report`` / ``slo-report`` — renders a run's trace,
    metrics and time-series artifacts into markdown reports (slowest
    spans, per-scheme stage cost, error-budget tables, retention curves).
:mod:`repro.obs.timeseries`
    :class:`TimeSeriesRecorder` — samples registry deltas into fixed-
    width op-clock buckets (bounded numpy rings, commutative shard
    merge), giving every metric a deterministic time axis.
:mod:`repro.obs.slo`
    Declarative :class:`SLOSpec`s evaluated per bucket into error
    budgets and multi-window burn-rate alerts (:class:`AlertEvent`),
    consumed by the cluster control plane as a feedback signal.

The split mirrors the determinism rule that runs through the whole
codebase: anything merged into a snapshot must be a pure function of the
inputs; anything wall-clock lives on a clearly separate surface.
"""

from repro.obs.metrics import (
    Histogram,
    MetricsRegistry,
    get_metrics,
    parse_prometheus_text,
    parse_series,
    render_series,
    set_metrics,
)
from repro.obs.profiler import NullProfiler, Profiler, get_profiler, set_profiler
from repro.obs.report import (
    render_obs_report,
    render_slo_report,
    write_obs_report,
    write_slo_report,
)
from repro.obs.slo import (
    AlertEvent,
    SLOEngine,
    SLOSpec,
    default_cluster_slos,
    default_service_slos,
    parse_slo,
    read_slo_jsonl,
    write_slo_jsonl,
)
from repro.obs.timeseries import TimeSeriesRecorder, read_series_jsonl
from repro.obs.tracer import (
    NullTracer,
    Span,
    Tracer,
    get_tracer,
    read_trace_jsonl,
    set_tracer,
)

__all__ = [
    "AlertEvent",
    "Histogram",
    "MetricsRegistry",
    "NullProfiler",
    "NullTracer",
    "Profiler",
    "SLOEngine",
    "SLOSpec",
    "Span",
    "Tracer",
    "TimeSeriesRecorder",
    "default_cluster_slos",
    "default_service_slos",
    "get_metrics",
    "get_profiler",
    "get_tracer",
    "parse_prometheus_text",
    "parse_series",
    "parse_slo",
    "read_series_jsonl",
    "read_slo_jsonl",
    "read_trace_jsonl",
    "render_obs_report",
    "render_slo_report",
    "render_series",
    "set_metrics",
    "set_profiler",
    "set_tracer",
    "write_obs_report",
    "write_slo_jsonl",
    "write_slo_report",
]
