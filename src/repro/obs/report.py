"""Render a run's trace + metrics artifacts into a readable report.

``aegis-repro obs-report --trace out.jsonl --metrics metrics.prom``
turns the machine-shaped observability exports into the questions an
operator actually asks:

* **slowest spans** — which individual serviced writes cost the most
  (by cell writes / write passes), with their stage breakdown;
* **stage-cost breakdown per scheme** — where the pipeline spends its
  service cost (differential write vs verification vs repartition
  escalation vs remap), split by recovery scheme;
* **repartition / remap timeline** — every escalation event in op order,
  the storm view the spare pool is sized against;
* **metrics** — the labeled counter/gauge series from the exposition
  file.

Everything here is read-only over the artifact files, so the report can
be regenerated at any time (CI renders it next to the uploaded JSONL).
"""

from __future__ import annotations

import math

from repro.errors import ConfigurationError
from repro.obs.metrics import parse_prometheus_text, parse_series
from repro.obs.tracer import read_trace_jsonl
from repro.util.charts import line_chart
from repro.util.tables import render_table

#: cost keys ranked for "how expensive was this span", most meaningful first
COST_RANK_KEYS = ("cell_writes", "passes", "verification_reads")

#: span names that constitute the escalation timeline
TIMELINE_SPANS = ("spare_remap", "proactive_migration", "repartition")


def _subtree_cost(span: dict, key: str) -> float:
    total = span.get("costs", {}).get(key, 0)
    return total + sum(_subtree_cost(child, key) for child in span.get("children", ()))


def _walk(span: dict):
    yield span
    for child in span.get("children", ()):
        yield from _walk(child)


def _rank_key(roots: list[dict]) -> str:
    for key in COST_RANK_KEYS:
        if any(_subtree_cost(root, key) for root in roots):
            return key
    return COST_RANK_KEYS[0]


def _span_table(snapshot: dict) -> str:
    rows = []
    for name, entry in snapshot.get("spans", {}).items():
        costs = entry.get("costs", {})
        cost_text = (
            ", ".join(f"{key}={value:g}" for key, value in sorted(costs.items()))
            or "-"
        )
        rows.append((name, entry["count"], entry["errors"], cost_text))
    return render_table(
        ("Span", "Count", "Errors", "Cost totals"),
        rows,
        title="## Span inventory (deterministic snapshot)",
    )


def _slowest_spans(roots: list[dict], top: int) -> str:
    key = _rank_key(roots)
    ranked = sorted(roots, key=lambda r: _subtree_cost(r, key), reverse=True)[:top]
    rows = []
    for root in ranked:
        attrs = root.get("attrs", {})
        stages = ", ".join(
            f"{child['name']}={_subtree_cost(child, key):g}"
            for child in root.get("children", ())
            if _subtree_cost(child, key)
        )
        rows.append(
            (
                root["name"],
                attrs.get("op", "-"),
                attrs.get("address", "-"),
                attrs.get("shard", "-"),
                f"{_subtree_cost(root, key):g}",
                "yes" if root.get("error") else "",
                stages or "-",
            )
        )
    return render_table(
        ("Span", "Op", "Addr", "Shard", key, "Error", "Stage split"),
        rows,
        title=f"## Slowest spans (top {len(rows)} by {key})",
    )


def _stage_breakdown(roots: list[dict]) -> str:
    """Per-(scheme, stage) totals of every cost key seen in the trace."""
    per_stage: dict[tuple[str, str], dict[str, float]] = {}
    for root in roots:
        scheme = str(root.get("attrs", {}).get("scheme", "-"))
        for span in _walk(root):
            entry = per_stage.setdefault((scheme, span["name"]), {})
            for key, value in span.get("costs", {}).items():
                entry[key] = entry.get(key, 0) + value
    cost_keys = sorted({key for entry in per_stage.values() for key in entry})
    rows = [
        (scheme, stage, *[f"{per_stage[(scheme, stage)].get(k, 0):g}" for k in cost_keys])
        for scheme, stage in sorted(per_stage)
        if per_stage[(scheme, stage)]
    ]
    return render_table(
        ("Scheme", "Stage", *cost_keys),
        rows,
        title="## Stage-cost breakdown per scheme",
    )


def _timeline(roots: list[dict], top: int) -> str:
    events = []
    for root in roots:
        shard = root.get("attrs", {}).get("shard", "-")
        for span in _walk(root):
            if span["name"] not in TIMELINE_SPANS:
                continue
            attrs = span.get("attrs", {})
            events.append(
                (
                    attrs.get("op", 0),
                    shard,
                    span["name"],
                    attrs.get("address", "-"),
                    "failed" if span.get("error") else "ok",
                )
            )
    events.sort(key=lambda e: (str(e[1]), e[0]))
    rows = [(op, shard, name, addr, outcome) for op, shard, name, addr, outcome in events[:top]]
    if not rows:
        return "## Repartition / remap timeline\n\n(no escalation events traced)\n"
    return render_table(
        ("Op", "Shard", "Event", "Addr", "Outcome"),
        rows,
        title="## Repartition / remap timeline",
    )


def _parse_series(series: str) -> tuple[str, dict[str, str]]:
    """Split a rendered series name into (metric name, label dict).

    Thin tolerant wrapper over :func:`repro.obs.metrics.parse_series`
    (the full inverse of ``render_series``, escapes included) — report
    inputs are artifact files, so an unparseable id degrades to a
    label-less series instead of aborting the report.
    """
    try:
        return parse_series(series)
    except ConfigurationError:
        return series, {}


def _bucket_quantile(buckets: dict[str, int], q: float) -> str:
    """Quantile label from cumulative Prometheus buckets (``">640"`` when
    it overflows the finite edges — mirroring ``Histogram.quantile_label``)."""

    def edge_value(le: str) -> float:
        return math.inf if le in ("+Inf", "inf") else float(le)

    items = sorted(buckets.items(), key=lambda kv: edge_value(kv[0]))
    total = items[-1][1] if items else 0
    if total == 0:
        return "0"
    rank = max(1, math.ceil(q * total))
    for index, (le, cumulative) in enumerate(items):
        if cumulative >= rank:
            if edge_value(le) is math.inf and index > 0:
                return f">{items[index - 1][0]}"
            return le if edge_value(le) is not math.inf else "inf"
    return items[-1][0]  # pragma: no cover - cumulative buckets end at total


def _tenant_slo_section(series: dict[str, float]) -> str | None:
    """Per-tenant SLO table from the ``tenant_*`` series a cluster run
    exports (``None`` when the run had no tenants).

    A partially-exported run (e.g. writes counted but no backpressure or
    stage-cost series — a truncated scrape, or a run that never hit the
    bulk watermark) still gets a row; the absent cells render ``n/a``
    instead of a misleading ``0``.
    """
    tenants: dict[str, dict] = {}
    for full, value in series.items():
        name, labels = _parse_series(full)
        tenant = labels.get("tenant")
        if tenant is None:
            continue
        entry = tenants.setdefault(
            tenant,
            {"qos": None, "writes": None, "reads": None,
             "backpressure": None, "buckets": {}},
        )
        if name == "tenant_writes_total":
            entry["writes"] = int(value)
            entry["qos"] = labels.get("qos", entry["qos"])
        elif name == "tenant_reads_total":
            entry["reads"] = int(value)
        elif name == "tenant_backpressure_total":
            entry["backpressure"] = int(value)
        elif name == "tenant_stage_cost_bucket":
            entry["buckets"][labels.get("le", "+Inf")] = int(value)
    if not tenants:
        return None

    def cell(value: object) -> str:
        return "n/a" if value is None else str(value)

    rows = [
        (
            tenant,
            cell(entry["qos"]),
            cell(entry["writes"]),
            cell(entry["reads"]),
            cell(entry["backpressure"]),
            _bucket_quantile(entry["buckets"], 0.5) if entry["buckets"] else "n/a",
            _bucket_quantile(entry["buckets"], 0.99) if entry["buckets"] else "n/a",
        )
        for tenant, entry in sorted(tenants.items())
    ]
    return render_table(
        ("Tenant", "QoS", "Writes", "Reads", "Backpressure", "p50 cost", "p99 cost"),
        rows,
        title="## Per-tenant SLO summary",
    )


def _metrics_section(series: dict[str, float], top: int) -> str:
    scalar = {
        name: value
        for name, value in series.items()
        if "_bucket{" not in name and not name.endswith("_bucket")
    }
    rows = [
        (name, f"{value:g}")
        for name, value in sorted(scalar.items(), key=lambda kv: (-kv[1], kv[0]))[:top]
    ]
    return render_table(
        ("Series", "Value"),
        rows,
        title=f"## Metrics ({len(scalar)} series, top {len(rows)} by value)",
    )


# -- SLO / time-series sections (the ``slo-report`` subcommand) -------------


def _budget_table(slos: list[dict]) -> str:
    """Error-budget accounting, one row per SLO."""
    rows = [
        (
            record.get("name", "-"),
            record.get("description", record.get("kind", "-")),
            record.get("events", 0),
            record.get("bad", 0),
            f"{record.get('budget', 0):g}",
            f"{record.get('budget_consumed', 0) * 100:.1f}%",
            f"{record.get('budget_left_fraction', 0) * 100:.1f}%",
            record.get("violating_buckets", 0),
            len(record.get("alerts", ())),
            record.get("action") or "-",
        )
        for record in slos
    ]
    return render_table(
        ("SLO", "Objective", "Events", "Bad", "Budget", "Consumed",
         "Left", "Violating", "Alerts", "Action"),
        rows,
        title="## Error budgets",
    )


def _alert_timeline(slos: list[dict], alerts: list[dict]) -> str:
    """Alert rising edges in op-clock order (deduplicated across the
    per-SLO lists and the flat alert records)."""
    seen: set[tuple] = set()
    events: list[dict] = []
    for record in alerts + [a for s in slos for a in s.get("alerts", ())]:
        key = (record.get("slo"), record.get("bucket"))
        if key in seen:
            continue
        seen.add(key)
        events.append(record)
    if not events:
        return "## Alert timeline\n\n(no burn-rate alerts fired)\n"
    events.sort(key=lambda e: (e.get("bucket", 0), str(e.get("slo", ""))))
    rows = [
        (
            event.get("bucket", "-"),
            event.get("clock", "-"),
            event.get("slo", "-"),
            f"{event.get('burn_fast', 0):g}",
            f"{event.get('burn_slow', 0):g}",
            event.get("action") or "-",
        )
        for event in events
    ]
    return render_table(
        ("Bucket", "Clock", "SLO", "Burn (fast)", "Burn (slow)", "Action"),
        rows,
        title="## Alert timeline",
    )


def _chartable(xs: list[float], series: dict[str, list[float]]) -> bool:
    return bool(series) and len(xs) >= 2 and len(set(xs)) >= 2


def _retention_chart(meta: dict, series: list[dict]) -> str | None:
    """ASCII retention curves from ``capacity_retention`` gauge series."""
    curves = {}
    for record in series:
        if record.get("kind") != "gauge":
            continue
        name, labels = _parse_series(record.get("series", ""))
        if name != "capacity_retention":
            continue
        curves[labels.get("scope", record["series"])] = [
            float(v) for v in record.get("values", ())
        ]
    start = int(meta.get("start_bucket", 0))
    length = max((len(v) for v in curves.values()), default=0)
    xs = [float(start + index) for index in range(length)]
    if not _chartable(xs, curves):
        return None
    return (
        "## Capacity retention\n\n```\n"
        + line_chart(xs, curves, title="capacity_retention per bucket",
                     x_label="op-clock bucket")
        + "\n```\n"
    )


def _burn_chart(meta: dict, slos: list[dict]) -> str | None:
    """Slow-window burn rates per SLO over the retained buckets."""
    curves = {
        record["name"]: [float(v) for v in record.get("burn_slow", ())]
        for record in slos
        if record.get("name") and any(record.get("burn_slow", ()))
    }
    start = int(meta.get("start_bucket", 0))
    length = max((len(v) for v in curves.values()), default=0)
    xs = [float(start + index) for index in range(length)]
    if not _chartable(xs, curves):
        return None
    return (
        "## Burn rates (slow window)\n\n```\n"
        + line_chart(xs, curves, title="burn rate per bucket",
                     x_label="op-clock bucket")
        + "\n```\n"
    )


def _series_sections(series_path: str, top: int) -> list[str]:
    """The SLO/time-series sections shared by obs-report and slo-report."""
    from repro.obs.timeseries import read_series_jsonl

    data = read_series_jsonl(series_path)
    meta, slos = data["meta"], data["slos"]
    sections = []
    if meta:
        sections.append(
            f"{meta.get('buckets', 0)} op-clock bucket(s) of width "
            f"{meta.get('bucket_width', 0)} retained "
            f"({meta.get('samples', 0)} samples, "
            f"{meta.get('buckets_dropped', 0)} evicted)."
        )
        sections.append("")
    if slos:
        sections.append(_budget_table(slos))
        sections.append(_alert_timeline(slos, data["alerts"]))
        burn = _burn_chart(meta, slos)
        if burn is not None:
            sections.append(burn)
    retention = _retention_chart(meta, data["series"])
    if retention is not None:
        sections.append(retention)
    counters = [r for r in data["series"] if r.get("kind") == "counter"]
    if counters:
        ranked = sorted(
            counters, key=lambda r: (-sum(r.get("values", ())), r.get("series", ""))
        )[:top]
        rows = [
            (record["series"], f"{sum(record.get('values', ())):g}",
             len(record.get("values", ())))
            for record in ranked
        ]
        sections.append(
            render_table(
                ("Series", "Total delta", "Buckets"),
                rows,
                title=f"## Time series ({len(counters)} counter series, "
                      f"top {len(rows)} by volume)",
            )
        )
    return sections


def render_slo_report(
    series_path: str,
    *,
    top: int = 10,
    title: str = "SLO report",
) -> str:
    """Render the error-budget / alert / retention report from a series
    JSONL artifact (``write_slo_jsonl`` or a recorder export)."""
    sections = [f"# {title}", ""]
    sections.extend(_series_sections(series_path, top))
    return "\n".join(sections).rstrip() + "\n"


def write_slo_report(
    output_path: str,
    series_path: str,
    *,
    top: int = 10,
    title: str = "SLO report",
) -> int:
    """Write the rendered SLO report to ``output_path``; returns its size."""
    text = render_slo_report(series_path, top=top, title=title)
    with open(output_path, "w") as handle:
        handle.write(text)
    return len(text)


def render_obs_report(
    trace_path: str | None,
    metrics_path: str | None = None,
    *,
    series_path: str | None = None,
    top: int = 10,
    title: str = "Observability report",
) -> str:
    """Render the markdown report for one run's artifacts.

    Any artifact may be omitted: a metrics-only report (the
    ``cluster-bench`` smoke path, which traces nothing) renders the
    per-tenant SLO and metrics sections alone; a series artifact adds
    the error-budget/retention sections from ``slo-report``.
    """
    sections = [f"# {title}", ""]
    if trace_path is not None:
        roots, snapshot = read_trace_jsonl(trace_path)
        if snapshot is not None:
            sections.append(
                f"{snapshot.get('roots_kept', len(roots))} span tree(s) kept, "
                f"{snapshot.get('roots_sampled_out', 0)} sampled out."
            )
            sections.append("")
            sections.append(_span_table(snapshot))
        if roots:
            sections.append(_slowest_spans(roots, top))
            sections.append(_stage_breakdown(roots))
            sections.append(_timeline(roots, max(top * 2, 20)))
        else:
            sections.append("(trace contains no span trees)")
    if metrics_path is not None:
        with open(metrics_path) as handle:
            series = parse_prometheus_text(handle.read())
        tenant_section = _tenant_slo_section(series)
        if tenant_section is not None:
            sections.append(tenant_section)
        sections.append(_metrics_section(series, max(top * 2, 20)))
    if series_path is not None:
        sections.extend(_series_sections(series_path, top))
    return "\n".join(sections).rstrip() + "\n"


def write_obs_report(
    output_path: str,
    trace_path: str | None,
    metrics_path: str | None = None,
    *,
    series_path: str | None = None,
    top: int = 10,
    title: str = "Observability report",
) -> int:
    """Write the rendered report to ``output_path``; returns its size."""
    text = render_obs_report(
        trace_path, metrics_path, series_path=series_path, top=top, title=title
    )
    with open(output_path, "w") as handle:
        handle.write(text)
    return len(text)
