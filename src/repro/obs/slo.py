"""Declarative SLOs, error budgets and burn-rate alerting.

An :class:`SLOSpec` states an objective against the time series a
:class:`~repro.obs.timeseries.TimeSeriesRecorder` collects:

* **ratio** — a bad/total counter ratio stays under the objective
  (``writes_total{outcome=lost} / writes_total < 0.001``);
* **quantile** — a histogram quantile stays under a bound
  (``p99(stage_cost{stage=differential_write}) < 640``); per bucket the
  "bad" events are the observations *above* the bound, so the objective
  is the tolerated tail mass ``1 - q``;
* **retention** — a gauge stays at or above a minimum
  (``capacity_retention{scope=cluster} >= 0.9``); sampled buckets where
  it dips below are the bad events.

Every kind reduces to per-bucket ``(bad, total)`` arrays, which makes
budgets and burn rates uniform: the **error budget** over a window is
``objective * total`` bad events, and the **burn rate** of a bucket
window is ``(bad / total) / objective`` — 1.0 means "consuming budget
exactly as fast as the objective allows", higher means the budget dies
early.  Alerts follow the SRE multi-window rule: a spec fires only when
*both* its fast window (responsive) and slow window (de-noised) burn
above the threshold, and an :class:`AlertEvent` is emitted on each
rising edge.  Events carry the op-clock bucket, never wall time, so
alert sequences are bit-identical across worker counts and engines —
and :meth:`SLOEngine.poll` gives the cluster control plane the same
rising edges incrementally, which is what lets ``maintenance()`` *act*
on an alert deterministically.

:func:`parse_slo` accepts the spec grammar used by ``repro slo-report
--slo`` (see docs/observability.md for the syntax).
"""

from __future__ import annotations

import json
import re
from dataclasses import asdict, dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.obs.timeseries import TimeSeriesRecorder

__all__ = [
    "AlertEvent",
    "SLOEngine",
    "SLOSpec",
    "default_cluster_slos",
    "default_service_slos",
    "parse_slo",
    "read_slo_jsonl",
    "write_slo_jsonl",
]

#: spec kinds understood by the engine
_KINDS = ("ratio", "quantile", "retention")


@dataclass(frozen=True)
class SLOSpec:
    """One service-level objective (frozen: usable as a dict key).

    ``fast_window``/``slow_window`` are bucket counts; ``burn_threshold``
    is the burn rate both windows must reach for the alert to fire;
    ``action`` names the control-plane reaction (``"migrate"`` asks
    :meth:`repro.cluster.service.ClusterService.maintenance` to sweep
    degraded keys off their arrays; ``""`` is observe-only).
    """

    name: str
    kind: str
    objective: float
    series: str
    bad_series: str = ""
    q: float = 0.99
    bound: float = 0.0
    fast_window: int = 1
    slow_window: int = 8
    burn_threshold: float = 2.0
    action: str = ""

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise ConfigurationError(f"unknown SLO kind: {self.kind!r}")
        if not 0.0 < self.objective <= 1.0:
            raise ConfigurationError("SLO objective must be in (0, 1]")
        if self.fast_window < 1 or self.slow_window < self.fast_window:
            raise ConfigurationError(
                "SLO windows must satisfy 1 <= fast_window <= slow_window"
            )
        if self.burn_threshold <= 0:
            raise ConfigurationError("SLO burn threshold must be positive")
        if self.kind == "retention" and self.bound <= 0:
            raise ConfigurationError(
                "retention minimum must be positive (a non-positive bound "
                "can never be violated)"
            )

    # -- constructors --------------------------------------------------------

    @classmethod
    def ratio(
        cls, name: str, bad: str, total: str, *, objective: float, **kwargs: object
    ) -> "SLOSpec":
        """Bad/total counter ratio must stay under ``objective``."""
        return cls(name=name, kind="ratio", objective=objective,
                   series=total, bad_series=bad, **kwargs)  # type: ignore[arg-type]

    @classmethod
    def quantile(
        cls, name: str, series: str, *, q: float, bound: float, **kwargs: object
    ) -> "SLOSpec":
        """The ``q``-quantile of a histogram must stay under ``bound``."""
        return cls(name=name, kind="quantile", objective=round(1.0 - q, 9),
                   series=series, q=q, bound=bound, **kwargs)  # type: ignore[arg-type]

    @classmethod
    def retention(
        cls,
        name: str,
        series: str,
        *,
        minimum: float,
        objective: float = 0.05,
        **kwargs: object,
    ) -> "SLOSpec":
        """A gauge must stay >= ``minimum`` in all but an ``objective``
        fraction of sampled buckets."""
        return cls(name=name, kind="retention", objective=objective,
                   series=series, bound=minimum, **kwargs)  # type: ignore[arg-type]

    def describe(self) -> str:
        """One-line human-readable form of the objective."""
        if self.kind == "ratio":
            return f"{self.bad_series} / {self.series} < {self.objective:g}"
        if self.kind == "quantile":
            return f"p{self.q * 100:g}({self.series}) < {self.bound:g}"
        return f"{self.series} >= {self.bound:g}"


@dataclass(frozen=True)
class AlertEvent:
    """A burn-rate alert rising edge, on the op-clock time axis."""

    slo: str
    bucket: int
    clock: int
    burn_fast: float
    burn_slow: float
    action: str = ""

    def to_dict(self) -> dict:
        return asdict(self)


#: ``p99(series{...})`` call in the spec grammar
_QUANTILE_RE = re.compile(r"^p(\d+(?:\.\d+)?)\((.+)\)$")


def _parse_selector(text: str) -> tuple[str, dict[str, str]]:
    """A spec-side series selector: bare name or ``name{k=v,...}`` with
    optionally-quoted label values."""
    text = text.strip()
    if "{" not in text:
        if not re.fullmatch(r"[\w:]+", text):
            raise ConfigurationError(f"unparseable series selector: {text!r}")
        return text, {}
    if not text.endswith("}"):
        raise ConfigurationError(f"unparseable series selector: {text!r}")
    name, body = text[:-1].split("{", 1)
    labels: dict[str, str] = {}
    if body.strip():
        for part in body.split(","):
            if "=" not in part:
                raise ConfigurationError(f"unparseable series selector: {text!r}")
            key, value = part.split("=", 1)
            labels[key.strip()] = value.strip().strip('"')
    return name.strip(), labels


def _render_selector(name: str, labels: dict[str, str]) -> str:
    if not labels:
        return name
    inner = ",".join(f"{key}={value}" for key, value in sorted(labels.items()))
    return f"{name}{{{inner}}}"


def parse_slo(text: str, **kwargs: object) -> SLOSpec:
    """Parse an SLO spec string into an :class:`SLOSpec`.

    Grammar (optional leading ``name:`` gives the SLO its name):

    * ``bad_selector / total_selector < objective`` — ratio
    * ``pQQ(selector) < bound`` — histogram quantile
    * ``selector >= minimum`` — gauge retention

    Keyword arguments pass through to the spec (windows, threshold,
    action).
    """
    body = text.strip()
    name = ""
    head, sep, rest = body.partition(":")
    if sep and "{" not in head and "/" not in head and "<" not in head:
        name, body = head.strip(), rest.strip()
    if ">=" in body:
        series, _, minimum = body.partition(">=")
        selector = _parse_selector(series)
        return SLOSpec.retention(
            name or f"{selector[0]}_retention",
            _render_selector(*selector),
            minimum=float(minimum),
            **kwargs,  # type: ignore[arg-type]
        )
    if "<" not in body:
        raise ConfigurationError(f"unparseable SLO spec: {text!r}")
    left, _, threshold = body.rpartition("<")
    left = left.strip()
    quantile = _QUANTILE_RE.match(left)
    if quantile:
        q = float(quantile.group(1)) / 100.0
        selector = _parse_selector(quantile.group(2))
        return SLOSpec.quantile(
            name or f"{selector[0]}_p{quantile.group(1)}",
            _render_selector(*selector),
            q=q,
            bound=float(threshold),
            **kwargs,  # type: ignore[arg-type]
        )
    if "/" in left:
        bad_text, _, total_text = left.partition("/")
        bad = _parse_selector(bad_text)
        total = _parse_selector(total_text)
        return SLOSpec.ratio(
            name or f"{bad[0]}_ratio",
            _render_selector(*bad),
            _render_selector(*total),
            objective=float(threshold),
            **kwargs,  # type: ignore[arg-type]
        )
    raise ConfigurationError(f"unparseable SLO spec: {text!r}")


def default_service_slos() -> tuple[SLOSpec, ...]:
    """SLOs every single-array service run can evaluate."""
    return (
        SLOSpec.ratio(
            "write_loss",
            "writes_total{outcome=lost}",
            "writes_total",
            objective=0.001,
            burn_threshold=2.0,
        ),
        SLOSpec.quantile(
            "drain_cost_p99",
            "stage_cost{stage=differential_write}",
            q=0.99,
            bound=640.0,
            burn_threshold=2.0,
        ),
    )


def default_cluster_slos() -> tuple[SLOSpec, ...]:
    """The cluster control plane's SLO roster.

    ``degrade_burst`` is the feedback hook: its alert carries
    ``action="migrate"``, which :meth:`ClusterService.maintenance` turns
    into an immediate sweep of degraded keys (see docs/observability.md).
    """
    return default_service_slos() + (
        SLOSpec.ratio(
            "degrade_burst",
            "health_transitions_total{to=degraded}",
            "writes_total",
            objective=0.02,
            fast_window=1,
            slow_window=4,
            burn_threshold=2.0,
            action="migrate",
        ),
        SLOSpec.retention(
            "capacity_retention",
            "capacity_retention{scope=cluster}",
            minimum=0.9,
            objective=0.05,
            fast_window=1,
            slow_window=4,
            burn_threshold=2.0,
        ),
    )


class SLOEngine:
    """Evaluate :class:`SLOSpec`s against a recorder's buckets."""

    def __init__(
        self, recorder: TimeSeriesRecorder, specs: tuple[SLOSpec, ...] | list[SLOSpec]
    ) -> None:
        names = [spec.name for spec in specs]
        if len(set(names)) != len(names):
            raise ConfigurationError("SLO spec names must be unique")
        self.recorder = recorder
        self.specs = tuple(specs)
        # poll() memory: absolute buckets already alerted per spec, so the
        # control plane sees each rising edge exactly once across polls
        self._alerted: dict[str, set[int]] = {spec.name: set() for spec in self.specs}

    # -- per-spec series -----------------------------------------------------

    def _bad_total(self, spec: SLOSpec) -> tuple[np.ndarray, np.ndarray]:
        """Per-bucket ``(bad, total)`` event counts for a spec."""
        recorder = self.recorder
        if spec.kind == "ratio":
            bad_name, bad_labels = _parse_selector(spec.bad_series)
            total_name, total_labels = _parse_selector(spec.series)
            bad = recorder.counter_view(bad_name, **bad_labels).astype(np.float64)
            total = recorder.counter_view(total_name, **total_labels).astype(np.float64)
            return bad, total
        if spec.kind == "quantile":
            name, labels = _parse_selector(spec.series)
            view = recorder.histogram_view(name, **labels)
            if view is None:
                empty = np.zeros(recorder.bucket_count, dtype=np.float64)
                return empty, empty.copy()
            edges, counts, totals, _sums = view
            # observations in buckets whose inclusive upper edge is <= bound
            # are within the objective; everything else (incl. overflow) is bad
            good_buckets = sum(1 for edge in edges if edge <= spec.bound)
            good = counts[:, :good_buckets].sum(axis=1) if good_buckets else 0
            total = totals.astype(np.float64)
            return total - good, total
        # retention: bad = sampled buckets where the gauge dips below minimum
        name, labels = _parse_selector(spec.series)
        values = recorder.gauge_view(name, **labels)
        sampled = recorder.sampled_mask()
        total = sampled.astype(np.float64)
        bad = (sampled & (values < spec.bound)).astype(np.float64)
        return bad, total

    @staticmethod
    def _burn(
        bad: np.ndarray, total: np.ndarray, window: int, objective: float
    ) -> np.ndarray:
        """Trailing-window burn rate per bucket (0 where the window saw
        no events; always finite)."""
        if bad.size == 0:
            return np.zeros(0, dtype=np.float64)
        kernel = np.ones(window, dtype=np.float64)
        bad_sum = np.convolve(bad, kernel)[: bad.size]
        total_sum = np.convolve(total, kernel)[: bad.size]
        out = np.zeros(bad.size, dtype=np.float64)
        mask = total_sum > 0
        out[mask] = (bad_sum[mask] / total_sum[mask]) / objective
        return out

    def _fired(self, spec: SLOSpec) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Per-bucket ``(fired, burn_fast, burn_slow)`` for a spec."""
        bad, total = self._bad_total(spec)
        fast = self._burn(bad, total, spec.fast_window, spec.objective)
        slow = self._burn(bad, total, spec.slow_window, spec.objective)
        fired = (fast >= spec.burn_threshold) & (slow >= spec.burn_threshold)
        return fired, fast, slow

    def _events(
        self, spec: SLOSpec, fired: np.ndarray, fast: np.ndarray, slow: np.ndarray
    ) -> list[AlertEvent]:
        """Rising-edge alert events over the retained window."""
        recorder = self.recorder
        events: list[AlertEvent] = []
        previous = False
        for index, firing in enumerate(fired.tolist()):
            if firing and not previous:
                bucket = recorder.start_bucket + index
                events.append(
                    AlertEvent(
                        slo=spec.name,
                        bucket=bucket,
                        clock=(bucket + 1) * recorder.bucket_width,
                        burn_fast=round(float(fast[index]), 6),
                        burn_slow=round(float(slow[index]), 6),
                        action=spec.action,
                    )
                )
            previous = firing
        return events

    # -- reporting -----------------------------------------------------------

    def evaluate(self) -> dict:
        """Full evaluation: per-spec budget accounting, burn-rate series
        and alert events over the retained window (deterministic; safe
        to fold into digested snapshots)."""
        report: dict = {
            "buckets": self.recorder.bucket_count,
            "bucket_width": self.recorder.bucket_width,
            "start_bucket": self.recorder.start_bucket,
            "slos": {},
        }
        for spec in self.specs:
            bad, total = self._bad_total(spec)
            fired, fast, slow = self._fired(spec)
            events = self._events(spec, fired, fast, slow)
            total_events = float(total.sum())
            bad_events = float(bad.sum())
            budget = spec.objective * total_events
            consumed = bad_events / budget if budget > 0 else 0.0
            report["slos"][spec.name] = {
                "kind": spec.kind,
                "objective": spec.objective,
                "description": spec.describe(),
                "action": spec.action,
                "events": int(total_events),
                "bad": int(bad_events),
                "budget": round(budget, 6),
                "budget_consumed": round(consumed, 6),
                "budget_left_fraction": round(max(0.0, 1.0 - consumed), 6),
                "violating_buckets": int(fired.sum()),
                "burn_fast": [round(float(v), 6) for v in fast],
                "burn_slow": [round(float(v), 6) for v in slow],
                "alerts": [event.to_dict() for event in events],
            }
        return report

    def poll(self) -> list[AlertEvent]:
        """New rising-edge alerts since the previous poll.

        Incremental and stateful: each spec remembers which buckets it
        already alerted on, so the control plane sees each rising edge
        exactly once however often it polls — including an edge on the
        newest, still-filling bucket (per-bucket deltas only ever grow,
        so a bucket's firing state is monotonic and a late-completing
        bucket still raises its edge on the next poll).  Evicted buckets
        are forgotten (their data is gone; they can never re-fire).
        """
        fresh: list[AlertEvent] = []
        for spec in self.specs:
            fired, fast, slow = self._fired(spec)
            start = self.recorder.start_bucket
            alerted = self._alerted[spec.name]
            alerted.difference_update(
                {bucket for bucket in alerted if bucket < start}
            )
            previous = False
            for index, firing in enumerate(fired.tolist()):
                bucket = start + index
                if firing and not previous and bucket not in alerted:
                    alerted.add(bucket)
                    fresh.append(
                        AlertEvent(
                            slo=spec.name,
                            bucket=bucket,
                            clock=(bucket + 1) * self.recorder.bucket_width,
                            burn_fast=round(float(fast[index]), 6),
                            burn_slow=round(float(slow[index]), 6),
                            action=spec.action,
                        )
                    )
                previous = firing
        return fresh

    def active_actions(self) -> frozenset[str]:
        """Actions of specs whose *newest* bucket is currently firing.

        Alert *events* are edge-triggered (:meth:`poll` emits each rising
        edge once); the *response* should be level-triggered — a control
        plane keeps acting for as long as the burn condition holds, not
        only at the instant it first crossed the threshold.  Empty-string
        actions (observe-only specs) are never included.
        """
        active: set[str] = set()
        for spec in self.specs:
            if not spec.action:
                continue
            fired, _fast, _slow = self._fired(spec)
            if fired.size and bool(fired[-1]):
                active.add(spec.action)
        return frozenset(active)


def write_slo_jsonl(
    path: str, recorder: TimeSeriesRecorder, specs: tuple[SLOSpec, ...]
) -> int:
    """Write the series export plus SLO verdicts and alerts as one JSONL
    artifact (the file ``repro slo-report`` consumes); returns the line
    count."""
    engine = SLOEngine(recorder, specs)
    report = engine.evaluate()
    records = recorder.export_records()
    for name, entry in report["slos"].items():
        records.append({"record": "slo", "name": name, **entry})
        for alert in entry["alerts"]:
            records.append({"record": "alert", **alert})
    with open(path, "w") as handle:
        for record in records:
            handle.write(json.dumps(record, sort_keys=True) + "\n")
    return len(records)


def read_slo_jsonl(path: str) -> dict:
    """Read a :func:`write_slo_jsonl` artifact (alias of the series
    reader — slo/alert records are recognized there)."""
    from repro.obs.timeseries import read_series_jsonl

    return read_series_jsonl(path)
