"""Labeled metrics: counters, gauges and histograms with exposition.

The service layer's first telemetry cut (:mod:`repro.service.telemetry`)
was a flat counter bag — good enough to prove the pipeline worked, not
good enough to answer "how many writes were *remapped* under *this*
scheme".  :class:`MetricsRegistry` generalizes it: every metric is keyed
by ``(name, labels)`` where the labels are a frozen set of ``key=value``
pairs, so ``writes_total{scheme="aegis_rw", outcome="remapped"}`` and
``writes_total{scheme="aegis_rw", outcome="ok"}`` are independent series
that still share a name for exposition.

Three metric kinds, mirroring the Prometheus data model:

* **counters** — monotonically increasing integers (``inc``);
* **gauges** — last-set numeric values that *sum* on merge (per-shard
  gauges of additive quantities such as free blocks merge to the fleet
  total; non-additive gauges should live per-shard);
* **histograms** — fixed-bucket :class:`Histogram` series.

Determinism contract (shared with the rest of the observability layer):
no wall-clock, plain-int/float state, and a :meth:`MetricsRegistry.merge`
that is commutative for every metric kind, so sharded runs merge to a
snapshot that is bit-identical for any worker count and shard order.
:meth:`MetricsRegistry.to_prometheus_text` renders the standard text
exposition format for scraping-shaped tooling.
"""

from __future__ import annotations

import bisect
import math
import re
from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigurationError

#: label tuple as stored in registry keys: sorted ``(key, value)`` pairs
LabelItems = tuple[tuple[str, str], ...]

#: the label tuple of a label-less series (shared to skip sorting on the
#: hot no-label path)
NO_LABELS: LabelItems = ()

#: default bucket edges for registry histograms created without explicit
#: edges (coarse powers-of-two ladder)
DEFAULT_EDGES = (1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024)


@dataclass
class Histogram:
    """A fixed-bucket histogram with an unbounded overflow bucket.

    ``edges`` are inclusive upper bounds; a value larger than the last edge
    lands in the overflow bucket.  Buckets are plain counts, so merging two
    histograms (same edges) is element-wise addition.
    """

    edges: tuple[float, ...]
    counts: list[int] = field(default_factory=list)
    total: int = 0
    sum: float = 0.0

    def __post_init__(self) -> None:
        if not self.edges or list(self.edges) != sorted(self.edges):
            raise ConfigurationError("histogram edges must be non-empty and sorted")
        if not self.counts:
            self.counts = [0] * (len(self.edges) + 1)
        elif len(self.counts) != len(self.edges) + 1:
            raise ConfigurationError("histogram counts do not match edges")

    def observe(self, value: float) -> None:
        self.counts[bisect.bisect_left(self.edges, value)] += 1
        self.total += 1
        self.sum += value

    def observe_many(self, values: "np.ndarray") -> None:
        """Observe a whole batch of integer-valued observations at once.

        Equivalent to calling :meth:`observe` per element: the bucket for
        each value comes from ``searchsorted(..., side="left")`` (the same
        rule as ``bisect_left``), and because the observations are integers
        well below 2**53 the float ``sum`` accumulates exactly, so a batch
        observation is bit-identical to the sequential loop.
        """
        values = np.asarray(values)
        if values.size == 0:
            return
        buckets = np.searchsorted(self.edges, values, side="left")
        counts = self.counts
        for index, count in enumerate(np.bincount(buckets).tolist()):
            if count:
                counts[index] += count
        self.total += int(values.size)
        self.sum += float(values.sum())

    def observe_repeat(self, value: float, count: int) -> None:
        """Observe the same value ``count`` times (exact for integers)."""
        if count <= 0:
            return
        self.counts[bisect.bisect_left(self.edges, value)] += count
        self.total += count
        self.sum += value * count

    @property
    def mean(self) -> float:
        return self.sum / self.total if self.total else 0.0

    @property
    def overflow(self) -> int:
        """Observations beyond the last finite edge."""
        return self.counts[-1]

    def quantile(self, q: float) -> float:
        """Upper bound of the bucket containing the ``q``-quantile.

        The usual bucketed-histogram estimate, with two honest edge cases:
        a quantile that lands in the unbounded overflow bucket returns
        ``math.inf`` (the histogram genuinely cannot bound it — reporting
        the last finite edge would *under*-estimate the tail), and the
        rank is clamped to the first observation so ``q=0`` returns the
        lowest populated bucket rather than depending on empty leading
        buckets.
        """
        if not 0 <= q <= 1:
            raise ConfigurationError("quantile must be in [0, 1]")
        if self.total == 0:
            return 0.0
        rank = max(1, math.ceil(q * self.total))
        seen = 0
        for index, count in enumerate(self.counts):
            seen += count
            if seen >= rank:
                if index >= len(self.edges):
                    return math.inf
                return float(self.edges[index])
        raise AssertionError("histogram counts do not sum to total")  # pragma: no cover

    def quantile_label(self, q: float) -> str:
        """Human-readable quantile: ``">640"`` when it overflows the edges."""
        value = self.quantile(q)
        if math.isinf(value):
            return f">{self.edges[-1]:g}"
        return f"{value:g}"

    def merge(self, other: "Histogram") -> None:
        if other.edges != self.edges:
            raise ConfigurationError("cannot merge histograms with different edges")
        for index, count in enumerate(other.counts):
            self.counts[index] += count
        self.total += other.total
        self.sum += other.sum

    def to_dict(self) -> dict:
        return {
            "edges": list(self.edges),
            "counts": list(self.counts),
            "total": self.total,
            "sum": round(self.sum, 6),
            "mean": round(self.mean, 4),
        }


def _label_items(labels: dict[str, object]) -> LabelItems:
    return tuple(sorted((key, str(value)) for key, value in labels.items()))


def _escape(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


#: exposition escape sequences, decoded by :func:`_unescape`
_UNESCAPES = {"\\\\": "\\", '\\"': '"', "\\n": "\n"}


def _unescape(value: str) -> str:
    """Invert :func:`_escape` in a single left-to-right pass.

    A sequential ``.replace`` chain is wrong here: ``\\\\n`` (an escaped
    backslash followed by ``n``) would collapse to a newline.  Scanning
    left to right consumes each escape pair exactly once.
    """
    return re.sub(r"\\(\\|\"|n)", lambda m: _UNESCAPES[m.group(0)], value)


def render_series(name: str, labels: LabelItems | dict[str, object]) -> str:
    """The exposition-style series id: ``name{key="value",...}``.

    Accepts either pre-sorted label items (the registry's internal key
    form) or a plain mapping, which is normalised through
    :func:`_label_items` so :func:`parse_series` is an exact inverse.
    """
    if not labels:
        return name
    if isinstance(labels, dict):
        labels = _label_items(labels)
    inner = ",".join(f'{key}="{_escape(value)}"' for key, value in labels)
    return f"{name}{{{inner}}}"


class MetricsRegistry:
    """Counters, gauges and histograms keyed by ``(name, labels)``.

    Deliberately dict-of-plain-values inside (picklable, mergeable); the
    per-series access cost is one tuple build + dict lookup, cheap enough
    for the service hot path.
    """

    def __init__(self) -> None:
        self.counters: dict[tuple[str, LabelItems], int] = {}
        self.gauges: dict[tuple[str, LabelItems], float] = {}
        self.histograms: dict[tuple[str, LabelItems], Histogram] = {}

    # -- recording ----------------------------------------------------------

    def inc(self, name: str, amount: int = 1, **labels: object) -> None:
        """Add ``amount`` to the counter series ``name{labels}``."""
        key = (name, _label_items(labels)) if labels else (name, NO_LABELS)
        counters = self.counters
        counters[key] = counters.get(key, 0) + amount

    def series_key(self, name: str, **labels: object) -> tuple[str, LabelItems]:
        """The registry key of a counter series, for precomputation.

        Hot call sites (the service write path) build their series keys
        once and bump them with :meth:`inc_key`, skipping the per-call
        label sort of :meth:`inc`.
        """
        return (name, _label_items(labels))

    def inc_key(self, key: tuple[str, LabelItems], amount: int = 1) -> None:
        """Add ``amount`` to a counter series by precomputed key."""
        counters = self.counters
        counters[key] = counters.get(key, 0) + amount

    def set_gauge(self, name: str, value: float, **labels: object) -> None:
        key = (name, _label_items(labels))
        self.gauges[key] = value

    def observe(
        self,
        name: str,
        value: float,
        *,
        edges: tuple[float, ...] = DEFAULT_EDGES,
        **labels: object,
    ) -> None:
        key = (name, _label_items(labels))
        histogram = self.histograms.get(key)
        if histogram is None:
            histogram = self.histograms[key] = Histogram(edges)
        histogram.observe(value)

    def observe_many(
        self,
        name: str,
        values: "np.ndarray",
        *,
        edges: tuple[float, ...] = DEFAULT_EDGES,
        **labels: object,
    ) -> None:
        """Batch counterpart of :meth:`observe` (see
        :meth:`Histogram.observe_many` for the equivalence contract)."""
        key = (name, _label_items(labels))
        histogram = self.histograms.get(key)
        if histogram is None:
            histogram = self.histograms[key] = Histogram(edges)
        histogram.observe_many(values)

    # -- reading ------------------------------------------------------------

    def counter_value(self, name: str, **labels: object) -> int:
        return self.counters.get((name, _label_items(labels)), 0)

    def counter_total(self, name: str, **labels: object) -> int:
        """Sum of every counter series of ``name`` whose labels include
        the given ones (e.g. ``counter_total("writes_total",
        outcome="remapped")`` across all schemes)."""
        wanted = set(_label_items(labels))
        return sum(
            value
            for (series, items), value in self.counters.items()
            if series == name and wanted.issubset(items)
        )

    def flat_counters(self) -> dict[str, int]:
        """The label-less counters as a plain name→value dict (the
        compatibility surface :class:`~repro.service.telemetry
        .ServiceTelemetry` exposes as ``.counters``)."""
        return {
            name: value for (name, items), value in self.counters.items() if not items
        }

    # -- aggregation --------------------------------------------------------

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold another registry in: counters/gauges add, histograms merge
        bucket-wise — commutative in every part."""
        for key, value in other.counters.items():
            self.counters[key] = self.counters.get(key, 0) + value
        for key, value in other.gauges.items():
            self.gauges[key] = self.gauges.get(key, 0.0) + value
        for key, histogram in other.histograms.items():
            mine = self.histograms.get(key)
            if mine is None:
                self.histograms[key] = Histogram(
                    histogram.edges,
                    list(histogram.counts),
                    histogram.total,
                    histogram.sum,
                )
            else:
                mine.merge(histogram)

    def snapshot(self) -> dict:
        """Deterministic series→value mapping, sorted by series id."""

        def rendered(table: dict) -> dict:
            return {
                render_series(name, items): table[(name, items)]
                for name, items in sorted(table)
            }

        return {
            "counters": rendered(self.counters),
            "gauges": rendered(self.gauges),
            "histograms": {
                render_series(name, items): self.histograms[(name, items)].to_dict()
                for name, items in sorted(self.histograms)
            },
        }

    # -- exposition ---------------------------------------------------------

    def to_prometheus_text(self) -> str:
        """Render the registry in the Prometheus text exposition format."""
        lines: list[str] = []
        seen_types: set[str] = set()

        def type_line(name: str, kind: str) -> None:
            if name not in seen_types:
                seen_types.add(name)
                lines.append(f"# TYPE {name} {kind}")

        for name, items in sorted(self.counters):
            type_line(name, "counter")
            lines.append(f"{render_series(name, items)} {self.counters[(name, items)]}")
        for name, items in sorted(self.gauges):
            type_line(name, "gauge")
            lines.append(f"{render_series(name, items)} {self.gauges[(name, items)]:g}")
        for name, items in sorted(self.histograms):
            type_line(name, "histogram")
            histogram = self.histograms[(name, items)]
            cumulative = 0
            for edge, count in zip(histogram.edges, histogram.counts):
                cumulative += count
                bucket = items + (("le", f"{edge:g}"),)
                lines.append(f"{render_series(name + '_bucket', bucket)} {cumulative}")
            bucket = items + (("le", "+Inf"),)
            lines.append(f"{render_series(name + '_bucket', bucket)} {histogram.total}")
            lines.append(f"{render_series(name + '_sum', items)} {histogram.sum:g}")
            lines.append(f"{render_series(name + '_count', items)} {histogram.total}")
        return "\n".join(lines) + ("\n" if lines else "")

    def write_prometheus(self, path: str) -> int:
        """Write the text exposition to ``path``; returns the line count."""
        text = self.to_prometheus_text()
        with open(path, "w") as handle:
            handle.write(text)
        return text.count("\n")


#: process-wide registry for call sites too deep to parameterize (the
#: Monte Carlo study drivers under ``repro run --metrics``); unlike the
#: service path's per-shard registries this is parent-process only
_GLOBAL: MetricsRegistry | None = None


def get_metrics() -> MetricsRegistry | None:
    return _GLOBAL


def set_metrics(registry: MetricsRegistry | None) -> MetricsRegistry | None:
    """Install the process-wide registry; returns the previous one so
    callers can restore it."""
    global _GLOBAL
    previous = _GLOBAL
    _GLOBAL = registry
    return previous


#: one ``key="value"`` pair inside a series id; the value body matches
#: escape pairs or any non-special character, so escaped quotes do not
#: terminate the value early
_LABEL_RE = re.compile(r'(\w+)="((?:\\.|[^"\\])*)"')
_SERIES_RE = re.compile(r"^([\w:]+)(?:\{(.*)\})?$")


def parse_series(series: str) -> tuple[str, dict[str, str]]:
    """Split a rendered series id back into ``(name, labels)``.

    The inverse of :func:`render_series`, including unescaping — a label
    value containing ``"`` or ``\\`` survives the round trip.  Raises
    :class:`ConfigurationError` on series that were not produced by
    :func:`render_series`.
    """
    match = _SERIES_RE.match(series)
    if not match:
        raise ConfigurationError(f"unparseable series id: {series!r}")
    name, body = match.group(1), match.group(2)
    labels: dict[str, str] = {}
    if body:
        consumed = 0
        for pair in _LABEL_RE.finditer(body):
            labels[pair.group(1)] = _unescape(pair.group(2))
            consumed = pair.end()
            if consumed < len(body) and body[consumed] == ",":
                consumed += 1
        if consumed != len(body):
            raise ConfigurationError(f"unparseable series labels: {series!r}")
    return name, labels


def parse_prometheus_text(text: str) -> dict[str, float]:
    """Parse a text exposition back into a series→value dict.

    The inverse of :meth:`MetricsRegistry.to_prometheus_text` for the
    ``obs-report`` renderer; comment/blank lines are skipped and values
    are returned as floats (counters included).
    """
    series: dict[str, float] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        try:
            name, value = line.rsplit(" ", 1)
            series[name] = float(value)
        except ValueError:
            continue
    return series
