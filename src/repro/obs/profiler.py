"""Opt-in wall-clock profiling, kept strictly outside deterministic state.

The tracer (:mod:`repro.obs.tracer`) answers "which stage cost how many
cell writes"; this module answers "where did the *wall clock* go" —
SimExecutor scatter/gather, shard construction, the drive loop, the final
audit.  Because ``perf_counter`` readings are execution-dependent by
nature, a :class:`Profiler` must never feed the telemetry/trace
snapshots the cross-worker determinism tests assert on; it is collected,
merged and reported on a separate channel (``LoadReport.profile``,
``--profile`` output).

A module-level profiler hook lets deep call sites (the executor inside an
experiment) pick up profiling that the CLI enabled without threading a
parameter through every layer; it defaults to a no-op.
"""

from __future__ import annotations

import time
from contextlib import contextmanager


class NullProfiler:
    """The default: phases cost nothing and record nothing."""

    enabled = False

    @contextmanager
    def phase(self, name: str):
        yield

    def add(self, name: str, seconds: float, calls: int = 1) -> None:
        pass

    def merge(self, other: object) -> None:
        pass

    def report(self) -> dict[str, dict[str, float]]:
        return {}


class Profiler:
    """Accumulates per-phase wall-clock totals and call counts."""

    enabled = True

    def __init__(self) -> None:
        self.totals: dict[str, float] = {}
        self.calls: dict[str, int] = {}

    @contextmanager
    def phase(self, name: str):
        start = time.perf_counter()
        try:
            yield
        finally:
            self.add(name, time.perf_counter() - start)

    def add(self, name: str, seconds: float, calls: int = 1) -> None:
        self.totals[name] = self.totals.get(name, 0.0) + seconds
        self.calls[name] = self.calls.get(name, 0) + calls

    def merge(self, other: "Profiler | NullProfiler") -> None:
        if not getattr(other, "enabled", False):
            return
        assert isinstance(other, Profiler)
        for name, seconds in other.totals.items():
            self.add(name, seconds, other.calls.get(name, 0))

    def report(self) -> dict[str, dict[str, float]]:
        """Phase → {seconds, calls, mean_ms}, sorted by descending cost."""
        return {
            name: {
                "seconds": round(self.totals[name], 6),
                "calls": self.calls.get(name, 0),
                "mean_ms": round(
                    1000.0 * self.totals[name] / max(self.calls.get(name, 1), 1), 4
                ),
            }
            for name in sorted(self.totals, key=self.totals.get, reverse=True)
        }


#: process-wide profiler used by call sites too deep to parameterize;
#: a no-op unless the CLI (or a test) installs a real one
_GLOBAL: Profiler | NullProfiler = NullProfiler()


def get_profiler() -> Profiler | NullProfiler:
    return _GLOBAL


def set_profiler(profiler: Profiler | NullProfiler) -> Profiler | NullProfiler:
    """Install the process-wide profiler; returns the previous one so
    callers can restore it."""
    global _GLOBAL
    previous = _GLOBAL
    _GLOBAL = profiler
    return previous
