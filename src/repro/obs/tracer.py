"""Deterministic write-path tracing: op-clock-stamped span trees.

A :class:`Tracer` records *why a particular operation cost what it did*:
every stage of the service write pipeline (buffer drain → fail-cache
consult → differential write → verify → repartition escalation → spare
remap) and the Monte Carlo study phases open a span, annotate it with the
stage's deterministic costs (cell writes, verification reads, repartition
count — the quantities "Codes for Partially Stuck-at Memory Cells" shows
vary per write), and close it.  Nested stages become child spans, so one
serviced write exports as a span *tree* attributing its total cost.

Determinism contract
--------------------
Spans are stamped with a monotonically increasing *tick* counter (one
tick per span open/close) and with whatever operation-counter attributes
the caller supplies — never wall-clock.  A shard's tracer is therefore a
pure function of the shard's inputs, and :meth:`Tracer.merge` appends
shard-tagged roots in shard order, so the exported JSONL is bit-identical
for every worker count — the same contract
:class:`~repro.service.telemetry.ServiceTelemetry` honors.  Wall-clock
profiling lives in :mod:`repro.obs.profiler`, deliberately outside this
file.

Sampling
--------
Tracing every op of a million-op load run would swamp the artifact, so
root spans are sampled: every ``sample_every``-th root is kept, and —
because failures are exactly the ops worth attributing — any root whose
tree contains an error span is *always* kept (``sample_errors``).  Both
decisions depend only on deterministic state, so sampling never breaks
the merge contract.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from repro.errors import ConfigurationError

#: attr keys that identify rather than cost — excluded from snapshot totals
_NUMERIC = (int, float)


@dataclass(slots=True)
class Span:
    """One traced stage: name, tick interval, annotations, cost, children."""

    name: str
    start: int
    attrs: dict = field(default_factory=dict)
    costs: dict = field(default_factory=dict)
    children: list["Span"] = field(default_factory=list)
    end: int | None = None
    error: bool = False

    def set(self, **attrs: object) -> None:
        """Annotate with identifying attributes (address, op, attempt...)."""
        self.attrs.update(attrs)

    def cost(self, **costs: float) -> None:
        """Accumulate named cost quantities (summed in the trace snapshot)."""
        for key, value in costs.items():
            self.costs[key] = self.costs.get(key, 0) + value

    def fail(self) -> None:
        self.error = True

    def subtree_error(self) -> bool:
        return self.error or any(child.subtree_error() for child in self.children)

    def subtree_cost(self, key: str) -> float:
        return self.costs.get(key, 0) + sum(
            child.subtree_cost(key) for child in self.children
        )

    def to_dict(self) -> dict:
        record: dict = {"name": self.name, "start": self.start, "end": self.end}
        if self.attrs:
            record["attrs"] = dict(sorted(self.attrs.items()))
        if self.costs:
            record["costs"] = dict(sorted(self.costs.items()))
        if self.error:
            record["error"] = True
        if self.children:
            record["children"] = [child.to_dict() for child in self.children]
        return record


class _NullSpan:
    """Reusable do-nothing span, so the untraced hot path allocates nothing."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info: object) -> bool:
        return False

    def set(self, **attrs: object) -> None:
        pass

    def cost(self, **costs: float) -> None:
        pass

    def fail(self) -> None:
        pass


NULL_SPAN = _NullSpan()


class _SpanContext:
    """Hand-rolled span context manager.

    The traced service hot path opens a span per buffered write request;
    ``contextlib.contextmanager`` costs a generator frame plus three
    delegating calls per span, which profiled as ~15% of a traced load
    run.  This class keeps the exact open/close tick semantics of the
    original generator version (one tick on open, one on close, errors
    re-raised after marking) with a single allocation.
    """

    __slots__ = ("_tracer", "_name", "_attrs", "_span", "_parent")

    def __init__(self, tracer: "Tracer", name: str, attrs: dict) -> None:
        self._tracer = tracer
        self._name = name
        self._attrs = attrs

    def __enter__(self) -> Span:
        tracer = self._tracer
        tracer.clock += 1
        span = Span(name=self._name, start=tracer.clock, attrs=self._attrs)
        stack = tracer._stack
        self._parent = stack[-1] if stack else None
        if self._parent is not None:
            self._parent.children.append(span)
        stack.append(span)
        self._span = span
        return span

    def __exit__(self, exc_type: object, exc: object, tb: object) -> bool:
        tracer = self._tracer
        span = self._span
        if exc_type is not None:
            span.error = True
        tracer._stack.pop()
        tracer.clock += 1
        span.end = tracer.clock
        if self._parent is None:
            tracer._close_root(span)
        return False


class NullTracer:
    """The default tracer: every span is the shared no-op span."""

    enabled = False

    def span(self, name: str, **attrs: object) -> _NullSpan:
        return NULL_SPAN

    def merge(self, other: object, *, shard: int | None = None) -> None:
        pass


class Tracer:
    """Collects sampled root span trees with a deterministic tick clock.

    Parameters
    ----------
    sample_every:
        Keep every N-th root span (1 = trace everything).
    sample_errors:
        Always keep a root whose tree contains an error span, regardless
        of the sampling phase ("always trace failed writes").
    """

    enabled = True

    def __init__(self, *, sample_every: int = 1, sample_errors: bool = True) -> None:
        if sample_every < 1:
            raise ConfigurationError(
                f"sample_every must be positive, got {sample_every}"
            )
        self.sample_every = sample_every
        self.sample_errors = sample_errors
        self.clock = 0
        self.roots: list[Span] = []
        self.sampled_out = 0
        self.root_count = 0
        self._stack: list[Span] = []

    def span(self, name: str, **attrs: object) -> _SpanContext:
        """Open a span around a stage; exceptions mark it (and are re-raised).

        The ``attrs`` kwargs dict is fresh per call, so the span adopts it
        without copying.
        """
        return _SpanContext(self, name, attrs)

    def _close_root(self, span: Span) -> None:
        keep = self.root_count % self.sample_every == 0
        self.root_count += 1
        if not keep and self.sample_errors and span.subtree_error():
            keep = True
        if keep:
            self.roots.append(span)
        else:
            self.sampled_out += 1

    # -- aggregation --------------------------------------------------------

    def merge(self, other: "Tracer | NullTracer", *, shard: int | None = None) -> None:
        """Append another tracer's roots (tagged with ``shard``) in order;
        sampling tallies add, so merge order never changes the snapshot."""
        if not getattr(other, "enabled", False):
            return
        assert isinstance(other, Tracer)
        for root in other.roots:
            if shard is not None:
                root.attrs["shard"] = shard
            self.roots.append(root)
        self.sampled_out += other.sampled_out
        self.root_count += other.root_count

    def snapshot(self) -> dict:
        """Deterministic aggregate: per-name span counts, errors and cost
        totals over the *kept* roots (the cross-worker contract surface)."""
        per_name: dict[str, dict] = {}

        def visit(span: Span) -> None:
            entry = per_name.setdefault(
                span.name, {"count": 0, "errors": 0, "costs": {}}
            )
            entry["count"] += 1
            entry["errors"] += int(span.error)
            for key, value in span.costs.items():
                if isinstance(value, _NUMERIC):
                    entry["costs"][key] = entry["costs"].get(key, 0) + value
            for child in span.children:
                visit(child)

        for root in self.roots:
            visit(root)
        return {
            "spans": {
                name: {
                    "count": entry["count"],
                    "errors": entry["errors"],
                    "costs": dict(sorted(entry["costs"].items())),
                }
                for name, entry in sorted(per_name.items())
            },
            "roots_kept": len(self.roots),
            "roots_sampled_out": self.sampled_out,
        }

    def write_jsonl(self, path: str) -> int:
        """Export one JSON line per kept root span tree plus a final
        ``trace_snapshot`` line; returns the number of lines written."""
        with open(path, "w") as handle:
            for root in self.roots:
                handle.write(json.dumps(root.to_dict(), sort_keys=True) + "\n")
            handle.write(
                json.dumps(
                    {"event": "trace_snapshot", **self.snapshot()}, sort_keys=True
                )
                + "\n"
            )
        return len(self.roots) + 1


#: process-wide tracer for call sites too deep to parameterize (the Monte
#: Carlo study phases inside experiments); a no-op unless installed
_GLOBAL: Tracer | NullTracer = NullTracer()


def get_tracer() -> Tracer | NullTracer:
    return _GLOBAL


def set_tracer(tracer: Tracer | NullTracer) -> Tracer | NullTracer:
    """Install the process-wide tracer; returns the previous one so
    callers can restore it."""
    global _GLOBAL
    previous = _GLOBAL
    _GLOBAL = tracer
    return previous


def read_trace_jsonl(path: str) -> tuple[list[dict], dict | None]:
    """Load a trace export: (root span dicts, trace snapshot or ``None``)."""
    roots: list[dict] = []
    snapshot: dict | None = None
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            record = json.loads(line)
            if record.get("event") == "trace_snapshot":
                snapshot = record
            else:
                roots.append(record)
    return roots, snapshot
