"""The pairwise collision-slope ROM (paper §2.4).

Theorem 2 implies any two block bits share a group under *at most one*
slope.  Aegis-rw exploits this with an ``n x n`` ROM holding that unique
slope for every bit pair: given the stuck-at-wrong and stuck-at-right fault
sets of a block, reading the ROM for every (W, R) cross pair yields the set
of *poisoned* slopes; any slope outside that set is a collision-free
configuration, found without trial writes.

:class:`CollisionROM` is the vectorised software model of that ROM.  Entries
for same-column pairs (which never collide) hold :data:`NO_COLLISION`.
"""

from __future__ import annotations

from collections.abc import Iterable
from functools import lru_cache

import numpy as np

from repro.core.geometry import Rectangle
from repro.util.primes import mod_inverse

#: sentinel for pairs that never share a group (same-column pairs)
NO_COLLISION = -1


class CollisionROM:
    """``n x n`` table of the unique colliding slope of every bit pair."""

    def __init__(self, rect: Rectangle) -> None:
        self.rect = rect
        n, a_size, b_size = rect.n_bits, rect.a_size, rect.b_size
        offsets = np.arange(n, dtype=np.int64)
        a = offsets % a_size
        b = offsets // a_size
        da = (a[:, None] - a[None, :]) % b_size
        db = (b[:, None] - b[None, :]) % b_size
        # multiplicative inverses of 1..B-1 modulo the prime B
        inverses = np.zeros(b_size, dtype=np.int64)
        for residue in range(1, b_size):
            inverses[residue] = mod_inverse(residue, b_size)
        table = (db * inverses[da]) % b_size
        table[da == 0] = NO_COLLISION  # same column: never collide
        # shared chip-wide via collision_rom_for: sealed read-only
        self._table = table.astype(np.int16)
        self._table.flags.writeable = False

    @property
    def n_bits(self) -> int:
        return self.rect.n_bits

    @property
    def storage_bits(self) -> int:
        """ROM size in bits: ``n * n * ceil(log2 B)`` (paper §2.4).

        This is chip-shared hardware, not per-block overhead, which is why
        it never appears in Table 1.
        """
        return self.rect.n_bits**2 * max(1, (self.rect.b_size - 1).bit_length())

    def slope_of(self, offset1: int, offset2: int) -> int:
        """Colliding slope of a pair, or :data:`NO_COLLISION`."""
        if offset1 == offset2:
            raise ValueError("a bit does not collide with itself")
        return int(self._table[offset1, offset2])

    def poisoned_slopes(
        self, wrong: Iterable[int], right: Iterable[int]
    ) -> np.ndarray:
        """Distinct slopes on which some W fault collides with some R fault."""
        w = np.fromiter(wrong, dtype=np.int64)
        r = np.fromiter(right, dtype=np.int64)
        if w.size == 0 or r.size == 0:
            return np.empty(0, dtype=np.int16)
        slopes = self._table[np.ix_(w, r)].ravel()
        slopes = slopes[slopes != NO_COLLISION]
        return np.unique(slopes)

    def poisoned_slopes_all_pairs(self, offsets: Iterable[int]) -> np.ndarray:
        """Distinct slopes on which *any* two of ``offsets`` collide (the
        plain-Aegis poisoned set, where every fault pair matters)."""
        offs = np.fromiter(offsets, dtype=np.int64)
        if offs.size < 2:
            return np.empty(0, dtype=np.int16)
        sub = self._table[np.ix_(offs, offs)]
        upper = sub[np.triu_indices(offs.size, k=1)]
        upper = upper[upper != NO_COLLISION]
        return np.unique(upper)

    def find_rw_slope(
        self, wrong: Iterable[int], right: Iterable[int], start: int = 0
    ) -> int | None:
        """First slope from ``start`` (wrapping) under which no W fault
        shares a group with an R fault; ``None`` when every slope is
        poisoned."""
        poisoned = set(int(s) for s in self.poisoned_slopes(wrong, right))
        b_size = self.rect.b_size
        for trial in range(b_size):
            slope = (start + trial) % b_size
            if slope not in poisoned:
                return slope
        return None


@lru_cache(maxsize=None)
def collision_rom_for(rect: Rectangle) -> CollisionROM:
    """Shared, cached collision ROM for a rectangle."""
    return CollisionROM(rect)
