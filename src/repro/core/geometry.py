"""Cartesian-plane geometry underlying the Aegis partition scheme (paper §2.1).

An ``A x B`` *rectangle* arranges the ``n`` bits of a data block on the
integer grid: the bit at in-block offset ``x`` sits at point
``(a, b) = (x mod A, x div A)``, filling the rectangle row by row from the
bottom-left corner so that only the top-right corner can be unmapped (the
paper's Figure 2 shows 32 bits in a 5 x 7 rectangle with the three top-right
positions unused).

A *partition configuration* is a slope ``k`` in ``[0, B)``.  Under slope
``k`` the point ``(a, b)`` belongs to the group anchored at ``(0, y)`` with

    ``y = (b - a*k) mod B``          (equivalently  ``b = (a*k + y) mod B``)

which is the paper's Theorem 1: every point lies on exactly one line of
slope ``k``, hence in exactly one group, and there are exactly ``B`` groups
of at most ``A`` points each.

Theorem 2 — the property everything else rests on — states that for prime
``B`` and ``A <= B``, two points sharing a group under one slope are never
in the same group under any other slope.  Concretely:

* two distinct points in the *same column* (``a1 == a2``) are never in the
  same group under any slope, and
* two points in *different columns* collide under exactly one slope,
  ``k = (b1 - b2) * (a1 - a2)^-1 mod B``.

:func:`collision_slope` computes that unique slope (or ``None`` for
same-column pairs); it is the arithmetic heart of the fast Monte Carlo
checkers and of the Aegis-rw collision ROM.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from repro.errors import ConfigurationError
from repro.util.primes import is_prime, mod_inverse, next_prime


@dataclass(frozen=True)
class Rectangle:
    """An ``A x B`` arrangement of ``n_bits`` block bits on the plane.

    Parameters
    ----------
    a_size:
        ``A`` — the rectangle width; each group (line) holds at most ``A``
        points.  Must satisfy ``1 <= A <= B``.
    b_size:
        ``B`` — the rectangle height, the number of groups, and the number
        of partition configurations.  Must be prime.
    n_bits:
        Number of mapped bits; must satisfy ``(A-1)*B < n_bits <= A*B`` so
        the rectangle is just large enough (paper §2.1).
    """

    a_size: int
    b_size: int
    n_bits: int

    def __post_init__(self) -> None:
        if self.a_size < 1:
            raise ConfigurationError(f"A must be positive, got {self.a_size}")
        if not is_prime(self.b_size):
            raise ConfigurationError(f"B must be prime, got {self.b_size}")
        if self.a_size > self.b_size:
            raise ConfigurationError(
                f"A must not exceed B (Theorem 2 requirement), got A={self.a_size} > B={self.b_size}"
            )
        if self.n_bits <= 0:
            raise ConfigurationError("n_bits must be positive")
        if self.n_bits > self.a_size * self.b_size:
            raise ConfigurationError(
                f"{self.a_size}x{self.b_size} rectangle holds at most "
                f"{self.a_size * self.b_size} bits, got n_bits={self.n_bits}"
            )
        if self.n_bits <= (self.a_size - 1) * self.b_size:
            raise ConfigurationError(
                f"A={self.a_size} is larger than necessary for n_bits={self.n_bits} "
                f"with B={self.b_size}; use A={ -(-self.n_bits // self.b_size) }"
            )

    @property
    def slope_count(self) -> int:
        """Number of partition configurations (one per slope value)."""
        return self.b_size

    @property
    def group_count(self) -> int:
        """Number of groups in every configuration."""
        return self.b_size

    @property
    def capacity(self) -> int:
        """Total grid positions ``A*B`` (``capacity - n_bits`` are unmapped)."""
        return self.a_size * self.b_size

    def point_of(self, offset: int) -> tuple[int, int]:
        """Map in-block bit offset to its grid point ``(a, b)``."""
        if not 0 <= offset < self.n_bits:
            raise ValueError(f"offset {offset} outside block of {self.n_bits} bits")
        return offset % self.a_size, offset // self.a_size

    def offset_of(self, a: int, b: int) -> int | None:
        """Inverse of :meth:`point_of`; ``None`` for unmapped grid positions."""
        if not (0 <= a < self.a_size and 0 <= b < self.b_size):
            raise ValueError(f"point ({a}, {b}) outside the {self.a_size}x{self.b_size} rectangle")
        offset = a + self.a_size * b
        return offset if offset < self.n_bits else None

    def group_of(self, offset: int, slope: int) -> int:
        """Group ID (anchor ``y``) of the bit at ``offset`` under ``slope``."""
        if not 0 <= slope < self.b_size:
            raise ValueError(f"slope {slope} outside [0, {self.b_size})")
        a, b = self.point_of(offset)
        return (b - a * slope) % self.b_size

    def group_members(self, group: int, slope: int) -> list[int]:
        """All mapped bit offsets in ``group`` under ``slope``, sorted."""
        if not 0 <= group < self.b_size:
            raise ValueError(f"group {group} outside [0, {self.b_size})")
        if not 0 <= slope < self.b_size:
            raise ValueError(f"slope {slope} outside [0, {self.b_size})")
        members = []
        for a in range(self.a_size):
            b = (a * slope + group) % self.b_size
            offset = a + self.a_size * b
            if offset < self.n_bits:
                members.append(offset)
        return sorted(members)

    def groups(self, slope: int) -> list[list[int]]:
        """All groups under ``slope`` as lists of bit offsets, indexed by group ID."""
        return [self.group_members(g, slope) for g in range(self.b_size)]

    def collision_slope(self, offset1: int, offset2: int) -> int | None:
        """The unique slope under which two distinct bits share a group.

        Returns ``None`` when the bits sit in the same column (``a1 == a2``)
        and therefore never share a group (Theorem 2).
        """
        if offset1 == offset2:
            raise ValueError("collision_slope requires two distinct offsets")
        a1, b1 = self.point_of(offset1)
        a2, b2 = self.point_of(offset2)
        if a1 == a2:
            return None
        return ((b1 - b2) * mod_inverse(a1 - a2, self.b_size)) % self.b_size

    def __str__(self) -> str:
        return f"{self.a_size}x{self.b_size}"


@lru_cache(maxsize=None)
def rectangle_for(n_bits: int, b_size: int) -> Rectangle:
    """Build the rectangle for an ``n_bits`` block given ``B``, choosing the
    minimal ``A = ceil(n / B)`` (paper §2.1).

    >>> str(rectangle_for(512, 61))
    '9x61'
    """
    a_size = -(-n_bits // b_size)
    return Rectangle(a_size=a_size, b_size=b_size, n_bits=n_bits)


@lru_cache(maxsize=None)
def minimal_rectangle(n_bits: int) -> Rectangle:
    """Square-most rectangle for ``n_bits``: the smallest prime ``B`` with
    ``B*B >= n_bits`` (the paper's "minimally 23 groups for a 512-bit block").

    >>> str(minimal_rectangle(512))
    '23x23'
    """
    b_size = 2
    while b_size * b_size < n_bits:
        b_size = next_prime(b_size + 1)
    while True:
        a_size = -(-n_bits // b_size)
        if a_size <= b_size:
            return Rectangle(a_size=a_size, b_size=b_size, n_bits=n_bits)
        b_size = next_prime(b_size + 1)  # pragma: no cover - defensive


def verify_theorem1(rect: Rectangle, slope: int) -> bool:
    """Check Theorem 1 on a rectangle: under ``slope`` every mapped bit is in
    exactly one group and the groups partition the block."""
    seen: set[int] = set()
    for group in range(rect.b_size):
        for offset in rect.group_members(group, slope):
            if offset in seen:
                return False
            seen.add(offset)
    return seen == set(range(rect.n_bits))


def verify_theorem2(rect: Rectangle) -> bool:
    """Check Theorem 2 exhaustively: any two bits share a group under at most
    one slope.  Exponential in nothing — ``O(n^2 B)`` — but intended for
    tests on small rectangles."""
    for o1 in range(rect.n_bits):
        for o2 in range(o1 + 1, rect.n_bits):
            collisions = [
                k
                for k in range(rect.b_size)
                if rect.group_of(o1, k) == rect.group_of(o2, k)
            ]
            expected = rect.collision_slope(o1, o2)
            if expected is None:
                if collisions:
                    return False
            elif collisions != [expected]:
                return False
    return True
