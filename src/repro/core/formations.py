"""Formation catalogue and hardware-cost formulas (paper §2.3, Table 1).

This module is the closed-form half of the reproduction: for every scheme in
the paper's Table 1 it computes the per-block overhead bits needed to reach
a given *hard FTC* (the number of faults tolerated regardless of fault
placement and written data), and for every concrete configuration used in
the evaluation figures it computes the actual overhead.

Derivation notes (validated against the paper's published numbers):

* **Aegis** with ``A x B`` needs ``ceil_log2(B)`` slope-counter bits plus a
  ``B``-bit inversion vector.  For a *target* hard FTC ``f`` the counter can
  shrink to ``ceil_log2(C(f,2) + 1)`` bits because at most ``C(f,2)``
  re-partitions ever happen (paper §2.3).  Hard FTC of ``A x B`` Aegis is
  the largest ``f`` with ``f(f-1)/2 + 1 <= B``.
* **Aegis-rw** needs only ``floor(f/2) * ceil(f/2) + 1`` slopes for hard FTC
  ``f`` (worst-case split of ``f`` faults into stuck-at-wrong and
  stuck-at-right).  Its cost formula matches Aegis's with that relaxed
  slope requirement; the counter is still capped at ``ceil_log2(B)``.
* **Aegis-rw-p** replaces the inversion vector with ``p = floor(f/2)``
  group-ID pointers of ``ceil_log2(B)`` bits each (pigeonhole:
  ``min(f_W, f_R) <= floor(f/2)``), plus a whole-block-inversion flag and an
  all-pointers-used flag.  Hard FTC 1 is the paper's special case needing a
  single inversion bit.
* **ECP-p** costs ``1 + p * (ceil_log2(n) + 1)`` bits (a full flag plus, per
  entry, an in-block pointer and a replacement cell):  ``1 + 10p`` for
  512-bit blocks and ``1 + 9p`` for 256-bit blocks, matching the paper.
* **SAFER-N** with ``m = log2(N)`` selected bit-positions costs
  ``m * ceil_log2(log2 n) + N + ceil_log2(m + 1)`` bits (the selected
  positions, the per-group inversion flags, and a counter of used
  positions); hard FTC is ``m + 1``.  This reproduces the paper's row
  1, 7, 14, 22, 35, 55, 91, 159, 292, 552 exactly.
* **RDIS-3** does not appear in Table 1; its overhead is calibrated to the
  paper's quoted 25% (256-bit) / 19% (512-bit): ``2*(w+h) + 1`` marker bits
  for the most-square power-of-two ``w x h`` arrangement.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import lru_cache

from repro.core.geometry import Rectangle, minimal_rectangle, rectangle_for
from repro.errors import ConfigurationError
from repro.util.bitops import ceil_log2
from repro.util.primes import next_prime


def pairs(f: int) -> int:
    """Number of unordered fault pairs ``C(f, 2)``."""
    return f * (f - 1) // 2


def slopes_needed(f: int) -> int:
    """Slopes guaranteeing a collision-free configuration for plain Aegis."""
    return pairs(f) + 1


def slopes_needed_rw(f: int) -> int:
    """Slopes guaranteeing a collision-free configuration when stuck-at-wrong
    and stuck-at-right faults are distinguished (worst split of ``f``)."""
    return (f // 2) * ((f + 1) // 2) + 1


def aegis_hard_ftc(b_size: int) -> int:
    """Hard FTC of an ``A x B`` Aegis scheme: largest ``f`` with
    ``C(f,2) + 1 <= B``.

    >>> aegis_hard_ftc(23), aegis_hard_ftc(31), aegis_hard_ftc(61), aegis_hard_ftc(71)
    (7, 8, 11, 12)
    """
    f = int((1 + math.isqrt(8 * b_size - 7)) // 2)
    while slopes_needed(f + 1) <= b_size:
        f += 1
    while f > 0 and slopes_needed(f) > b_size:
        f -= 1
    return f


def aegis_rw_hard_ftc(b_size: int) -> int:
    """Hard FTC of ``A x B`` Aegis-rw: largest ``f`` with
    ``floor(f/2)*ceil(f/2) + 1 <= B``.

    >>> aegis_rw_hard_ftc(23), aegis_rw_hard_ftc(29)
    (9, 10)
    """
    f = 1
    while slopes_needed_rw(f + 1) <= b_size:
        f += 1
    return f


# ---------------------------------------------------------------------------
# Table 1: minimal per-block cost to reach a target hard FTC (512-bit blocks
# in the paper; the n_bits argument generalises the formulas).
# ---------------------------------------------------------------------------


def _min_b_for(n_bits: int, required_slopes: int) -> int:
    """Smallest valid prime ``B``: at least the square-ish minimum for
    ``n_bits`` (so that ``A <= B``) and at least ``required_slopes``."""
    base = minimal_rectangle(n_bits).b_size
    return next_prime(max(base, required_slopes))


def aegis_cost_for_ftc(f: int, n_bits: int = 512) -> int:
    """Aegis bits to guarantee hard FTC ``f`` on an ``n_bits`` block.

    >>> [aegis_cost_for_ftc(f) for f in range(1, 11)]
    [23, 24, 25, 26, 27, 27, 28, 34, 43, 53]
    """
    if f < 1:
        raise ConfigurationError("hard FTC must be at least 1")
    b_size = _min_b_for(n_bits, slopes_needed(f))
    counter = min(ceil_log2(slopes_needed(f)), ceil_log2(b_size))
    return counter + b_size


def aegis_rw_cost_for_ftc(f: int, n_bits: int = 512) -> int:
    """Aegis-rw bits to guarantee hard FTC ``f``.

    >>> [aegis_rw_cost_for_ftc(f) for f in range(1, 11)]
    [23, 24, 25, 26, 27, 27, 28, 28, 28, 34]
    """
    if f < 1:
        raise ConfigurationError("hard FTC must be at least 1")
    b_size = _min_b_for(n_bits, slopes_needed_rw(f))
    counter = min(ceil_log2(slopes_needed(f)), ceil_log2(b_size))
    return counter + b_size


def aegis_rw_p_cost_for_ftc(f: int, n_bits: int = 512) -> int:
    """Aegis-rw-p bits to guarantee hard FTC ``f``.

    >>> [aegis_rw_p_cost_for_ftc(f) for f in range(1, 11)]
    [1, 8, 9, 15, 15, 21, 21, 27, 27, 32]
    """
    if f < 1:
        raise ConfigurationError("hard FTC must be at least 1")
    if f == 1:
        return 1  # paper's special case: a single inversion bit
    b_size = _min_b_for(n_bits, slopes_needed_rw(f))
    p = f // 2
    counter = min(ceil_log2(slopes_needed_rw(f)), ceil_log2(b_size))
    return counter + p * ceil_log2(b_size) + 2


def ecp_cost_for_ftc(f: int, n_bits: int = 512) -> int:
    """ECP bits for ``f`` correction entries: full flag + per-entry pointer
    and replacement cell.

    >>> [ecp_cost_for_ftc(f) for f in range(1, 11)]
    [11, 21, 31, 41, 51, 61, 71, 81, 91, 101]
    """
    if f < 1:
        raise ConfigurationError("hard FTC must be at least 1")
    return 1 + f * (ceil_log2(n_bits) + 1)


def safer_group_count_for_ftc(f: int) -> int:
    """SAFER group count ``N = 2^(f-1)`` reaching hard FTC ``f``.

    >>> [safer_group_count_for_ftc(f) for f in range(1, 11)]
    [1, 2, 4, 8, 16, 32, 64, 128, 256, 512]
    """
    if f < 1:
        raise ConfigurationError("hard FTC must be at least 1")
    return 2 ** (f - 1)


def safer_cost(group_count: int, n_bits: int = 512) -> int:
    """SAFER-N per-block bits: selected bit-positions + inversion flags +
    used-position counter.

    >>> [safer_cost(2 ** m) for m in range(10)]
    [1, 7, 14, 22, 35, 55, 91, 159, 292, 552]
    """
    if group_count < 1 or group_count & (group_count - 1):
        raise ConfigurationError(f"SAFER group count must be a power of two, got {group_count}")
    addr_bits = ceil_log2(n_bits)
    if group_count > n_bits:
        raise ConfigurationError("SAFER cannot use more groups than block bits")
    m = ceil_log2(group_count)
    position_field = ceil_log2(addr_bits)
    counter = ceil_log2(m + 1) if m else 0
    return m * position_field + group_count + counter


def safer_cost_for_ftc(f: int, n_bits: int = 512) -> int:
    """SAFER bits to guarantee hard FTC ``f`` (via ``N = 2^(f-1)`` groups)."""
    return safer_cost(safer_group_count_for_ftc(f), n_bits)


def safer_hard_ftc(group_count: int) -> int:
    """Hard FTC of SAFER-N: ``log2(N) + 1``."""
    if group_count < 1 or group_count & (group_count - 1):
        raise ConfigurationError(f"SAFER group count must be a power of two, got {group_count}")
    return ceil_log2(group_count) + 1


def rdis_dimensions(n_bits: int) -> tuple[int, int]:
    """Most-square power-of-two ``(rows, cols)`` arrangement for RDIS."""
    bits = ceil_log2(n_bits)
    if 2**bits != n_bits:
        raise ConfigurationError(f"RDIS requires a power-of-two block size, got {n_bits}")
    rows = 2 ** (bits // 2)
    cols = n_bits // rows
    return rows, cols


def rdis_cost(n_bits: int = 512, depth: int = 3) -> int:
    """RDIS-``depth`` marker-bit overhead.

    RDIS-k builds invertible sets ``SI_1 .. SI_k`` and requires ``SI_k`` to
    be empty, so ``k - 1`` levels of row/column markers are stored (plus a
    flag bit).  This matches the paper's quoted overheads for RDIS-3
    exactly: 25% of a 256-bit block and 19% of a 512-bit block.

    >>> rdis_cost(256), rdis_cost(512)
    (65, 97)
    """
    if depth < 2:
        raise ConfigurationError("RDIS needs depth >= 2 (one stored marker level)")
    rows, cols = rdis_dimensions(n_bits)
    return (depth - 1) * (rows + cols) + 1


def hamming_cost(n_bits: int = 512) -> int:
    """(72, 64) Hamming SEC-DED overhead scaled to the block: 8 check bits
    per 64 data bits (the paper's 12.5% ECC budget ceiling)."""
    if n_bits % 64:
        raise ConfigurationError("Hamming reference assumes 64-bit words")
    return (n_bits // 64) * 8


# ---------------------------------------------------------------------------
# Concrete formations used in the evaluation figures.
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Formation:
    """A named ``A x B`` Aegis formation bound to a block size."""

    rect: Rectangle

    @property
    def a_size(self) -> int:
        return self.rect.a_size

    @property
    def b_size(self) -> int:
        return self.rect.b_size

    @property
    def n_bits(self) -> int:
        return self.rect.n_bits

    @property
    def name(self) -> str:
        return f"{self.a_size}x{self.b_size}"

    @property
    def hard_ftc(self) -> int:
        return aegis_hard_ftc(self.b_size)

    @property
    def hard_ftc_rw(self) -> int:
        return aegis_rw_hard_ftc(self.b_size)

    @property
    def aegis_overhead_bits(self) -> int:
        """Full slope counter + B-bit inversion vector (the evaluation's
        per-formation cost, e.g. 67 bits for Aegis 9x61)."""
        return ceil_log2(self.b_size) + self.b_size

    def aegis_rw_p_overhead_bits(self, pointers: int) -> int:
        """Slope counter + ``p`` group pointers + the two flag bits."""
        if pointers < 1:
            raise ConfigurationError("Aegis-rw-p needs at least one pointer")
        return ceil_log2(self.b_size) * (1 + pointers) + 2


@lru_cache(maxsize=None)
def formation(a_size: int, b_size: int, n_bits: int) -> Formation:
    """Build (and validate) a named formation such as ``formation(9, 61, 512)``."""
    rect = rectangle_for(n_bits, b_size)
    if rect.a_size != a_size:
        raise ConfigurationError(
            f"A={a_size} is not the minimal width for n={n_bits}, B={b_size} "
            f"(expected A={rect.a_size})"
        )
    return Formation(rect)


#: formations the paper evaluates on 512-bit data blocks
STANDARD_FORMATIONS_512 = ((23, 23), (17, 31), (9, 61), (8, 71))

#: formations the paper evaluates on 256-bit data blocks
STANDARD_FORMATIONS_256 = ((16, 17), (12, 23), (9, 31))


def standard_formations(n_bits: int) -> list[Formation]:
    """The paper's evaluated formations for a block size."""
    if n_bits == 512:
        shapes = STANDARD_FORMATIONS_512
    elif n_bits == 256:
        shapes = STANDARD_FORMATIONS_256
    else:
        raise ConfigurationError(f"no standard formations for {n_bits}-bit blocks")
    return [formation(a, b, n_bits) for a, b in shapes]
