"""Vectorised Aegis partition engine.

:class:`AegisPartition` wraps a :class:`~repro.core.geometry.Rectangle` with
precomputed numpy lookup tables so the hot operations of the recovery
controllers and Monte Carlo simulators are O(1) array lookups:

* ``group_ids(slope)`` — group ID of every block bit under a slope (one row
  of a ``B x n`` table, the software twin of the paper's Figure 3 ROM);
* ``members_mask(slope, groups)`` — 0/1 mask of the bits belonging to a set
  of groups (the Figure 4 inversion-mask ROM);
* ``find_separating_slope`` — the re-partition walk of §2.2: starting from
  the current slope-counter value, advance until a configuration is found
  in which all given fault offsets occupy distinct groups.
"""

from __future__ import annotations

from collections.abc import Iterable
from functools import lru_cache

import numpy as np

from repro.core.geometry import Rectangle


class AegisPartition:
    """Precomputed partition tables for one rectangle."""

    def __init__(self, rect: Rectangle) -> None:
        self.rect = rect
        offsets = np.arange(rect.n_bits, dtype=np.int64)
        a = offsets % rect.a_size
        b = offsets // rect.a_size
        slopes = np.arange(rect.b_size, dtype=np.int64)[:, None]
        # _table[k, x] = group of bit x under slope k; instances are shared
        # chip-wide via partition_for, so the table is sealed read-only
        self._table = ((b[None, :] - a[None, :] * slopes) % rect.b_size).astype(np.int16)
        self._table.flags.writeable = False
        self._members: dict[tuple[int, int], np.ndarray] = {}

    @property
    def n_bits(self) -> int:
        return self.rect.n_bits

    @property
    def slope_count(self) -> int:
        return self.rect.slope_count

    @property
    def group_count(self) -> int:
        return self.rect.group_count

    def group_ids(self, slope: int) -> np.ndarray:
        """Group ID of every bit under ``slope`` (read-only view)."""
        return self._table[slope]

    def members_array(self, group: int, slope: int) -> np.ndarray:
        """Bit offsets of ``group`` under ``slope`` as a shared read-only
        ``int64`` array (ascending) — the memoised counterpart of
        :meth:`Rectangle.group_members`, built once per (slope, group) and
        reused by every checker sharing this partition instance."""
        key = (slope, group)
        members = self._members.get(key)
        if members is None:
            members = np.flatnonzero(self._table[slope] == group).astype(np.int64)
            members.flags.writeable = False
            self._members[key] = members
        return members

    def group_of(self, offset: int, slope: int) -> int:
        """Group ID of one bit under ``slope``."""
        return int(self._table[slope, offset])

    def members_mask(self, slope: int, groups: Iterable[int] | np.ndarray) -> np.ndarray:
        """0/1 ``uint8`` mask selecting the bits of the given groups."""
        selected = np.zeros(self.rect.b_size, dtype=bool)
        selected[np.asarray(list(groups) if not isinstance(groups, np.ndarray) else groups, dtype=np.int64)] = True
        return selected[self._table[slope]].astype(np.uint8)

    def separates(self, slope: int, offsets: Iterable[int]) -> bool:
        """True when all ``offsets`` fall into distinct groups under ``slope``."""
        ids = self._table[slope, np.fromiter(offsets, dtype=np.int64)]
        return len(np.unique(ids)) == ids.size

    def find_separating_slope(
        self, offsets: Iterable[int], start: int = 0
    ) -> tuple[int, int] | None:
        """Walk slopes from ``start`` (wrapping) until one separates all
        ``offsets`` into distinct groups.

        Returns ``(slope, trials)`` where ``trials`` counts the
        configurations examined (1 when the current one already works), or
        ``None`` when no configuration separates the faults — the block is
        unrecoverable for plain Aegis.
        """
        offs = np.fromiter(offsets, dtype=np.int64)
        if offs.size <= 1:
            return start % self.rect.b_size, 1
        for trial in range(self.rect.b_size):
            slope = (start + trial) % self.rect.b_size
            ids = self._table[slope, offs]
            if len(np.unique(ids)) == ids.size:
                return slope, trial + 1
        return None

    def groups_hit(self, slope: int, offsets: Iterable[int]) -> list[int]:
        """Sorted distinct group IDs containing any of ``offsets``."""
        offs = np.fromiter(offsets, dtype=np.int64)
        if offs.size == 0:
            return []
        return [int(g) for g in np.unique(self._table[slope, offs])]


@lru_cache(maxsize=None)
def partition_for(rect: Rectangle) -> AegisPartition:
    """Shared, cached partition tables for a rectangle (tables are immutable)."""
    return AegisPartition(rect)
