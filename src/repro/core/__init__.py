"""The paper's contribution: the Aegis partition scheme and its controllers."""

from repro.core.aegis import AegisScheme
from repro.core.aegis_dw import AegisDoubleWriteScheme
from repro.core.aegis_p import AegisPointerScheme
from repro.core.aegis_rw import AegisRwScheme, classify_faults
from repro.core.aegis_rw_p import AegisRwPScheme
from repro.core.collision import NO_COLLISION, CollisionROM, collision_rom_for
from repro.core.formations import (
    Formation,
    aegis_cost_for_ftc,
    aegis_hard_ftc,
    aegis_rw_cost_for_ftc,
    aegis_rw_hard_ftc,
    aegis_rw_p_cost_for_ftc,
    ecp_cost_for_ftc,
    formation,
    hamming_cost,
    rdis_cost,
    safer_cost,
    safer_cost_for_ftc,
    safer_group_count_for_ftc,
    safer_hard_ftc,
    slopes_needed,
    slopes_needed_rw,
    standard_formations,
)
from repro.core.geometry import (
    Rectangle,
    minimal_rectangle,
    rectangle_for,
    verify_theorem1,
    verify_theorem2,
)
from repro.core.partition import AegisPartition, partition_for

__all__ = [
    "NO_COLLISION",
    "AegisDoubleWriteScheme",
    "AegisPartition",
    "AegisPointerScheme",
    "AegisRwPScheme",
    "AegisRwScheme",
    "AegisScheme",
    "CollisionROM",
    "Formation",
    "Rectangle",
    "aegis_cost_for_ftc",
    "aegis_hard_ftc",
    "aegis_rw_cost_for_ftc",
    "aegis_rw_hard_ftc",
    "aegis_rw_p_cost_for_ftc",
    "classify_faults",
    "collision_rom_for",
    "ecp_cost_for_ftc",
    "formation",
    "hamming_cost",
    "minimal_rectangle",
    "partition_for",
    "rdis_cost",
    "rectangle_for",
    "safer_cost",
    "safer_cost_for_ftc",
    "safer_group_count_for_ftc",
    "safer_hard_ftc",
    "slopes_needed",
    "slopes_needed_rw",
    "standard_formations",
    "verify_theorem1",
    "verify_theorem2",
]
