"""Aegis-rw-p: Aegis-rw with group pointers instead of an inversion vector
(paper §2.4, final part).

When the expected fault count is well below the group count ``B``, storing a
``B``-bit inversion vector is wasteful.  Aegis-rw-p records the IDs of at
most ``p`` groups instead, exploiting the pigeonhole principle: with ``f``
faults split into ``f_W`` stuck-at-wrong and ``f_R`` stuck-at-right, either
``f_W <= floor(f/2)`` or ``f_R <= floor(f/2)``, so one of the following two
encodings always fits ``p = floor(f/2)`` pointers at the scheme's hard FTC:

* **W mode** (block-inversion flag clear): the groups containing W faults
  are stored inverted and their IDs are recorded.  Read: re-invert the
  pointed groups.
* **R mode** (block-inversion flag set): every group *except* those
  containing R faults is stored inverted and the R-group IDs are recorded.
  Read: invert the pointed (R) groups, then invert the entire block.

Soft behaviour goes beyond the hard guarantee: the controller searches all
unpoisoned slopes for one whose W-group or R-group count fits the pointer
budget, so a lucky fault layout can be tolerated well past the hard FTC —
and an unlucky one can exhaust the pointers early (the paper: "use of fixed
number of pointers can compromise reliability in terms of soft FTC").
"""

from __future__ import annotations

import numpy as np

from repro.core.aegis_rw import classify_faults
from repro.core.collision import CollisionROM, collision_rom_for
from repro.core.formations import Formation, aegis_rw_hard_ftc
from repro.core.partition import AegisPartition, partition_for
from repro.errors import ConfigurationError, UncorrectableError
from repro.pcm.cell import CellArray
from repro.schemes.base import FaultKnowledge, OracleKnowledge, RecoveryScheme, WriteReceipt
from repro.util.bitops import ceil_log2


class AegisRwPScheme(RecoveryScheme):
    """Aegis-rw-p bound to one cell array.

    Parameters
    ----------
    cells:
        The block's cell array.
    formation:
        The ``A x B`` formation.
    pointers:
        Pointer budget ``p`` (the paper evaluates e.g. 23x23 with 4,
        17x31 with 5, 9x61 and 8x71 with 9).
    knowledge:
        Fail-cache view; defaults to the perfect cache.
    """

    def __init__(
        self,
        cells: CellArray,
        formation: Formation,
        pointers: int,
        knowledge: FaultKnowledge | None = None,
    ) -> None:
        super().__init__(cells)
        if cells.n_bits != formation.n_bits:
            raise ValueError(
                f"cell array has {cells.n_bits} bits but formation "
                f"{formation.name} expects {formation.n_bits}"
            )
        if pointers < 1:
            raise ConfigurationError("Aegis-rw-p needs at least one pointer")
        self.formation = formation
        self.pointers = pointers
        self.partition: AegisPartition = partition_for(formation.rect)
        self.rom: CollisionROM = collision_rom_for(formation.rect)
        self.knowledge = knowledge if knowledge is not None else OracleKnowledge()
        self.slope = 0
        self.block_inverted = False  # the R-mode flag
        self.pointed_groups: list[int] = []

    # -- identity ----------------------------------------------------------

    @property
    def name(self) -> str:
        return f"Aegis-rw-p {self.formation.name} p={self.pointers}"

    @property
    def overhead_bits(self) -> int:
        """Slope counter + ``p`` group pointers + mode flag +
        all-pointers-used flag."""
        return ceil_log2(self.formation.b_size) * (1 + self.pointers) + 2

    @property
    def hard_ftc(self) -> int:
        """Guaranteed tolerance: limited by both the slope supply and the
        pointer budget (``p`` pointers guarantee ``2p`` faults, or ``2p+1``
        since ``floor(f/2)`` pointers suffice for odd ``f``)."""
        return min(aegis_rw_hard_ftc(self.formation.b_size), 2 * self.pointers + 1)

    # -- data path -----------------------------------------------------------

    def _stored_mask(self, slope: int, pointed: list[int], block_inverted: bool) -> np.ndarray:
        """0/1 mask of bits stored inverted for the given metadata."""
        group_mask = (
            self.partition.members_mask(slope, pointed)
            if pointed
            else np.zeros(self.cells.n_bits, dtype=np.uint8)
        )
        if block_inverted:
            # pointed (R) groups plain, everything else inverted
            return np.bitwise_xor(group_mask, 1)
        return group_mask

    def _plan(self, data: np.ndarray) -> tuple[int, list[int], bool]:
        """Choose ``(slope, pointed groups, block_inverted)`` for ``data``.

        Scans every unpoisoned slope (starting from the current one) for an
        encoding within the pointer budget; prefers the current slope to
        avoid gratuitous metadata churn.
        """
        faults = self.knowledge.known_faults(self.cells)
        wrong, right = classify_faults(faults, data)
        if not wrong:
            return self.slope, [], False
        poisoned = {int(s) for s in self.rom.poisoned_slopes(wrong, right)}
        b_size = self.formation.b_size
        for trial in range(b_size):
            slope = (self.slope + trial) % b_size
            if slope in poisoned:
                continue
            w_groups = self.partition.groups_hit(slope, wrong)
            if len(w_groups) <= self.pointers:
                return slope, w_groups, False
            r_groups = self.partition.groups_hit(slope, right)
            if len(r_groups) <= self.pointers:
                return slope, r_groups, True
        raise UncorrectableError(
            f"{self.name}: no slope fits {len(wrong)} W / {len(right)} R faults "
            f"within {self.pointers} pointers",
            fault_offsets=tuple(sorted(faults)),
        )

    def _encode_write(self, data: np.ndarray) -> WriteReceipt:
        receipt = WriteReceipt()
        max_attempts = self.cells.n_bits + 2
        for _ in range(max_attempts):
            slope, pointed, block_inverted = self._plan(data)
            self.slope = slope
            self.pointed_groups = pointed
            self.block_inverted = block_inverted
            stored_form = np.bitwise_xor(
                data, self._stored_mask(slope, pointed, block_inverted)
            )
            receipt.cell_writes += self.cells.write(stored_form)
            receipt.verification_reads += 1
            mismatches = self.cells.verify(stored_form)
            if mismatches.size == 0:
                return receipt
            receipt.inversion_writes += 1
            for offset in mismatches:
                stored = int(self.cells.read()[offset])
                self.knowledge.record(self.cells, int(offset), stored)
        raise AssertionError(
            f"{self.name}: write service did not converge"
        )  # pragma: no cover - each retry learns a new fault

    def read(self) -> np.ndarray:
        mask = self._stored_mask(self.slope, self.pointed_groups, self.block_inverted)
        return np.bitwise_xor(self.cells.read(), mask)
