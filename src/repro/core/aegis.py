"""The basic Aegis error-recovery controller (paper §2.2).

Per-block state is exactly what the paper specifies: a *slope counter*
(current partition configuration) and a ``B``-bit *inversion vector* (bit
``y`` set when group ``y``'s data is stored inverted).  The controller does
**not** know where faults are or what their stuck-at values are — it learns
of stuck-at-wrong cells only through verification reads, exactly like the
hardware would.

Write-service algorithm (the paper's §2.2 narrative, made precise):

1. Form the stored image ``data XOR inversion-mask`` and program it
   (differential write), then issue a verification read.
2. Any mismatching cells are stuck-at-wrong faults for the current image;
   accumulate them into the set of faults *detected during this service*.
3. If the detected faults occupy distinct groups under the current slope,
   flip the inversion flag of each mismatching group and go to 1 (the
   re-written groups are the paper's extra "inversion writes"; a flipped
   group can expose a stuck-at-right fault on the next verification read,
   which then collides with the fault already known in that group).
4. Otherwise there is a *collision*: advance the slope counter until a
   configuration separates all detected faults (each examined slope is a
   re-partition trial), clear the inversion vector, and go to 1.  If no
   slope separates them, the block is unrecoverable and is retired.

The loop terminates because re-partitions only happen after the detected
set has grown, and the detected set is bounded by the block's faults.
"""

from __future__ import annotations

import numpy as np

from repro.core.formations import Formation, aegis_hard_ftc
from repro.core.partition import AegisPartition, partition_for
from repro.errors import UncorrectableError
from repro.pcm.cell import CellArray
from repro.schemes.base import RecoveryScheme, WriteReceipt
from repro.util.bitops import ceil_log2


class AegisScheme(RecoveryScheme):
    """Basic (cache-less) Aegis bound to one cell array.

    Parameters
    ----------
    cells:
        The block's cell array; its width must match the formation.
    formation:
        The ``A x B`` formation (e.g. ``formation(9, 61, 512)``).
    """

    def __init__(self, cells: CellArray, formation: Formation) -> None:
        super().__init__(cells)
        if cells.n_bits != formation.n_bits:
            raise ValueError(
                f"cell array has {cells.n_bits} bits but formation "
                f"{formation.name} expects {formation.n_bits}"
            )
        self.formation = formation
        self.partition: AegisPartition = partition_for(formation.rect)
        self.slope = 0
        self.inversion = np.zeros(formation.b_size, dtype=np.uint8)
        #: faults learned across the block's whole life (from verification
        #: reads only — never from an oracle)
        self.known_fault_offsets: set[int] = set()

    # -- identity ----------------------------------------------------------

    @property
    def name(self) -> str:
        return f"Aegis {self.formation.name}"

    @property
    def overhead_bits(self) -> int:
        """Slope counter + inversion vector (e.g. 67 bits for 9x61)."""
        return ceil_log2(self.formation.b_size) + self.formation.b_size

    @property
    def hard_ftc(self) -> int:
        return aegis_hard_ftc(self.formation.b_size)

    # -- data path -----------------------------------------------------------

    def _inversion_mask(self) -> np.ndarray:
        flagged = np.flatnonzero(self.inversion)
        if flagged.size == 0:
            return np.zeros(self.cells.n_bits, dtype=np.uint8)
        return self.partition.members_mask(self.slope, flagged)

    def _encode_write(self, data: np.ndarray) -> WriteReceipt:
        receipt = WriteReceipt()
        detected: set[int] = set()
        # Generous bound on loop iterations: every iteration either finishes,
        # detects a new fault, or re-partitions after detecting a new fault.
        max_iterations = 2 * self.cells.n_bits + self.partition.slope_count + 4
        for _ in range(max_iterations):
            stored_form = np.bitwise_xor(data, self._inversion_mask())
            receipt.cell_writes += self.cells.write(stored_form)
            receipt.verification_reads += 1
            mismatches = self.cells.verify(stored_form)
            if mismatches.size == 0:
                self.known_fault_offsets |= detected
                return receipt
            detected.update(int(m) for m in mismatches)
            if self.partition.separates(self.slope, detected):
                # flip the inversion flag of every mismatching group; the
                # re-write of those groups happens on the next loop pass
                flipped_groups = self.partition.groups_hit(self.slope, mismatches)
                for group in flipped_groups:
                    self.inversion[group] ^= 1
                receipt.inversion_writes += len(flipped_groups)
                continue
            # collision: advance the slope counter to a separating config
            found = self.partition.find_separating_slope(detected, start=self.slope + 1)
            if found is None:
                self.known_fault_offsets |= detected
                raise UncorrectableError(
                    f"{self.name}: no slope separates {len(detected)} faults",
                    fault_offsets=tuple(sorted(detected)),
                )
            new_slope, trials = found
            receipt.repartitions += trials
            self.slope = new_slope
            self.inversion[:] = 0
        raise AssertionError(
            f"{self.name}: write service did not converge "
            f"(faults={sorted(detected)})"
        )  # pragma: no cover - loop is provably bounded

    def read(self) -> np.ndarray:
        """Decode: raw read XOR inversion mask."""
        return np.bitwise_xor(self.cells.read(), self._inversion_mask())
