"""Aegis-p: plain Aegis with recorded group pointers (paper §2.3, last line).

"Aegis is not designed for a PCM whose faults are capped at a very small
count, as it provides minimally 23 groups for a 512-bit block ... The cost
can be reduced by directly recording IDs of bit-inverted groups."

This variant implements that remark: the ``B``-bit inversion vector is
replaced by ``p`` group-ID pointers (no fail cache involved — unlike
Aegis-rw-p, the controller still discovers faults only through
verification reads).  A write fails on a fault-group collision with no
separating slope left (as in plain Aegis) **or** when more than ``p``
groups need inversion, so the hard FTC is ``min(Aegis hard FTC, p)`` and
the per-block cost for small fault targets drops from
``ceil(log2 B) + B`` to ``ceil(log2 B) * (1 + p) + 1`` bits — e.g. 11 bits
instead of 28 for two tolerated faults under 23x23.
"""

from __future__ import annotations

import numpy as np

from repro.core.formations import Formation, aegis_hard_ftc
from repro.core.partition import AegisPartition, partition_for
from repro.errors import ConfigurationError, UncorrectableError
from repro.pcm.cell import CellArray
from repro.schemes.base import RecoveryScheme, WriteReceipt
from repro.util.bitops import ceil_log2


class AegisPointerScheme(RecoveryScheme):
    """Cache-less Aegis whose inversion state is ``p`` group pointers."""

    def __init__(self, cells: CellArray, formation: Formation, pointers: int) -> None:
        super().__init__(cells)
        if cells.n_bits != formation.n_bits:
            raise ValueError(
                f"cell array has {cells.n_bits} bits but formation "
                f"{formation.name} expects {formation.n_bits}"
            )
        if not 1 <= pointers < formation.b_size:
            raise ConfigurationError(
                "pointer budget must be at least 1 and below the group count "
                "(otherwise use the plain inversion vector)"
            )
        self.formation = formation
        self.pointers = pointers
        self.partition: AegisPartition = partition_for(formation.rect)
        self.slope = 0
        self.inverted_groups: set[int] = set()

    @property
    def name(self) -> str:
        return f"Aegis-p {self.formation.name} p={self.pointers}"

    @property
    def overhead_bits(self) -> int:
        """Slope counter + ``p`` group pointers + a pointers-in-use flag."""
        return ceil_log2(self.formation.b_size) * (1 + self.pointers) + 1

    @property
    def hard_ftc(self) -> int:
        """Each guaranteed fault may land in its own group and demand its
        own pointer, so the budget caps the slope-supply guarantee."""
        return min(aegis_hard_ftc(self.formation.b_size), self.pointers)

    def _inversion_mask(self) -> np.ndarray:
        if not self.inverted_groups:
            return np.zeros(self.cells.n_bits, dtype=np.uint8)
        return self.partition.members_mask(self.slope, sorted(self.inverted_groups))

    def _encode_write(self, data: np.ndarray) -> WriteReceipt:
        receipt = WriteReceipt()
        detected: set[int] = set()
        max_iterations = 2 * self.cells.n_bits + self.formation.b_size + 4
        for _ in range(max_iterations):
            stored_form = np.bitwise_xor(data, self._inversion_mask())
            receipt.cell_writes += self.cells.write(stored_form)
            receipt.verification_reads += 1
            mismatches = self.cells.verify(stored_form)
            if mismatches.size == 0:
                return receipt
            detected.update(int(m) for m in mismatches)
            if self.partition.separates(self.slope, detected):
                flipped = set(self.partition.groups_hit(self.slope, mismatches))
                new_inverted = self.inverted_groups ^ flipped
                if len(new_inverted) > self.pointers:
                    raise UncorrectableError(
                        f"{self.name}: {len(new_inverted)} groups need inversion "
                        f"but only {self.pointers} pointers exist",
                        fault_offsets=tuple(sorted(detected)),
                    )
                self.inverted_groups = new_inverted
                receipt.inversion_writes += len(flipped)
                continue
            found = self.partition.find_separating_slope(detected, start=self.slope + 1)
            if found is None:
                raise UncorrectableError(
                    f"{self.name}: no slope separates {len(detected)} faults",
                    fault_offsets=tuple(sorted(detected)),
                )
            new_slope, trials = found
            receipt.repartitions += trials
            self.slope = new_slope
            self.inverted_groups = set()
        raise AssertionError(
            f"{self.name}: write service did not converge"
        )  # pragma: no cover - bounded like AegisScheme

    def read(self) -> np.ndarray:
        return np.bitwise_xor(self.cells.read(), self._inversion_mask())
