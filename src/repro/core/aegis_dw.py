"""Aegis-dw: the double-write option the paper describes and rejects (§2.4).

To learn the stuck-at-wrong/right split without a fail cache, a controller
can write the block twice — once with the data, once inverted — because the
two verification reads together reveal *every* fault and its stuck value.
Armed with that knowledge it can plan exactly like Aegis-rw.  The paper
dismisses the option: "all bits in a block have to be written twice ...
making its latency too high and its induced wear too much."

This controller implements the option faithfully so the rejection can be
*measured* rather than asserted: `ext-writecost` and the tests show its
per-request wear is ~5x a plain write (the probe write flips every bit and
the final write flips most back), versus Aegis-rw's ~1x — precisely the
paper's argument.
"""

from __future__ import annotations

import numpy as np

from repro.core.aegis_rw import classify_faults
from repro.core.collision import CollisionROM, collision_rom_for
from repro.core.formations import Formation, aegis_rw_hard_ftc
from repro.core.partition import AegisPartition, partition_for
from repro.errors import UncorrectableError
from repro.pcm.cell import CellArray
from repro.schemes.base import RecoveryScheme, WriteReceipt
from repro.util.bitops import ceil_log2


class AegisDoubleWriteScheme(RecoveryScheme):
    """Aegis with per-write fault discovery via a full inverted probe write."""

    def __init__(self, cells: CellArray, formation: Formation) -> None:
        super().__init__(cells)
        if cells.n_bits != formation.n_bits:
            raise ValueError(
                f"cell array has {cells.n_bits} bits but formation "
                f"{formation.name} expects {formation.n_bits}"
            )
        self.formation = formation
        self.partition: AegisPartition = partition_for(formation.rect)
        self.rom: CollisionROM = collision_rom_for(formation.rect)
        self.slope = 0
        self.inversion = np.zeros(formation.b_size, dtype=np.uint8)

    @property
    def name(self) -> str:
        return f"Aegis-dw {self.formation.name}"

    @property
    def overhead_bits(self) -> int:
        """Metadata matches basic Aegis; the price is paid in writes."""
        return ceil_log2(self.formation.b_size) + self.formation.b_size

    @property
    def hard_ftc(self) -> int:
        return aegis_rw_hard_ftc(self.formation.b_size)

    def _inversion_mask(self) -> np.ndarray:
        flagged = np.flatnonzero(self.inversion)
        if flagged.size == 0:
            return np.zeros(self.cells.n_bits, dtype=np.uint8)
        return self.partition.members_mask(self.slope, flagged)

    def _discover_faults(self, data: np.ndarray, receipt: WriteReceipt) -> dict[int, int]:
        """The double write: plain then inverted, each verified.  Returns
        every fault's stuck value."""
        receipt.cell_writes += self.cells.write(data)
        receipt.verification_reads += 1
        wrong_plain = self.cells.verify(data)
        inverted = np.bitwise_xor(data, 1)
        receipt.cell_writes += self.cells.write(inverted)
        receipt.verification_reads += 1
        wrong_inverted = self.cells.verify(inverted)
        faults: dict[int, int] = {}
        for offset in wrong_plain:
            faults[int(offset)] = 1 - int(data[offset])  # stuck opposite the data
        for offset in wrong_inverted:
            faults[int(offset)] = int(data[offset])  # stuck equal to the data
        return faults

    def _encode_write(self, data: np.ndarray) -> WriteReceipt:
        receipt = WriteReceipt()
        faults = self._discover_faults(data, receipt)
        wrong, right = classify_faults(faults, data)
        slope = self.rom.find_rw_slope(wrong, right, start=self.slope)
        if slope is None:
            raise UncorrectableError(
                f"{self.name}: every slope mixes W and R faults "
                f"({len(wrong)} W, {len(right)} R)",
                fault_offsets=tuple(sorted(faults)),
            )
        self.slope = slope
        self.inversion[:] = 0
        self.inversion[self.partition.groups_hit(slope, wrong)] = 1
        stored_form = np.bitwise_xor(data, self._inversion_mask())
        receipt.cell_writes += self.cells.write(stored_form)
        receipt.verification_reads += 1
        mismatches = self.cells.verify(stored_form)
        if mismatches.size:
            raise AssertionError(
                f"{self.name}: residual mismatch after full discovery"
            )  # pragma: no cover - discovery reveals every fault
        return receipt

    def read(self) -> np.ndarray:
        return np.bitwise_xor(self.cells.read(), self._inversion_mask())
