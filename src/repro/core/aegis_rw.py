"""Aegis-rw: the cache-assisted Aegis variant (paper §2.4).

With a fail cache revealing each fault's location and stuck-at value before
a write, faults can be classified against the incoming data as
stuck-at-**W**rong (stuck value differs from the data bit) or
stuck-at-**R**ight (they agree).  A group may then hold *any number* of
same-type faults: inverting a group fixes every W fault in it
simultaneously, and a group of only R faults needs no action at all.  Only
a W and an R fault sharing a group is a real collision.

Aegis-rw therefore:

1. classifies the known faults into W and R for the incoming data;
2. consults the collision ROM (:class:`~repro.core.collision.CollisionROM`)
   for the set of slopes poisoned by some (W, R) cross pair — any other
   slope is collision-free, found with **no trial writes**;
3. sets the inversion vector to exactly the groups containing W faults and
   programs the block in a single pass.

When the fail cache is incomplete (a real, finite cache), the verification
read can still reveal unknown faults; the controller records them into the
cache and retries, degrading gracefully toward basic Aegis behaviour.
"""

from __future__ import annotations

import numpy as np

from repro.core.collision import CollisionROM, collision_rom_for
from repro.core.formations import Formation, aegis_rw_hard_ftc
from repro.core.partition import AegisPartition, partition_for
from repro.errors import UncorrectableError
from repro.pcm.cell import CellArray
from repro.schemes.base import FaultKnowledge, OracleKnowledge, RecoveryScheme, WriteReceipt
from repro.util.bitops import ceil_log2


def classify_faults(
    faults: dict[int, int], data: np.ndarray
) -> tuple[list[int], list[int]]:
    """Split ``offset -> stuck value`` faults into (wrong, right) for ``data``."""
    wrong = [o for o, stuck in faults.items() if stuck != int(data[o])]
    right = [o for o, stuck in faults.items() if stuck == int(data[o])]
    return wrong, right


class AegisRwScheme(RecoveryScheme):
    """Aegis-rw bound to one cell array.

    Parameters
    ----------
    cells:
        The block's cell array.
    formation:
        The ``A x B`` formation.
    knowledge:
        Fail-cache view of the block's faults; defaults to the paper's
        perfect cache (:class:`OracleKnowledge`).
    """

    def __init__(
        self,
        cells: CellArray,
        formation: Formation,
        knowledge: FaultKnowledge | None = None,
    ) -> None:
        super().__init__(cells)
        if cells.n_bits != formation.n_bits:
            raise ValueError(
                f"cell array has {cells.n_bits} bits but formation "
                f"{formation.name} expects {formation.n_bits}"
            )
        self.formation = formation
        self.partition: AegisPartition = partition_for(formation.rect)
        self.rom: CollisionROM = collision_rom_for(formation.rect)
        self.knowledge = knowledge if knowledge is not None else OracleKnowledge()
        self.slope = 0
        self.inversion = np.zeros(formation.b_size, dtype=np.uint8)

    # -- identity ----------------------------------------------------------

    @property
    def name(self) -> str:
        return f"Aegis-rw {self.formation.name}"

    @property
    def overhead_bits(self) -> int:
        """Same per-block cost as basic Aegis with the same formation
        (paper §2.4: "they are of the same space cost"); the collision ROM
        is chip-shared hardware."""
        return ceil_log2(self.formation.b_size) + self.formation.b_size

    @property
    def hard_ftc(self) -> int:
        return aegis_rw_hard_ftc(self.formation.b_size)

    # -- data path -----------------------------------------------------------

    def _inversion_mask(self) -> np.ndarray:
        flagged = np.flatnonzero(self.inversion)
        if flagged.size == 0:
            return np.zeros(self.cells.n_bits, dtype=np.uint8)
        return self.partition.members_mask(self.slope, flagged)

    def _plan(self, data: np.ndarray) -> tuple[int, list[int]]:
        """Pick a collision-free slope and the W groups to invert for
        ``data`` given current fault knowledge.  Raises when every slope is
        poisoned."""
        faults = self.knowledge.known_faults(self.cells)
        wrong, right = classify_faults(faults, data)
        slope = self.rom.find_rw_slope(wrong, right, start=self.slope)
        if slope is None:
            raise UncorrectableError(
                f"{self.name}: every slope mixes W and R faults "
                f"({len(wrong)} W, {len(right)} R)",
                fault_offsets=tuple(sorted(faults)),
            )
        return slope, self.partition.groups_hit(slope, wrong)

    def _encode_write(self, data: np.ndarray) -> WriteReceipt:
        receipt = WriteReceipt()
        # retries only happen while verification reads keep revealing faults
        # the cache did not know; each retry records at least one new fault
        max_attempts = self.cells.n_bits + 2
        for _ in range(max_attempts):
            slope, w_groups = self._plan(data)
            self.slope = slope
            self.inversion[:] = 0
            self.inversion[w_groups] = 1
            stored_form = np.bitwise_xor(data, self._inversion_mask())
            receipt.cell_writes += self.cells.write(stored_form)
            receipt.verification_reads += 1
            mismatches = self.cells.verify(stored_form)
            if mismatches.size == 0:
                return receipt
            # the cache missed these faults: learn them and retry
            receipt.inversion_writes += 1
            for offset in mismatches:
                stored = int(self.cells.read()[offset])
                self.knowledge.record(self.cells, int(offset), stored)
        raise AssertionError(
            f"{self.name}: write service did not converge"
        )  # pragma: no cover - each retry learns a new fault

    def read(self) -> np.ndarray:
        return np.bitwise_xor(self.cells.read(), self._inversion_mask())
