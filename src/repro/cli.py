"""Command-line interface: ``aegis-repro`` (or ``python -m repro``).

Subcommands
-----------
``list``
    Show the available experiments.
``run EXPERIMENT [EXPERIMENT ...]``
    Regenerate one or more paper tables/figures (``all`` runs everything),
    with ``--pages/--trials/--seed/--block-bits`` controlling the Monte
    Carlo scale.
``demo``
    A tiny end-to-end demonstration of Aegis recovering injected faults.
"""

from __future__ import annotations

import argparse
import sys
import time
from collections.abc import Sequence

import numpy as np


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="aegis-repro",
        description="Reproduction of Aegis (MICRO-46, 2013) stuck-at-fault recovery",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list available experiments")

    run_cmd = sub.add_parser("run", help="regenerate paper tables/figures")
    run_cmd.add_argument("experiments", nargs="+", help="experiment ids or 'all'")
    run_cmd.add_argument("--pages", type=int, default=128, help="pages per Monte Carlo study")
    run_cmd.add_argument("--trials", type=int, default=2000, help="trials for block-level studies")
    run_cmd.add_argument("--seed", type=int, default=2013, help="simulation seed")
    run_cmd.add_argument("--block-bits", type=int, default=512, choices=(256, 512))
    run_cmd.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help="worker processes for page-level Monte Carlo fan-out "
        "(default: all CPU cores; 1 disables the pool); results are "
        "bit-identical for every worker count",
    )
    run_cmd.add_argument(
        "--engine",
        choices=("auto", "vector", "scalar"),
        default="auto",
        help="Monte Carlo execution path: 'vector' advances whole trial "
        "populations per numpy call, 'scalar' walks each trial through "
        "the incremental checkers, 'auto' (default) picks the batch "
        "kernel whenever the scheme has one; results are bit-identical",
    )
    run_cmd.add_argument(
        "--json",
        metavar="PATH",
        default=None,
        help="also write the results as a JSON array to PATH",
    )
    run_cmd.add_argument(
        "--chart",
        action="store_true",
        help="draw each figure as a text chart below its table",
    )
    run_cmd.add_argument(
        "--trace", metavar="PATH", default=None,
        help="export deterministic study-phase span trees as JSONL "
        "(worker-count invariant)",
    )
    run_cmd.add_argument(
        "--metrics", metavar="PATH", default=None,
        help="export labeled run metrics in Prometheus text format",
    )
    run_cmd.add_argument(
        "--profile", action="store_true",
        help="collect wall-clock phase timings and print a profile report "
        "(informational; never part of the deterministic results)",
    )

    sub.add_parser("demo", help="run the quickstart fault-recovery demo")
    sub.add_parser(
        "check",
        help="self-verify the mathematical foundations (Theorems 1-2, Table 1)",
    )

    report_cmd = sub.add_parser(
        "report", help="regenerate every artefact into one Markdown report"
    )
    report_cmd.add_argument("-o", "--output", default="report.md", metavar="PATH")
    report_cmd.add_argument(
        "experiments", nargs="*", help="experiment ids (default: all)"
    )
    report_cmd.add_argument("--pages", type=int, default=64)
    report_cmd.add_argument("--trials", type=int, default=500)
    report_cmd.add_argument("--seed", type=int, default=2013)
    report_cmd.add_argument("--block-bits", type=int, default=512, choices=(256, 512))
    report_cmd.add_argument("--no-charts", action="store_true")
    report_cmd.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help="worker processes for page-level Monte Carlo fan-out "
        "(default: all CPU cores)",
    )
    report_cmd.add_argument(
        "--engine",
        choices=("auto", "vector", "scalar"),
        default="auto",
        help="Monte Carlo execution path (see 'run --engine')",
    )

    schemes_cmd = sub.add_parser(
        "schemes", help="catalogue every evaluated scheme configuration"
    )
    schemes_cmd.add_argument("--block-bits", type=int, default=512, choices=(256, 512))

    serve_cmd = sub.add_parser(
        "serve-bench",
        help="drive the memory-array service with a closed-loop load generator",
        description=(
            "Shard a logical address space over per-shard memory arrays, "
            "serve a deterministic request stream through the full pipeline "
            "(write buffer, fail cache, recovery schemes, spare remapping), "
            "and report throughput plus the final telemetry snapshot.  The "
            "snapshot is bit-identical for every --workers value."
        ),
    )
    serve_cmd.add_argument("--ops", type=int, default=20000, help="total operations")
    serve_cmd.add_argument(
        "--workload", choices=("uniform", "zipf", "hotcold"), default="zipf"
    )
    serve_cmd.add_argument("--alpha", type=float, default=1.0, help="Zipf exponent")
    serve_cmd.add_argument("--seed", type=int, default=2013)
    serve_cmd.add_argument("--shards", type=int, default=4, help="independent arrays")
    serve_cmd.add_argument(
        "--workers", type=int, default=None, metavar="N",
        help="worker processes (default: all cores; never changes the numbers)",
    )
    serve_cmd.add_argument(
        "--engine",
        choices=("auto", "vector", "scalar"),
        default="auto",
        help="write-drain path: 'vector' services each buffer drain as one "
        "numpy batch, 'scalar' walks it row by row, 'auto' (default) "
        "batches whenever the scheme has a service kernel; snapshots, "
        "traces and telemetry are bit-identical either way",
    )
    serve_cmd.add_argument("--addresses", type=int, default=64, help="addresses per shard")
    serve_cmd.add_argument("--spares", type=int, default=16, help="spare blocks per shard")
    serve_cmd.add_argument(
        "--scheme",
        choices=("aegis-9x61", "aegis-17x31", "aegis-rw-9x61", "ecp6", "safer64"),
        default="aegis-9x61",
    )
    serve_cmd.add_argument(
        "--endurance", type=float, default=150.0,
        help="mean cell endurance in writes (small, so wear-out happens in-run)",
    )
    serve_cmd.add_argument("--read-fraction", type=float, default=0.25)
    serve_cmd.add_argument("--buffer", type=int, default=8, help="write-buffer entries")
    serve_cmd.add_argument(
        "--snapshot-interval", type=int, default=2000,
        help="ops between periodic health-snapshot events (0 disables)",
    )
    serve_cmd.add_argument(
        "--proactive-migration", action="store_true",
        help="migrate degraded blocks to spares before rewriting them",
    )
    serve_cmd.add_argument(
        "--telemetry-jsonl", metavar="PATH", default=None,
        help="write the merged event log + final snapshot as JSONL",
    )
    serve_cmd.add_argument(
        "--json", metavar="PATH", default=None,
        help="write the deterministic snapshot as JSON",
    )
    serve_cmd.add_argument(
        "--trace", metavar="PATH", default=None,
        help="export sampled write-path span trees as JSONL "
        "(bit-identical for every --workers value)",
    )
    serve_cmd.add_argument(
        "--trace-sample", type=int, default=100, metavar="N",
        help="trace every N-th operation (failed writes are always traced)",
    )
    serve_cmd.add_argument(
        "--metrics", metavar="PATH", default=None,
        help="export the labeled metrics registry in Prometheus text format",
    )
    serve_cmd.add_argument(
        "--event-cap", type=int, default=None, metavar="N",
        help="event-log ring capacity (0 = unbounded; default 100000)",
    )
    serve_cmd.add_argument(
        "--profile", action="store_true",
        help="collect wall-clock phase timings (reported separately from "
        "the deterministic snapshot)",
    )

    obs_cmd = sub.add_parser(
        "obs-report",
        help="render trace/metrics artifacts into a markdown report",
        description=(
            "Read a --trace JSONL (and optionally a --metrics exposition "
            "file) produced by serve-bench or run, and render the slowest "
            "spans, the per-scheme stage-cost breakdown and the "
            "repartition/remap timeline as markdown."
        ),
    )
    obs_cmd.add_argument("--trace", metavar="PATH", required=True)
    obs_cmd.add_argument("--metrics", metavar="PATH", default=None)
    obs_cmd.add_argument("--top", type=int, default=10, help="spans per ranking")
    obs_cmd.add_argument(
        "-o", "--output", metavar="PATH", default=None,
        help="write the report here instead of stdout",
    )
    return parser


def _cmd_list() -> int:
    from repro.experiments import all_experiment_ids

    for experiment_id in all_experiment_ids():
        print(experiment_id)
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    import json

    from repro.experiments import all_experiment_ids, run_experiment
    from repro.obs import (
        MetricsRegistry,
        Profiler,
        Tracer,
        set_metrics,
        set_profiler,
        set_tracer,
    )
    from repro.sim.context import ExecContext

    wanted = args.experiments
    if wanted == ["all"]:
        wanted = all_experiment_ids()
    # the one place the execution plane is assembled: every --seed/--workers/
    # --engine/--trace/--metrics/--profile flag (and any future ExecContext
    # field with a same-named CLI flag) reaches every driver through this ctx
    ctx = ExecContext.from_args(args)
    tracer = Tracer() if args.trace else None
    registry = MetricsRegistry() if args.metrics else None
    profiler = Profiler() if args.profile else None
    if tracer is not None:
        set_tracer(tracer)
    if registry is not None:
        set_metrics(registry)
    if profiler is not None:
        set_profiler(profiler)
    results = []
    for experiment_id in wanted:
        start = time.time()
        result = run_experiment(
            experiment_id,
            ctx=ctx,
            n_pages=args.pages,
            trials=args.trials,
            block_bits=args.block_bits,
        )
        results.append(result)
        print(result.render())
        if args.chart:
            chart = result.render_chart()
            if chart is not None:
                print(chart)
        print(f"[{experiment_id} in {time.time() - start:.1f}s]\n")
    if args.json:
        with open(args.json, "w") as handle:
            json.dump([r.to_dict() for r in results], handle, indent=2)
        print(f"wrote {len(results)} result(s) to {args.json}")
    if tracer is not None:
        lines = tracer.write_jsonl(args.trace)
        print(f"wrote {lines} trace line(s) to {args.trace}")
    if registry is not None:
        lines = registry.write_prometheus(args.metrics)
        print(f"wrote {lines} metric line(s) to {args.metrics}")
    if profiler is not None:
        _print_profile(profiler.report())
    return 0


def _print_profile(report: dict) -> None:
    from repro.util.tables import render_table

    if not report:
        print("(no profiled phases)")
        return
    print(
        render_table(
            ("Phase", "Seconds", "Calls", "Mean ms"),
            [
                (name, entry["seconds"], entry["calls"], entry["mean_ms"])
                for name, entry in report.items()
            ],
            title="## Wall-clock profile (informational, not deterministic)",
        )
    )


def _cmd_demo() -> int:
    from repro import AegisScheme, CellArray, formation, roundtrip

    rng = np.random.default_rng(7)
    cells = CellArray(512)
    offsets = rng.choice(512, size=6, replace=False)
    for offset in offsets:
        cells.inject_fault(int(offset), stuck_value=int(rng.integers(0, 2)))
    scheme = AegisScheme(cells, formation(9, 61, 512))
    print(f"injected {cells.fault_count} stuck-at faults at offsets "
          f"{sorted(int(o) for o in offsets)}")
    successes = sum(
        roundtrip(scheme, rng.integers(0, 2, 512, dtype=np.uint8)) for _ in range(100)
    )
    print(f"{scheme.name}: {successes}/100 random writes stored and read back "
          f"exactly (slope counter settled at {scheme.slope})")
    return 0


def _cmd_check() -> int:
    from repro.core.formations import (
        aegis_cost_for_ftc,
        ecp_cost_for_ftc,
        safer_cost_for_ftc,
        standard_formations,
    )
    from repro.core.geometry import rectangle_for, verify_theorem1, verify_theorem2

    failures = 0
    print("Theorem 1 (every slope partitions the block):")
    for rect in (rectangle_for(32, 7), rectangle_for(64, 11), rectangle_for(48, 7)):
        ok = all(verify_theorem1(rect, k) for k in range(rect.b_size))
        failures += not ok
        print(f"  {rect}: {'ok' if ok else 'FAILED'}")
    print("Theorem 2 (one collision slope per bit pair):")
    for rect in (rectangle_for(32, 7), rectangle_for(64, 11)):
        ok = verify_theorem2(rect)
        failures += not ok
        print(f"  {rect}: {'ok' if ok else 'FAILED'}")
    print("Production formations (A = ceil(n/B), A <= B, B prime):")
    for n_bits in (512, 256):
        names = ", ".join(f.name for f in standard_formations(n_bits))
        print(f"  {n_bits}-bit: {names}: ok")
    print("Table 1 spot checks against the paper:")
    checks = [
        ("Aegis FTC 8 = 34 bits", aegis_cost_for_ftc(8) == 34),
        ("SAFER FTC 7 = 91 bits", safer_cost_for_ftc(7) == 91),
        ("ECP FTC 6 = 61 bits", ecp_cost_for_ftc(6) == 61),
    ]
    for label, ok in checks:
        failures += not ok
        print(f"  {label}: {'ok' if ok else 'FAILED'}")
    print("all checks passed" if not failures else f"{failures} check(s) FAILED")
    return 1 if failures else 0


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.experiments.report import write_report
    from repro.sim.context import ExecContext

    size = write_report(
        args.output,
        args.experiments or None,
        pages=args.pages,
        trials=args.trials,
        block_bits=args.block_bits,
        with_charts=not args.no_charts,
        ctx=ExecContext.from_args(args),
    )
    print(f"wrote {args.output} ({size} bytes)")
    return 0


def _cmd_schemes(args: argparse.Namespace) -> int:
    from repro.pcm.cell import CellArray
    from repro.sim.roster import (
        figure5_roster,
        figure8_roster,
        hamming_spec,
        no_protection_spec,
        variants_roster,
    )
    from repro.util.tables import render_table

    n_bits = args.block_bits
    seen: dict[str, object] = {}
    rosters = [figure5_roster(n_bits)]
    if n_bits == 512:  # the variant formations are defined for 512-bit rows
        rosters.append(variants_roster(n_bits))
        rosters.append(figure8_roster(n_bits))
    for roster in rosters:
        for spec in roster:
            seen.setdefault(spec.key, spec)
    for spec in (hamming_spec(n_bits), no_protection_spec(n_bits)):
        seen.setdefault(spec.key, spec)
    rows = []
    for spec in sorted(seen.values(), key=lambda s: (s.overhead_bits, s.label)):
        controller = spec.make_controller(CellArray(n_bits))
        hard_ftc = getattr(controller, "hard_ftc", "-")
        rows.append(
            (
                spec.label,
                spec.overhead_bits,
                f"{100 * spec.overhead_fraction:.1f}%",
                hard_ftc,
                "yes" if spec.inversion_wear else "no",
            )
        )
    print(
        render_table(
            ("Scheme", "Overhead bits", "Overhead %", "Hard FTC", "Inversion wear"),
            rows,
            title=f"## Evaluated scheme configurations ({n_bits}-bit blocks)",
        )
    )
    return 0


def _cmd_serve_bench(args: argparse.Namespace) -> int:
    import json

    from repro.pcm.lifetime import NormalLifetime
    from repro.service import run_load
    from repro.sim.context import ExecContext
    from repro.sim.roster import aegis_rw_spec, aegis_spec, ecp_spec, safer_spec
    from repro.util.tables import render_table

    spec_factories = {
        "aegis-9x61": lambda: aegis_spec(9, 61, 512),
        "aegis-17x31": lambda: aegis_spec(17, 31, 512),
        "aegis-rw-9x61": lambda: aegis_rw_spec(9, 61, 512),
        "ecp6": lambda: ecp_spec(6, 512),
        "safer64": lambda: safer_spec(64, 512),
    }
    from repro.service.telemetry import DEFAULT_EVENT_CAP

    spec = spec_factories[args.scheme]()
    ctx = ExecContext.from_args(args)
    workload_params = {"alpha": args.alpha} if args.workload == "zipf" else None
    report = run_load(
        spec,
        ops=args.ops,
        seed=ctx.seed,
        shards=args.shards,
        workers=ctx.workers,
        n_addresses=args.addresses,
        spares=args.spares,
        workload=args.workload,
        workload_params=workload_params,
        lifetime_model=NormalLifetime(mean_lifetime=args.endurance),
        read_fraction=args.read_fraction,
        buffer_capacity=args.buffer,
        proactive_migration=args.proactive_migration,
        snapshot_interval=args.snapshot_interval,
        engine=ctx.engine,
        trace_sample=(args.trace_sample if args.trace else 0),
        event_cap=(args.event_cap if args.event_cap is not None else DEFAULT_EVENT_CAP),
        profile=args.profile,
    )
    snapshot = report.snapshot
    counters = snapshot["counters"]
    capacity = snapshot["capacity"]
    print(
        f"served {report.ops} ops over {report.shards} shard(s) with "
        f"{report.workers} worker(s) (engine {ctx.engine}) in "
        f"{report.elapsed:.2f}s ({report.ops_per_second:,.0f} ops/s)"
    )
    print(
        f"scheme {spec.label}: service cost "
        f"{snapshot['service_cost']['mean']:.1f} cells/write, latency "
        f"{snapshot['latency']['mean']:.2f} passes/write"
    )
    print(
        render_table(
            ("Counter", "Value"),
            sorted(counters.items()),
            title="## Final telemetry counters (worker-count invariant)",
        )
    )
    print(
        render_table(
            ("Capacity", "Value"),
            sorted(capacity.items()),
            title="## Capacity / health",
        )
    )
    failures = counters.get("integrity_failures", 0)
    print(
        "read-after-write integrity: "
        + ("ok" if failures == 0 else f"{failures} FAILURE(S)")
        + f" ({counters.get('integrity_checked', 0)} addresses audited)"
    )
    if args.telemetry_jsonl:
        lines = report.write_telemetry_jsonl(args.telemetry_jsonl)
        print(f"wrote {lines} telemetry line(s) to {args.telemetry_jsonl}")
    if args.json:
        with open(args.json, "w") as handle:
            json.dump(snapshot, handle, indent=2, sort_keys=True)
        print(f"wrote snapshot to {args.json}")
    if args.trace:
        lines = report.write_trace_jsonl(args.trace)
        print(f"wrote {lines} trace line(s) to {args.trace}")
    if args.metrics:
        lines = report.write_metrics(args.metrics)
        print(f"wrote {lines} metric line(s) to {args.metrics}")
    if args.profile:
        _print_profile(report.profile)
    return 1 if failures else 0


def _cmd_obs_report(args: argparse.Namespace) -> int:
    from repro.obs import render_obs_report, write_obs_report

    if args.output:
        write_obs_report(
            args.output, args.trace, metrics_path=args.metrics, top=args.top
        )
        print(f"wrote observability report to {args.output}")
    else:
        print(render_obs_report(args.trace, metrics_path=args.metrics, top=args.top))
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.command == "list":
        return _cmd_list()
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "demo":
        return _cmd_demo()
    if args.command == "check":
        return _cmd_check()
    if args.command == "report":
        return _cmd_report(args)
    if args.command == "schemes":
        return _cmd_schemes(args)
    if args.command == "serve-bench":
        return _cmd_serve_bench(args)
    if args.command == "obs-report":
        return _cmd_obs_report(args)
    raise AssertionError(f"unhandled command {args.command}")  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
