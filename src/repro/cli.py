"""Command-line interface: ``aegis-repro`` (or ``python -m repro``).

Subcommands
-----------
``list``
    Show the available experiments.
``run EXPERIMENT [EXPERIMENT ...]``
    Regenerate one or more paper tables/figures (``all`` runs everything),
    with ``--pages/--trials/--seed/--block-bits`` controlling the Monte
    Carlo scale.
``demo``
    A tiny end-to-end demonstration of Aegis recovering injected faults.
"""

from __future__ import annotations

import argparse
import sys
import time
from collections.abc import Sequence

import numpy as np


#: scheme names servable by serve-bench / cluster-bench / serve
SERVICE_SCHEMES = ("aegis-9x61", "aegis-17x31", "aegis-rw-9x61", "ecp6", "safer64")


def _service_spec(name: str):
    """Resolve a servable scheme name to its :class:`SchemeSpec`."""
    from repro.sim.roster import aegis_rw_spec, aegis_spec, ecp_spec, safer_spec

    factories = {
        "aegis-9x61": lambda: aegis_spec(9, 61, 512),
        "aegis-17x31": lambda: aegis_spec(17, 31, 512),
        "aegis-rw-9x61": lambda: aegis_rw_spec(9, 61, 512),
        "ecp6": lambda: ecp_spec(6, 512),
        "safer64": lambda: safer_spec(64, 512),
    }
    return factories[name]()


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="aegis-repro",
        description="Reproduction of Aegis (MICRO-46, 2013) stuck-at-fault recovery",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list available experiments")

    run_cmd = sub.add_parser("run", help="regenerate paper tables/figures")
    run_cmd.add_argument("experiments", nargs="+", help="experiment ids or 'all'")
    run_cmd.add_argument("--pages", type=int, default=128, help="pages per Monte Carlo study")
    run_cmd.add_argument("--trials", type=int, default=2000, help="trials for block-level studies")
    run_cmd.add_argument("--seed", type=int, default=2013, help="simulation seed")
    run_cmd.add_argument("--block-bits", type=int, default=512, choices=(256, 512))
    run_cmd.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help="worker processes for page-level Monte Carlo fan-out "
        "(default: all CPU cores; 1 disables the pool); results are "
        "bit-identical for every worker count",
    )
    run_cmd.add_argument(
        "--engine",
        choices=("auto", "vector", "scalar"),
        default="auto",
        help="Monte Carlo execution path: 'vector' advances whole trial "
        "populations per numpy call, 'scalar' walks each trial through "
        "the incremental checkers, 'auto' (default) picks the batch "
        "kernel whenever the scheme has one; results are bit-identical",
    )
    run_cmd.add_argument(
        "--fault-model",
        choices=("hard", "partial", "drift"),
        default="hard",
        help="cell fault statistics: 'hard' (default) is the paper's "
        "hard stuck-at model, 'partial' adds maskable partially-stuck "
        "cells, 'drift' clusters arrivals into resistance-drift bursts; "
        "each model is bit-identical across --workers and --engine "
        "(see docs/fault_models.md)",
    )
    run_cmd.add_argument(
        "--json",
        metavar="PATH",
        default=None,
        help="also write the results as a JSON array to PATH",
    )
    run_cmd.add_argument(
        "--chart",
        action="store_true",
        help="draw each figure as a text chart below its table",
    )
    run_cmd.add_argument(
        "--trace", metavar="PATH", default=None,
        help="export deterministic study-phase span trees as JSONL "
        "(worker-count invariant)",
    )
    run_cmd.add_argument(
        "--metrics", metavar="PATH", default=None,
        help="export labeled run metrics in Prometheus text format",
    )
    run_cmd.add_argument(
        "--profile", action="store_true",
        help="collect wall-clock phase timings and print a profile report "
        "(informational; never part of the deterministic results)",
    )

    sub.add_parser("demo", help="run the quickstart fault-recovery demo")
    sub.add_parser(
        "check",
        help="self-verify the mathematical foundations (Theorems 1-2, Table 1)",
    )

    report_cmd = sub.add_parser(
        "report", help="regenerate every artefact into one Markdown report"
    )
    report_cmd.add_argument("-o", "--output", default="report.md", metavar="PATH")
    report_cmd.add_argument(
        "experiments", nargs="*", help="experiment ids (default: all)"
    )
    report_cmd.add_argument("--pages", type=int, default=64)
    report_cmd.add_argument("--trials", type=int, default=500)
    report_cmd.add_argument("--seed", type=int, default=2013)
    report_cmd.add_argument("--block-bits", type=int, default=512, choices=(256, 512))
    report_cmd.add_argument("--no-charts", action="store_true")
    report_cmd.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help="worker processes for page-level Monte Carlo fan-out "
        "(default: all CPU cores)",
    )
    report_cmd.add_argument(
        "--engine",
        choices=("auto", "vector", "scalar"),
        default="auto",
        help="Monte Carlo execution path (see 'run --engine')",
    )
    report_cmd.add_argument(
        "--fault-model",
        choices=("hard", "partial", "drift"),
        default="hard",
        help="cell fault statistics (see 'run --fault-model')",
    )

    schemes_cmd = sub.add_parser(
        "schemes", help="catalogue every evaluated scheme configuration"
    )
    schemes_cmd.add_argument("--block-bits", type=int, default=512, choices=(256, 512))

    serve_cmd = sub.add_parser(
        "serve-bench",
        help="drive the memory-array service with a closed-loop load generator",
        description=(
            "Shard a logical address space over per-shard memory arrays, "
            "serve a deterministic request stream through the full pipeline "
            "(write buffer, fail cache, recovery schemes, spare remapping), "
            "and report throughput plus the final telemetry snapshot.  The "
            "snapshot is bit-identical for every --workers value."
        ),
    )
    serve_cmd.add_argument("--ops", type=int, default=20000, help="total operations")
    serve_cmd.add_argument(
        "--workload", choices=("uniform", "zipf", "hotcold"), default="zipf"
    )
    serve_cmd.add_argument("--alpha", type=float, default=1.0, help="Zipf exponent")
    serve_cmd.add_argument("--seed", type=int, default=2013)
    serve_cmd.add_argument("--shards", type=int, default=4, help="independent arrays")
    serve_cmd.add_argument(
        "--workers", type=int, default=None, metavar="N",
        help="worker processes (default: all cores; never changes the numbers)",
    )
    serve_cmd.add_argument(
        "--engine",
        choices=("auto", "vector", "scalar"),
        default="auto",
        help="write-drain path: 'vector' services each buffer drain as one "
        "numpy batch, 'scalar' walks it row by row, 'auto' (default) "
        "batches whenever the scheme has a service kernel; snapshots, "
        "traces and telemetry are bit-identical either way",
    )
    serve_cmd.add_argument(
        "--fault-model",
        choices=("hard", "partial", "drift"),
        default="hard",
        help="cell fault statistics the arrays wear under "
        "(see 'run --fault-model' and docs/fault_models.md)",
    )
    serve_cmd.add_argument(
        "--policy",
        choices=("fixed", "adaptive"),
        default="fixed",
        help="per-block scheme policy: 'adaptive' lets the policy engine "
        "re-encode worn blocks onto stronger schemes "
        "(policy_switches_total{from,to} in the metrics export)",
    )
    serve_cmd.add_argument("--addresses", type=int, default=64, help="addresses per shard")
    serve_cmd.add_argument("--spares", type=int, default=16, help="spare blocks per shard")
    serve_cmd.add_argument(
        "--scheme",
        choices=("aegis-9x61", "aegis-17x31", "aegis-rw-9x61", "ecp6", "safer64"),
        default="aegis-9x61",
    )
    serve_cmd.add_argument(
        "--endurance", type=float, default=150.0,
        help="mean cell endurance in writes (small, so wear-out happens in-run)",
    )
    serve_cmd.add_argument("--read-fraction", type=float, default=0.25)
    serve_cmd.add_argument("--buffer", type=int, default=8, help="write-buffer entries")
    serve_cmd.add_argument(
        "--snapshot-interval", type=int, default=2000,
        help="ops between periodic health-snapshot events (0 disables)",
    )
    serve_cmd.add_argument(
        "--proactive-migration", action="store_true",
        help="migrate degraded blocks to spares before rewriting them",
    )
    serve_cmd.add_argument(
        "--telemetry-jsonl", metavar="PATH", default=None,
        help="write the merged event log + final snapshot as JSONL",
    )
    serve_cmd.add_argument(
        "--json", metavar="PATH", default=None,
        help="write the deterministic snapshot as JSON",
    )
    serve_cmd.add_argument(
        "--trace", metavar="PATH", default=None,
        help="export sampled write-path span trees as JSONL "
        "(bit-identical for every --workers value)",
    )
    serve_cmd.add_argument(
        "--trace-sample", type=int, default=100, metavar="N",
        help="trace every N-th operation (failed writes are always traced)",
    )
    serve_cmd.add_argument(
        "--metrics", metavar="PATH", default=None,
        help="export the labeled metrics registry in Prometheus text format",
    )
    serve_cmd.add_argument(
        "--event-cap", type=int, default=None, metavar="N",
        help="event-log ring capacity (0 = unbounded; default 100000)",
    )
    serve_cmd.add_argument(
        "--profile", action="store_true",
        help="collect wall-clock phase timings (reported separately from "
        "the deterministic snapshot)",
    )
    serve_cmd.add_argument(
        "--series-bucket", type=int, default=0, metavar="OPS",
        help="op-clock bucket width for per-shard time series "
        "(0 disables; implied 16 when --series is given)",
    )
    serve_cmd.add_argument(
        "--series", metavar="PATH", default=None,
        help="export the merged time series plus default service SLO "
        "verdicts as JSONL (the `repro slo-report` input)",
    )

    obs_cmd = sub.add_parser(
        "obs-report",
        help="render trace/metrics artifacts into a markdown report",
        description=(
            "Read a --trace JSONL (and optionally a --metrics exposition "
            "file) produced by serve-bench or run, and render the slowest "
            "spans, the per-scheme stage-cost breakdown and the "
            "repartition/remap timeline as markdown."
        ),
    )
    obs_cmd.add_argument(
        "--trace", metavar="PATH", default=None,
        help="trace JSONL (optional when --metrics is given)",
    )
    obs_cmd.add_argument("--metrics", metavar="PATH", default=None)
    obs_cmd.add_argument(
        "--series", metavar="PATH", default=None,
        help="also fold a time-series/SLO JSONL export into the report",
    )
    obs_cmd.add_argument("--top", type=int, default=10, help="spans per ranking")
    obs_cmd.add_argument(
        "-o", "--output", metavar="PATH", default=None,
        help="write the report here instead of stdout",
    )

    slo_cmd = sub.add_parser(
        "slo-report",
        help="render a time-series/SLO JSONL export into a markdown report",
        description=(
            "Read the --series JSONL written by serve-bench, cluster-bench "
            "or the library exporters, and render the error-budget table, "
            "the alert timeline, burn-rate curves and capacity-retention "
            "charts as markdown."
        ),
    )
    slo_cmd.add_argument(
        "--series", metavar="PATH", required=True,
        help="time-series/SLO JSONL export (write_series_jsonl output)",
    )
    slo_cmd.add_argument(
        "--top", type=int, default=10, help="counter series in the top table"
    )
    slo_cmd.add_argument("--title", default="SLO report")
    slo_cmd.add_argument(
        "-o", "--output", metavar="PATH", default=None,
        help="write the report here instead of stdout",
    )

    cluster_cmd = sub.add_parser(
        "cluster-bench",
        help="drive the multi-tenant cluster with a deterministic load harness",
        description=(
            "Place tenant keys on a cluster of memory arrays behind a "
            "consistent-hash ring, drive a weighted multi-tenant schedule "
            "with QoS admission control, optionally drain one array "
            "mid-run (live migration drill), and audit read-after-write "
            "integrity end to end.  The audit and snapshot digests are "
            "bit-identical for every --workers / --engine value."
        ),
    )
    cluster_cmd.add_argument("--ops", type=int, default=2000, help="total operations")
    cluster_cmd.add_argument("--arrays", type=int, default=3, help="arrays in the cluster")
    cluster_cmd.add_argument(
        "--tenants", type=int, default=4,
        help="tenant count (even indices interactive, odd bulk)",
    )
    cluster_cmd.add_argument("--seed", type=int, default=2013)
    cluster_cmd.add_argument(
        "--workers", type=int, default=None, metavar="N",
        help="workers for stream pre-generation (never changes the numbers)",
    )
    cluster_cmd.add_argument(
        "--engine", choices=("auto", "vector", "scalar"), default="auto",
        help="write-drain path per array (results are bit-identical either way)",
    )
    cluster_cmd.add_argument(
        "--fault-model",
        choices=("hard", "partial", "drift"),
        default="hard",
        help="cell fault statistics every array wears under "
        "(see 'run --fault-model' and docs/fault_models.md)",
    )
    cluster_cmd.add_argument(
        "--policy",
        choices=("fixed", "adaptive"),
        default="fixed",
        help="per-block scheme policy on every array ('adaptive' enables "
        "the policy engine; digests stay engine/worker invariant)",
    )
    cluster_cmd.add_argument("--scheme", choices=SERVICE_SCHEMES, default="aegis-9x61")
    cluster_cmd.add_argument(
        "--tenant-addresses", type=int, default=32, help="address space per tenant"
    )
    cluster_cmd.add_argument(
        "--addresses", type=int, default=64, help="logical addresses per array"
    )
    cluster_cmd.add_argument("--spares", type=int, default=16, help="spare blocks per array")
    cluster_cmd.add_argument("--buffer", type=int, default=8, help="write-buffer entries")
    cluster_cmd.add_argument(
        "--watermark", type=float, default=0.75,
        help="buffer occupancy fraction closing bulk admission",
    )
    cluster_cmd.add_argument(
        "--endurance", type=float, default=150.0,
        help="mean cell endurance in writes (small, so wear-out happens in-run)",
    )
    cluster_cmd.add_argument(
        "--degrade-at", type=int, default=0, metavar="STEP",
        help="drain --degrade-array after this schedule step (0 disables)",
    )
    cluster_cmd.add_argument("--degrade-array", type=int, default=0, metavar="INDEX")
    cluster_cmd.add_argument(
        "--degrade-threshold", type=int, default=None, metavar="FAULTS",
        help="per-block fault count at which health degrades (default: "
        "one below the scheme's hard limit; lower values widen the "
        "window the alert/pressure migration sweeps act on)",
    )
    cluster_cmd.add_argument(
        "--maintenance-interval", type=int, default=16, metavar="STEPS",
        help="schedule steps between control-plane passes",
    )
    cluster_cmd.add_argument(
        "--series-bucket", type=int, default=None, metavar="OPS",
        help="op-clock bucket width for the cluster time series "
        "(default: the maintenance interval; 0 disables series and SLOs)",
    )
    cluster_cmd.add_argument(
        "--series", metavar="PATH", default=None,
        help="export the time series plus SLO verdicts/alerts as JSONL "
        "(the `repro slo-report` input)",
    )
    cluster_cmd.add_argument(
        "--check", action="store_true",
        help="re-run with different workers and the flipped engine and "
        "fail unless both digests are bit-identical (CI smoke mode)",
    )
    cluster_cmd.add_argument(
        "--json", metavar="PATH", default=None,
        help="write the deterministic snapshot as JSON",
    )
    cluster_cmd.add_argument(
        "--metrics", metavar="PATH", default=None,
        help="export the labeled metrics registry in Prometheus text format",
    )
    cluster_cmd.add_argument(
        "--telemetry-jsonl", metavar="PATH", default=None,
        help="write the merged event log + final snapshot as JSONL",
    )

    fleet_cmd = sub.add_parser(
        "fleet-bench",
        help="stream a fleet-scale aging campaign with shard-side reduction",
        description=(
            "Run a streaming fleet campaign: pages fan out over a warm "
            "persistent worker pool under a bounded in-flight window, "
            "workers fold chunks into compact moment/histogram shards "
            "(O(aggregate) IPC instead of O(pages)), and the parent "
            "merges in deterministic chunk order.  The campaign digest "
            "is bit-identical for every --workers / --engine value and "
            "across --checkpoint kill/resume."
        ),
    )
    fleet_cmd.add_argument(
        "--schemes", default=",".join(("aegis-9x61", "ecp6", "safer64")),
        help="comma-separated campaign scheme keys (see repro.fleet.FLEET_SCHEMES)",
    )
    fleet_cmd.add_argument(
        "--pages", type=int, default=256, help="pages per scheme"
    )
    fleet_cmd.add_argument("--blocks", type=int, default=8, help="blocks per page")
    fleet_cmd.add_argument("--block-bits", type=int, default=512, choices=(256, 512))
    fleet_cmd.add_argument(
        "--chunk-pages", type=int, default=64,
        help="pages per worker chunk (bigger chunks amortise the shard "
        "overhead: the shard is constant-size, so the IPC reduction "
        "ratio scales with this)",
    )
    fleet_cmd.add_argument("--seed", type=int, default=2013)
    fleet_cmd.add_argument(
        "--workers", type=int, default=None, metavar="N",
        help="worker processes (never changes the campaign digest)",
    )
    fleet_cmd.add_argument(
        "--engine", choices=("auto", "vector", "scalar"), default="auto",
        help="simulation path per chunk (digest-identical either way)",
    )
    fleet_cmd.add_argument(
        "--fault-model",
        choices=("hard", "partial", "drift"),
        default="hard",
        help="cell fault statistics the campaign ages under "
        "(see 'run --fault-model' and docs/fault_models.md)",
    )
    fleet_cmd.add_argument(
        "--wear-policy",
        default="perfect",
        help="comma-separated wear-leveling policies as a grid dimension "
        "(perfect, none, start-gap, security-refresh); each scheme is "
        "aged once per policy and non-default policies are folded into "
        "the campaign config digest",
    )
    fleet_cmd.add_argument(
        "--endurance", type=float, default=None, metavar="WRITES",
        help="mean cell endurance (default: the paper's 1e8)",
    )
    fleet_cmd.add_argument(
        "--cov", type=float, default=None,
        help="endurance coefficient of variation (default: the paper's 0.25)",
    )
    fleet_cmd.add_argument(
        "--retention-age", type=float, default=None, metavar="WRITES",
        help="page-write age defining retention (default: 0.25x the "
        "characteristic lifetime scale)",
    )
    fleet_cmd.add_argument(
        "--checkpoint", metavar="PATH", default=None,
        help="JSONL checkpoint file, written atomically every "
        "--checkpoint-interval chunks (enables --resume)",
    )
    fleet_cmd.add_argument(
        "--checkpoint-interval", type=int, default=8, metavar="CHUNKS",
        help="chunks between checkpoints",
    )
    fleet_cmd.add_argument(
        "--resume", action="store_true",
        help="resume from --checkpoint (refused if the campaign "
        "parameters or seed differ from the checkpoint's)",
    )
    fleet_cmd.add_argument(
        "--stop-after-chunks", type=int, default=0, metavar="N",
        help="stop cleanly after N chunks, writing a checkpoint "
        "(0 disables; the in-process kill drill)",
    )
    fleet_cmd.add_argument(
        "--kill-after-checkpoints", type=int, default=0, metavar="N",
        help="SIGKILL this process right after the Nth checkpoint lands "
        "(0 disables; the CI crash drill — resume afterwards and the "
        "digest must match an uninterrupted run)",
    )
    fleet_cmd.add_argument(
        "--check", action="store_true",
        help="re-run with workers 2 and 4 and the flipped engine and fail "
        "unless every campaign digest is bit-identical (CI smoke mode)",
    )
    fleet_cmd.add_argument(
        "--series", metavar="PATH", default=None,
        help="export the retention time series plus SLO verdicts/alerts "
        "as JSONL (the `repro slo-report` input)",
    )
    fleet_cmd.add_argument(
        "--json", metavar="PATH", default=None,
        help="write the campaign report (digest, per-scheme rows, IPC "
        "accounting) as JSON",
    )
    fleet_cmd.add_argument(
        "--metrics", metavar="PATH", default=None,
        help="export the campaign metrics registry in Prometheus text format",
    )

    serve_front = sub.add_parser(
        "serve",
        help="serve the multi-tenant cluster over an asyncio JSON-lines front-end",
        description=(
            "Start the asyncio front-end: per-tenant sessions over TCP "
            "(JSON lines), QoS admission with bounded bulk queues, and a "
            "background control plane doing watermark flushes and live "
            "migration.  --selftest drives every tenant over a loopback "
            "client and exits."
        ),
    )
    serve_front.add_argument("--host", default="127.0.0.1")
    serve_front.add_argument(
        "--port", type=int, default=0, help="0 picks a free port (printed on start)"
    )
    serve_front.add_argument("--arrays", type=int, default=3)
    serve_front.add_argument("--tenants", type=int, default=4)
    serve_front.add_argument("--scheme", choices=SERVICE_SCHEMES, default="aegis-9x61")
    serve_front.add_argument("--addresses", type=int, default=64)
    serve_front.add_argument("--spares", type=int, default=16)
    serve_front.add_argument("--buffer", type=int, default=8)
    serve_front.add_argument("--seed", type=int, default=2013)
    serve_front.add_argument("--endurance", type=float, default=150.0)
    serve_front.add_argument(
        "--series-bucket", type=int, default=16, metavar="OPS",
        help="op-clock bucket width for the cluster time series feeding "
        "`stats`/`watch` and the SLO-driven control plane (0 disables)",
    )
    serve_front.add_argument(
        "--selftest", action="store_true",
        help="drive every tenant over a loopback session, verify "
        "read-your-writes, print the summary, and exit",
    )
    serve_front.add_argument(
        "--selftest-ops", type=int, default=16, metavar="N",
        help="loopback operations per tenant in --selftest",
    )
    return parser


def _cmd_list() -> int:
    from repro.experiments import all_experiment_ids

    for experiment_id in all_experiment_ids():
        print(experiment_id)
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    import json

    from repro.experiments import all_experiment_ids, run_experiment
    from repro.obs import (
        MetricsRegistry,
        Profiler,
        Tracer,
        set_metrics,
        set_profiler,
        set_tracer,
    )
    from repro.sim.context import ExecContext

    wanted = args.experiments
    if wanted == ["all"]:
        wanted = all_experiment_ids()
    # the one place the execution plane is assembled: every --seed/--workers/
    # --engine/--trace/--metrics/--profile flag (and any future ExecContext
    # field with a same-named CLI flag) reaches every driver through this ctx
    ctx = ExecContext.from_args(args)
    tracer = Tracer() if args.trace else None
    registry = MetricsRegistry() if args.metrics else None
    profiler = Profiler() if args.profile else None
    if tracer is not None:
        set_tracer(tracer)
    if registry is not None:
        set_metrics(registry)
    if profiler is not None:
        set_profiler(profiler)
    results = []
    for experiment_id in wanted:
        start = time.time()
        result = run_experiment(
            experiment_id,
            ctx=ctx,
            n_pages=args.pages,
            trials=args.trials,
            block_bits=args.block_bits,
        )
        results.append(result)
        print(result.render())
        if args.chart:
            chart = result.render_chart()
            if chart is not None:
                print(chart)
        print(f"[{experiment_id} in {time.time() - start:.1f}s]\n")
    if args.json:
        with open(args.json, "w") as handle:
            json.dump([r.to_dict() for r in results], handle, indent=2)
        print(f"wrote {len(results)} result(s) to {args.json}")
    if tracer is not None:
        lines = tracer.write_jsonl(args.trace)
        print(f"wrote {lines} trace line(s) to {args.trace}")
    if registry is not None:
        lines = registry.write_prometheus(args.metrics)
        print(f"wrote {lines} metric line(s) to {args.metrics}")
    if profiler is not None:
        _print_profile(profiler.report())
    return 0


def _print_profile(report: dict) -> None:
    from repro.util.tables import render_table

    if not report:
        print("(no profiled phases)")
        return
    print(
        render_table(
            ("Phase", "Seconds", "Calls", "Mean ms"),
            [
                (name, entry["seconds"], entry["calls"], entry["mean_ms"])
                for name, entry in report.items()
            ],
            title="## Wall-clock profile (informational, not deterministic)",
        )
    )


def _cmd_demo() -> int:
    from repro import AegisScheme, CellArray, formation, roundtrip

    rng = np.random.default_rng(7)
    cells = CellArray(512)
    offsets = rng.choice(512, size=6, replace=False)
    for offset in offsets:
        cells.inject_fault(int(offset), stuck_value=int(rng.integers(0, 2)))
    scheme = AegisScheme(cells, formation(9, 61, 512))
    print(f"injected {cells.fault_count} stuck-at faults at offsets "
          f"{sorted(int(o) for o in offsets)}")
    successes = sum(
        roundtrip(scheme, rng.integers(0, 2, 512, dtype=np.uint8)) for _ in range(100)
    )
    print(f"{scheme.name}: {successes}/100 random writes stored and read back "
          f"exactly (slope counter settled at {scheme.slope})")
    return 0


def _cmd_check() -> int:
    from repro.core.formations import (
        aegis_cost_for_ftc,
        ecp_cost_for_ftc,
        safer_cost_for_ftc,
        standard_formations,
    )
    from repro.core.geometry import rectangle_for, verify_theorem1, verify_theorem2

    failures = 0
    print("Theorem 1 (every slope partitions the block):")
    for rect in (rectangle_for(32, 7), rectangle_for(64, 11), rectangle_for(48, 7)):
        ok = all(verify_theorem1(rect, k) for k in range(rect.b_size))
        failures += not ok
        print(f"  {rect}: {'ok' if ok else 'FAILED'}")
    print("Theorem 2 (one collision slope per bit pair):")
    for rect in (rectangle_for(32, 7), rectangle_for(64, 11)):
        ok = verify_theorem2(rect)
        failures += not ok
        print(f"  {rect}: {'ok' if ok else 'FAILED'}")
    print("Production formations (A = ceil(n/B), A <= B, B prime):")
    for n_bits in (512, 256):
        names = ", ".join(f.name for f in standard_formations(n_bits))
        print(f"  {n_bits}-bit: {names}: ok")
    print("Table 1 spot checks against the paper:")
    checks = [
        ("Aegis FTC 8 = 34 bits", aegis_cost_for_ftc(8) == 34),
        ("SAFER FTC 7 = 91 bits", safer_cost_for_ftc(7) == 91),
        ("ECP FTC 6 = 61 bits", ecp_cost_for_ftc(6) == 61),
    ]
    for label, ok in checks:
        failures += not ok
        print(f"  {label}: {'ok' if ok else 'FAILED'}")
    print("all checks passed" if not failures else f"{failures} check(s) FAILED")
    return 1 if failures else 0


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.experiments.report import write_report
    from repro.sim.context import ExecContext

    size = write_report(
        args.output,
        args.experiments or None,
        pages=args.pages,
        trials=args.trials,
        block_bits=args.block_bits,
        with_charts=not args.no_charts,
        ctx=ExecContext.from_args(args),
    )
    print(f"wrote {args.output} ({size} bytes)")
    return 0


def _cmd_schemes(args: argparse.Namespace) -> int:
    from repro.pcm.cell import CellArray
    from repro.sim.roster import (
        figure5_roster,
        figure8_roster,
        hamming_spec,
        no_protection_spec,
        variants_roster,
    )
    from repro.util.tables import render_table

    n_bits = args.block_bits
    seen: dict[str, object] = {}
    rosters = [figure5_roster(n_bits)]
    if n_bits == 512:  # the variant formations are defined for 512-bit rows
        rosters.append(variants_roster(n_bits))
        rosters.append(figure8_roster(n_bits))
    for roster in rosters:
        for spec in roster:
            seen.setdefault(spec.key, spec)
    for spec in (hamming_spec(n_bits), no_protection_spec(n_bits)):
        seen.setdefault(spec.key, spec)
    rows = []
    for spec in sorted(seen.values(), key=lambda s: (s.overhead_bits, s.label)):
        controller = spec.make_controller(CellArray(n_bits))
        hard_ftc = getattr(controller, "hard_ftc", "-")
        rows.append(
            (
                spec.label,
                spec.overhead_bits,
                f"{100 * spec.overhead_fraction:.1f}%",
                hard_ftc,
                "yes" if spec.inversion_wear else "no",
            )
        )
    print(
        render_table(
            ("Scheme", "Overhead bits", "Overhead %", "Hard FTC", "Inversion wear"),
            rows,
            title=f"## Evaluated scheme configurations ({n_bits}-bit blocks)",
        )
    )
    return 0


def _cmd_serve_bench(args: argparse.Namespace) -> int:
    import json

    from repro.pcm.lifetime import NormalLifetime
    from repro.service import run_load
    from repro.sim.context import ExecContext
    from repro.sim.roster import aegis_rw_spec, aegis_spec, ecp_spec, safer_spec
    from repro.util.tables import render_table

    spec_factories = {
        "aegis-9x61": lambda: aegis_spec(9, 61, 512),
        "aegis-17x31": lambda: aegis_spec(17, 31, 512),
        "aegis-rw-9x61": lambda: aegis_rw_spec(9, 61, 512),
        "ecp6": lambda: ecp_spec(6, 512),
        "safer64": lambda: safer_spec(64, 512),
    }
    from repro.service.telemetry import DEFAULT_EVENT_CAP

    spec = spec_factories[args.scheme]()
    ctx = ExecContext.from_args(args)
    workload_params = {"alpha": args.alpha} if args.workload == "zipf" else None
    series_bucket = args.series_bucket
    if args.series and not series_bucket:
        series_bucket = 16
    report = run_load(
        spec,
        ops=args.ops,
        seed=ctx.seed,
        shards=args.shards,
        workers=ctx.workers,
        n_addresses=args.addresses,
        spares=args.spares,
        workload=args.workload,
        workload_params=workload_params,
        lifetime_model=NormalLifetime(mean_lifetime=args.endurance),
        read_fraction=args.read_fraction,
        buffer_capacity=args.buffer,
        proactive_migration=args.proactive_migration,
        snapshot_interval=args.snapshot_interval,
        engine=ctx.engine,
        fault_model=args.fault_model,
        policy=args.policy,
        trace_sample=(args.trace_sample if args.trace else 0),
        event_cap=(args.event_cap if args.event_cap is not None else DEFAULT_EVENT_CAP),
        profile=args.profile,
        series_bucket=series_bucket,
    )
    snapshot = report.snapshot
    counters = snapshot["counters"]
    capacity = snapshot["capacity"]
    print(
        f"served {report.ops} ops over {report.shards} shard(s) with "
        f"{report.workers} worker(s) (engine {ctx.engine}) in "
        f"{report.elapsed:.2f}s ({report.ops_per_second:,.0f} ops/s)"
    )
    print(
        f"scheme {spec.label}: service cost "
        f"{snapshot['service_cost']['mean']:.1f} cells/write, latency "
        f"{snapshot['latency']['mean']:.2f} passes/write"
    )
    print(
        render_table(
            ("Counter", "Value"),
            sorted(counters.items()),
            title="## Final telemetry counters (worker-count invariant)",
        )
    )
    print(
        render_table(
            ("Capacity", "Value"),
            sorted(capacity.items()),
            title="## Capacity / health",
        )
    )
    failures = counters.get("integrity_failures", 0)
    print(
        "read-after-write integrity: "
        + ("ok" if failures == 0 else f"{failures} FAILURE(S)")
        + f" ({counters.get('integrity_checked', 0)} addresses audited)"
    )
    if args.telemetry_jsonl:
        lines = report.write_telemetry_jsonl(args.telemetry_jsonl)
        print(f"wrote {lines} telemetry line(s) to {args.telemetry_jsonl}")
    if args.json:
        with open(args.json, "w") as handle:
            json.dump(snapshot, handle, indent=2, sort_keys=True)
        print(f"wrote snapshot to {args.json}")
    if args.trace:
        lines = report.write_trace_jsonl(args.trace)
        print(f"wrote {lines} trace line(s) to {args.trace}")
    if args.metrics:
        lines = report.write_metrics(args.metrics)
        print(f"wrote {lines} metric line(s) to {args.metrics}")
    if args.series:
        from repro.obs.slo import default_service_slos, write_slo_jsonl

        lines = write_slo_jsonl(
            args.series, report.telemetry.timeseries, default_service_slos()
        )
        print(f"wrote {lines} series line(s) to {args.series}")
    if args.profile:
        _print_profile(report.profile)
    return 1 if failures else 0


def _cmd_cluster_bench(args: argparse.Namespace) -> int:
    import json

    from repro.cluster import run_cluster_bench
    from repro.pcm.lifetime import NormalLifetime
    from repro.sim.context import ExecContext
    from repro.util.tables import render_table

    spec = _service_spec(args.scheme)
    ctx = ExecContext.from_args(args)
    kwargs = dict(
        ops=args.ops,
        n_arrays=args.arrays,
        tenants=args.tenants,
        seed=ctx.seed,
        tenant_addresses=args.tenant_addresses,
        n_addresses=args.addresses,
        spares=args.spares,
        buffer_capacity=args.buffer,
        bulk_watermark=args.watermark,
        lifetime_model=NormalLifetime(mean_lifetime=args.endurance),
        maintenance_interval=args.maintenance_interval,
        degrade_at=args.degrade_at,
        degrade_array=args.degrade_array,
        degrade_threshold=args.degrade_threshold,
        fault_model=args.fault_model,
        policy=args.policy,
        series_bucket=args.series_bucket,
    )
    report = run_cluster_bench(spec, engine=ctx.engine, workers=ctx.workers, **kwargs)
    print(
        f"cluster-bench: {report.ops} ops over {args.arrays} array(s) / "
        f"{args.tenants} tenant(s) in {report.elapsed:.2f}s "
        f"({report.ops_per_second:,.0f} ops/s, engine {ctx.engine})"
    )
    print(f"audit digest:    {report.audit_digest}")
    print(f"snapshot digest: {report.snapshot_digest}")
    rows = [
        (
            tenant,
            row["qos"],
            row["writes"],
            row["reads"],
            row["backpressure"],
            row["keys"],
            row["dead_keys"],
            row["stage_cost_p50"],
            row["stage_cost_p99"],
        )
        for tenant, row in report.per_tenant.items()
    ]
    print(
        render_table(
            ("Tenant", "QoS", "Writes", "Reads", "Backpressure", "Keys",
             "Dead", "p50 cost", "p99 cost"),
            rows,
            title="## Per-tenant SLO summary (worker/engine invariant)",
        )
    )
    arrays = report.snapshot["arrays"]
    print(
        render_table(
            ("Array", "Draining", "Keys", "Live addrs", "Free blocks", "Degraded", "Retired"),
            [
                (
                    row["array"],
                    "yes" if row["draining"] else "no",
                    row["resident_keys"],
                    row["live_addresses"],
                    row["free_blocks"],
                    row["blocks_degraded"],
                    row["blocks_retired"],
                )
                for row in arrays
            ],
            title="## Per-array capacity / health",
        )
    )
    slo = report.snapshot.get("slo")
    if slo:
        print(
            render_table(
                ("SLO", "Kind", "Objective", "Events", "Bad", "Budget left",
                 "Alerts", "Action"),
                [
                    (
                        name,
                        entry["kind"],
                        entry["objective"],
                        entry["events"],
                        entry["bad"],
                        f"{entry['budget_left_fraction']:.3f}",
                        len(entry["alerts"]),
                        entry["action"] or "-",
                    )
                    for name, entry in slo["slos"].items()
                ],
                title="## SLO / error-budget summary (worker/engine invariant)",
            )
        )
        metrics = report.telemetry.metrics
        print(
            f"SLO alerts: {metrics.counter_total('slo_alerts_total')} fired, "
            f"{metrics.counter_total('migrations_total', kind='alert')} "
            f"alert-driven migration(s)"
        )
    audit = report.snapshot["audit"]
    print(
        f"read-after-write audit: "
        + ("ok" if report.audit_failures == 0 else f"{report.audit_failures} FAILURE(S)")
        + f" ({audit['checked']} keys checked, {audit['dead_keys']} dead, "
        f"{audit['retries']} backpressure retries)"
    )
    failed = report.audit_failures > 0
    if args.check:
        alt_workers = 2 if (report.workers or 1) == 1 else 1
        alt_engine = "vector" if ctx.engine == "scalar" else "scalar"
        for label, check_kwargs in (
            (f"workers={alt_workers}", dict(engine=ctx.engine, workers=alt_workers)),
            (f"engine={alt_engine}", dict(engine=alt_engine, workers=ctx.workers)),
        ):
            other = run_cluster_bench(spec, **check_kwargs, **kwargs)
            same = (
                other.audit_digest == report.audit_digest
                and other.snapshot_digest == report.snapshot_digest
            )
            print(f"determinism check [{label}]: {'ok' if same else 'MISMATCH'}")
            failed = failed or not same
    if args.json:
        with open(args.json, "w") as handle:
            json.dump(report.snapshot, handle, indent=2, sort_keys=True)
        print(f"wrote snapshot to {args.json}")
    if args.metrics:
        lines = report.write_metrics(args.metrics)
        print(f"wrote {lines} metric line(s) to {args.metrics}")
    if args.telemetry_jsonl:
        lines = report.write_telemetry_jsonl(args.telemetry_jsonl)
        print(f"wrote {lines} telemetry line(s) to {args.telemetry_jsonl}")
    if args.series:
        lines = report.write_series_jsonl(args.series)
        print(f"wrote {lines} series line(s) to {args.series}")
    return 1 if failed else 0


def _cmd_fleet_bench(args: argparse.Namespace) -> int:
    import json

    from repro.fleet import CampaignSpec, run_campaign
    from repro.sim.context import ExecContext
    from repro.util.tables import render_table

    schemes = tuple(name.strip() for name in args.schemes.split(",") if name.strip())
    wear_policies = tuple(
        name.strip() for name in args.wear_policy.split(",") if name.strip()
    )
    spec = CampaignSpec(
        schemes=schemes,
        pages_per_scheme=args.pages,
        blocks_per_page=args.blocks,
        block_bits=args.block_bits,
        chunk_pages=args.chunk_pages,
        mean_endurance=args.endurance,
        endurance_cov=args.cov,
        retention_age=args.retention_age,
        wear_policies=wear_policies,
        fault_model=args.fault_model,
    )
    ctx = ExecContext.from_args(args)
    report = run_campaign(
        spec,
        ctx,
        checkpoint_path=args.checkpoint,
        checkpoint_interval=args.checkpoint_interval,
        resume=args.resume,
        stop_after_chunks=args.stop_after_chunks or None,
        kill_after_checkpoints=args.kill_after_checkpoints or None,
    )
    print(
        f"fleet-bench: {report.pages} pages / {len(schemes)} scheme(s) in "
        f"{report.elapsed:.2f}s ({report.pages_per_second:,.0f} pages/s, "
        f"engine {ctx.engine})"
    )
    print(f"campaign digest: {report.digest}")
    if report.resumed_from is not None:
        print(
            f"resumed from checkpoint cursor "
            f"(scheme {report.resumed_from[0]}, chunk {report.resumed_from[1]})"
        )
    if not report.completed:
        print(
            f"stopped early at cursor (scheme {report.cursor[0]}, "
            f"chunk {report.cursor[1]}); checkpoint written — resume with "
            f"--resume --checkpoint {args.checkpoint}"
        )
    if report.aggregate.shard_bytes:
        print(
            f"IPC: {report.aggregate.shard_bytes:,} shard bytes vs "
            f"{report.aggregate.result_bytes:,} full-result bytes "
            f"({report.reduction_ratio:.1f}x reduction)"
        )
    rows = [
        (
            row["scheme"],
            row["pages"],
            f"{row['lifetime_mean']:.4g}",
            round(row["improvement_mean"], 2),
            f"{100 * row['retention']:.1f}",
            round(row["faults_recovered_mean"], 1),
        )
        for row in report.rows()
    ]
    print(
        render_table(
            ("Scheme", "Pages", "Lifetime (writes)", "Improvement x",
             "Retention %", "Faults recovered"),
            rows,
            title="## Fleet capacity retention (worker/engine invariant)",
        )
    )
    failed = False
    if args.check and report.completed:
        alt_engine = "vector" if ctx.engine == "scalar" else "scalar"
        drills = [
            ("workers=2", ctx.with_options(workers=2)),
            ("workers=4", ctx.with_options(workers=4)),
            (f"engine={alt_engine}", ctx.with_options(engine=alt_engine)),
        ]
        for label, other_ctx in drills:
            other = run_campaign(spec, other_ctx)
            same = other.digest == report.digest
            print(f"determinism check [{label}]: {'ok' if same else 'MISMATCH'}")
            failed = failed or not same
    if args.series:
        lines = report.write_series(args.series)
        print(f"wrote {lines} series line(s) to {args.series}")
    if args.json:
        with open(args.json, "w") as handle:
            json.dump(report.to_dict(), handle, indent=2, sort_keys=True)
        print(f"wrote campaign report to {args.json}")
    if args.metrics:
        lines = report.registry.write_prometheus(args.metrics)
        print(f"wrote {lines} metric line(s) to {args.metrics}")
    return 1 if failed else 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from repro.cluster import (
        ClusterFrontend,
        ClusterService,
        default_tenants,
        loopback_selftest,
    )
    from repro.pcm.lifetime import NormalLifetime

    cluster = ClusterService(
        args.arrays,
        _service_spec(args.scheme),
        n_addresses=args.addresses,
        spares=args.spares,
        seed=args.seed,
        buffer_capacity=args.buffer,
        lifetime_model=NormalLifetime(mean_lifetime=args.endurance),
        series_bucket=args.series_bucket,
    )
    for tenant in default_tenants(args.tenants):
        cluster.register_tenant(tenant)
    if args.selftest:
        summary = asyncio.run(
            loopback_selftest(cluster, ops_per_tenant=args.selftest_ops, seed=args.seed)
        )
        print(
            f"loopback selftest: {summary['writes']} writes "
            f"({summary['queued']} queued, {summary['backpressured']} "
            f"backpressured), {summary['reads']} reads, "
            f"{summary['mismatches']} mismatch(es)"
        )
        return 1 if summary["mismatches"] else 0

    async def _serve() -> None:
        frontend = ClusterFrontend(cluster, host=args.host, port=args.port)
        await frontend.start()
        tenants = ", ".join(spec.tenant_id for spec in cluster.tenants)
        print(f"serving {args.arrays} array(s) for tenants [{tenants}]")
        print(f"listening on {frontend.host}:{frontend.port} (JSON lines; Ctrl-C stops)")
        try:
            await frontend.serve_forever()
        finally:
            await frontend.stop()

    try:
        asyncio.run(_serve())
    except KeyboardInterrupt:
        print("stopped")
    return 0


def _cmd_obs_report(args: argparse.Namespace) -> int:
    from repro.obs import render_obs_report, write_obs_report

    if args.trace is None and args.metrics is None and args.series is None:
        print("obs-report needs --trace, --metrics and/or --series", file=sys.stderr)
        return 2
    if args.output:
        write_obs_report(
            args.output, args.trace, metrics_path=args.metrics,
            series_path=args.series, top=args.top,
        )
        print(f"wrote observability report to {args.output}")
    else:
        print(
            render_obs_report(
                args.trace, metrics_path=args.metrics,
                series_path=args.series, top=args.top,
            )
        )
    return 0


def _cmd_slo_report(args: argparse.Namespace) -> int:
    from repro.obs import render_slo_report, write_slo_report

    if args.output:
        write_slo_report(
            args.output, args.series, top=args.top, title=args.title
        )
        print(f"wrote SLO report to {args.output}")
    else:
        print(render_slo_report(args.series, top=args.top, title=args.title))
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.command == "list":
        return _cmd_list()
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "demo":
        return _cmd_demo()
    if args.command == "check":
        return _cmd_check()
    if args.command == "report":
        return _cmd_report(args)
    if args.command == "schemes":
        return _cmd_schemes(args)
    if args.command == "serve-bench":
        return _cmd_serve_bench(args)
    if args.command == "cluster-bench":
        return _cmd_cluster_bench(args)
    if args.command == "fleet-bench":
        return _cmd_fleet_bench(args)
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "obs-report":
        return _cmd_obs_report(args)
    if args.command == "slo-report":
        return _cmd_slo_report(args)
    raise AssertionError(f"unhandled command {args.command}")  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
