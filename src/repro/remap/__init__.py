"""FREE-p-style block remapping (extension).

§4 discusses FREE-p (Yoon et al., HPCA 2011): when a block's in-chip
protection is finally exceeded, the OS redirects its accesses to a spare
block via a pointer embedded in the dead block (stuck-at cells are still
readable, so a pointer can be stored redundantly in the corpse).  The
paper's point: strong in-chip recovery like Aegis substantially *delays*
the redirection and the eventual loss of pages.

This package simulates pages equipped with spare blocks: a failed block
remaps to a fresh spare, which then wears under the same write stream; the
page dies when failures outnumber spares.  The ``ext-freep`` experiment
quantifies how many spares each recovery scheme needs for a given lifetime,
and :class:`SparePool` is the live counterpart the service layer
(:mod:`repro.service`) uses to remap dying blocks on the request path.
"""

from repro.remap.pool import SparePool
from repro.remap.sim import RemapPageResult, remap_page_study

__all__ = ["RemapPageResult", "SparePool", "remap_page_study"]
