"""Event-driven simulation of pages with spare-block remapping.

Base blocks age from time zero; when a block's recovery scheme fails, a
spare block (fresh cells, endurance sampled at allocation time) takes over
its address and ages from that moment.  The page survives until a block
fails with no spare left.

Remap pointer storage is treated as reliable, matching FREE-p's redundant
embedding of the pointer in the dead block; the pointer bits are counted
in the overhead reported by the experiment.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

import numpy as np

from repro.pcm.lifetime import LifetimeModel, NormalLifetime
from repro.sim.page_sim import DEFAULT_WRITE_PROBABILITY
from repro.sim.rng import rng_for
from repro.sim.roster import SchemeSpec
from repro.util.stats import MeanEstimate, mean_ci


@dataclass(frozen=True)
class RemapPageResult:
    """Aggregate over simulated pages with spare-block remapping."""

    spec_label: str
    spares: int
    faults: MeanEstimate
    lifetime: MeanEstimate
    remaps: MeanEstimate


def _simulate_remap_page(
    spec: SchemeSpec,
    blocks_per_page: int,
    spares: int,
    rng: np.random.Generator,
    model: LifetimeModel,
    write_probability: float,
) -> tuple[float, int, int]:
    """One page: returns (lifetime, faults recovered, remaps performed)."""
    n_bits = spec.n_bits

    def fresh_block_events(block_slot: int, start_time: float) -> list[tuple[float, int, int]]:
        endurance = model.sample(n_bits, rng)
        times = start_time + endurance / write_probability
        return [(float(t), block_slot, offset) for offset, t in enumerate(times)]

    heap: list[tuple[float, int, int]] = []
    checkers = {}
    for slot in range(blocks_per_page):
        heap.extend(fresh_block_events(slot, 0.0))
        checkers[slot] = spec.make_checker(rng)
    heapq.heapify(heap)
    next_slot = blocks_per_page
    spares_left = spares
    deaths = 0
    remaps = 0
    retired: set[int] = set()
    while heap:
        now, slot, offset = heapq.heappop(heap)
        if slot in retired:
            continue
        deaths += 1
        if checkers[slot].add_fault(offset, int(rng.integers(0, 2))):
            continue
        # block exhausted: remap to a spare or die
        retired.add(slot)
        if spares_left == 0:
            return now, deaths - 1, remaps
        spares_left -= 1
        remaps += 1
        new_slot = next_slot
        next_slot += 1
        checkers[new_slot] = spec.make_checker(rng)
        for event in fresh_block_events(new_slot, now):
            heapq.heappush(heap, event)
    raise AssertionError("page outlived every cell")  # pragma: no cover


def remap_page_study(
    spec: SchemeSpec,
    *,
    spares: int,
    blocks_per_page: int = 16,
    n_pages: int = 32,
    seed: int = 2013,
    lifetime_model: LifetimeModel | None = None,
    write_probability: float = DEFAULT_WRITE_PROBABILITY,
) -> RemapPageResult:
    """Simulate pages of ``blocks_per_page`` blocks plus ``spares`` spares."""
    model = lifetime_model if lifetime_model is not None else NormalLifetime()
    lifetimes, faults, remap_counts = [], [], []
    for page_index in range(n_pages):
        rng = rng_for(seed, page_index, 17)
        lifetime, recovered, remaps = _simulate_remap_page(
            spec, blocks_per_page, spares, rng, model, write_probability
        )
        lifetimes.append(lifetime)
        faults.append(recovered)
        remap_counts.append(remaps)
    return RemapPageResult(
        spec_label=spec.label,
        spares=spares,
        faults=mean_ci(faults),
        lifetime=mean_ci(lifetimes),
        remaps=mean_ci(remap_counts),
    )
