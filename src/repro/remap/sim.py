"""Event-driven simulation of pages with spare-block remapping.

Base blocks age from time zero; when a block's recovery scheme fails, a
spare block (fresh cells, endurance sampled at allocation time) takes over
its address and ages from that moment.  The page survives until a block
fails with no spare left.

Remap pointer storage is treated as reliable, matching FREE-p's redundant
embedding of the pointer in the dead block; the pointer bits are counted
in the overhead reported by the experiment.

Execution rides the unified plane (:mod:`repro.sim.context`): page ``p``
draws every random number from ``rng_for(seed, p, 17)``, so the
:class:`~repro.sim.parallel.StudyRunner` fan-out produces bit-identical
studies for every worker count.  The remap event walk has no batch
kernel, so any requested ``engine`` resolves to the scalar path
transparently.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

import numpy as np

from repro.pcm.lifetime import LifetimeModel, NormalLifetime
from repro.sim import kernels
from repro.sim.context import ExecContext
from repro.sim.page_sim import DEFAULT_WRITE_PROBABILITY
from repro.sim.parallel import StudyRunner
from repro.sim.rng import rng_for
from repro.sim.roster import SchemeSpec
from repro.util.stats import MeanEstimate

#: substream salt separating remap pages from other studies' pages
_REMAP_SALT = 17


@dataclass(frozen=True)
class RemapPageResult:
    """Aggregate over simulated pages with spare-block remapping."""

    spec_label: str
    spares: int
    faults: MeanEstimate
    lifetime: MeanEstimate
    remaps: MeanEstimate


@dataclass(frozen=True)
class RemapTask:
    """Everything a worker needs to simulate any page of one remap study."""

    spec: SchemeSpec
    blocks_per_page: int
    spares: int
    seed: int
    lifetime_model: LifetimeModel | None
    write_probability: float


def _simulate_remap_page(
    spec: SchemeSpec,
    blocks_per_page: int,
    spares: int,
    rng: np.random.Generator,
    model: LifetimeModel,
    write_probability: float,
) -> tuple[float, int, int]:
    """One page: returns (lifetime, faults recovered, remaps performed)."""
    n_bits = spec.n_bits

    def fresh_block_events(block_slot: int, start_time: float) -> list[tuple[float, int, int]]:
        endurance = model.sample(n_bits, rng)
        times = start_time + endurance / write_probability
        return [(float(t), block_slot, offset) for offset, t in enumerate(times)]

    heap: list[tuple[float, int, int]] = []
    checkers = {}
    for slot in range(blocks_per_page):
        heap.extend(fresh_block_events(slot, 0.0))
        checkers[slot] = spec.make_checker(rng)
    heapq.heapify(heap)
    next_slot = blocks_per_page
    spares_left = spares
    deaths = 0
    remaps = 0
    retired: set[int] = set()
    while heap:
        now, slot, offset = heapq.heappop(heap)
        if slot in retired:
            continue
        deaths += 1
        if checkers[slot].add_fault(offset, int(rng.integers(0, 2))):
            continue
        # block exhausted: remap to a spare or die
        retired.add(slot)
        if spares_left == 0:
            return now, deaths - 1, remaps
        spares_left -= 1
        remaps += 1
        new_slot = next_slot
        next_slot += 1
        checkers[new_slot] = spec.make_checker(rng)
        for event in fresh_block_events(new_slot, now):
            heapq.heappush(heap, event)
    raise AssertionError("page outlived every cell")  # pragma: no cover


def simulate_remap_page(task: RemapTask, page_index: int) -> tuple[float, int, int]:
    """One remapped page of a task — the picklable unit of fan-out."""
    model = (
        task.lifetime_model if task.lifetime_model is not None else NormalLifetime()
    )
    return _simulate_remap_page(
        task.spec,
        task.blocks_per_page,
        task.spares,
        rng_for(task.seed, page_index, _REMAP_SALT),
        model,
        task.write_probability,
    )


def remap_page_study(
    spec: SchemeSpec,
    *,
    spares: int,
    blocks_per_page: int = 16,
    n_pages: int = 32,
    seed: int = 2013,
    lifetime_model: LifetimeModel | None = None,
    write_probability: float = DEFAULT_WRITE_PROBABILITY,
    ctx: ExecContext | None = None,
) -> RemapPageResult:
    """Simulate pages of ``blocks_per_page`` blocks plus ``spares`` spares.

    ``ctx`` supplies the execution plane (seed, workers, engine); when
    absent, a serial context built from ``seed`` is used.  Results are
    bit-identical for every worker count.
    """
    if ctx is None:
        ctx = ExecContext(seed=seed)
    kernels.validate_engine(ctx.engine)
    task = RemapTask(
        spec=spec,
        blocks_per_page=blocks_per_page,
        spares=spares,
        seed=ctx.seed,
        lifetime_model=lifetime_model,
        write_probability=write_probability,
    )

    def reduce(results: list[tuple[float, int, int]]) -> RemapPageResult:
        estimates = StudyRunner.mean_columns(
            results, ("lifetime", "faults", "remaps")
        )
        return RemapPageResult(
            spec_label=spec.label,
            spares=spares,
            faults=estimates["faults"],
            lifetime=estimates["lifetime"],
            remaps=estimates["remaps"],
        )

    with StudyRunner("remap", ctx) as runner:
        return runner.run(
            simulate_remap_page,
            task,
            range(n_pages),
            reduce=reduce,
            spec=spec.key,
            spares=spares,
            n_pages=n_pages,
        )
