"""A FREE-p-style spare pool over physical block indices.

:mod:`repro.remap.sim` evaluates spare-backed recovery statistically
(event-driven lifetimes); :class:`SparePool` is the same idea as a live
data structure, used by the service layer's :class:`repro.service.MemoryArray`
to take over a failed block's address with a fresh physical block.  The
pool does not distinguish "data" from "spare" regions — any unallocated
block can serve a fresh address or a remap, which is exactly FREE-p's
graceful-degradation property: capacity shrinks block by block instead of
partition by partition.

Allocation is delegated to a
:class:`~repro.pcm.wear.WearLevelingPolicy` restricted to the free blocks,
so the same policies that level the paper's device model also level
service-layer placement.
"""

from __future__ import annotations

from collections.abc import Iterable

import numpy as np

from repro.errors import ConfigurationError
from repro.pcm.wear import WearLevelingPolicy


class SparePool:
    """Tracks which of ``n_blocks`` physical blocks are free to allocate."""

    def __init__(self, n_blocks: int, free: Iterable[int] | None = None) -> None:
        if n_blocks < 1:
            raise ConfigurationError("a spare pool needs at least one block")
        self.n_blocks = n_blocks
        self._free = np.zeros(n_blocks, dtype=bool)
        indices = range(n_blocks) if free is None else free
        for index in indices:
            if not 0 <= index < n_blocks:
                raise ConfigurationError(f"free index {index} outside pool of {n_blocks}")
            self._free[index] = True
        self.allocations = 0

    @property
    def remaining(self) -> int:
        """Free blocks left in the pool."""
        return int(self._free.sum())

    def is_free(self, index: int) -> bool:
        return bool(self._free[index])

    def allocate(
        self,
        logical: int,
        policy: WearLevelingPolicy,
        rng: np.random.Generator,
    ) -> int | None:
        """Claim a free block for ``logical``, placed by ``policy``.

        Returns the physical index, or ``None`` when the pool is exhausted
        (the caller decides whether that is a :class:`RetiredBlockError`).
        """
        if not self._free.any():
            return None
        index = policy.place(logical, self._free.copy(), rng)
        if not self._free[index]:
            raise ConfigurationError(
                f"wear-leveling policy placed logical {logical} on allocated block {index}"
            )
        self._free[index] = False
        self.allocations += 1
        return index
