"""Plain-text chart rendering for figure output.

The paper's artefacts are *figures*; these helpers render their bar and
line shapes directly in the terminal so the CLI's ``--chart`` mode can show
the reproduction the way the paper shows it — no plotting stack required.
"""

from __future__ import annotations

from collections.abc import Sequence

#: glyphs cycled across series in a line chart
SERIES_GLYPHS = "ox+*#@%&"


def bar_chart(
    labels: Sequence[str],
    values: Sequence[float],
    *,
    width: int = 50,
    value_format: str = "{:.4g}",
    title: str | None = None,
) -> str:
    """Horizontal bar chart, one bar per label.

    >>> print(bar_chart(["a", "b"], [1.0, 2.0], width=4))
    a | ##   1
    b | #### 2
    """
    if len(labels) != len(values):
        raise ValueError("labels and values must have equal length")
    if not labels:
        raise ValueError("bar chart needs at least one bar")
    if any(v < 0 for v in values):
        raise ValueError("bar chart values must be non-negative")
    peak = max(values) or 1.0
    label_width = max(len(str(label)) for label in labels)
    lines = [] if title is None else [title]
    for label, value in zip(labels, values):
        bar = "#" * max(1 if value > 0 else 0, round(value / peak * width))
        rendered = value_format.format(value)
        lines.append(f"{str(label).ljust(label_width)} | {bar.ljust(width)} {rendered}")
    return "\n".join(lines)


def line_chart(
    xs: Sequence[float],
    series: dict[str, Sequence[float]],
    *,
    width: int = 60,
    height: int = 16,
    title: str | None = None,
    x_label: str = "x",
) -> str:
    """Multi-series scatter/line chart on a character grid.

    Each series is drawn with its own glyph; y is auto-scaled across all
    series, and a legend maps glyphs to series names.
    """
    if not series:
        raise ValueError("line chart needs at least one series")
    if any(len(ys) != len(xs) for ys in series.values()):
        raise ValueError("every series must match the x vector's length")
    if len(xs) < 2:
        raise ValueError("line chart needs at least two points")
    all_y = [y for ys in series.values() for y in ys]
    y_low, y_high = min(all_y), max(all_y)
    if y_high == y_low:
        y_high = y_low + 1.0
    x_low, x_high = min(xs), max(xs)
    if x_high == x_low:
        raise ValueError("x values must not all be equal")
    grid = [[" "] * width for _ in range(height)]
    for glyph, (name, ys) in zip(SERIES_GLYPHS, series.items()):
        for x, y in zip(xs, ys):
            col = round((x - x_low) / (x_high - x_low) * (width - 1))
            row = round((y - y_low) / (y_high - y_low) * (height - 1))
            grid[height - 1 - row][col] = glyph
    lines = [] if title is None else [title]
    lines.append(f"{y_high:.4g}".rjust(10))
    for row in grid:
        lines.append(" " * 8 + "|" + "".join(row))
    lines.append(f"{y_low:.4g}".rjust(10) + "+" + "-" * width)
    lines.append(
        " " * 9 + f"{x_low:.4g}".ljust(width // 2) + f"{x_high:.4g}".rjust(width // 2)
    )
    lines.append(" " * 9 + f"({x_label})")
    legend = "  ".join(
        f"{glyph}={name}" for glyph, name in zip(SERIES_GLYPHS, series)
    )
    lines.append("legend: " + legend)
    return "\n".join(lines)
