"""Bit-vector helpers shared across schemes and the PCM device model.

Data blocks are represented in two interchangeable forms throughout the
library:

* a numpy ``uint8`` array of 0/1 values (the device model's native form,
  convenient for vectorised fault masking), and
* a Python ``int`` bit-mask (convenient for set-like manipulation in the
  recovery schemes, e.g. "which bits belong to group ``y``").

These helpers convert between the two and implement the handful of bit
tricks the schemes need.
"""

from __future__ import annotations

from collections.abc import Iterable

import numpy as np


def bits_to_int(bits: np.ndarray) -> int:
    """Pack an array of 0/1 values into an int, bit ``i`` of the result
    holding ``bits[i]``.

    >>> import numpy as np
    >>> bits_to_int(np.array([1, 0, 1], dtype=np.uint8))
    5
    """
    packed = np.packbits(np.asarray(bits).astype(bool), bitorder="little")
    return int.from_bytes(packed.tobytes(), "little")


def int_to_bits(value: int, width: int) -> np.ndarray:
    """Unpack ``value`` into a ``uint8`` array of ``width`` 0/1 entries.

    >>> int_to_bits(5, 4)
    array([1, 0, 1, 0], dtype=uint8)
    """
    if value < 0:
        raise ValueError("bit-mask values must be non-negative")
    if value >> width:
        raise ValueError(f"value does not fit in {width} bits")
    if width == 0:
        return np.zeros(0, dtype=np.uint8)
    raw = value.to_bytes((width + 7) // 8, "little")
    return np.unpackbits(
        np.frombuffer(raw, dtype=np.uint8), count=width, bitorder="little"
    )


def mask_from_offsets(offsets: Iterable[int]) -> int:
    """Build an int bit-mask with the given bit offsets set."""
    mask = 0
    for offset in offsets:
        mask |= 1 << offset
    return mask


def offsets_from_mask(mask: int) -> list[int]:
    """Return the sorted list of set-bit offsets of an int bit-mask.

    >>> offsets_from_mask(0b1011)
    [0, 1, 3]
    """
    offsets = []
    index = 0
    while mask:
        if mask & 1:
            offsets.append(index)
        mask >>= 1
        index += 1
    return offsets


def popcount(mask: int) -> int:
    """Number of set bits in an int bit-mask."""
    return mask.bit_count()


def random_bits(rng: np.random.Generator, width: int) -> np.ndarray:
    """Draw ``width`` independent uniform 0/1 values as a ``uint8`` array."""
    return rng.integers(0, 2, size=width, dtype=np.uint8)


def invert_bits(bits: np.ndarray, mask: np.ndarray) -> np.ndarray:
    """Return ``bits`` with positions selected by the 0/1 ``mask`` flipped."""
    return np.bitwise_xor(bits, mask)


def hamming_distance(a: np.ndarray, b: np.ndarray) -> int:
    """Number of positions at which two equal-length bit arrays differ."""
    if a.shape != b.shape:
        raise ValueError("bit arrays must have identical shapes")
    return int(np.count_nonzero(a != b))


def ceil_log2(n: int) -> int:
    """``ceil(log2(n))`` for positive ``n``; 0 when ``n == 1``.

    This is the paper's sizing function for counters and pointers.

    >>> [ceil_log2(n) for n in (1, 2, 3, 4, 5, 8, 9)]
    [0, 1, 2, 2, 3, 3, 4]
    """
    if n <= 0:
        raise ValueError("ceil_log2 requires a positive argument")
    return (n - 1).bit_length()
