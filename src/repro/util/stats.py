"""Small statistics helpers for Monte Carlo result reporting.

The experiment drivers report sample means with normal-approximation
confidence intervals and empirical survival curves.  Everything here is a
thin, well-tested wrapper over numpy so the experiment modules stay
readable.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

#: two-sided z values for common confidence levels
_Z_VALUES = {0.90: 1.6449, 0.95: 1.9600, 0.99: 2.5758}


@dataclass(frozen=True)
class MeanEstimate:
    """A sample mean with its half-width confidence interval."""

    mean: float
    half_width: float
    n: int

    @property
    def low(self) -> float:
        return self.mean - self.half_width

    @property
    def high(self) -> float:
        return self.mean + self.half_width

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.mean:.4g} ± {self.half_width:.2g} (n={self.n})"


def mean_ci(samples: np.ndarray | list[float], confidence: float = 0.95) -> MeanEstimate:
    """Sample mean with a normal-approximation confidence interval.

    >>> est = mean_ci([1.0, 2.0, 3.0, 4.0])
    >>> round(est.mean, 3)
    2.5
    """
    data = np.asarray(samples, dtype=np.float64)
    if data.size == 0:
        raise ValueError("cannot estimate a mean from zero samples")
    z = _Z_VALUES.get(confidence)
    if z is None:
        raise ValueError(f"unsupported confidence level {confidence!r}")
    mean = float(data.mean())
    if data.size == 1:
        return MeanEstimate(mean=mean, half_width=math.inf, n=1)
    sem = float(data.std(ddof=1)) / math.sqrt(data.size)
    return MeanEstimate(mean=mean, half_width=z * sem, n=int(data.size))


class RunningMean:
    """Streaming mean/variance accumulator (Welford's algorithm).

    Numerically stable one-pass replacement for re-running :func:`mean_ci`
    over a growing sample list — the sequential-stopping loop in
    :func:`repro.sim.page_sim.run_page_study` pushes each new page result
    once and reads the current interval in O(1), instead of rebuilding a
    Python list and recomputing mean/std every batch (O(n²) overall).

    >>> acc = RunningMean()
    >>> for x in (1.0, 2.0, 3.0, 4.0):
    ...     acc.push(x)
    >>> round(acc.estimate().mean, 3), acc.n
    (2.5, 4)
    """

    __slots__ = ("n", "_mean", "_m2")

    def __init__(self) -> None:
        self.n = 0
        self._mean = 0.0
        self._m2 = 0.0

    def push(self, value: float) -> None:
        """Fold one observation into the running moments."""
        self.n += 1
        delta = value - self._mean
        self._mean += delta / self.n
        self._m2 += delta * (value - self._mean)

    def merge(self, other: "RunningMean") -> None:
        """Fold another accumulator in (Chan's parallel combination).

        The fleet campaign engine's shard-side reduction depends on this:
        workers fold their chunk of pages into a compact accumulator and
        only the ``(n, mean, M2)`` triple crosses the process boundary.
        The combination is exact in exact arithmetic; in floats the result
        depends on merge order, which is why the campaign engine always
        merges shards in deterministic chunk-index order.
        """
        if other.n == 0:
            return
        if self.n == 0:
            self.n, self._mean, self._m2 = other.n, other._mean, other._m2
            return
        total = self.n + other.n
        delta = other._mean - self._mean
        self._mean += delta * other.n / total
        self._m2 += other._m2 + delta * delta * self.n * other.n / total
        self.n = total

    def state(self) -> dict:
        """Picklable/JSON-able moment triple, for campaign checkpoints."""
        return {"n": self.n, "mean": self._mean, "m2": self._m2}

    @classmethod
    def from_state(cls, state: dict) -> "RunningMean":
        """Inverse of :meth:`state` (bit-exact restoration)."""
        acc = cls()
        acc.n = int(state["n"])
        acc._mean = float(state["mean"])
        acc._m2 = float(state["m2"])
        return acc

    @property
    def mean(self) -> float:
        if self.n == 0:
            raise ValueError("cannot estimate a mean from zero samples")
        return self._mean

    @property
    def variance(self) -> float:
        """Unbiased sample variance (``ddof=1``)."""
        if self.n < 2:
            raise ValueError("sample variance needs at least two samples")
        return self._m2 / (self.n - 1)

    def estimate(self, confidence: float = 0.95) -> MeanEstimate:
        """Current mean with its normal-approximation interval."""
        if self.n == 0:
            raise ValueError("cannot estimate a mean from zero samples")
        z = _Z_VALUES.get(confidence)
        if z is None:
            raise ValueError(f"unsupported confidence level {confidence!r}")
        if self.n == 1:
            return MeanEstimate(mean=self._mean, half_width=math.inf, n=1)
        sem = math.sqrt(self.variance / self.n)
        return MeanEstimate(mean=self._mean, half_width=z * sem, n=self.n)


#: coefficients of Acklam's rational approximation to the normal inverse CDF
_NDTRI_A = (-3.969683028665376e+01, 2.209460984245205e+02, -2.759285104469687e+02,
            1.383577518672690e+02, -3.066479806614716e+01, 2.506628277459239e+00)
_NDTRI_B = (-5.447609879822406e+01, 1.615858368580409e+02, -1.556989798598866e+02,
            6.680131188771972e+01, -1.328068155288572e+01)
_NDTRI_C = (-7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e+00,
            -2.549732539343734e+00, 4.374664141464968e+00, 2.938163982698783e+00)
_NDTRI_D = (7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e+00,
            3.754408661907416e+00)


def ndtri_approx(p: np.ndarray | float) -> np.ndarray:
    """Normal inverse CDF via Acklam's rational approximation plus one
    Halley refinement step — a numpy-only stand-in for
    ``scipy.special.ndtri`` (relative error ~1e-9 in the far tails, near
    machine precision centrally), used by :mod:`repro.sim.batch` when
    scipy is not installed.

    >>> float(abs(ndtri_approx(0.975) - 1.959963984540054)) < 1e-12
    True
    """
    p = np.asarray(p, dtype=np.float64)
    out = np.full(p.shape, np.nan)
    out[p == 0.0] = -np.inf
    out[p == 1.0] = np.inf
    low, high = 0.02425, 1 - 0.02425
    a, b, c, d = _NDTRI_A, _NDTRI_B, _NDTRI_C, _NDTRI_D
    with np.errstate(divide="ignore", invalid="ignore"):
        central = (low <= p) & (p <= high)
        q = p - 0.5
        r = q * q
        num = ((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]
        den = ((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0
        out = np.where(central, q * num / den, out)
        lower = (0.0 < p) & (p < low)
        upper = (high < p) & (p < 1.0)
        q_tail = np.sqrt(-2.0 * np.log(np.where(lower, p, np.where(upper, 1.0 - p, 0.5))))
        num_t = ((((c[0] * q_tail + c[1]) * q_tail + c[2]) * q_tail + c[3]) * q_tail + c[4]) * q_tail + c[5]
        den_t = (((d[0] * q_tail + d[1]) * q_tail + d[2]) * q_tail + d[3]) * q_tail + 1.0
        tail = num_t / den_t
        out = np.where(lower, tail, out)
        out = np.where(upper, -tail, out)
        # one Halley step against the exact CDF (erf is available in numpy
        # via vectorised math.erf equivalents below)
        finite = np.isfinite(out) & (0.0 < p) & (p < 1.0)
        x = np.where(finite, out, 0.0)
        err = 0.5 * _erfc_vec(-x / math.sqrt(2.0)) - p
        u = err * math.sqrt(2.0 * math.pi) * np.exp(x * x / 2.0)
        refined = x - u / (1.0 + x * u / 2.0)
        out = np.where(finite, refined, out)
    return out


_erfc_vec = np.vectorize(math.erfc, otypes=[np.float64])


def survival_curve(death_times: np.ndarray | list[float], grid: np.ndarray) -> np.ndarray:
    """Empirical survival fraction ``P(T > t)`` evaluated on ``grid``.

    ``death_times`` are the per-individual failure times; the result has one
    entry per grid point giving the fraction of the population still alive.
    """
    deaths = np.sort(np.asarray(death_times, dtype=np.float64))
    grid = np.asarray(grid, dtype=np.float64)
    dead_counts = np.searchsorted(deaths, grid, side="right")
    return 1.0 - dead_counts / deaths.size


def half_life(death_times: np.ndarray | list[float]) -> float:
    """Time by which half the population has died (the paper's *half lifetime*)."""
    deaths = np.asarray(death_times, dtype=np.float64)
    if deaths.size == 0:
        raise ValueError("cannot compute a half life from zero samples")
    return float(np.median(deaths))


def geometric_mean(values: np.ndarray | list[float]) -> float:
    """Geometric mean of strictly positive values."""
    data = np.asarray(values, dtype=np.float64)
    if np.any(data <= 0):
        raise ValueError("geometric mean requires strictly positive values")
    return float(np.exp(np.mean(np.log(data))))
