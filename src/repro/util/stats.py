"""Small statistics helpers for Monte Carlo result reporting.

The experiment drivers report sample means with normal-approximation
confidence intervals and empirical survival curves.  Everything here is a
thin, well-tested wrapper over numpy so the experiment modules stay
readable.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

#: two-sided z values for common confidence levels
_Z_VALUES = {0.90: 1.6449, 0.95: 1.9600, 0.99: 2.5758}


@dataclass(frozen=True)
class MeanEstimate:
    """A sample mean with its half-width confidence interval."""

    mean: float
    half_width: float
    n: int

    @property
    def low(self) -> float:
        return self.mean - self.half_width

    @property
    def high(self) -> float:
        return self.mean + self.half_width

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.mean:.4g} ± {self.half_width:.2g} (n={self.n})"


def mean_ci(samples: np.ndarray | list[float], confidence: float = 0.95) -> MeanEstimate:
    """Sample mean with a normal-approximation confidence interval.

    >>> est = mean_ci([1.0, 2.0, 3.0, 4.0])
    >>> round(est.mean, 3)
    2.5
    """
    data = np.asarray(samples, dtype=np.float64)
    if data.size == 0:
        raise ValueError("cannot estimate a mean from zero samples")
    z = _Z_VALUES.get(confidence)
    if z is None:
        raise ValueError(f"unsupported confidence level {confidence!r}")
    mean = float(data.mean())
    if data.size == 1:
        return MeanEstimate(mean=mean, half_width=math.inf, n=1)
    sem = float(data.std(ddof=1)) / math.sqrt(data.size)
    return MeanEstimate(mean=mean, half_width=z * sem, n=int(data.size))


def survival_curve(death_times: np.ndarray | list[float], grid: np.ndarray) -> np.ndarray:
    """Empirical survival fraction ``P(T > t)`` evaluated on ``grid``.

    ``death_times`` are the per-individual failure times; the result has one
    entry per grid point giving the fraction of the population still alive.
    """
    deaths = np.sort(np.asarray(death_times, dtype=np.float64))
    grid = np.asarray(grid, dtype=np.float64)
    dead_counts = np.searchsorted(deaths, grid, side="right")
    return 1.0 - dead_counts / deaths.size


def half_life(death_times: np.ndarray | list[float]) -> float:
    """Time by which half the population has died (the paper's *half lifetime*)."""
    deaths = np.asarray(death_times, dtype=np.float64)
    if deaths.size == 0:
        raise ValueError("cannot compute a half life from zero samples")
    return float(np.median(deaths))


def geometric_mean(values: np.ndarray | list[float]) -> float:
    """Geometric mean of strictly positive values."""
    data = np.asarray(values, dtype=np.float64)
    if np.any(data <= 0):
        raise ValueError("geometric mean requires strictly positive values")
    return float(np.exp(np.mean(np.log(data))))
