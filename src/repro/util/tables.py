"""Plain-text table rendering for experiment output.

All experiment drivers print their tables and figure series through
:func:`render_table`, so the CLI, the benchmarks, and EXPERIMENTS.md share
one consistent format (GitHub-flavoured markdown pipes, right-aligned
numeric columns).
"""

from __future__ import annotations

from collections.abc import Sequence


def _format_cell(value: object) -> str:
    if isinstance(value, float):
        if value != value:  # NaN
            return "-"
        if abs(value) >= 1000 or (value != 0 and abs(value) < 0.01):
            return f"{value:.3g}"
        return f"{value:.2f}".rstrip("0").rstrip(".")
    return str(value)


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render rows as a markdown-style table.

    >>> print(render_table(["a", "b"], [[1, 2.5]]))
    | a | b   |
    |---|-----|
    | 1 | 2.5 |
    """
    cells = [[_format_cell(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        if len(row) != len(headers):
            raise ValueError("row length does not match header length")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(values: Sequence[str]) -> str:
        return "| " + " | ".join(v.ljust(w) for v, w in zip(values, widths)) + " |"

    parts = []
    if title:
        parts.append(title)
    parts.append(line(list(headers)))
    parts.append("|" + "|".join("-" * (w + 2) for w in widths) + "|")
    parts.extend(line(row) for row in cells)
    return "\n".join(parts)


def render_series(
    name: str,
    xs: Sequence[object],
    ys: Sequence[object],
    x_label: str = "x",
    y_label: str = "y",
) -> str:
    """Render one figure series as a two-column table headed by its name."""
    return render_table([x_label, y_label], list(zip(xs, ys)), title=f"# {name}")
