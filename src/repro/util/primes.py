"""Small prime-number utilities used by the Aegis partition scheme.

The Aegis ``A x B`` formation requires ``B`` to be prime (Theorem 2 of the
paper relies on the integers modulo ``B`` forming a field).  The numbers
involved are tiny (``B < 1000`` for any realistic block size), so simple
trial division is plenty fast and keeps the code dependency-free.
"""

from __future__ import annotations

from functools import lru_cache


def is_prime(n: int) -> bool:
    """Return ``True`` when ``n`` is a prime number.

    >>> [p for p in range(20) if is_prime(p)]
    [2, 3, 5, 7, 11, 13, 17, 19]
    """
    if n < 2:
        return False
    if n < 4:
        return True
    if n % 2 == 0:
        return False
    divisor = 3
    while divisor * divisor <= n:
        if n % divisor == 0:
            return False
        divisor += 2
    return True


@lru_cache(maxsize=None)
def next_prime(n: int) -> int:
    """Return the smallest prime ``>= n``.

    >>> next_prime(23)
    23
    >>> next_prime(24)
    29
    """
    candidate = max(n, 2)
    while not is_prime(candidate):
        candidate += 1
    return candidate


def primes_in_range(low: int, high: int) -> list[int]:
    """Return all primes ``p`` with ``low <= p < high``."""
    return [p for p in range(low, high) if is_prime(p)]


def mod_inverse(value: int, modulus: int) -> int:
    """Return the multiplicative inverse of ``value`` modulo a prime ``modulus``.

    Uses Fermat's little theorem (``modulus`` must be prime, which is always
    the case for Aegis's ``B``).

    >>> mod_inverse(3, 7)
    5
    """
    value %= modulus
    if value == 0:
        raise ZeroDivisionError(f"0 has no inverse modulo {modulus}")
    return pow(value, modulus - 2, modulus)
