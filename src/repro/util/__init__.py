"""Shared utilities: primes, bit operations, statistics, table rendering."""

from repro.util.bitops import (
    bits_to_int,
    ceil_log2,
    int_to_bits,
    mask_from_offsets,
    offsets_from_mask,
    popcount,
)
from repro.util.primes import is_prime, mod_inverse, next_prime
from repro.util.stats import MeanEstimate, half_life, mean_ci, survival_curve
from repro.util.tables import render_series, render_table

__all__ = [
    "MeanEstimate",
    "bits_to_int",
    "ceil_log2",
    "half_life",
    "int_to_bits",
    "is_prime",
    "mask_from_offsets",
    "mean_ci",
    "mod_inverse",
    "next_prime",
    "offsets_from_mask",
    "popcount",
    "render_series",
    "render_table",
    "survival_curve",
]
