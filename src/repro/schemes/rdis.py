"""RDIS — Recursively Defined Invertible Set (Melhem et al., DSN 2012; §3).

The second partition-and-inversion comparator in the paper's evaluation.
RDIS arranges the block's bits on a 2-D grid and computes, at write time, a
set of cells to store inverted such that every stuck-at cell ends up holding
the value the (possibly inverted) image needs.  The set is defined
recursively:

* Level 1 marks every row and column containing a stuck-at-*wrong* cell for
  the plain data; the *invertible set* ``SI1`` is the set of cells at
  marked-row x marked-column intersections.  Inverting ``SI1`` fixes every
  W fault (each W fault is itself at an intersection) but may break
  stuck-at-*right* faults that happen to sit inside ``SI1``.
* Level 2 repeats the construction restricted to ``SI1`` for the cells that
  are now wrong, carving ``SI2 ⊆ SI1`` back out of the inverted set; level 3
  re-inverts ``SI3 ⊆ SI2``; and so on.
* RDIS-k stops after ``k`` levels; if any fault is still wrong, the write
  fails.  The paper notes RDIS-3 guarantees only 3 faults.

Like the Aegis paper's evaluation, this implementation supplies RDIS with
fault knowledge (a sufficiently large fail cache), since the recursion needs
stuck-at values up front.  Marker bits for the ``k`` levels are the
per-block metadata; the reported overhead is calibrated to the paper's
quoted figures (25% of a 256-bit block, 19% of a 512-bit block — see
``repro.core.formations.rdis_cost``).
"""

from __future__ import annotations

import numpy as np

from repro.core.formations import rdis_cost, rdis_dimensions
from repro.errors import ConfigurationError, UncorrectableError
from repro.pcm.cell import CellArray
from repro.schemes.base import FaultKnowledge, OracleKnowledge, RecoveryScheme, WriteReceipt


def rdis_mask(
    faults: dict[int, int],
    data: np.ndarray,
    rows: int,
    cols: int,
    levels: int,
) -> np.ndarray | None:
    """Compute the RDIS inversion mask for ``data`` given the block's faults.

    Returns a 0/1 mask of shape ``(rows * cols,)`` (1 = store inverted), or
    ``None`` when ``levels`` recursions cannot make every fault consistent.
    """
    n = rows * cols
    mask = np.zeros(n, dtype=np.uint8)
    if not faults:
        return mask
    offsets = np.fromiter(faults.keys(), dtype=np.int64)
    stuck = np.fromiter(faults.values(), dtype=np.uint8)
    fault_rows = offsets // cols
    fault_cols = offsets % cols
    region = np.ones(n, dtype=bool)  # current SI level (whole grid at level 0)
    region_2d = region.reshape(rows, cols)
    for _ in range(levels):
        wrong = (stuck != np.bitwise_xor(data[offsets], mask[offsets])) & region[offsets]
        if not np.any(wrong):
            break
        marked_rows = np.zeros(rows, dtype=bool)
        marked_cols = np.zeros(cols, dtype=bool)
        marked_rows[fault_rows[wrong]] = True
        marked_cols[fault_cols[wrong]] = True
        intersection = np.logical_and.outer(marked_rows, marked_cols) & region_2d
        flat = intersection.reshape(n)
        mask[flat] ^= 1
        region = flat.copy()
        region_2d = region.reshape(rows, cols)
    if np.any(stuck != np.bitwise_xor(data[offsets], mask[offsets])):
        return None
    return mask


class RdisScheme(RecoveryScheme):
    """RDIS-``depth`` bound to one cell array (default RDIS-3, as in the paper).

    ``depth`` counts the recursively defined sets ``SI_1 .. SI_depth``; the
    last must come out empty, so the mask toggles ``depth - 1`` times and
    ``depth - 1`` marker levels are stored.
    """

    def __init__(
        self,
        cells: CellArray,
        depth: int = 3,
        knowledge: FaultKnowledge | None = None,
    ) -> None:
        super().__init__(cells)
        if depth < 2:
            raise ConfigurationError("RDIS needs depth >= 2")
        self.depth = depth
        self.toggle_levels = depth - 1
        self.rows, self.cols = rdis_dimensions(cells.n_bits)
        self.knowledge = knowledge if knowledge is not None else OracleKnowledge()
        self._mask = np.zeros(cells.n_bits, dtype=np.uint8)

    @property
    def name(self) -> str:
        return f"RDIS-{self.depth}"

    @property
    def overhead_bits(self) -> int:
        return rdis_cost(self.cells.n_bits, self.depth)

    @property
    def hard_ftc(self) -> int:
        """The guarantee quoted by the Aegis paper for RDIS-3 (any three
        faults resolve within two mask toggles; see tests)."""
        return 3 if self.toggle_levels >= 2 else 1

    def _encode_write(self, data: np.ndarray) -> WriteReceipt:
        receipt = WriteReceipt()
        max_attempts = self.cells.n_bits + 2
        for _ in range(max_attempts):
            faults = self.knowledge.known_faults(self.cells)
            mask = rdis_mask(faults, data, self.rows, self.cols, self.toggle_levels)
            if mask is None:
                raise UncorrectableError(
                    f"{self.name}: depth {self.depth} cannot make "
                    f"{len(faults)} faults consistent",
                    fault_offsets=tuple(sorted(faults)),
                )
            self._mask = mask
            stored_form = np.bitwise_xor(data, mask)
            receipt.cell_writes += self.cells.write(stored_form)
            receipt.verification_reads += 1
            mismatches = self.cells.verify(stored_form)
            if mismatches.size == 0:
                return receipt
            receipt.inversion_writes += 1
            for offset in mismatches:
                stored = int(self.cells.read()[offset])
                self.knowledge.record(self.cells, int(offset), stored)
        raise AssertionError(
            f"{self.name}: write service did not converge"
        )  # pragma: no cover - each retry learns a new fault

    def read(self) -> np.ndarray:
        return np.bitwise_xor(self.cells.read(), self._mask)
