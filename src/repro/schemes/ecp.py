"""ECP — Error-Correcting Pointers (Schechter et al., ISCA 2009; paper §1.1).

The pointer-based comparator in the paper's evaluation.  Each block carries
``p`` *correction entries*; an entry is an in-block pointer
(``ceil_log2(n)`` bits) plus one replacement cell that stores data on behalf
of the pointed-to faulty cell.  A "full" flag records whether all entries
are in use (the original design uses it to chain precedence; here it rounds
out the paper's ``1 + p*(ceil_log2(n)+1)`` cost accounting).

Behavioural notes reproduced from the paper:

* hard FTC equals the entry count ``p``;
* soft FTC barely exceeds hard FTC — once a ``(p+1)``-th fault appears, the
  first write whose data disagrees with that cell's stuck-at value fails,
  and under random data that happens almost immediately ("ECP's curves
  almost vertically rise", Figure 8).

Replacement cells are modelled as ideal storage by default; pass
``fragile_replacements=True`` to back them with PCM cells that can
themselves be stuck (the original ECP paper's entry-precedence concern),
in which case a stuck replacement cell simply stops masking its fault.
"""

from __future__ import annotations

import numpy as np

from repro.core.formations import ecp_cost_for_ftc
from repro.errors import ConfigurationError, UncorrectableError
from repro.pcm.cell import CellArray
from repro.schemes.base import RecoveryScheme, WriteReceipt


class EcpScheme(RecoveryScheme):
    """ECP-``p`` bound to one cell array."""

    def __init__(
        self,
        cells: CellArray,
        pointers: int,
        *,
        fragile_replacements: bool = False,
    ) -> None:
        super().__init__(cells)
        if pointers < 1:
            raise ConfigurationError("ECP needs at least one correction entry")
        self.pointers = pointers
        #: allocated entries: faulty offset -> replacement value
        self.entries: dict[int, int] = {}
        self._replacements: CellArray | None = (
            CellArray(pointers, differential_writes=cells.differential_writes)
            if fragile_replacements
            else None
        )
        self._entry_slot: dict[int, int] = {}  # faulty offset -> replacement index

    # -- identity ----------------------------------------------------------

    @property
    def name(self) -> str:
        return f"ECP{self.pointers}"

    @property
    def overhead_bits(self) -> int:
        return ecp_cost_for_ftc(self.pointers, self.cells.n_bits)

    @property
    def hard_ftc(self) -> int:
        return self.pointers

    @property
    def full(self) -> bool:
        """The ECP full flag: every correction entry is allocated."""
        return len(self.entries) >= self.pointers

    # -- data path -----------------------------------------------------------

    def _write_replacement(self, offset: int, value: int) -> None:
        self.entries[offset] = value
        if self._replacements is not None:
            slot = self._entry_slot[offset]
            image = self._replacements.read()
            image[slot] = value
            self._replacements.write(image)
            self.entries[offset] = int(self._replacements.read()[slot])

    def _encode_write(self, data: np.ndarray) -> WriteReceipt:
        receipt = WriteReceipt()
        receipt.cell_writes += self.cells.write(data)
        receipt.verification_reads += 1
        # refresh replacement values for already-covered faults
        for offset in list(self.entries):
            self._write_replacement(offset, int(data[offset]))
        mismatches = self.cells.verify(data)
        for offset in (int(m) for m in mismatches):
            if offset in self.entries:
                continue  # covered; replacement already refreshed above
            if self.full:
                raise UncorrectableError(
                    f"{self.name}: fault at offset {offset} exceeds the "
                    f"{self.pointers}-entry budget",
                    fault_offsets=tuple(sorted({*self.entries, offset})),
                )
            if self._replacements is not None:
                self._entry_slot[offset] = len(self.entries)
            self._write_replacement(offset, int(data[offset]))
        # a fragile replacement cell may itself be stuck at the wrong value
        for offset, value in self.entries.items():
            if value != int(data[offset]):
                raise UncorrectableError(
                    f"{self.name}: replacement cell for offset {offset} is stuck wrong",
                    fault_offsets=tuple(sorted(self.entries)),
                )
        return receipt

    def read(self) -> np.ndarray:
        image = self.cells.read()
        for offset, value in self.entries.items():
            image[offset] = value
        return image
