"""Common interface for per-block stuck-at-fault recovery schemes.

Every scheme in the paper — Aegis and its variants, ECP, SAFER, RDIS, the
Hamming reference, and the no-protection baseline — is implemented as a
*block controller*: an object bound to one :class:`~repro.pcm.cell.CellArray`
that mediates all reads and writes, maintaining whatever per-block metadata
(inversion vectors, pointers, partition state) the scheme defines.

The contract:

* :meth:`RecoveryScheme.write` stores ``data`` so that a subsequent
  :meth:`RecoveryScheme.read` returns it exactly, or raises
  :class:`~repro.errors.UncorrectableError` if the block's faults exceed the
  scheme's capability for that data.  A failed write retires the block.
* :meth:`RecoveryScheme.read` decodes the stored bits through the scheme's
  metadata (undoing inversions, applying replacement bits, ...).
* ``overhead_bits`` is the per-block metadata cost in bits, matching the
  paper's accounting (Table 1 / figure annotations).

Cache-assisted schemes (Aegis-rw, Aegis-rw-p, SAFER-cache, RDIS) are
constructed with a :class:`FaultKnowledge` provider that reveals fault
locations and stuck-at values before a write — the paper's *fail cache*
abstraction.  :class:`OracleKnowledge` is the "sufficiently large cache"
the paper assumes in its evaluation (§3: "a cache without misses").
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Protocol

import numpy as np

from repro.errors import BlockRetiredError, UncorrectableError
from repro.pcm.cell import CellArray


@dataclass
class WriteReceipt:
    """Accounting for one serviced write request.

    Attributes
    ----------
    cell_writes:
        Number of cell programming operations performed (the wear cost).
    verification_reads:
        Verification reads issued (each write of each region costs one).
    repartitions:
        Re-partition trials performed (slope bumps for Aegis, vector
        extensions for SAFER); 0 for pointer-based schemes.
    inversion_writes:
        Extra group/region writes caused by inversion-based recovery.
    """

    cell_writes: int = 0
    verification_reads: int = 0
    repartitions: int = 0
    inversion_writes: int = 0

    def merge(self, other: "WriteReceipt") -> None:
        self.cell_writes += other.cell_writes
        self.verification_reads += other.verification_reads
        self.repartitions += other.repartitions
        self.inversion_writes += other.inversion_writes


class FaultKnowledge(Protocol):
    """Reveals the faults of a block before a write (the fail cache view)."""

    def known_faults(self, cells: CellArray) -> dict[int, int]:
        """Map of ``offset -> stuck value`` for every known fault of the block."""

    def record(self, cells: CellArray, offset: int, stuck_value: int) -> None:
        """Learn a fault discovered by a verification read."""


class OracleKnowledge:
    """Perfect fault knowledge — the paper's 'sufficiently large cache'."""

    def known_faults(self, cells: CellArray) -> dict[int, int]:
        return {offset: cells.stuck_value_of(offset) for offset in cells.fault_offsets}

    def record(self, cells: CellArray, offset: int, stuck_value: int) -> None:
        """The oracle already knows every fault; nothing to learn."""


class RecoveryScheme(ABC):
    """A per-block fault-recovery controller.

    Subclasses implement :meth:`_encode_write` and :meth:`read`; the base
    class handles block retirement so that a block whose write once failed
    never accepts further traffic (the paper's failure criterion: the first
    unrecoverable fault concludes the block's lifetime).
    """

    def __init__(self, cells: CellArray) -> None:
        self.cells = cells
        self._retired = False

    # -- identity -----------------------------------------------------------

    @property
    @abstractmethod
    def name(self) -> str:
        """Scheme label as used in the paper's figures (e.g. ``Aegis 9x61``)."""

    @property
    @abstractmethod
    def overhead_bits(self) -> int:
        """Per-block metadata cost in bits."""

    # -- data path ------------------------------------------------------------

    @property
    def retired(self) -> bool:
        """True once a write has failed; the block is out of service."""
        return self._retired

    def write(self, data: np.ndarray) -> WriteReceipt:
        """Store ``data`` in the block, recovering any stuck-at faults.

        Raises :class:`UncorrectableError` (and retires the block) when the
        faults exceed the scheme's capability for this data.
        """
        if self._retired:
            raise BlockRetiredError(f"{self.name}: block already retired")
        data = np.asarray(data, dtype=np.uint8)
        if data.shape != (self.cells.n_bits,):
            raise ValueError(
                f"data must have shape ({self.cells.n_bits},), got {data.shape}"
            )
        if not np.all((data == 0) | (data == 1)):
            raise ValueError("data must contain only 0/1 values")
        try:
            return self._encode_write(data)
        except UncorrectableError:
            self._retired = True
            raise

    @abstractmethod
    def _encode_write(self, data: np.ndarray) -> WriteReceipt:
        """Scheme-specific write path; may raise :class:`UncorrectableError`."""

    @abstractmethod
    def read(self) -> np.ndarray:
        """Decode and return the block's logical contents."""


@dataclass
class SchemeStats:
    """Aggregate statistics across many writes, used by examples and tests."""

    writes: int = 0
    cell_writes: int = 0
    verification_reads: int = 0
    repartitions: int = 0
    inversion_writes: int = 0
    failures: int = 0

    def record(self, receipt: WriteReceipt) -> None:
        self.writes += 1
        self.cell_writes += receipt.cell_writes
        self.verification_reads += receipt.verification_reads
        self.repartitions += receipt.repartitions
        self.inversion_writes += receipt.inversion_writes


def roundtrip(scheme: RecoveryScheme, data: np.ndarray) -> bool:
    """Write then read back; ``True`` when the block returned ``data`` exactly.

    Convenience helper used pervasively in tests and examples.
    """
    try:
        scheme.write(data)
    except UncorrectableError:
        return False
    return bool(np.array_equal(scheme.read(), np.asarray(data, dtype=np.uint8)))
