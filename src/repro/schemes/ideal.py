"""Degenerate schemes: the unprotected baseline and a perfect oracle.

``NoProtectionScheme`` is the paper's reference point for lifetime
improvement (Figures 6 and 12): a block with no recovery metadata fails on
the first write for which some stuck cell holds the wrong value — under
random data, essentially as soon as the first cell dies.

``PerfectScheme`` tolerates everything by keeping a shadow copy; it exists
for tests and as an upper bound in examples, not as a hardware proposal.
"""

from __future__ import annotations

import numpy as np

from repro.errors import UncorrectableError
from repro.pcm.cell import CellArray
from repro.schemes.base import RecoveryScheme, WriteReceipt


class NoProtectionScheme(RecoveryScheme):
    """No recovery at all: any stuck-at-wrong cell is an unrecoverable error."""

    def __init__(self, cells: CellArray) -> None:
        super().__init__(cells)

    @property
    def name(self) -> str:
        return "None"

    @property
    def overhead_bits(self) -> int:
        return 0

    @property
    def hard_ftc(self) -> int:
        return 0

    def _encode_write(self, data: np.ndarray) -> WriteReceipt:
        receipt = WriteReceipt()
        receipt.cell_writes += self.cells.write(data)
        receipt.verification_reads += 1
        mismatches = self.cells.verify(data)
        if mismatches.size:
            raise UncorrectableError(
                f"{self.name}: {mismatches.size} stuck-at-wrong cells",
                fault_offsets=tuple(int(m) for m in mismatches),
            )
        return receipt

    def read(self) -> np.ndarray:
        return self.cells.read()


class PerfectScheme(RecoveryScheme):
    """Never fails; reads come from a shadow copy.  Testing aid only."""

    def __init__(self, cells: CellArray) -> None:
        super().__init__(cells)
        self._shadow = np.zeros(cells.n_bits, dtype=np.uint8)

    @property
    def name(self) -> str:
        return "Perfect"

    @property
    def overhead_bits(self) -> int:
        return self.cells.n_bits  # the shadow copy, counted honestly

    def _encode_write(self, data: np.ndarray) -> WriteReceipt:
        receipt = WriteReceipt()
        receipt.cell_writes += self.cells.write(data)
        receipt.verification_reads += 1
        self._shadow = data.copy()
        return receipt

    def read(self) -> np.ndarray:
        return self._shadow.copy()
