"""SAFER — Stuck-At-Fault Error Recovery (Seong et al., MICRO 2010; §1.2).

The partition-and-inversion comparator in the paper's evaluation.  SAFER
partitions the block by a *partition vector*: a set of up to ``m`` selected
bit-positions of the in-block offset address.  A bit's group is the value of
its offset at the selected positions, so ``j`` selected positions induce
``2^j`` groups and the hardware budgets for ``N = 2^m`` inversion flags.

Two re-partition policies are provided (DESIGN.md §4):

* ``"incremental"`` — faithful to SAFER's hardware: the vector only ever
  *grows*; when two detected faults collide, one bit-position at which their
  addresses differ is appended.  With the vector full, any further collision
  kills the block.  This is the behaviour the Aegis paper critiques (only
  ``n + 1`` usable configurations).
* ``"exhaustive"`` — a generous upper bound: search every combination of at
  most ``m`` positions for one that separates all detected faults.  For
  512-bit blocks that is at most ``C(9, m) <= 126`` candidates, so the
  search is trivially cheap in software even though SAFER's hardware cannot
  perform it.  Benchmarks default to this policy so that the reproduced
  Aegis advantage is conservative.

``SaferCacheScheme`` adds the paper's fail-cache variant (SAFER-N-cache):
with known stuck-at values, a group may hold any number of same-type faults,
so the vector search only needs to avoid mixing W and R faults in a group,
and the block is programmed in a single pass.
"""

from __future__ import annotations

from itertools import combinations

import numpy as np

from repro.core.formations import safer_cost, safer_hard_ftc
from repro.errors import ConfigurationError, UncorrectableError
from repro.pcm.cell import CellArray
from repro.schemes.base import FaultKnowledge, OracleKnowledge, RecoveryScheme, WriteReceipt
from repro.util.bitops import ceil_log2


def vector_value(offset: int, positions: tuple[int, ...]) -> int:
    """Group of ``offset`` under a partition vector: its address bits at the
    selected positions, packed LSB-first.

    >>> vector_value(0b1010, (1, 3))
    3
    """
    value = 0
    for i, position in enumerate(positions):
        value |= ((offset >> position) & 1) << i
    return value


def separates(positions: tuple[int, ...], offsets: list[int]) -> bool:
    """True when all ``offsets`` have distinct vector values."""
    values = {vector_value(o, positions) for o in offsets}
    return len(values) == len(offsets)


def colliding_pairs(positions: tuple[int, ...], offsets: list[int]) -> int:
    """Number of fault pairs sharing a vector value under ``positions``."""
    counts: dict[int, int] = {}
    for offset in offsets:
        value = vector_value(offset, positions)
        counts[value] = counts.get(value, 0) + 1
    return sum(c * (c - 1) // 2 for c in counts.values())


def best_extension(
    positions: tuple[int, ...],
    faults: list[int],
    colliding: tuple[int, int],
    addr_bits: int,
) -> int | None:
    """The position to append to a partition vector: among the positions at
    which the colliding pair differs, the one leaving the fewest colliding
    pairs overall (ties broken toward the lowest index)."""
    differing = colliding[0] ^ colliding[1]
    best: int | None = None
    best_score = None
    for position in range(addr_bits):
        if position in positions or not (differing >> position) & 1:
            continue
        score = colliding_pairs((*positions, position), faults)
        if best_score is None or score < best_score:
            best, best_score = position, score
    return best


class SaferScheme(RecoveryScheme):
    """SAFER-N bound to one cell array (no fail cache)."""

    def __init__(
        self,
        cells: CellArray,
        group_count: int,
        *,
        policy: str = "exhaustive",
    ) -> None:
        super().__init__(cells)
        if group_count < 2 or group_count & (group_count - 1):
            raise ConfigurationError(
                f"SAFER group count must be a power of two >= 2, got {group_count}"
            )
        if group_count > cells.n_bits:
            raise ConfigurationError("SAFER cannot use more groups than block bits")
        if policy not in ("incremental", "exhaustive"):
            raise ConfigurationError(f"unknown SAFER policy {policy!r}")
        self.group_count = group_count
        self.max_positions = ceil_log2(group_count)
        self.addr_bits = ceil_log2(cells.n_bits)
        self.policy = policy
        self.positions: tuple[int, ...] = ()
        self.inversion = np.zeros(group_count, dtype=np.uint8)
        self.known_fault_offsets: set[int] = set()

    # -- identity ----------------------------------------------------------

    @property
    def name(self) -> str:
        return f"SAFER{self.group_count}"

    @property
    def overhead_bits(self) -> int:
        return safer_cost(self.group_count, self.cells.n_bits)

    @property
    def hard_ftc(self) -> int:
        """``m + 1`` under the incremental policy (the published guarantee)."""
        return safer_hard_ftc(self.group_count)

    # -- partition machinery -----------------------------------------------

    def _group_ids(self, positions: tuple[int, ...]) -> np.ndarray:
        offsets = np.arange(self.cells.n_bits)
        ids = np.zeros(self.cells.n_bits, dtype=np.int64)
        for i, position in enumerate(positions):
            ids |= ((offsets >> position) & 1) << i
        return ids

    def _inversion_mask(self) -> np.ndarray:
        ids = self._group_ids(self.positions)
        return self.inversion[ids].astype(np.uint8)

    def _repartition(self, detected: set[int]) -> tuple[int, ...]:
        """Find a vector separating ``detected``; raises when none exists
        under the configured policy."""
        faults = sorted(detected)
        if self.policy == "exhaustive":
            for size in range(self.max_positions + 1):
                for candidate in combinations(range(self.addr_bits), size):
                    if separates(candidate, faults):
                        return candidate
            raise UncorrectableError(
                f"{self.name}: no {self.max_positions}-position vector separates "
                f"{len(faults)} faults",
                fault_offsets=tuple(faults),
            )
        # incremental: extend the current vector one position at a time,
        # choosing the distinguishing position that minimises remaining
        # collisions (the hardware can evaluate all candidate positions
        # against its fail-address registers in parallel)
        positions = self.positions
        while not separates(positions, faults):
            if len(positions) >= self.max_positions:
                raise UncorrectableError(
                    f"{self.name}: partition vector full with a collision remaining",
                    fault_offsets=tuple(faults),
                )
            colliding = self._first_colliding_pair(positions, faults)
            added = best_extension(positions, faults, colliding, self.addr_bits)
            if added is None:
                raise UncorrectableError(
                    f"{self.name}: no free position distinguishes colliding faults",
                    fault_offsets=tuple(faults),
                )
            positions = (*positions, added)
        return positions

    @staticmethod
    def _first_colliding_pair(
        positions: tuple[int, ...], faults: list[int]
    ) -> tuple[int, int]:
        seen: dict[int, int] = {}
        for offset in faults:
            value = vector_value(offset, positions)
            if value in seen:
                return seen[value], offset
            seen[value] = offset
        raise AssertionError("no collision among separated faults")  # pragma: no cover

    def _distinguishing_position(
        self, positions: tuple[int, ...], offset1: int, offset2: int
    ) -> int | None:
        differing = offset1 ^ offset2
        for position in range(self.addr_bits):
            if position in positions:
                continue
            if (differing >> position) & 1:
                return position
        return None

    # -- data path -----------------------------------------------------------

    def _encode_write(self, data: np.ndarray) -> WriteReceipt:
        receipt = WriteReceipt()
        detected: set[int] = set()
        max_iterations = 2 * self.cells.n_bits + self.addr_bits + 4
        for _ in range(max_iterations):
            stored_form = np.bitwise_xor(data, self._inversion_mask())
            receipt.cell_writes += self.cells.write(stored_form)
            receipt.verification_reads += 1
            mismatches = self.cells.verify(stored_form)
            if mismatches.size == 0:
                self.known_fault_offsets |= detected
                return receipt
            detected.update(int(m) for m in mismatches)
            if separates(self.positions, sorted(detected)):
                flipped = {
                    vector_value(int(m), self.positions) for m in mismatches
                }
                for group in flipped:
                    self.inversion[group] ^= 1
                receipt.inversion_writes += len(flipped)
                continue
            try:
                new_positions = self._repartition(detected)
            except UncorrectableError:
                self.known_fault_offsets |= detected
                raise
            receipt.repartitions += 1
            self.positions = new_positions
            self.inversion[:] = 0
        raise AssertionError(
            f"{self.name}: write service did not converge"
        )  # pragma: no cover - loop is bounded

    def read(self) -> np.ndarray:
        return np.bitwise_xor(self.cells.read(), self._inversion_mask())


def grow_vector_for_mixing(
    positions: tuple[int, ...],
    wrong: list[int],
    right: list[int],
    max_positions: int,
    addr_bits: int,
) -> tuple[int, ...] | None:
    """Extend a grow-only partition vector until no group mixes a W fault
    with an R fault; ``None`` when the vector fills up with mixing left.

    This is the cache-assisted collision rule on SAFER's actual hardware:
    the fail cache relaxes *what counts as a collision* (same-type faults
    may share a group) but the partition vector still only ever grows.
    """
    while True:
        w_groups: dict[int, int] = {}
        for offset in wrong:
            w_groups[vector_value(offset, positions)] = offset
        mixing: tuple[int, int] | None = None
        for offset in right:
            value = vector_value(offset, positions)
            if value in w_groups:
                mixing = (w_groups[value], offset)
                break
        if mixing is None:
            return positions
        if len(positions) >= max_positions:
            return None
        added = best_extension(positions, [*wrong, *right], mixing, addr_bits)
        if added is None:
            return None
        positions = (*positions, added)


class SaferCacheScheme(RecoveryScheme):
    """SAFER-N-cache: SAFER with a fail cache revealing stuck-at values.

    The cache buys two things (paper §2.4): groups may hold any number of
    *same-type* faults (only W/R mixing forces a re-partition), and writes
    complete in a single pass.  The partition vector itself remains SAFER's
    grow-only hardware structure.
    """

    def __init__(
        self,
        cells: CellArray,
        group_count: int,
        knowledge: FaultKnowledge | None = None,
    ) -> None:
        super().__init__(cells)
        if group_count < 2 or group_count & (group_count - 1):
            raise ConfigurationError(
                f"SAFER group count must be a power of two >= 2, got {group_count}"
            )
        if group_count > cells.n_bits:
            raise ConfigurationError("SAFER cannot use more groups than block bits")
        self.group_count = group_count
        self.max_positions = ceil_log2(group_count)
        self.addr_bits = ceil_log2(cells.n_bits)
        self.knowledge = knowledge if knowledge is not None else OracleKnowledge()
        self.positions: tuple[int, ...] = ()
        self.inversion = np.zeros(group_count, dtype=np.uint8)

    @property
    def name(self) -> str:
        return f"SAFER{self.group_count}-cache"

    @property
    def overhead_bits(self) -> int:
        """Per-block bits only; the fail cache is chip-shared SRAM whose
        cost the paper deliberately leaves out of this accounting."""
        return safer_cost(self.group_count, self.cells.n_bits)

    @property
    def hard_ftc(self) -> int:
        """The grow-only separation guarantee carries over: ``m + 1``
        faults are always fully separable, hence never type-mixed."""
        return safer_hard_ftc(self.group_count)

    def _inversion_mask(self) -> np.ndarray:
        offsets = np.arange(self.cells.n_bits)
        ids = np.zeros(self.cells.n_bits, dtype=np.int64)
        for i, position in enumerate(self.positions):
            ids |= ((offsets >> position) & 1) << i
        return self.inversion[ids].astype(np.uint8)

    def _encode_write(self, data: np.ndarray) -> WriteReceipt:
        receipt = WriteReceipt()
        max_attempts = self.cells.n_bits + 2
        for _ in range(max_attempts):
            faults = self.knowledge.known_faults(self.cells)
            wrong = [o for o, stuck in faults.items() if stuck != int(data[o])]
            right = [o for o, stuck in faults.items() if stuck == int(data[o])]
            vector = grow_vector_for_mixing(
                self.positions, wrong, right, self.max_positions, self.addr_bits
            )
            if vector is None:
                raise UncorrectableError(
                    f"{self.name}: partition vector full with W and R faults "
                    f"mixed ({len(wrong)} W, {len(right)} R)",
                    fault_offsets=tuple(sorted(faults)),
                )
            self.positions = vector
            self.inversion[:] = 0
            for offset in wrong:
                self.inversion[vector_value(offset, vector)] = 1
            stored_form = np.bitwise_xor(data, self._inversion_mask())
            receipt.cell_writes += self.cells.write(stored_form)
            receipt.verification_reads += 1
            mismatches = self.cells.verify(stored_form)
            if mismatches.size == 0:
                return receipt
            receipt.inversion_writes += 1
            for offset in mismatches:
                stored = int(self.cells.read()[offset])
                self.knowledge.record(self.cells, int(offset), stored)
        raise AssertionError(
            f"{self.name}: write service did not converge"
        )  # pragma: no cover - each retry learns a new fault

    def read(self) -> np.ndarray:
        return np.bitwise_xor(self.cells.read(), self._inversion_mask())
