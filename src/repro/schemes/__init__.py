"""Recovery schemes: the common interface and every comparator baseline."""

from repro.schemes.base import (
    FaultKnowledge,
    OracleKnowledge,
    RecoveryScheme,
    SchemeStats,
    WriteReceipt,
    roundtrip,
)
from repro.schemes.ecp import EcpScheme
from repro.schemes.hamming import HammingScheme
from repro.schemes.ideal import NoProtectionScheme, PerfectScheme
from repro.schemes.rdis import RdisScheme, rdis_mask
from repro.schemes.safer import SaferCacheScheme, SaferScheme, separates, vector_value

__all__ = [
    "EcpScheme",
    "FaultKnowledge",
    "HammingScheme",
    "NoProtectionScheme",
    "OracleKnowledge",
    "PerfectScheme",
    "RdisScheme",
    "RecoveryScheme",
    "SaferCacheScheme",
    "SaferScheme",
    "SchemeStats",
    "WriteReceipt",
    "rdis_mask",
    "roundtrip",
    "separates",
    "vector_value",
]
