"""(72, 64) extended Hamming SEC-DED code — the paper's ECC reference.

The paper uses the 12.5% overhead of the (72, 64) Hamming code, "the most
popular ECC scheme", as the space budget any recovery scheme should respect
(§3.2, Figure 6 discussion).  This module implements the code bit-accurately
— a full encoder and a syndrome decoder with single-error correction and
double-error detection — plus a block-level :class:`HammingScheme` that
protects each 64-bit word of a data block with its own 8 check bits.

Against *stuck-at* faults (rather than the transient flips the code was
designed for), SEC-DED corrects at most one stuck-at-wrong cell per word at
read time, and a word holding two wrong cells is lost; this is exactly why
the paper dismisses ECC for PCM and why the scheme makes an instructive
baseline.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError, UncorrectableError
from repro.pcm.cell import CellArray
from repro.schemes.base import RecoveryScheme, WriteReceipt

DATA_BITS = 64
CHECK_BITS = 8
CODE_BITS = DATA_BITS + CHECK_BITS


def _build_parity_matrix() -> np.ndarray:
    """Parity-check matrix H (8 x 72) of the extended Hamming code.

    Columns 0..63 carry data bits: the 64 seven-bit non-power-of-two values
    in [3, 127] (each with >= 2 set bits), extended with an overall parity
    row.  Columns 64..71 carry the check bits (identity + parity row).
    """
    data_columns = [v for v in range(3, 128) if v.bit_count() >= 2][:DATA_BITS]
    if len(data_columns) != DATA_BITS:
        raise AssertionError("not enough Hamming columns")  # pragma: no cover
    h = np.zeros((CHECK_BITS, CODE_BITS), dtype=np.uint8)
    for j, value in enumerate(data_columns):
        for row in range(7):
            h[row, j] = (value >> row) & 1
    for row in range(7):
        h[row, DATA_BITS + row] = 1
    h[7, :] = 1  # overall parity row makes the code SEC-DED
    h[7, DATA_BITS + 7] = 1
    return h


_H = _build_parity_matrix()
#: syndrome (as packed int) -> codeword bit position, for single-bit errors
_SYNDROME_TO_BIT = {
    int(np.packbits(_H[:, j], bitorder="little")[0]): j for j in range(CODE_BITS)
}


def encode(data: np.ndarray) -> np.ndarray:
    """Encode 64 data bits into a 72-bit codeword (data bits first)."""
    data = np.asarray(data, dtype=np.uint8)
    if data.shape != (DATA_BITS,):
        raise ValueError(f"encode expects {DATA_BITS} bits, got {data.shape}")
    code = np.zeros(CODE_BITS, dtype=np.uint8)
    code[:DATA_BITS] = data
    # solve the identity part: check bits = H_data @ data (mod 2)
    checks = (_H[:7, :DATA_BITS] @ data) % 2
    code[DATA_BITS : DATA_BITS + 7] = checks
    code[DATA_BITS + 7] = (int(code[: DATA_BITS + 7].sum()) % 2)
    return code


def decode(codeword: np.ndarray) -> tuple[np.ndarray, int]:
    """Decode a 72-bit word; returns ``(data, errors_corrected)``.

    Raises :class:`UncorrectableError` on a detected double error.
    """
    codeword = np.asarray(codeword, dtype=np.uint8)
    if codeword.shape != (CODE_BITS,):
        raise ValueError(f"decode expects {CODE_BITS} bits, got {codeword.shape}")
    syndrome = (_H @ codeword) % 2
    packed = int(np.packbits(syndrome, bitorder="little")[0])
    if packed == 0:
        return codeword[:DATA_BITS].copy(), 0
    overall_parity = syndrome[7]
    if not overall_parity:
        raise UncorrectableError("Hamming(72,64): double error detected")
    position = _SYNDROME_TO_BIT.get(packed)
    if position is None:
        raise UncorrectableError("Hamming(72,64): uncorrectable syndrome")
    corrected = codeword.copy()
    corrected[position] ^= 1
    return corrected[:DATA_BITS].copy(), 1


class HammingScheme(RecoveryScheme):
    """Per-word (72, 64) SEC-DED over a block.

    Check bits live in a side cell array (which may itself carry faults when
    constructed with ``fragile_checks=True``).
    """

    def __init__(self, cells: CellArray, *, fragile_checks: bool = False) -> None:
        super().__init__(cells)
        if cells.n_bits % DATA_BITS:
            raise ConfigurationError(
                f"Hamming scheme needs a multiple of {DATA_BITS} bits, got {cells.n_bits}"
            )
        self.words = cells.n_bits // DATA_BITS
        self._checks = CellArray(
            self.words * CHECK_BITS, differential_writes=cells.differential_writes
        )
        self.fragile_checks = fragile_checks

    @property
    def name(self) -> str:
        return "Hamming(72,64)"

    @property
    def overhead_bits(self) -> int:
        return self.words * CHECK_BITS

    @property
    def hard_ftc(self) -> int:
        return 1  # one fault per block is always safe (it lands in one word)

    @property
    def check_cells(self) -> CellArray:
        """The side array storing check bits (inject faults here to model
        fragile check storage)."""
        return self._checks

    def _encode_write(self, data: np.ndarray) -> WriteReceipt:
        receipt = WriteReceipt()
        check_image = np.zeros(self.words * CHECK_BITS, dtype=np.uint8)
        for w in range(self.words):
            word = data[w * DATA_BITS : (w + 1) * DATA_BITS]
            code = encode(word)
            check_image[w * CHECK_BITS : (w + 1) * CHECK_BITS] = code[DATA_BITS:]
        receipt.cell_writes += self.cells.write(data)
        receipt.cell_writes += self._checks.write(check_image)
        receipt.verification_reads += 1
        # a write is serviceable iff every word decodes back to its data
        stored = self.cells.read()
        stored_checks = self._checks.read()
        for w in range(self.words):
            codeword = np.concatenate(
                [
                    stored[w * DATA_BITS : (w + 1) * DATA_BITS],
                    stored_checks[w * CHECK_BITS : (w + 1) * CHECK_BITS],
                ]
            )
            try:
                decoded, _ = decode(codeword)
            except UncorrectableError as exc:
                raise UncorrectableError(
                    f"{self.name}: word {w} unrecoverable ({exc})"
                ) from exc
            if not np.array_equal(decoded, data[w * DATA_BITS : (w + 1) * DATA_BITS]):
                raise UncorrectableError(f"{self.name}: word {w} miscorrected")
        return receipt

    def read(self) -> np.ndarray:
        stored = self.cells.read()
        stored_checks = self._checks.read()
        out = np.zeros(self.cells.n_bits, dtype=np.uint8)
        for w in range(self.words):
            codeword = np.concatenate(
                [
                    stored[w * DATA_BITS : (w + 1) * DATA_BITS],
                    stored_checks[w * CHECK_BITS : (w + 1) * CHECK_BITS],
                ]
            )
            decoded, _ = decode(codeword)
            out[w * DATA_BITS : (w + 1) * DATA_BITS] = decoded
        return out
