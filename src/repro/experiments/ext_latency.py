"""Extension: write-service latency under a device timing model.

Prices the §2.4 latency arguments: the fail cache buys single-pass writes
(one program + one verify regardless of faults), basic Aegis pays extra
passes as faults accumulate, and the double-write option's latency is
~3x a clean write even before its wear cost — "too high", quantified.
"""

from __future__ import annotations

from repro.analysis.latency import LatencyModel, latency_study
from repro.core.aegis import AegisScheme
from repro.core.aegis_dw import AegisDoubleWriteScheme
from repro.core.aegis_rw import AegisRwScheme
from repro.core.formations import formation
from repro.experiments.base import ExperimentResult, register
from repro.schemes.ecp import EcpScheme
from repro.schemes.safer import SaferScheme
from repro.sim.context import ExecContext


@register("ext-latency")
def run(
    ctx: ExecContext,
    *,
    block_bits: int = 512,
    fault_counts: tuple[int, ...] = (0, 6, 12),
    writes: int = 30,
    trials: int = 6,
) -> ExperimentResult:
    """Mean write latency (ns) by scheme and resident fault count."""
    form = formation(9, 61, block_bits)
    model = LatencyModel()
    contenders = [
        ("Aegis 9x61", lambda c: AegisScheme(c, form), False),
        ("Aegis-rw 9x61", lambda c: AegisRwScheme(c, form), True),
        ("Aegis-dw 9x61", lambda c: AegisDoubleWriteScheme(c, form), False),
        ("SAFER64", lambda c: SaferScheme(c, 64), False),
        ("ECP12", lambda c: EcpScheme(c, 12), False),
    ]
    rows = []
    for label, factory, cache_assisted in contenders:
        for fault_count in fault_counts:
            summary = latency_study(
                label,
                factory,
                fault_count=fault_count,
                cache_assisted=cache_assisted,
                model=model,
                n_bits=block_bits,
                writes=writes,
                trials=trials,
                seed=ctx.seed,
            )
            rows.append(
                (
                    label,
                    fault_count,
                    round(summary.mean_latency_ns, 1),
                    round(summary.passes_per_write, 2),
                    round(summary.slowdown_vs_single_pass, 2),
                )
            )
    return ExperimentResult(
        experiment_id="ext-latency",
        title=(
            f"Extension: write-service latency "
            f"(read {model.array_read_ns:.0f} ns, program {model.program_ns:.0f} ns)"
        ),
        headers=("Scheme", "Faults", "Latency (ns)", "Passes/write", "Slowdown (x)"),
        rows=tuple(rows),
        notes=(
            "cache-assisted Aegis-rw holds single-pass latency at any fault "
            "count; the double-write option starts at 3 passes — the §2.4 "
            "'latency too high' argument, quantified",
        ),
    )
