"""Extension: intra-block wear leveling (the §2.1 side claim).

"[Separating any two bits on re-partition] helps to evenly spread faults
in a block across different groups and promotes wear leveling within each
block."  Inversion re-writes concentrate wear on the bits of flagged
groups; a scheme that keeps re-partitioning onto fresh slopes spreads that
extra wear across different bit subsets, while a scheme with a sticky
partition hammers the same group members.

Measured directly on the bit-accurate controllers: drive a faulty block
with random writes and report the coefficient of variation of *healthy*
cells' programming counts (lower = more even wear), plus the hottest
cell's excess over the mean.
"""

from __future__ import annotations

import numpy as np

from repro.core.aegis import AegisScheme
from repro.core.formations import formation
from repro.errors import UncorrectableError
from repro.experiments.base import ExperimentResult, register
from repro.pcm.cell import CellArray
from repro.sim.context import ExecContext
from repro.schemes.ecp import EcpScheme
from repro.schemes.safer import SaferScheme


def _wear_spread(
    scheme_factory, n_bits: int, fault_count: int, writes: int, trials: int, seed: int
) -> tuple[float, float]:
    """(mean CoV of healthy-cell write counts, mean hottest/mean ratio)."""
    covs, peaks = [], []
    for trial in range(trials):
        rng = np.random.default_rng((seed, trial))
        cells = CellArray(n_bits)
        fault_offsets = rng.choice(n_bits, size=fault_count, replace=False)
        for offset in fault_offsets:
            cells.inject_fault(int(offset), stuck_value=int(rng.integers(0, 2)))
        scheme = scheme_factory(cells)
        try:
            for _ in range(writes):
                scheme.write(rng.integers(0, 2, n_bits, dtype=np.uint8))
        except UncorrectableError:
            continue
        healthy = np.ones(n_bits, dtype=bool)
        healthy[fault_offsets] = False
        counts = cells.write_counts[healthy].astype(np.float64)
        if counts.mean() == 0:
            continue
        covs.append(float(counts.std() / counts.mean()))
        peaks.append(float(counts.max() / counts.mean()))
    if not covs:
        raise UncorrectableError("no trial produced a serviceable block")
    return float(np.mean(covs)), float(np.mean(peaks))


@register("ext-intrablock")
def run(
    ctx: ExecContext,
    *,
    block_bits: int = 512,
    fault_counts: tuple[int, ...] = (4, 8, 12),
    writes: int = 120,
    trials: int = 6,
) -> ExperimentResult:
    """Healthy-cell wear evenness by scheme and resident fault count."""
    contenders = [
        ("Aegis 9x61", lambda c: AegisScheme(c, formation(9, 61, block_bits))),
        ("SAFER64", lambda c: SaferScheme(c, 64)),
        ("ECP12", lambda c: EcpScheme(c, 12)),
    ]
    rows = []
    for label, factory in contenders:
        for fault_count in fault_counts:
            cov, peak = _wear_spread(
                factory, block_bits, fault_count, writes, trials, ctx.seed
            )
            rows.append((label, fault_count, round(cov, 3), round(peak, 2)))
    return ExperimentResult(
        experiment_id="ext-intrablock",
        title=(
            f"Extension: intra-block wear evenness over {writes} writes "
            f"({block_bits}-bit blocks)"
        ),
        headers=("Scheme", "Faults", "Wear CoV (healthy cells)", "Hottest/mean"),
        rows=tuple(rows),
        notes=(
            "ECP's pointer corrections add no inversion wear (CoV stays at "
            "the differential-write noise floor); partition schemes "
            "concentrate extra wear on flagged-group members",
            "the §2.1 spreading effect shows up as the *hottest/mean* ratio "
            "falling for Aegis as faults (and hence re-partitions) "
            "accumulate: each slope change moves the inversion wear onto a "
            "fresh bit subset",
        ),
    )
