"""Extension: PAYG with Aegis as the global error-correction scheme.

The paper's §4 positions Aegis as the natural GEC component for Qureshi's
Pay-As-You-Go framework.  This experiment sweeps the GEC pool size and
compares the average per-block overhead and fault capacity against flat
(every-block) Aegis and flat ECP — quantifying how much of Aegis's
capacity survives when its metadata is allocated on demand.
"""

from __future__ import annotations

from repro.core.formations import formation
from repro.experiments.base import ExperimentResult, register, shared_page_studies
from repro.payg.sim import payg_page_study
from repro.sim.context import ExecContext
from repro.sim.roster import aegis_spec, ecp_spec


@register("ext-payg")
def run(
    ctx: ExecContext,
    *,
    block_bits: int = 512,
    n_pages: int = 64,
    pool_fractions: tuple[float, ...] = (0.125, 0.25, 0.5, 0.75, 1.0),
) -> ExperimentResult:
    """PAYG(ECP-1 LEC, Aegis 17x31 GEC) vs flat schemes."""
    form = formation(17, 31, block_bits)
    blocks_per_page = (4096 * 8) // block_bits
    rows = []
    flat_specs = [ecp_spec(6, block_bits), aegis_spec(17, 31, block_bits)]
    for spec, study in zip(
        flat_specs, shared_page_studies(flat_specs, n_pages=n_pages, ctx=ctx)
    ):
        rows.append(
            (
                f"flat {spec.label}",
                round(spec.overhead_bits, 1),
                round(study.faults.mean, 1),
                "-",
                "-",
            )
        )
    for fraction in pool_fractions:
        pool = max(1, round(fraction * blocks_per_page))
        result = payg_page_study(
            form,
            pool_entries=pool,
            blocks_per_page=blocks_per_page,
            n_pages=n_pages,
            ctx=ctx,
        )
        rows.append(
            (
                f"PAYG Aegis {form.name} (pool {fraction:.0%})",
                round(result.overhead_bits_per_block, 1),
                round(result.faults.mean, 1),
                round(result.gec_allocations.mean, 1),
                result.pool_exhaustion_deaths,
            )
        )
    return ExperimentResult(
        experiment_id="ext-payg",
        title=(
            f"Extension: PAYG (LEC=ECP-1, GEC=Aegis {form.name}) vs flat "
            f"schemes ({n_pages} pages)"
        ),
        headers=(
            "Organisation",
            "Avg bits/block",
            "Faults/page",
            "GEC slots used",
            "Pool-exhaustion deaths",
        ),
        rows=tuple(rows),
        notes=(
            "under run-to-death horizons with uniform wear, most blocks "
            "eventually outgrow the LEC, so capacity scales with the pool; "
            "PAYG's savings come from earlier-life horizons where few blocks "
            "need GEC — the sweep quantifies that trade",
            "at a full pool, PAYG exceeds flat Aegis capacity (the ECP-1 LEC "
            "absorbs one extra fault per block) at the cost of directory tags",
        ),
    )
