"""Extension: the Figure 5 comparison as a Pareto frontier.

Distils the paper's cost-effectiveness argument: in the
(overhead bits, faults/page) plane, which schemes are efficient and which
are dominated — and by whom.  The paper's conclusion predicts every Aegis
formation on the frontier and every SAFER/RDIS/large-ECP point dominated
by some Aegis formation.
"""

from __future__ import annotations

from repro.analysis.frontier import SchemePoint, pareto_frontier
from repro.experiments.base import ExperimentResult, register, shared_page_studies
from repro.sim.context import ExecContext
from repro.sim.roster import figure5_roster


@register("ext-frontier")
def run(
    ctx: ExecContext,
    *,
    block_bits: int = 512,
    n_pages: int = 64,
) -> ExperimentResult:
    """Pareto analysis over the Figure 5 roster."""
    specs = figure5_roster(block_bits)
    studies = shared_page_studies(specs, n_pages=n_pages, ctx=ctx)
    points = [
        SchemePoint(
            label=spec.label,
            overhead_bits=spec.overhead_bits,
            capability=study.faults.mean,
        )
        for spec, study in zip(specs, studies)
    ]
    analysis = pareto_frontier(points)
    rows = []
    for point in analysis.frontier:
        rows.append(
            (point.label, point.overhead_bits, round(point.capability, 1),
             "frontier", "-")
        )
    for point, dominators in analysis.dominated:
        rows.append(
            (point.label, point.overhead_bits, round(point.capability, 1),
             "dominated", ", ".join(dominators))
        )
    return ExperimentResult(
        experiment_id="ext-frontier",
        title=(
            f"Extension: Pareto frontier of overhead vs fault capability "
            f"({block_bits}-bit blocks, {n_pages} pages)"
        ),
        headers=("Scheme", "Overhead bits", "Faults/page", "Status", "Dominated by"),
        rows=tuple(rows),
        notes=(
            "the paper's conclusion, distilled: expect every Aegis formation "
            "on the frontier and SAFER/RDIS dominated by Aegis points",
        ),
    )
