"""Extension: dynamic page pairing above weak vs strong in-chip recovery.

The paper's §1.1 argues OS-level tricks like Dynamic Pairing cannot
substitute for strong in-chip recovery.  This experiment measures usable
capacity over device age, with and without pairing, above ECP-2 (weak) and
Aegis 17x31 (strong): pairing visibly helps the weak scheme's long failure
tail, while the strong scheme's pages die in a cliff where few compatible
partners remain.
"""

from __future__ import annotations

from repro.experiments.base import ExperimentResult, register
from repro.pairing.sim import pairing_study
from repro.sim.context import ExecContext
from repro.sim.roster import aegis_spec, ecp_spec


@register("ext-pairing")
def run(
    ctx: ExecContext,
    *,
    block_bits: int = 512,
    n_pages: int = 48,
) -> ExperimentResult:
    """Usable page-equivalents vs age, pairing on/off, two schemes."""
    studies = [
        pairing_study(spec, n_pages=n_pages, blocks_per_page=16, ctx=ctx)
        for spec in (ecp_spec(2, block_bits), aegis_spec(17, 31, block_bits))
    ]
    rows = []
    for study in studies:
        for age, without, with_pairing in zip(
            study.ages, study.usable_without, study.usable_with
        ):
            rows.append(
                (
                    study.spec_label,
                    f"{age:.3g}",
                    round(without, 3),
                    round(with_pairing, 3),
                    round(with_pairing - without, 3),
                )
            )
    return ExperimentResult(
        experiment_id="ext-pairing",
        title=(
            f"Extension: dynamic page pairing vs in-chip recovery strength "
            f"({n_pages} pages of 16 blocks)"
        ),
        headers=(
            "Scheme",
            "Age (page writes)",
            "Usable (retire)",
            "Usable (pairing)",
            "Pairing gain",
        ),
        rows=tuple(rows),
        notes=(
            "peak pairing gains: " + ", ".join(
                f"{s.spec_label}={s.peak_gain:.1%}" for s in studies
            ),
        ),
    )
