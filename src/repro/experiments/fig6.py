"""Figure 6: 4 KB-page lifetime improvement over no protection.

The improvement is the ratio of the scheme's mean page lifetime (page
writes until the first unrecoverable fault) to the unprotected page's mean
lifetime (its first cell death), measured on the same endurance samples.

Reproduction note (EXPERIMENTS.md discusses this at length): the absolute
ratio is governed by the far tail of the endurance distribution — the
minimum of 32768 Normal(1e8, 25%) draws sits near zero — so our absolute
multiples exceed the paper's ~6-11x by a roughly uniform factor, while the
*relative* gaps between schemes match the paper closely (e.g. Aegis 9x61 /
ECP4 = 1.69x here vs 1.70x in the paper).
"""

from __future__ import annotations

from repro.experiments.base import ExperimentResult, register, shared_page_studies
from repro.sim.context import ExecContext
from repro.sim.roster import figure5_roster


@register("fig6")
def run(
    ctx: ExecContext,
    *,
    block_bits: int = 512,
    n_pages: int = 128,
) -> ExperimentResult:
    """Regenerate the Figure 6 bars for one block size."""
    specs = figure5_roster(block_bits)
    studies = shared_page_studies(specs, n_pages=n_pages, ctx=ctx)
    reference = max(studies, key=lambda s: s.improvement)
    rows = []
    for spec, study in zip(specs, studies):
        rows.append(
            (
                spec.label,
                spec.overhead_bits,
                round(study.lifetime.mean, 1),
                round(study.improvement, 1),
                round(study.improvement / reference.improvement, 3),
            )
        )
    return ExperimentResult(
        experiment_id="fig6",
        title=(
            f"Figure 6: page lifetime improvement over no protection "
            f"({block_bits}-bit blocks, {n_pages} pages)"
        ),
        headers=(
            "Scheme",
            "Overhead bits",
            "Lifetime (page writes)",
            "Improvement (x)",
            "Relative to best",
        ),
        rows=tuple(rows),
        notes=(
            "absolute multiples are baseline-tail sensitive; compare the "
            "'Relative to best' column against the paper's bar ratios",
        ),
        chart={"type": "bar", "label": "Scheme", "value": "Improvement (x)"},
    )
