"""Experiment drivers: one module per paper table/figure.

Importing this package populates :data:`repro.experiments.REGISTRY`;
``run_experiment("fig5", n_pages=32)`` regenerates a single artefact and
``all_experiment_ids()`` lists everything available.
"""

from repro.experiments import (  # noqa: F401  (registration side effects)
    ext_adaptive,
    ext_bsweep,
    ext_cluster,
    ext_fleet,
    ext_freep,
    ext_frontier,
    ext_fullscale,
    ext_intrablock,
    ext_latency,
    ext_memblock,
    ext_pairing,
    ext_payg,
    ext_service,
    ext_softftc,
    ext_writecost,
    fig5,
    fig6,
    fig7,
    fig8,
    fig9,
    fig10,
    fig11,
    fig12,
    fig13,
    table1,
)
from repro.experiments.base import (
    ACCEPTED_OPTIONS,
    REGISTRY,
    ExperimentResult,
    clear_study_cache,
    dispatch,
    register,
    shared_page_studies,
)
from repro.sim.context import ExecContext


def run_experiment(
    experiment_id: str, ctx: ExecContext | None = None, **options: object
) -> ExperimentResult:
    """Run one registered experiment by id (e.g. ``"table1"``, ``"fig8"``).

    ``ctx`` is the execution plane threaded into the driver (seed,
    workers, engine, observability); legacy ``seed=``/``workers=``/
    ``engine=`` kwargs are folded into it, and any other option the
    driver does not declare raises (see :func:`repro.experiments.base.dispatch`).

    Each run is wrapped in an ``experiment`` span on the process-wide
    tracer and an ``experiment.<id>`` profiler phase, so ``repro run
    --trace/--profile`` attribute study phases to the artefact that
    requested them.
    """
    if experiment_id not in REGISTRY:
        raise KeyError(
            f"unknown experiment {experiment_id!r}; "
            f"available: {', '.join(sorted(REGISTRY))}"
        )
    from repro.obs import get_profiler, get_tracer

    with get_tracer().span("experiment", id=experiment_id):
        with get_profiler().phase(f"experiment.{experiment_id}"):
            return dispatch(experiment_id, ctx=ctx, **options)


def all_experiment_ids() -> list[str]:
    """All registered experiment ids, in paper order."""
    order = [
        "table1",
        "fig5",
        "fig6",
        "fig7",
        "fig8",
        "fig9",
        "fig10",
        "fig11",
        "fig12",
        "fig13",
        "ext-adaptive",
        "ext-bsweep",
        "ext-cluster",
        "ext-fleet",
        "ext-freep",
        "ext-frontier",
        "ext-fullscale",
        "ext-intrablock",
        "ext-latency",
        "ext-memblock",
        "ext-payg",
        "ext-pairing",
        "ext-service",
        "ext-softftc",
        "ext-writecost",
    ]
    return [e for e in order if e in REGISTRY] + sorted(set(REGISTRY) - set(order))


__all__ = [
    "ACCEPTED_OPTIONS",
    "REGISTRY",
    "ExecContext",
    "ExperimentResult",
    "all_experiment_ids",
    "clear_study_cache",
    "dispatch",
    "register",
    "run_experiment",
    "shared_page_studies",
]
