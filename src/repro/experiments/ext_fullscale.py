"""Extension: the paper's full 8 MB population, exactly (2048 pages).

The general Monte Carlo engine samples the page population (pages are
i.i.d.); this experiment instead runs the *entire* 2048-page chip through
the vectorised batch engine (static schemes: plain Aegis with B <= 63 and
ECP), reporting Figure 5's fault capacities and Figure 9's half lifetimes
with no population-sampling error at all.
"""

from __future__ import annotations

from repro.core.formations import formation
from repro.experiments.base import ExperimentResult, register
from repro.sim.batch import batch_aegis_study, batch_ecp_study, batch_safer_study
from repro.sim.context import ExecContext
from repro.sim.survival import survival_curve_from_lifetimes


@register("ext-fullscale")
def run(
    ctx: ExecContext,
    *,
    block_bits: int = 512,
    n_pages: int = 2048,
) -> ExperimentResult:
    """Batch-engine run of the full chip for the static schemes."""
    seed = ctx.seed
    results = []
    for pointers in (4, 6):
        results.append(batch_ecp_study(pointers, block_bits, n_pages=n_pages, seed=seed))
    for group_count in (32, 64, 128):
        results.append(
            batch_safer_study(
                group_count, block_bits, n_pages=n_pages, max_faults=44, seed=seed
            )
        )
    for a_size, b_size, max_faults in ((23, 23, 36), (17, 31, 40), (9, 61, 56)):
        results.append(
            batch_aegis_study(
                formation(a_size, b_size, block_bits),
                n_pages=n_pages,
                max_faults=max_faults,
                seed=seed,
            )
        )
    rows = []
    for result in results:
        curve = survival_curve_from_lifetimes(result.page_lifetimes)
        rows.append(
            (
                result.label,
                result.n_pages,
                round(result.faults_per_page.mean, 1),
                round(result.faults_per_page.half_width, 1),
                f"{curve.half_lifetime:.4g}",
            )
        )
    return ExperimentResult(
        experiment_id="ext-fullscale",
        title=(
            f"Extension: full-chip batch run ({n_pages} pages; static "
            f"schemes, no inversion-wear amplification)"
        ),
        headers=(
            "Scheme",
            "Pages",
            "Faults/page",
            "±95% CI",
            "Half lifetime (writes)",
        ),
        rows=tuple(rows),
        notes=(
            "the batch engine omits inversion-wear amplification, so Aegis "
            "capacities run ~5% above the general engine's; the population "
            "CI shrinks to a fraction of a percent at this scale",
        ),
    )
