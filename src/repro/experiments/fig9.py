"""Figure 9: 4 KB-page survival rate under continuous device writes.

Page lifetimes come from the shared page-level Monte Carlo; the conversion
to total-device-writes under perfect wear leveling is analytic
(:mod:`repro.sim.survival`).  Reported per scheme: the §3.2 *half lifetime*
(total page writes at which half the pages have failed) plus sampled curve
points.  Paper features to check: cliff-shaped curves, Aegis 17x31's half
lifetime above SAFER32's (by ~16%) and above SAFER32-cache's, and Aegis
9x61 approximately matching SAFER128-cache at 42% of its overhead bits.
"""

from __future__ import annotations

from repro.experiments.base import ExperimentResult, register, shared_page_studies
from repro.sim.context import ExecContext
from repro.sim.roster import figure9_roster
from repro.sim.survival import survival_curve_from_study


@register("fig9")
def run(
    ctx: ExecContext,
    *,
    block_bits: int = 512,
    n_pages: int = 128,
) -> ExperimentResult:
    """Regenerate the Figure 9 comparison (half lifetimes + curve samples)."""
    specs = figure9_roster(block_bits)
    studies = shared_page_studies(specs, n_pages=n_pages, ctx=ctx)
    curves = [survival_curve_from_study(study) for study in studies]
    rows = []
    for spec, curve in zip(specs, curves):
        quartiles = [
            curve.death_writes[max(0, (len(curve.death_writes) * q) // 100 - 1)]
            for q in (10, 50, 90)
        ]
        rows.append(
            (
                spec.label,
                spec.overhead_bits,
                f"{quartiles[0]:.3g}",
                f"{curve.half_lifetime:.3g}",
                f"{quartiles[2]:.3g}",
            )
        )
    return ExperimentResult(
        experiment_id="fig9",
        title=(
            f"Figure 9: device survival under continuous page writes "
            f"({n_pages}-page population, {block_bits}-bit blocks)"
        ),
        headers=(
            "Scheme",
            "Overhead bits",
            "10% dead (writes)",
            "Half lifetime (writes)",
            "90% dead (writes)",
        ),
        rows=tuple(rows),
        notes=(
            "write counts scale linearly with the simulated population; the "
            "paper's 8 MB chip is 2048 pages (pass n_pages=2048 for full scale)",
        ),
        chart={"type": "bar", "label": "Scheme", "value": "Half lifetime (writes)"},
    )
