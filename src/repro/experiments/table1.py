"""Table 1: per-block overhead bits vs hard FTC for every scheme.

Entirely closed-form (see :mod:`repro.core.formations`); the reproduction
matches the paper's published numbers exactly, including the SAFER group
counts and the Aegis ``A x B`` choices implied by each hard FTC.
"""

from __future__ import annotations

from repro.core.formations import (
    aegis_cost_for_ftc,
    aegis_rw_cost_for_ftc,
    aegis_rw_p_cost_for_ftc,
    ecp_cost_for_ftc,
    safer_cost_for_ftc,
    safer_group_count_for_ftc,
)
from repro.experiments.base import ExperimentResult, register
from repro.sim.context import ExecContext


@register("table1")
def run(ctx: ExecContext, *, max_ftc: int = 10, n_bits: int = 512) -> ExperimentResult:
    """Regenerate Table 1 for hard FTC 1..``max_ftc``."""
    ftcs = list(range(1, max_ftc + 1))
    rows = [
        ("ECP", *[ecp_cost_for_ftc(f, n_bits) for f in ftcs]),
        ("SAFER", *[safer_cost_for_ftc(f, n_bits) for f in ftcs]),
        ("N (for SAFER)", *[safer_group_count_for_ftc(f) for f in ftcs]),
        ("Aegis", *[aegis_cost_for_ftc(f, n_bits) for f in ftcs]),
        ("Aegis-rw", *[aegis_rw_cost_for_ftc(f, n_bits) for f in ftcs]),
        ("Aegis-rw-p", *[aegis_rw_p_cost_for_ftc(f, n_bits) for f in ftcs]),
    ]
    return ExperimentResult(
        experiment_id="table1",
        title=f"Table 1: overhead bits per {n_bits}-bit block vs hard FTC",
        headers=("Scheme", *[str(f) for f in ftcs]),
        rows=tuple(tuple(row) for row in rows),
        notes=(
            "closed-form; matches the paper exactly for 512-bit blocks",
        ),
    )
