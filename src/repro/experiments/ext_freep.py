"""Extension: FREE-p-style spare-block remapping above each scheme.

§4: "FREE-p is another scheme relying on OS to re-direct access of a faulty
block ... With Aegis's strong fault tolerance capability, the re-direction
as well as loss of faulty pages can be substantially delayed."  This
experiment sweeps the spare budget and compares how much lifetime each
in-chip scheme extracts per spare — the paper's claim shows up as Aegis
needing far fewer remaps for the same lifetime.
"""

from __future__ import annotations

from repro.experiments.base import ExperimentResult, register
from repro.remap.sim import remap_page_study
from repro.sim.context import ExecContext
from repro.sim.roster import aegis_spec, ecp_spec


@register("ext-freep")
def run(
    ctx: ExecContext,
    *,
    block_bits: int = 512,
    n_pages: int = 32,
    spare_counts: tuple[int, ...] = (0, 1, 2, 4, 8),
) -> ExperimentResult:
    """Page lifetime vs spare budget for ECP6 and Aegis 17x31."""
    rows = []
    for spec in (ecp_spec(6, block_bits), aegis_spec(17, 31, block_bits)):
        for spares in spare_counts:
            result = remap_page_study(
                spec, spares=spares, blocks_per_page=16, n_pages=n_pages, ctx=ctx
            )
            rows.append(
                (
                    spec.label,
                    spares,
                    f"{result.lifetime.mean:.4g}",
                    round(result.faults.mean, 1),
                    round(result.remaps.mean, 2),
                )
            )
    return ExperimentResult(
        experiment_id="ext-freep",
        title=(
            f"Extension: FREE-p spare-block remapping "
            f"(16-block pages, {n_pages} pages)"
        ),
        headers=(
            "Scheme",
            "Spares",
            "Page lifetime (writes)",
            "Faults recovered",
            "Remaps used",
        ),
        rows=tuple(rows),
        notes=(
            "expect: lifetime grows with spares for both schemes, and Aegis "
            "reaches any given lifetime with far fewer spares (the paper's "
            "'substantially delayed' re-direction)",
        ),
    )
