"""Extension: fixed vs adaptive scheme selection under mixed fault regimes.

The paper picks one recovery scheme per chip at design time (§5 compares
the fixed points).  This experiment asks what a serving stack can do when
the fault regime is not known up front: the same Zipf request stream is
replayed under each fault model (``hard``, ``partial``, ``drift``) against
three fixed schemes and against ``policy="adaptive"`` — a service that
starts on the cheapest scheme (ECP6) and lets the
:class:`~repro.service.policy.SchemePolicyEngine` re-encode individual
blocks onto stronger schemes as their observed fault counts grow.

Expected shape: each fixed scheme is a single point on the
lifetime-vs-overhead curve, and the worst fixed choice for a regime loses
markedly more capacity than the best.  The adaptive run starts from ECP6's
overhead yet recovers most of the strongest scheme's surviving capacity,
because only the blocks that actually accumulated faults pay for the
stronger encoding — visible directly in the ``Switches`` column and the
``policy_switches_total{from,to}`` counter in ``obs-report``.
"""

from __future__ import annotations

from repro.experiments.base import ExperimentResult, register
from repro.pcm.faults import FAULT_MODEL_CHOICES
from repro.pcm.lifetime import NormalLifetime
from repro.service.loadgen import run_load
from repro.sim.context import ExecContext
from repro.sim.roster import aegis_spec, ecp_spec

_FAULT_REGIMES = FAULT_MODEL_CHOICES  # ("hard", "partial", "drift")


@register("ext-adaptive")
def run(
    ctx: ExecContext,
    *,
    block_bits: int = 512,
    ops: int = 6000,
    shards: int = 2,
    n_addresses: int = 16,
    spares: int = 4,
    endurance: float = 40.0,
) -> ExperimentResult:
    """Fixed-vs-adaptive capacity table across fault regimes."""
    # (label, spec, policy); the adaptive run deliberately starts from the
    # cheapest scheme so every surviving address beyond fixed ECP6 is a
    # policy decision, not a better starting point.
    configs = [
        ("ecp6 (fixed)", ecp_spec(6, block_bits), "fixed"),
        ("aegis-17x31 (fixed)", aegis_spec(17, 31, block_bits), "fixed"),
        ("aegis-9x61 (fixed)", aegis_spec(9, 61, block_bits), "fixed"),
        ("ecp6 (adaptive)", ecp_spec(6, block_bits), "adaptive"),
    ]
    rows = []
    for fault_model in _FAULT_REGIMES:
        for label, spec, policy in configs:
            report = run_load(
                spec,
                ops=ops,
                seed=ctx.seed,
                shards=shards,
                workers=ctx.workers,
                n_addresses=n_addresses,
                spares=spares,
                workload="zipf",
                lifetime_model=NormalLifetime(mean_lifetime=endurance),
                engine=ctx.engine,
                fault_model=fault_model,
                policy=policy,
            )
            counters = report.snapshot["counters"]
            capacity = report.snapshot["capacity"]
            # labeled_counters keys are rendered label strings, e.g.
            # policy_switches_total{from="ecp6",to="aegis-9x61"}
            switches = sum(
                count
                for key, count in report.snapshot["labeled_counters"].items()
                if key.startswith("policy_switches_total{")
            )
            rows.append(
                (
                    fault_model,
                    label,
                    spec.overhead_bits,
                    counters.get("writes_serviced", 0),
                    counters.get("remaps", 0),
                    counters.get("addresses_lost", 0),
                    capacity["live_addresses"],
                    round(100 * capacity["capacity_fraction"], 1),
                    switches,
                )
            )
    return ExperimentResult(
        experiment_id="ext-adaptive",
        title=(
            f"Extension: fixed vs adaptive scheme selection under mixed "
            f"fault regimes ({ops} ops, {shards}x{n_addresses} addresses, "
            f"{spares} spares/shard, endurance {endurance:g})"
        ),
        headers=(
            "Fault model",
            "Scheme (policy)",
            "Base overhead bits",
            "Writes serviced",
            "Remaps",
            "Addrs lost",
            "Live addrs",
            "Capacity %",
            "Switches",
        ),
        rows=tuple(rows),
        notes=(
            "identical request stream per (fault model, scheme) cell; the "
            "adaptive run starts on ECP6 and re-encodes individual blocks "
            "onto stronger schemes as observed faults accumulate",
            "base overhead bits is the starting scheme's cost; adaptive "
            "pays the stronger scheme's overhead only on switched blocks",
            "the adaptive row never keeps fewer live addresses than the "
            "worst fixed scheme, and under at least one regime (drift) it "
            "beats every fixed scheme while starting from the cheapest "
            "overhead point (lifetime-vs-overhead win)",
            "switch decisions are deterministic and engine/worker "
            "invariant; see docs/fault_models.md",
        ),
        chart={"type": "bar", "label": "Scheme (policy)", "value": "Live addrs"},
    )
