"""Extension: streaming fleet campaign with shard-side reduction.

ROADMAP open item 3 asks what the paper's §6 comparison looks like at
fleet scale — populations of pages aging over years of traffic, not a
few hundred Monte Carlo trials.  This experiment runs a (reduced-budget)
campaign through :mod:`repro.fleet`: every page streams through a warm
persistent worker pool, workers fold their chunks into compact moment/
histogram shards, and only O(aggregate) bytes ever cross the process
boundary.  The table is the capacity-retention view per scheme — the
fraction of pages still alive at the campaign's retention age — plus the
IPC-reduction accounting that makes the scale reachable.

Expected shape: retention orders the schemes exactly as the lifetime
figures do (Aegis ≥ SAFER/ECP ≥ Hamming), the campaign digest is
bit-identical for every worker count and engine, and the shard/result
byte ratio grows with the chunk size (constant-size shards versus
per-page result lists).
"""

from __future__ import annotations

from repro.experiments.base import ExperimentResult, register
from repro.fleet import CampaignSpec, run_campaign
from repro.sim.context import ExecContext


@register("ext-fleet")
def run(
    ctx: ExecContext,
    *,
    n_pages: int = 128,
    blocks_per_page: int = 4,
    block_bits: int = 512,
    chunk_pages: int = 16,
) -> ExperimentResult:
    """Capacity-retention table from one streaming fleet campaign."""
    spec = CampaignSpec(
        schemes=("aegis-9x61", "ecp6", "safer64", "hamming"),
        pages_per_scheme=n_pages,
        blocks_per_page=blocks_per_page,
        block_bits=block_bits,
        chunk_pages=chunk_pages,
    )
    report = run_campaign(spec, ctx)
    rows = []
    for row in report.rows():
        curve = row["retention_curve"]
        # survival at 0.5x and 1x the characteristic lifetime scale
        # (edges 1 and 3 of the default 12-step ladder), which straddle
        # the typical page lifetime so the columns discriminate schemes
        at_half = curve[1][1] if len(curve) > 3 else curve[-1][1]
        at_scale = curve[3][1] if len(curve) > 3 else curve[-1][1]
        reduction = (
            row["result_bytes"] / row["shard_bytes"] if row["shard_bytes"] else 0.0
        )
        rows.append(
            (
                row["scheme"],
                row["pages"],
                f"{row['lifetime_mean']:.3g}",
                round(row["improvement_mean"], 2),
                round(100 * row["retention"], 1),
                round(100 * at_half, 1),
                round(100 * at_scale, 1),
                round(row["faults_recovered_mean"], 1),
                f"{reduction:.1f}x",
            )
        )
    return ExperimentResult(
        experiment_id="ext-fleet",
        title=(
            f"Extension: streaming fleet campaign "
            f"({n_pages} pages/scheme, {blocks_per_page} blocks/page, "
            f"chunks of {chunk_pages}, digest {report.digest[:12]})"
        ),
        headers=(
            "Scheme",
            "Pages",
            "Lifetime (writes)",
            "Improvement x",
            "Retention %",
            "Alive @0.5x %",
            "Alive @1x %",
            "Faults recovered",
            "IPC reduction",
        ),
        rows=tuple(rows),
        notes=(
            "retention: pages alive past the campaign retention age "
            "(0.25x the characteristic lifetime scale)",
            "campaign digest is bit-identical for every --workers/--engine "
            "value and across checkpoint/resume (see `repro fleet-bench --check`)",
            "IPC reduction: pickled full-result bytes over shard-state bytes "
            "per scheme — the shard is constant-size, so the ratio scales "
            "with the chunk size",
        ),
        chart={"type": "bar", "label": "Scheme", "value": "Retention %"},
    )
