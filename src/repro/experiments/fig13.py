"""Figure 13: per-overhead-bit lifetime contribution, Aegis vs variants.

Derived from the Figure 12 studies.  Expected shape: the variants use
their overhead bits more efficiently than plain Aegis, with Aegis-rw-p's
per-bit contribution the highest (its metadata is the smallest).
"""

from __future__ import annotations

from repro.experiments.base import ExperimentResult, register, shared_page_studies
from repro.sim.context import ExecContext
from repro.sim.roster import variants_roster


@register("fig13")
def run(
    ctx: ExecContext,
    *,
    block_bits: int = 512,
    n_pages: int = 64,
) -> ExperimentResult:
    """Regenerate the Figure 13 bars."""
    specs = variants_roster(block_bits)
    studies = shared_page_studies(specs, n_pages=n_pages, ctx=ctx)
    rows = []
    for spec, study in zip(specs, studies):
        rows.append(
            (
                spec.label,
                spec.overhead_bits,
                round(study.improvement, 1),
                round(study.improvement_per_bit, 3),
            )
        )
    return ExperimentResult(
        experiment_id="fig13",
        title=(
            f"Figure 13: per-overhead-bit lifetime contribution, Aegis vs "
            f"variants ({block_bits}-bit blocks, {n_pages} pages)"
        ),
        headers=("Scheme", "Overhead bits", "Improvement (x)", "Per-bit contribution"),
        rows=tuple(rows),
        notes=("expect Aegis-rw-p highest per-bit contribution per formation",),
        chart={"type": "bar", "label": "Scheme", "value": "Per-bit contribution"},
    )
