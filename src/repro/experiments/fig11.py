"""Figures 11: recoverable faults per page for Aegis vs its variants.

For each formation (23x23, 17x31, 9x61, 8x71) the paper compares plain
Aegis, Aegis-rw, and the representative Aegis-rw-p configuration.  Expected
shape: Aegis-rw beats Aegis by 52%/41%/33%/28% respectively; Aegis-rw-p
falls back near (or below) plain Aegis once its pointer budget is tighter
than Aegis-rw's inversion vector.
"""

from __future__ import annotations

from repro.experiments.base import ExperimentResult, register, shared_page_studies
from repro.sim.context import ExecContext
from repro.sim.roster import variants_roster


@register("fig11")
def run(
    ctx: ExecContext,
    *,
    block_bits: int = 512,
    n_pages: int = 64,
) -> ExperimentResult:
    """Regenerate the Figure 11 bars."""
    specs = variants_roster(block_bits)
    studies = shared_page_studies(specs, n_pages=n_pages, ctx=ctx)
    rows = []
    for spec, study in zip(specs, studies):
        rows.append(
            (
                spec.label,
                spec.overhead_bits,
                round(study.faults.mean, 1),
                round(study.faults.half_width, 1),
            )
        )
    return ExperimentResult(
        experiment_id="fig11",
        title=(
            f"Figure 11: recoverable faults per page, Aegis vs variants "
            f"({block_bits}-bit blocks, {n_pages} pages)"
        ),
        headers=("Scheme", "Overhead bits", "Faults/page", "±95% CI"),
        rows=tuple(rows),
        notes=(
            "paper: Aegis-rw gains +52%/+41%/+33%/+28% over Aegis for "
            "23x23/17x31/9x61/8x71",
        ),
        chart={"type": "bar", "label": "Scheme", "value": "Faults/page"},
    )
