"""Extension: the memory-array service under live traffic.

The paper frames the device level as a live write path with service cost
(§2.4/§3.2) and spare-backed recovery (§4, FREE-p/PAYG); this experiment
runs that path end to end.  Each scheme serves an identical sharded,
Zipf-skewed request stream through the full pipeline — coalescing write
buffer, fail cache, differential writes, verification reads, repartition
escalation, spare remapping — over blocks with deliberately small
endurance so wear-out happens within the run.  The table is the
throughput/degradation view: per-op service cost, remaps consumed,
addresses lost, and the capacity that survives.

Expected shape: every scheme services the same request stream with zero
integrity failures; stronger in-chip recovery (Aegis) retires blocks later
and therefore burns fewer spares and keeps more capacity than ECP at a
comparable overhead — the serving-path restatement of Figures 8/9 and the
``ext-freep`` claim.
"""

from __future__ import annotations

from repro.experiments.base import ExperimentResult, register
from repro.obs.slo import SLOEngine, default_service_slos
from repro.pcm.lifetime import NormalLifetime
from repro.service.loadgen import run_load
from repro.sim.context import ExecContext
from repro.sim.roster import aegis_rw_spec, aegis_spec, ecp_spec, safer_spec


@register("ext-service")
def run(
    ctx: ExecContext,
    *,
    block_bits: int = 512,
    ops: int = 8000,
    shards: int = 2,
    n_addresses: int = 24,
    spares: int = 8,
    endurance: float = 60.0,
) -> ExperimentResult:
    """Throughput/degradation table for the serving path, per scheme."""
    specs = [
        ecp_spec(6, block_bits),
        safer_spec(64, block_bits),
        aegis_spec(17, 31, block_bits),
        aegis_spec(9, 61, block_bits),
        aegis_rw_spec(9, 61, block_bits),
    ]
    rows = []
    for spec in specs:
        report = run_load(
            spec,
            ops=ops,
            seed=ctx.seed,
            shards=shards,
            workers=ctx.workers,
            n_addresses=n_addresses,
            spares=spares,
            workload="zipf",
            lifetime_model=NormalLifetime(mean_lifetime=endurance),
            engine=ctx.engine,
            series_bucket=16,
        )
        counters = report.snapshot["counters"]
        capacity = report.snapshot["capacity"]
        # the labeled registry attributes write outcomes per scheme — the
        # share of writes that had to be replayed onto a spare
        metrics = report.telemetry.metrics
        remapped = metrics.counter_total("writes_total", outcome="remapped")
        serviced = counters.get("writes_serviced", 0)
        # evaluate the default service SLOs over the merged time series:
        # the write-loss budget consumption is the SRE view of "addrs lost"
        # (1.0 = the whole error budget spent; wear-out runs overshoot it)
        slos = SLOEngine(
            report.telemetry.timeseries, default_service_slos()
        ).evaluate()["slos"]
        budget_consumed = round(slos["write_loss"]["budget_consumed"], 1)
        rows.append(
            (
                spec.label,
                spec.overhead_bits,
                serviced,
                round(report.snapshot["service_cost"]["mean"], 1),
                round(report.snapshot["latency"]["mean"], 2),
                counters.get("remaps", 0),
                round(100 * remapped / serviced, 2) if serviced else 0.0,
                counters.get("addresses_lost", 0),
                round(100 * capacity["capacity_fraction"], 1),
                budget_consumed,
                counters.get("integrity_failures", 0),
            )
        )
    return ExperimentResult(
        experiment_id="ext-service",
        title=(
            f"Extension: memory-array service under Zipf traffic "
            f"({ops} ops, {shards}x{n_addresses} addresses, "
            f"{spares} spares/shard, endurance {endurance:g})"
        ),
        headers=(
            "Scheme",
            "Overhead bits",
            "Writes serviced",
            "Cost/write (cells)",
            "Latency (passes)",
            "Remaps",
            "Remapped writes %",
            "Addrs lost",
            "Capacity %",
            "Loss budget burn",
            "Integrity failures",
        ),
        rows=tuple(rows),
        notes=(
            "identical request stream per scheme; integrity failures must be 0",
            "loss budget burn: multiples of the write_loss SLO's error "
            "budget consumed (objective <0.1% lost writes; 1.0 = budget "
            "exactly spent) over 16-op time-series buckets",
            "stronger in-chip recovery delays retirement, so it spends fewer "
            "spares and keeps more capacity (the serving-path view of Fig 9 "
            "and ext-freep)",
        ),
        chart={"type": "bar", "label": "Scheme", "value": "Capacity %"},
    )
