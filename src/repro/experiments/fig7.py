"""Figure 7: each overhead bit's contribution to page lifetime improvement.

Derived from the Figure 6 studies: ``(improvement - 1) / overhead_bits``.
The paper's observations to check: ECP declines most slowly with growing
overhead, SAFER and Aegis decline substantially, and the worst Aegis
formation still beats every non-Aegis scheme's per-bit contribution.
"""

from __future__ import annotations

from repro.experiments.base import ExperimentResult, register, shared_page_studies
from repro.sim.context import ExecContext
from repro.sim.roster import figure5_roster


@register("fig7")
def run(
    ctx: ExecContext,
    *,
    block_bits: int = 512,
    n_pages: int = 128,
) -> ExperimentResult:
    """Regenerate the Figure 7 bars for one block size."""
    specs = figure5_roster(block_bits)
    studies = shared_page_studies(specs, n_pages=n_pages, ctx=ctx)
    rows = []
    for spec, study in zip(specs, studies):
        rows.append(
            (
                spec.label,
                spec.overhead_bits,
                round(study.improvement, 1),
                round(study.improvement_per_bit, 3),
            )
        )
    return ExperimentResult(
        experiment_id="fig7",
        title=(
            f"Figure 7: per-overhead-bit lifetime contribution "
            f"({block_bits}-bit blocks, {n_pages} pages)"
        ),
        headers=("Scheme", "Overhead bits", "Improvement (x)", "Per-bit contribution"),
        rows=tuple(rows),
        notes=(
            "expect: lowest Aegis per-bit value still above all non-Aegis schemes",
        ),
        chart={"type": "bar", "label": "Scheme", "value": "Per-bit contribution"},
    )
