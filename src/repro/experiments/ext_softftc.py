"""Extension: analytic soft-FTC models vs the Monte Carlo.

§3.1 notes the paper "only present[s] results for 4KB pages" of the two
memory-block sizes; this experiment instead cross-checks the *block-level*
failure law itself: the occupancy-model prediction of Aegis's failure
probability (every slope poisoned) against the measured Figure 8 curve,
plus the birthday estimate of SAFER's post-saturation capacity.
"""

from __future__ import annotations

from repro.analysis.softftc import (
    aegis_expected_soft_ftc,
    aegis_failure_probability,
    safer_birthday_soft_ftc,
)
from repro.experiments.base import ExperimentResult, register
from repro.sim.block_sim import failure_curve
from repro.sim.context import ExecContext
from repro.sim.roster import aegis_spec


@register("ext-softftc")
def run(
    ctx: ExecContext,
    *,
    block_bits: int = 512,
    trials: int = 1000,
) -> ExperimentResult:
    """Analytic vs measured block failure probability for Aegis 9x61 and
    17x31."""
    rows = []
    for a_size, b_size in ((17, 31), (9, 61)):
        spec = aegis_spec(a_size, b_size, block_bits)
        curve = failure_curve(
            spec, trials=trials, max_faults=40, seed=ctx.seed,
            engine=ctx.engine, fault_model=ctx.fault_model,
        )
        for f in (10, 14, 18, 22, 26, 30, 34):
            rows.append(
                (
                    spec.label,
                    f,
                    round(curve.probability_at(f), 3),
                    round(aegis_failure_probability(f, b_size, a_size), 3),
                )
            )
        rows.append(
            (
                spec.label,
                "E[soft FTC]",
                "-",
                round(aegis_expected_soft_ftc(b_size, a_size), 1),
            )
        )
    return ExperimentResult(
        experiment_id="ext-softftc",
        title="Extension: analytic occupancy model vs Monte Carlo (block failure)",
        headers=("Scheme", "Faults", "Monte Carlo P(fail)", "Analytic P(fail)"),
        rows=tuple(rows),
        notes=(
            "analytic model: inter-column pairs poison i.i.d. uniform slopes; "
            f"SAFER64 birthday estimate: {safer_birthday_soft_ftc(64):.0f} faults "
            "once its vector saturates",
        ),
    )
