"""Experiment infrastructure: results, registry, and shared page studies.

Every paper table/figure has a driver module exposing
``run(ctx, **options) -> ExperimentResult``: the first parameter is the
:class:`~repro.sim.context.ExecContext` carrying *how* the study executes
(seed, workers, engine, observability), the keyword parameters are the
driver's own scale knobs (``n_pages``, ``trials``, …).  Results carry the
rendered table plus machine-readable rows so benchmarks and tests can
assert on them.

Registration is strict: :func:`register` rejects drivers that declare a
``**kwargs`` catch-all (which used to swallow mistyped options like
``worker=4`` silently) or that re-declare execution fields owned by the
context, and :func:`dispatch` raises on any option the driver does not
accept — except the :data:`COMMON_OPTIONS` scale knobs the CLI passes to
every experiment, which are filtered to each driver's signature.

``shared_page_studies`` memoises the expensive page-level Monte Carlo runs
within a process: Figures 5, 6 and 7 (and 11, 12, 13) are different views
of the *same* simulations, exactly as in the paper.
"""

from __future__ import annotations

import inspect
from collections.abc import Callable, Sequence
from dataclasses import dataclass, field

from repro.errors import ConfigurationError
from repro.sim.context import ExecContext
from repro.sim.page_sim import PageStudy, run_page_study
from repro.sim.roster import SchemeSpec
from repro.util.tables import render_table


@dataclass(frozen=True)
class ExperimentResult:
    """One regenerated table or figure.

    ``chart`` optionally declares how to draw the artefact as a text chart:
    ``{"type": "bar", "label": <header>, "value": <header>}`` or
    ``{"type": "line", "x": <header>, "series": [<header>, ...]}``.
    """

    experiment_id: str
    title: str
    headers: tuple[str, ...]
    rows: tuple[tuple[object, ...], ...]
    notes: tuple[str, ...] = ()
    chart: dict | None = None

    def render(self) -> str:
        parts = [render_table(self.headers, self.rows, title=f"## {self.title}")]
        for note in self.notes:
            parts.append(f"note: {note}")
        return "\n".join(parts)

    def render_chart(self) -> str | None:
        """Draw the declared chart, or ``None`` when the experiment is
        purely tabular."""
        from repro.util.charts import bar_chart, line_chart

        if self.chart is None:
            return None
        if self.chart["type"] == "bar":
            labels = [str(v) for v in self.column(self.chart["label"])]
            values = [float(v) for v in self.column(self.chart["value"])]
            return bar_chart(labels, values, title=f"## {self.title} [chart]")
        if self.chart["type"] == "line":
            xs = [float(v) for v in self.column(self.chart["x"])]
            series = {
                name: [float(v) for v in self.column(name)]
                for name in self.chart["series"]
            }
            return line_chart(
                xs, series, title=f"## {self.title} [chart]",
                x_label=self.chart["x"],
            )
        raise ValueError(f"unknown chart type {self.chart['type']!r}")

    def column(self, header: str) -> list[object]:
        """All values of one column, by header name."""
        index = self.headers.index(header)
        return [row[index] for row in self.rows]

    def to_dict(self) -> dict:
        """JSON-serialisable form (used by the CLI's ``--json``)."""
        return {
            "experiment_id": self.experiment_id,
            "title": self.title,
            "headers": list(self.headers),
            "rows": [list(row) for row in self.rows],
            "notes": list(self.notes),
            "chart": self.chart,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "ExperimentResult":
        """Inverse of :meth:`to_dict` (row cells come back as JSON types)."""
        return cls(
            experiment_id=payload["experiment_id"],
            title=payload["title"],
            headers=tuple(payload["headers"]),
            rows=tuple(tuple(row) for row in payload["rows"]),
            notes=tuple(payload.get("notes", ())),
            chart=payload.get("chart"),
        )


#: experiment id -> runner; populated by repro.experiments.__init__
REGISTRY: dict[str, Callable[..., ExperimentResult]] = {}

#: scale options the CLI hands to *every* experiment; filtered to each
#: driver's signature rather than raising, so ``repro run all --trials N``
#: works even though closed-form experiments take no trial count
COMMON_OPTIONS: frozenset[str] = frozenset({"n_pages", "trials", "block_bits"})

#: execution fields owned by ExecContext; accepted as legacy kwargs by
#: :func:`dispatch` (folded into the context) but forbidden as driver
#: parameters — drivers read them from ``ctx``
EXEC_OPTIONS: frozenset[str] = frozenset({"seed", "workers", "engine", "fault_model"})

#: experiment id -> keyword names its driver accepts (beyond ``ctx``)
ACCEPTED_OPTIONS: dict[str, frozenset[str]] = {}


def register(experiment_id: str) -> Callable:
    """Decorator adding a runner to the registry under ``experiment_id``.

    Validates the driver signature at import time: the first parameter
    must be the ``ctx`` execution context, every option must be declared
    explicitly (no ``**kwargs`` catch-all — that is how a typo like
    ``worker=4`` used to run serially without complaint), and none may
    shadow an ExecContext field.
    """

    def decorate(runner: Callable[..., ExperimentResult]) -> Callable[..., ExperimentResult]:
        parameters = list(inspect.signature(runner).parameters.values())
        if not parameters or parameters[0].name != "ctx":
            raise ConfigurationError(
                f"driver for {experiment_id!r} must take the ExecContext "
                f"as its first parameter 'ctx'"
            )
        for parameter in parameters:
            if parameter.kind is inspect.Parameter.VAR_KEYWORD:
                raise ConfigurationError(
                    f"driver for {experiment_id!r} declares a '**{parameter.name}' "
                    f"catch-all, which would swallow mistyped options; "
                    f"declare every option explicitly"
                )
            if parameter.name in EXEC_OPTIONS:
                raise ConfigurationError(
                    f"driver for {experiment_id!r} re-declares "
                    f"{parameter.name!r}, which is owned by ExecContext; "
                    f"read it from ctx instead"
                )
        REGISTRY[experiment_id] = runner
        ACCEPTED_OPTIONS[experiment_id] = frozenset(
            parameter.name for parameter in parameters[1:]
        )
        return runner

    return decorate


def dispatch(
    experiment_id: str, ctx: ExecContext | None = None, **options: object
) -> ExperimentResult:
    """Validate ``options`` and invoke a registered driver with ``ctx``.

    Legacy ``seed=``/``workers=``/``engine=`` kwargs are folded into the
    context (explicit ``ctx`` fields they collide with are overridden),
    :data:`COMMON_OPTIONS` are filtered to the driver's signature, and
    anything else the driver does not accept raises — the typo
    ``worker=4`` fails loudly instead of running serially.
    """
    runner = REGISTRY[experiment_id]
    accepted = ACCEPTED_OPTIONS[experiment_id]
    ctx = ctx if ctx is not None else ExecContext()
    exec_overrides = {
        name: options.pop(name) for name in tuple(options) if name in EXEC_OPTIONS
    }
    if exec_overrides:
        ctx = ctx.with_options(**exec_overrides)
    unknown = sorted(set(options) - accepted - COMMON_OPTIONS)
    if unknown:
        raise ConfigurationError(
            f"unknown option(s) for {experiment_id!r}: {', '.join(unknown)}; "
            f"accepted: {', '.join(sorted(accepted | COMMON_OPTIONS | EXEC_OPTIONS))}"
        )
    filtered = {name: value for name, value in options.items() if name in accepted}
    return runner(ctx, **filtered)


@dataclass
class _StudyCache:
    studies: dict[tuple, PageStudy] = field(default_factory=dict)


_CACHE = _StudyCache()


def shared_page_studies(
    specs: Sequence[SchemeSpec],
    *,
    n_pages: int,
    seed: int | None = None,
    workers: int | None = None,
    engine: str | None = None,
    ctx: ExecContext | None = None,
) -> list[PageStudy]:
    """Page studies for a roster, memoised per (spec, n_pages, ExecContext).

    ``ctx`` carries the execution plane; the legacy ``seed``/``workers``/
    ``engine`` kwargs override the corresponding context fields when
    given.  The memo key includes the *full* context (not just the seed):
    workers and engine never change the simulated numbers, but keying on
    them guarantees mixed-engine or mixed-worker invocations within one
    process can never alias a study computed under different execution
    settings."""
    if ctx is None:
        ctx = ExecContext()
    overrides = {
        name: value
        for name, value in (("seed", seed), ("workers", workers), ("engine", engine))
        if value is not None
    }
    if overrides:
        ctx = ctx.with_options(**overrides)
    out = []
    for spec in specs:
        key = (spec.key, spec.n_bits, n_pages, ctx.cache_key)
        if key not in _CACHE.studies:
            _CACHE.studies[key] = run_page_study(spec, n_pages=n_pages, ctx=ctx)
        out.append(_CACHE.studies[key])
    return out


def clear_study_cache() -> None:
    """Drop memoised page studies (used by tests)."""
    _CACHE.studies.clear()
