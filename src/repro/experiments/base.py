"""Experiment infrastructure: results, registry, and shared page studies.

Every paper table/figure has a driver module exposing
``run(**options) -> ExperimentResult``.  Results carry the rendered table
plus machine-readable rows so benchmarks and tests can assert on them.

``shared_page_studies`` memoises the expensive page-level Monte Carlo runs
within a process: Figures 5, 6 and 7 (and 11, 12, 13) are different views
of the *same* simulations, exactly as in the paper.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from dataclasses import dataclass, field

from repro.sim.page_sim import PageStudy, run_page_study
from repro.sim.roster import SchemeSpec
from repro.util.tables import render_table


@dataclass(frozen=True)
class ExperimentResult:
    """One regenerated table or figure.

    ``chart`` optionally declares how to draw the artefact as a text chart:
    ``{"type": "bar", "label": <header>, "value": <header>}`` or
    ``{"type": "line", "x": <header>, "series": [<header>, ...]}``.
    """

    experiment_id: str
    title: str
    headers: tuple[str, ...]
    rows: tuple[tuple[object, ...], ...]
    notes: tuple[str, ...] = ()
    chart: dict | None = None

    def render(self) -> str:
        parts = [render_table(self.headers, self.rows, title=f"## {self.title}")]
        for note in self.notes:
            parts.append(f"note: {note}")
        return "\n".join(parts)

    def render_chart(self) -> str | None:
        """Draw the declared chart, or ``None`` when the experiment is
        purely tabular."""
        from repro.util.charts import bar_chart, line_chart

        if self.chart is None:
            return None
        if self.chart["type"] == "bar":
            labels = [str(v) for v in self.column(self.chart["label"])]
            values = [float(v) for v in self.column(self.chart["value"])]
            return bar_chart(labels, values, title=f"## {self.title} [chart]")
        if self.chart["type"] == "line":
            xs = [float(v) for v in self.column(self.chart["x"])]
            series = {
                name: [float(v) for v in self.column(name)]
                for name in self.chart["series"]
            }
            return line_chart(
                xs, series, title=f"## {self.title} [chart]",
                x_label=self.chart["x"],
            )
        raise ValueError(f"unknown chart type {self.chart['type']!r}")

    def column(self, header: str) -> list[object]:
        """All values of one column, by header name."""
        index = self.headers.index(header)
        return [row[index] for row in self.rows]

    def to_dict(self) -> dict:
        """JSON-serialisable form (used by the CLI's ``--json``)."""
        return {
            "experiment_id": self.experiment_id,
            "title": self.title,
            "headers": list(self.headers),
            "rows": [list(row) for row in self.rows],
            "notes": list(self.notes),
            "chart": self.chart,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "ExperimentResult":
        """Inverse of :meth:`to_dict` (row cells come back as JSON types)."""
        return cls(
            experiment_id=payload["experiment_id"],
            title=payload["title"],
            headers=tuple(payload["headers"]),
            rows=tuple(tuple(row) for row in payload["rows"]),
            notes=tuple(payload.get("notes", ())),
            chart=payload.get("chart"),
        )


#: experiment id -> runner; populated by repro.experiments.__init__
REGISTRY: dict[str, Callable[..., ExperimentResult]] = {}


def register(experiment_id: str) -> Callable:
    """Decorator adding a runner to the registry under ``experiment_id``."""

    def decorate(runner: Callable[..., ExperimentResult]) -> Callable[..., ExperimentResult]:
        REGISTRY[experiment_id] = runner
        return runner

    return decorate


@dataclass
class _StudyCache:
    studies: dict[tuple, PageStudy] = field(default_factory=dict)


_CACHE = _StudyCache()


def shared_page_studies(
    specs: Sequence[SchemeSpec],
    *,
    n_pages: int,
    seed: int,
    workers: int | None = 1,
    engine: str = "auto",
) -> list[PageStudy]:
    """Page studies for a roster, memoised per (spec, n_pages, seed).

    ``workers`` fans each study's pages over a process pool
    (:mod:`repro.sim.parallel`) and ``engine`` selects the scalar or
    batch-kernel execution path (:mod:`repro.sim.kernels`); both are
    deliberately absent from the cache key because neither changes the
    simulated numbers."""
    out = []
    for spec in specs:
        key = (spec.key, spec.n_bits, n_pages, seed)
        if key not in _CACHE.studies:
            _CACHE.studies[key] = run_page_study(
                spec, n_pages=n_pages, seed=seed, workers=workers, engine=engine
            )
        out.append(_CACHE.studies[key])
    return out


def clear_study_cache() -> None:
    """Drop memoised page studies (used by tests)."""
    _CACHE.studies.clear()
