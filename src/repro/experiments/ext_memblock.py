"""Extension: 256-byte memory blocks (the paper's unreported second size).

§3.1: "A memory block can be of the size of the last-level cache line
(e.g., 256 Bytes) or be an operating system page (e.g., 4K Bytes).  In the
paper we only present results for 4KB pages, and the results for the other
memory block size (256B) show a similar trend."  This experiment runs that
unreported configuration — 4 x 512-bit data blocks per memory block — and
checks the trend really is similar (same scheme ordering, smaller
fault-count magnitudes since a smaller unit dies on its first weak block).
"""

from __future__ import annotations

from repro.experiments.base import ExperimentResult, register
from repro.sim.context import ExecContext
from repro.sim.page_sim import run_page_study
from repro.sim.roster import aegis_spec, ecp_spec, safer_spec

#: bits in a 256-byte memory block
MEMBLOCK_BITS = 256 * 8


@register("ext-memblock")
def run(
    ctx: ExecContext,
    *,
    block_bits: int = 512,
    n_pages: int = 128,
) -> ExperimentResult:
    """Figure 5's comparison re-run at 256 B memory-block granularity."""
    specs = [
        ecp_spec(6, block_bits),
        safer_spec(32, block_bits),
        safer_spec(64, block_bits),
        aegis_spec(17, 31, block_bits),
        aegis_spec(9, 61, block_bits),
    ]
    blocks_per_unit = MEMBLOCK_BITS // block_bits
    rows = []
    for spec in specs:
        study = run_page_study(
            spec,
            n_pages=n_pages,
            blocks_per_page=blocks_per_unit,
            ctx=ctx,
        )
        rows.append(
            (
                spec.label,
                spec.overhead_bits,
                round(study.faults.mean, 1),
                round(study.faults.half_width, 1),
                round(study.improvement, 1),
            )
        )
    return ExperimentResult(
        experiment_id="ext-memblock",
        title=(
            f"Extension: 256 B memory blocks ({blocks_per_unit} x "
            f"{block_bits}-bit data blocks, {n_pages} units)"
        ),
        headers=(
            "Scheme",
            "Overhead bits",
            "Faults/256B block",
            "±95% CI",
            "Lifetime improvement (x)",
        ),
        rows=tuple(rows),
        notes=("expect the same ordering as Figure 5, at ~1/64th the magnitudes",),
    )
