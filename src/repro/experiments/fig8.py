"""Figure 8: 512-bit block failure probability vs fault count.

One Monte Carlo failure curve per scheme: faults arrive at uniformly random
positions with random stuck-at values; the curve is the fraction of blocks
dead once ``f`` faults are present.  The paper's features to check:

* probability is exactly 0 below each scheme's hard FTC;
* ECP6 rises almost vertically after 6 faults;
* Aegis 9x61 (67 bits) stays below SAFER64 (91 bits) and SAFER128
  (159 bits) without a cache, and below SAFER64-cache through the
  mid-range;
* SAFER128-cache and RDIS-3 win beyond ~22 faults.
"""

from __future__ import annotations

from repro.experiments.base import ExperimentResult, register
from repro.sim.block_sim import failure_curve
from repro.sim.context import ExecContext
from repro.sim.roster import figure8_roster


@register("fig8")
def run(
    ctx: ExecContext,
    *,
    block_bits: int = 512,
    trials: int = 2000,
    max_faults: int = 36,
) -> ExperimentResult:
    """Regenerate the Figure 8 curves (rows = fault counts)."""
    specs = figure8_roster(block_bits)
    curves = [
        failure_curve(
            spec,
            trials=trials,
            max_faults=max_faults,
            seed=ctx.seed,
            engine=ctx.engine,
            fault_model=ctx.fault_model,
        )
        for spec in specs
    ]
    fault_counts = range(2, max_faults + 1, 2)
    rows = []
    for f in fault_counts:
        rows.append(
            (f, *[round(curve.probability_at(f), 3) for curve in curves])
        )
    return ExperimentResult(
        experiment_id="fig8",
        title=(
            f"Figure 8: {block_bits}-bit block failure probability vs fault "
            f"count ({trials} trials)"
        ),
        headers=("Faults", *[spec.label for spec in specs]),
        rows=tuple(rows),
        notes=(
            "columns are P(block failed) once that many faults are present",
        ),
        chart={
            "type": "line",
            "x": "Faults",
            "series": [spec.label for spec in specs],
        },
    )
