"""Figure 12: page lifetime improvement for Aegis vs its variants.

Same studies as Figure 11, viewed as lifetime-improvement multiples.
Expected shape: Aegis-rw highest; Aegis-rw-p consistently above plain
Aegis (it removes the extra inversion writes even when its fault capacity
is similar).
"""

from __future__ import annotations

from repro.experiments.base import ExperimentResult, register, shared_page_studies
from repro.sim.context import ExecContext
from repro.sim.roster import variants_roster


@register("fig12")
def run(
    ctx: ExecContext,
    *,
    block_bits: int = 512,
    n_pages: int = 64,
) -> ExperimentResult:
    """Regenerate the Figure 12 bars."""
    specs = variants_roster(block_bits)
    studies = shared_page_studies(specs, n_pages=n_pages, ctx=ctx)
    best = max(study.improvement for study in studies)
    rows = []
    for spec, study in zip(specs, studies):
        rows.append(
            (
                spec.label,
                spec.overhead_bits,
                round(study.lifetime.mean, 1),
                round(study.improvement, 1),
                round(study.improvement / best, 3),
            )
        )
    return ExperimentResult(
        experiment_id="fig12",
        title=(
            f"Figure 12: page lifetime improvement, Aegis vs variants "
            f"({block_bits}-bit blocks, {n_pages} pages)"
        ),
        headers=(
            "Scheme",
            "Overhead bits",
            "Lifetime (page writes)",
            "Improvement (x)",
            "Relative to best",
        ),
        rows=tuple(rows),
        notes=("expect Aegis-rw-p >= Aegis per formation; Aegis-rw highest",),
        chart={"type": "bar", "label": "Scheme", "value": "Improvement (x)"},
    )
