"""Extension: per-write service costs measured on the real controllers.

Quantifies the paper's service-cost narrative: basic Aegis pays
verification reads and inversion re-writes that grow with the fault count
("intensive inversion writes", §3.2), while the fail-cache variants
(Aegis-rw/-rw-p) complete each request in a single pass — the mechanism
behind their lifetime advantage in Figure 12.
"""

from __future__ import annotations

from repro.analysis.writecost import write_cost_study
from repro.core.aegis import AegisScheme
from repro.core.aegis_dw import AegisDoubleWriteScheme
from repro.core.aegis_rw import AegisRwScheme
from repro.core.aegis_rw_p import AegisRwPScheme
from repro.core.formations import formation
from repro.experiments.base import ExperimentResult, register
from repro.schemes.ecp import EcpScheme
from repro.schemes.safer import SaferScheme
from repro.sim.context import ExecContext


@register("ext-writecost")
def run(
    ctx: ExecContext,
    *,
    block_bits: int = 512,
    fault_counts: tuple[int, ...] = (0, 4, 8, 12),
    writes: int = 40,
    trials: int = 8,
) -> ExperimentResult:
    """Average cell writes / verification reads / inversion re-writes per
    serviced request, by scheme and fault count."""
    form = formation(9, 61, block_bits)
    contenders = [
        ("Aegis 9x61", lambda c: AegisScheme(c, form)),
        ("Aegis-rw 9x61", lambda c: AegisRwScheme(c, form)),
        ("Aegis-rw-p 9x61 p=9", lambda c: AegisRwPScheme(c, form, 9)),
        ("Aegis-dw 9x61", lambda c: AegisDoubleWriteScheme(c, form)),
        ("SAFER64", lambda c: SaferScheme(c, 64)),
        ("ECP12", lambda c: EcpScheme(c, 12)),
    ]
    rows = []
    for label, factory in contenders:
        for fault_count in fault_counts:
            summary = write_cost_study(
                label,
                factory,
                n_bits=block_bits,
                fault_count=fault_count,
                writes=writes,
                trials=trials,
                seed=ctx.seed,
            )
            rows.append(
                (
                    label,
                    fault_count,
                    round(summary.cell_writes, 1),
                    round(summary.verification_reads, 2),
                    round(summary.inversion_writes, 2),
                    round(summary.repartitions, 3),
                )
            )
    return ExperimentResult(
        experiment_id="ext-writecost",
        title=(
            f"Extension: service cost per write vs resident faults "
            f"({block_bits}-bit blocks)"
        ),
        headers=(
            "Scheme",
            "Faults",
            "Cell writes",
            "Verify reads",
            "Inversion writes",
            "Re-partitions",
        ),
        rows=tuple(rows),
        notes=(
            "cache-assisted variants stay at one verification read and zero "
            "inversion re-writes regardless of fault count",
        ),
    )
