"""Extension: the multi-tenant cluster under QoS load and a degrade drill.

The service experiment (``ext-service``) exercises one array's pipeline;
this one exercises the layer above it: tenant keys placed on a cluster of
arrays by consistent hashing, two-class QoS admission at each array's
write buffer, and the control plane live-migrating keys off an array that
is drained mid-run.  Each scheme serves the identical multi-tenant
schedule; the table compares how the cluster behaves on top of each
recovery strength.

Expected shape: every scheme completes the run with a clean
read-after-write audit (zero failures) even though one array is drained
mid-run — the copy-then-switch migration preserves every surviving key.
Interactive tenants see zero backpressure by construction; bulk tenants
absorb all of it.  Stronger in-chip recovery loses fewer keys to spare
exhaustion, the cluster-level restatement of the FREE-p sizing claim.
"""

from __future__ import annotations

from repro.cluster.bench import run_cluster_bench
from repro.experiments.base import ExperimentResult, register
from repro.pcm.lifetime import NormalLifetime
from repro.sim.context import ExecContext
from repro.sim.roster import aegis_rw_spec, aegis_spec, ecp_spec, safer_spec


@register("ext-cluster")
def run(
    ctx: ExecContext,
    *,
    block_bits: int = 512,
    ops: int = 1500,
    n_arrays: int = 3,
    tenants: int = 4,
    tenant_addresses: int = 24,
    n_addresses: int = 48,
    spares: int = 10,
    endurance: float = 18.0,
) -> ExperimentResult:
    """Cluster behaviour table per scheme, with a mid-run degrade drill."""
    specs = [
        ecp_spec(6, block_bits),
        safer_spec(64, block_bits),
        aegis_spec(17, 31, block_bits),
        aegis_spec(9, 61, block_bits),
        aegis_rw_spec(9, 61, block_bits),
    ]
    rows = []
    for spec in specs:
        report = run_cluster_bench(
            spec,
            ops=ops,
            n_arrays=n_arrays,
            tenants=tenants,
            seed=ctx.seed,
            tenant_addresses=tenant_addresses,
            n_addresses=n_addresses,
            spares=spares,
            lifetime_model=NormalLifetime(mean_lifetime=endurance),
            degrade_at=ops // 2,
            degrade_array=1,
            degrade_threshold=2,
            engine=ctx.engine,
            workers=ctx.workers,
        )
        metrics = report.telemetry.metrics
        counters = report.telemetry.counters
        migrations = metrics.counter_total("migrations_total", kind="cross_array")
        backpressure = metrics.counter_total("tenant_backpressure_total")
        interactive_bp = metrics.counter_total(
            "tenant_backpressure_total", qos="interactive"
        )
        rows.append(
            (
                spec.label,
                spec.overhead_bits,
                report.audit_checked,
                report.dead_keys,
                counters.get("remaps", 0),
                migrations,
                metrics.counter_total("slo_alerts_total"),
                metrics.counter_total("migrations_total", kind="alert"),
                backpressure,
                interactive_bp,
                report.retries,
                report.audit_failures,
            )
        )
    return ExperimentResult(
        experiment_id="ext-cluster",
        title=(
            f"Extension: multi-tenant cluster with live migration "
            f"({ops} ops, {n_arrays} arrays, {tenants} tenants, "
            f"array 1 drained at op {ops // 2}, endurance {endurance:g})"
        ),
        headers=(
            "Scheme",
            "Overhead bits",
            "Keys audited",
            "Keys lost",
            "Spare remaps",
            "Cross-array migrations",
            "SLO alerts",
            "Alert migrations",
            "Bulk backpressure",
            "Interactive backpressure",
            "Retries",
            "Audit failures",
        ),
        rows=tuple(rows),
        notes=(
            "identical multi-tenant schedule per scheme; audit failures and "
            "interactive backpressure must be 0",
            "array 1 is drained mid-run: its keys live-migrate "
            "(copy-then-switch) and must all survive the final audit",
            "SLO alerts are burn-rate rising edges from the default cluster "
            "roster; alert migrations are the control plane acting on them "
            "(migrations_total{kind=alert})",
        ),
        chart={"type": "bar", "label": "Scheme", "value": "Keys lost"},
    )
