"""Extension: sweeping the prime B (the paper's §5 future-work knob).

"It can also choose a larger prime number as B in Aegis A x B to
accommodate more faults."  This experiment sweeps B across the usable
primes for 512-bit blocks and reports hard FTC, measured soft FTC (mean
faults at block death), and the per-block overhead — exposing the
diminishing-returns frontier: hard FTC grows like sqrt(B) while overhead
grows linearly in B.
"""

from __future__ import annotations

from repro.core.formations import aegis_hard_ftc, aegis_rw_hard_ftc, formation
from repro.core.geometry import rectangle_for
from repro.experiments.base import ExperimentResult, register
from repro.sim.block_sim import block_lifetime_study
from repro.sim.context import ExecContext
from repro.sim.roster import aegis_spec


@register("ext-bsweep")
def run(
    ctx: ExecContext,
    *,
    block_bits: int = 512,
    trials: int = 300,
    b_values: tuple[int, ...] = (23, 31, 43, 61, 71, 89, 113),
) -> ExperimentResult:
    """Aegis capability and cost as a function of the prime B."""
    rows = []
    for b_size in b_values:
        rect = rectangle_for(block_bits, b_size)
        form = formation(rect.a_size, b_size, block_bits)
        spec = aegis_spec(rect.a_size, b_size, block_bits)
        study = block_lifetime_study(
            spec, trials=trials, seed=ctx.seed, engine=ctx.engine,
            fault_model=ctx.fault_model,
        )
        rows.append(
            (
                form.name,
                form.aegis_overhead_bits,
                f"{100 * form.aegis_overhead_bits / block_bits:.1f}%",
                aegis_hard_ftc(b_size),
                aegis_rw_hard_ftc(b_size),
                round(study.faults.mean, 1),
                f"{study.lifetime.mean:.4g}",
            )
        )
    return ExperimentResult(
        experiment_id="ext-bsweep",
        title=f"Extension: Aegis capability vs prime B ({block_bits}-bit blocks)",
        headers=(
            "Formation",
            "Overhead bits",
            "Overhead %",
            "Hard FTC",
            "Hard FTC (rw)",
            "Soft FTC (measured)",
            "Block lifetime (writes)",
        ),
        rows=tuple(rows),
        notes=(
            "hard FTC grows ~sqrt(B) while overhead grows linearly: the "
            "space-efficiency sweet spot sits at moderate B, as the paper's "
            "chosen formations (23..71) suggest",
        ),
    )
