"""Figure 5: average recoverable faults per 4 KB page, by scheme.

For each scheme configuration the paper plots the mean number of faults a
4 KB page recovers before its first unrecoverable fault, annotated with the
per-block overhead bits.  Reproduced for both 512-bit and 256-bit data
blocks via the shared page-level Monte Carlo.
"""

from __future__ import annotations

from repro.experiments.base import ExperimentResult, register, shared_page_studies
from repro.sim.context import ExecContext
from repro.sim.roster import figure5_roster


@register("fig5")
def run(
    ctx: ExecContext,
    *,
    block_bits: int = 512,
    n_pages: int = 128,
) -> ExperimentResult:
    """Regenerate the Figure 5 bars for one block size."""
    specs = figure5_roster(block_bits)
    studies = shared_page_studies(specs, n_pages=n_pages, ctx=ctx)
    rows = []
    for spec, study in zip(specs, studies):
        rows.append(
            (
                spec.label,
                spec.overhead_bits,
                f"{100 * spec.overhead_fraction:.1f}%",
                round(study.faults.mean, 1),
                round(study.faults.half_width, 1),
            )
        )
    return ExperimentResult(
        experiment_id="fig5",
        title=(
            f"Figure 5: recoverable faults per 4 KB page "
            f"({block_bits}-bit blocks, {n_pages} pages)"
        ),
        headers=("Scheme", "Overhead bits", "Overhead %", "Faults/page", "±95% CI"),
        rows=tuple(rows),
        notes=(
            "paper (512-bit): SAFER64=293, SAFER128=465, RDIS-3=342, "
            "Aegis 17x31=364, Aegis 9x61=711",
        ),
        chart={"type": "bar", "label": "Scheme", "value": "Faults/page"},
    )
