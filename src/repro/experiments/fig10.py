"""Figure 10: Aegis-rw-p block lifetime vs pointer count.

For each ``A x B`` formation (23x23, 17x31, 9x61, 8x71) the paper sweeps
the pointer budget ``p`` and plots a 512-bit block's lifetime in writes.
Expected shape: lifetime climbs quickly with small ``p``, then plateaus at
the corresponding Aegis-rw lifetime (the pointer budget stops binding);
the plateau height grows with the prime ``B`` — by roughly 24% from B=23
to B=71 in the paper.
"""

from __future__ import annotations

from repro.experiments.base import ExperimentResult, register
from repro.sim.block_sim import block_lifetime_study
from repro.sim.context import ExecContext
from repro.sim.roster import aegis_rw_p_spec

#: the formations swept by the paper's Figure 10
FORMATIONS = ((23, 23), (17, 31), (9, 61), (8, 71))


@register("fig10")
def run(
    ctx: ExecContext,
    *,
    block_bits: int = 512,
    trials: int = 200,
    pointer_counts: tuple[int, ...] = (1, 2, 3, 4, 5, 6, 8, 10, 12, 15),
) -> ExperimentResult:
    """Regenerate the Figure 10 sweep (rows = p, columns = formations)."""
    columns = {}
    for a_size, b_size in FORMATIONS:
        lifetimes = []
        for p in pointer_counts:
            study = block_lifetime_study(
                aegis_rw_p_spec(a_size, b_size, p, block_bits),
                trials=trials,
                seed=ctx.seed,
                engine=ctx.engine,
                fault_model=ctx.fault_model,
            )
            lifetimes.append(study.lifetime.mean)
        columns[f"{a_size}x{b_size}"] = lifetimes
    rows = []
    for i, p in enumerate(pointer_counts):
        rows.append(
            (p, *[f"{columns[f'{a}x{b}'][i]:.4g}" for a, b in FORMATIONS])
        )
    return ExperimentResult(
        experiment_id="fig10",
        title=(
            f"Figure 10: Aegis-rw-p {block_bits}-bit block lifetime (writes) "
            f"vs pointer count ({trials} trials)"
        ),
        headers=("p", *[f"{a}x{b}" for a, b in FORMATIONS]),
        rows=tuple(rows),
        notes=(
            "expect rise-then-plateau per column; plateau grows with B "
            "(paper: ~24% from B=23 to B=71)",
        ),
        chart={
            "type": "line",
            "x": "p",
            "series": [f"{a}x{b}" for a, b in FORMATIONS],
        },
    )
