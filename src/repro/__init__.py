"""repro — a full reproduction of *Aegis: Partitioning Data Block for
Efficient Recovery of Stuck-at-Faults in Phase Change Memory* (MICRO-46,
2013).

Public API layers
-----------------
``repro.core``
    The paper's contribution: the Cartesian partition scheme (Theorems 1
    and 2), the Aegis controller, and the Aegis-rw / Aegis-rw-p variants.
``repro.schemes``
    The comparator baselines (ECP, SAFER, SAFER-cache, RDIS, Hamming
    SEC-DED, no protection) behind one ``RecoveryScheme`` interface.
``repro.pcm``
    The device substrate: stuck-at cells, endurance models, protected
    blocks, 4 KB pages, devices, wear leveling, and the fail cache.
``repro.sim``
    Event-driven Monte Carlo engines reproducing the paper's evaluation at
    full scale.
``repro.service``
    The serving layer: :class:`MemoryArray` (logical addresses with
    graceful degradation and spare remapping), the request pipeline
    (:class:`ServiceController`), telemetry, and a deterministic load
    generator (``aegis-repro serve-bench``).
``repro.experiments``
    One driver per paper table/figure (Table 1, Figures 5-13), also exposed
    through the ``aegis-repro`` command line tool.

Quickstart
----------
>>> import numpy as np
>>> from repro import AegisScheme, CellArray, formation
>>> cells = CellArray(512)
>>> cells.inject_fault(17, stuck_value=1)
>>> scheme = AegisScheme(cells, formation(9, 61, 512))
>>> data = np.zeros(512, dtype=np.uint8)
>>> _ = scheme.write(data)          # the stuck-at-1 cell is masked by inversion
>>> bool(np.array_equal(scheme.read(), data))
True
"""

from repro.core import (
    AegisDoubleWriteScheme,
    AegisPartition,
    AegisPointerScheme,
    AegisRwPScheme,
    AegisRwScheme,
    AegisScheme,
    CollisionROM,
    Formation,
    Rectangle,
    aegis_hard_ftc,
    aegis_rw_hard_ftc,
    formation,
    minimal_rectangle,
    rectangle_for,
    standard_formations,
)
from repro.errors import (
    BlockRetiredError,
    CacheMissError,
    ConfigurationError,
    ReproError,
    RetiredBlockError,
    UncorrectableError,
)
from repro.pcm import (
    CellArray,
    DirectMappedFailCache,
    NormalLifetime,
    Page,
    PCMDevice,
    PerfectWearLeveling,
    ProtectedBlock,
    WriteBuffer,
)
from repro.schemes import (
    EcpScheme,
    HammingScheme,
    NoProtectionScheme,
    OracleKnowledge,
    RdisScheme,
    RecoveryScheme,
    SaferCacheScheme,
    SaferScheme,
    WriteReceipt,
    roundtrip,
)
from repro.service import (
    BlockHealth,
    MemoryArray,
    ServiceController,
    ServiceTelemetry,
)

__version__ = "1.0.0"

__all__ = [
    "AegisDoubleWriteScheme",
    "AegisPartition",
    "AegisPointerScheme",
    "AegisRwPScheme",
    "AegisRwScheme",
    "AegisScheme",
    "BlockHealth",
    "BlockRetiredError",
    "CacheMissError",
    "CellArray",
    "CollisionROM",
    "ConfigurationError",
    "DirectMappedFailCache",
    "EcpScheme",
    "Formation",
    "HammingScheme",
    "MemoryArray",
    "NoProtectionScheme",
    "NormalLifetime",
    "OracleKnowledge",
    "PCMDevice",
    "Page",
    "PerfectWearLeveling",
    "ProtectedBlock",
    "RdisScheme",
    "Rectangle",
    "RecoveryScheme",
    "ReproError",
    "RetiredBlockError",
    "SaferCacheScheme",
    "SaferScheme",
    "ServiceController",
    "ServiceTelemetry",
    "UncorrectableError",
    "WriteBuffer",
    "WriteReceipt",
    "aegis_hard_ftc",
    "aegis_rw_hard_ftc",
    "formation",
    "minimal_rectangle",
    "rectangle_for",
    "roundtrip",
    "standard_formations",
]
