"""Dynamic page pairing (extension): OS-level reclamation of failed pages.

The paper's §1.1/§4 discuss the OS tier above in-chip recovery: once a
page contains an unrecoverable block it is normally retired, but the
Dynamic Pairing scheme (Ipek et al., ASPLOS 2010) reclaims capacity by
pairing two failed pages whose failed blocks sit at *different* offsets —
together they serve as one good page.  The paper's argument is that strong
in-chip recovery (Aegis) delays the point where pairing is needed at all;
this package quantifies that interplay.
"""

from repro.pairing.pairing import (
    FailedPage,
    compatible,
    pair_failed_pages,
    usable_page_equivalents,
)
from repro.pairing.sim import PairingStudy, pairing_study

__all__ = [
    "FailedPage",
    "PairingStudy",
    "compatible",
    "pair_failed_pages",
    "pairing_study",
    "usable_page_equivalents",
]
