"""Usable-capacity timeline with and without dynamic pairing.

For each page, every data block's death *age* (page writes) is simulated
independently with the scheme's fast checker; a page is standalone-usable
until its first block death, and a dead page's failed-block set grows as
further blocks die.  At sampled ages the study reports usable capacity in
page-equivalents, with failed pages either retired outright or reclaimed
through maximum-cardinality pairing.

The expected interplay (the paper's §1.1 argument): with weak in-chip
protection pairing recovers a sizeable fraction of capacity, but a strong
scheme like Aegis pushes block deaths so close together — wear-out is a
cliff — that by the time pages fail, compatible partners are scarce and
the whole device is near end-of-life anyway.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.pairing.pairing import FailedPage, pair_failed_pages
from repro.pcm.lifetime import LifetimeModel, NormalLifetime
from repro.sim.page_sim import DEFAULT_WRITE_PROBABILITY
from repro.sim.rng import rng_for
from repro.sim.roster import SchemeSpec


@dataclass(frozen=True)
class PairingStudy:
    """Usable capacity over device age, without and with pairing."""

    spec_label: str
    n_pages: int
    ages: tuple[float, ...]
    usable_without: tuple[float, ...]  # fraction of page-equivalents
    usable_with: tuple[float, ...]

    @property
    def peak_gain(self) -> float:
        """Largest capacity fraction pairing ever adds back."""
        return max(
            w - wo for w, wo in zip(self.usable_with, self.usable_without)
        )


def _block_death_ages(
    spec: SchemeSpec,
    blocks_per_page: int,
    rng: np.random.Generator,
    lifetime_model: LifetimeModel,
    write_probability: float,
) -> np.ndarray:
    """Death age of every block of one page, each under its own checker."""
    n_bits = spec.n_bits
    deaths = np.empty(blocks_per_page, dtype=np.float64)
    for block in range(blocks_per_page):
        times = lifetime_model.sample(n_bits, rng) / write_probability
        order = np.argsort(times)
        checker = spec.make_checker(rng)
        for cell in order:
            if not checker.add_fault(int(cell), int(rng.integers(0, 2))):
                deaths[block] = float(times[cell])
                break
        else:  # pragma: no cover - checkers always fail before saturation
            deaths[block] = float(times[order[-1]])
    return deaths


def pairing_study(
    spec: SchemeSpec,
    *,
    n_pages: int = 48,
    blocks_per_page: int = 16,
    grid_points: int = 12,
    seed: int = 2013,
    lifetime_model: LifetimeModel | None = None,
    write_probability: float = DEFAULT_WRITE_PROBABILITY,
) -> PairingStudy:
    """Simulate a page population and compare retire-on-failure against
    dynamic pairing at ``grid_points`` sampled ages."""
    model = lifetime_model if lifetime_model is not None else NormalLifetime()
    all_deaths = np.stack(
        [
            _block_death_ages(
                spec, blocks_per_page, rng_for(seed, p, 13), model, write_probability
            )
            for p in range(n_pages)
        ]
    )  # (pages, blocks)
    first_deaths = all_deaths.min(axis=1)
    low = float(first_deaths.min())
    high = float(all_deaths.max())
    ages = np.linspace(low, high, grid_points)
    without, with_pairing = [], []
    for age in ages:
        live = int((first_deaths > age).sum())
        failed = []
        for p in range(n_pages):
            blocks = frozenset(int(b) for b in np.flatnonzero(all_deaths[p] <= age))
            if blocks:
                failed.append(FailedPage(page_id=p, failed_blocks=blocks))
        pairs, _ = pair_failed_pages(failed)
        without.append(live / n_pages)
        with_pairing.append((live + len(pairs)) / n_pages)
    return PairingStudy(
        spec_label=spec.label,
        n_pages=n_pages,
        ages=tuple(float(a) for a in ages),
        usable_without=tuple(without),
        usable_with=tuple(with_pairing),
    )
