"""Usable-capacity timeline with and without dynamic pairing.

For each page, every data block's death *age* (page writes) is simulated
independently with the scheme's fast checker; a page is standalone-usable
until its first block death, and a dead page's failed-block set grows as
further blocks die.  At sampled ages the study reports usable capacity in
page-equivalents, with failed pages either retired outright or reclaimed
through maximum-cardinality pairing.

The expected interplay (the paper's §1.1 argument): with weak in-chip
protection pairing recovers a sizeable fraction of capacity, but a strong
scheme like Aegis pushes block deaths so close together — wear-out is a
cliff — that by the time pages fail, compatible partners are scarce and
the whole device is near end-of-life anyway.

Execution rides the unified plane (:mod:`repro.sim.context`): page ``p``
draws every random number from ``rng_for(seed, p, 13)``, so the
:class:`~repro.sim.parallel.StudyRunner` fan-out produces bit-identical
studies for every worker count.  The per-checker fault walks here have no
batch kernel yet, so any requested ``engine`` resolves to the scalar path
transparently (the same fallback :func:`repro.sim.kernels.resolve_engine`
applies to kernel-less schemes).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.pairing.pairing import FailedPage, pair_failed_pages
from repro.pcm.lifetime import LifetimeModel, NormalLifetime
from repro.sim import kernels
from repro.sim.context import ExecContext
from repro.sim.page_sim import DEFAULT_WRITE_PROBABILITY
from repro.sim.parallel import StudyRunner
from repro.sim.rng import rng_for
from repro.sim.roster import SchemeSpec

#: substream salt separating pairing pages from other studies' pages
_PAIRING_SALT = 13


@dataclass(frozen=True)
class PairingStudy:
    """Usable capacity over device age, without and with pairing."""

    spec_label: str
    n_pages: int
    ages: tuple[float, ...]
    usable_without: tuple[float, ...]  # fraction of page-equivalents
    usable_with: tuple[float, ...]

    @property
    def peak_gain(self) -> float:
        """Largest capacity fraction pairing ever adds back."""
        return max(
            w - wo for w, wo in zip(self.usable_with, self.usable_without)
        )


@dataclass(frozen=True)
class PairingTask:
    """Everything a worker needs to age any page of one pairing study."""

    spec: SchemeSpec
    blocks_per_page: int
    seed: int
    lifetime_model: LifetimeModel | None
    write_probability: float


def _block_death_ages(
    spec: SchemeSpec,
    blocks_per_page: int,
    rng: np.random.Generator,
    lifetime_model: LifetimeModel,
    write_probability: float,
) -> np.ndarray:
    """Death age of every block of one page, each under its own checker."""
    n_bits = spec.n_bits
    deaths = np.empty(blocks_per_page, dtype=np.float64)
    for block in range(blocks_per_page):
        times = lifetime_model.sample(n_bits, rng) / write_probability
        order = np.argsort(times)
        checker = spec.make_checker(rng)
        for cell in order:
            if not checker.add_fault(int(cell), int(rng.integers(0, 2))):
                deaths[block] = float(times[cell])
                break
        else:  # pragma: no cover - checkers always fail before saturation
            deaths[block] = float(times[order[-1]])
    return deaths


def simulate_pairing_page(task: PairingTask, page_index: int) -> np.ndarray:
    """Block death ages of one page — the picklable unit of fan-out."""
    model = (
        task.lifetime_model if task.lifetime_model is not None else NormalLifetime()
    )
    return _block_death_ages(
        task.spec,
        task.blocks_per_page,
        rng_for(task.seed, page_index, _PAIRING_SALT),
        model,
        task.write_probability,
    )


def pairing_study(
    spec: SchemeSpec,
    *,
    n_pages: int = 48,
    blocks_per_page: int = 16,
    grid_points: int = 12,
    seed: int = 2013,
    lifetime_model: LifetimeModel | None = None,
    write_probability: float = DEFAULT_WRITE_PROBABILITY,
    ctx: ExecContext | None = None,
) -> PairingStudy:
    """Simulate a page population and compare retire-on-failure against
    dynamic pairing at ``grid_points`` sampled ages.

    ``ctx`` supplies the execution plane (seed, workers, engine); when
    absent, a serial context built from ``seed`` is used.  Results are
    bit-identical for every worker count.
    """
    if ctx is None:
        ctx = ExecContext(seed=seed)
    kernels.validate_engine(ctx.engine)
    task = PairingTask(
        spec=spec,
        blocks_per_page=blocks_per_page,
        seed=ctx.seed,
        lifetime_model=lifetime_model,
        write_probability=write_probability,
    )

    def reduce(deaths: list[np.ndarray]) -> PairingStudy:
        all_deaths = np.stack(deaths)  # (pages, blocks)
        first_deaths = all_deaths.min(axis=1)
        low = float(first_deaths.min())
        high = float(all_deaths.max())
        ages = np.linspace(low, high, grid_points)
        without, with_pairing = [], []
        for age in ages:
            live = int((first_deaths > age).sum())
            failed = []
            for p in range(n_pages):
                blocks = frozenset(
                    int(b) for b in np.flatnonzero(all_deaths[p] <= age)
                )
                if blocks:
                    failed.append(FailedPage(page_id=p, failed_blocks=blocks))
            pairs, _ = pair_failed_pages(failed)
            without.append(live / n_pages)
            with_pairing.append((live + len(pairs)) / n_pages)
        return PairingStudy(
            spec_label=spec.label,
            n_pages=n_pages,
            ages=tuple(float(a) for a in ages),
            usable_without=tuple(without),
            usable_with=tuple(with_pairing),
        )

    with StudyRunner("pairing", ctx) as runner:
        return runner.run(
            simulate_pairing_page,
            task,
            range(n_pages),
            reduce=reduce,
            spec=spec.key,
            n_pages=n_pages,
        )
