"""Pairing failed pages with disjoint failed-block sets.

Two failed pages are *compatible* when no block index is failed in both:
reads/writes to a block offset are served by whichever page of the pair is
healthy there.  Maximising reclaimed capacity is a maximum-cardinality
matching on the compatibility graph, computed with networkx.
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx


@dataclass(frozen=True)
class FailedPage:
    """A retired page and the offsets of its failed data blocks."""

    page_id: int
    failed_blocks: frozenset[int]

    def __post_init__(self) -> None:
        if not self.failed_blocks:
            raise ValueError("a failed page must have at least one failed block")


def compatible(a: FailedPage, b: FailedPage) -> bool:
    """True when the two pages can serve as one (no shared failed offset)."""
    return not (a.failed_blocks & b.failed_blocks)


def pair_failed_pages(
    pages: list[FailedPage],
) -> tuple[list[tuple[FailedPage, FailedPage]], list[FailedPage]]:
    """Maximum-cardinality pairing of failed pages.

    Returns ``(pairs, unpaired)``; every page appears exactly once across
    the two.
    """
    graph = nx.Graph()
    graph.add_nodes_from(range(len(pages)))
    for i in range(len(pages)):
        for j in range(i + 1, len(pages)):
            if compatible(pages[i], pages[j]):
                graph.add_edge(i, j)
    matching = nx.max_weight_matching(graph, maxcardinality=True)
    paired_ids = set()
    pairs = []
    for i, j in matching:
        pairs.append((pages[i], pages[j]))
        paired_ids.update((i, j))
    unpaired = [page for k, page in enumerate(pages) if k not in paired_ids]
    return pairs, unpaired


def usable_page_equivalents(live_pages: int, failed: list[FailedPage]) -> float:
    """Usable capacity in page-equivalents: live pages plus one per
    reclaimed pair."""
    pairs, _ = pair_failed_pages(failed)
    return live_pages + len(pairs)
