"""Device-level PAYG composition: per-block LEC + shared GEC pool.

Every block starts under a one-entry ECP (the LEC), which handles the
common case — most blocks die with very few faults thanks to lifetime
variability.  When a block's faults exceed the LEC, it requests a GEC
allocation: a full recovery-scheme metadata slot (Aegis by default) from a
finite, chip-shared pool.  A block whose request finds the pool empty is
dead; a block whose GEC scheme eventually fails is dead.

The overhead accounting follows PAYG's scheme: per-block LEC bits, plus
``pool_entries x (GEC metadata + a block-address tag)`` amortised over all
blocks.
"""

from __future__ import annotations

from collections.abc import Callable

import numpy as np

from repro.errors import ConfigurationError, UncorrectableError
from repro.pcm.cell import CellArray
from repro.schemes.base import RecoveryScheme, WriteReceipt
from repro.schemes.ecp import EcpScheme
from repro.util.bitops import ceil_log2

#: builds the strong (GEC) scheme for a block's cells
GecFactory = Callable[[CellArray], RecoveryScheme]


class GecPool:
    """A finite pool of global error-correction slots."""

    def __init__(self, entries: int) -> None:
        if entries < 0:
            raise ConfigurationError("GEC pool size must be non-negative")
        self.entries = entries
        self.allocated = 0

    @property
    def available(self) -> int:
        return self.entries - self.allocated

    def try_allocate(self) -> bool:
        """Claim one slot; ``False`` when the pool is exhausted."""
        if self.allocated >= self.entries:
            return False
        self.allocated += 1
        return True


class PaygBlock(RecoveryScheme):
    """A block protected pay-as-you-go: ECP-1 LEC, on-demand GEC upgrade."""

    def __init__(
        self,
        cells: CellArray,
        pool: GecPool,
        gec_factory: GecFactory,
        *,
        lec_pointers: int = 1,
    ) -> None:
        super().__init__(cells)
        self.pool = pool
        self.gec_factory = gec_factory
        self.lec_pointers = lec_pointers
        self._active: RecoveryScheme = EcpScheme(cells, lec_pointers)
        self.upgraded = False

    @property
    def name(self) -> str:
        stage = "GEC" if self.upgraded else "LEC"
        return f"PAYG[{stage}:{self._active.name}]"

    @property
    def overhead_bits(self) -> int:
        """This block's *local* bits only; pool amortisation is computed by
        :func:`payg_overhead_bits`."""
        return EcpScheme(CellArray(self.cells.n_bits), self.lec_pointers).overhead_bits

    def _encode_write(self, data: np.ndarray) -> WriteReceipt:
        try:
            return self._active._encode_write(data)
        except UncorrectableError:
            if self.upgraded:
                raise
            if not self.pool.try_allocate():
                raise UncorrectableError(
                    "PAYG: LEC exceeded and the GEC pool is exhausted",
                ) from None
            self.upgraded = True
            self._active = self.gec_factory(self.cells)
            return self._active._encode_write(data)

    def read(self) -> np.ndarray:
        return self._active.read()


def payg_overhead_bits(
    n_blocks: int,
    block_bits: int,
    pool_entries: int,
    gec_bits: int,
    *,
    lec_pointers: int = 1,
) -> float:
    """Average per-block overhead of a PAYG organisation.

    ``LEC + pool_entries * (gec_bits + tag) / n_blocks`` where the tag
    addresses the owning block (PAYG's set-associative GEC directory is
    approximated by a full block-address tag — a slightly pessimistic
    bound).
    """
    if n_blocks <= 0:
        raise ConfigurationError("n_blocks must be positive")
    lec_bits = 1 + lec_pointers * (ceil_log2(block_bits) + 1)
    tag_bits = ceil_log2(max(n_blocks, 2))
    return lec_bits + pool_entries * (gec_bits + tag_bits) / n_blocks
