"""PAYG — the Pay-As-You-Go error-correction framework (extension).

The paper's related-work section (§4) observes that cell lifetime is highly
variable, so spending a full Aegis metadata budget on *every* block wastes
space on the many blocks that die with few faults, and points to Qureshi's
PAYG framework (MICRO 2011) as the remedy: a tiny Local Error Correction
(LEC) entry per block plus a shared Global Error Correction (GEC) pool,
allocated on demand.  "As PAYG is a framework that can employ any error
correction scheme in its GEC component, Aegis complements PAYG with its
strong fault tolerance capability and its space efficiency."

This package builds that composition: :class:`~repro.payg.payg.PaygBlock`
(device level, bit-accurate) and :func:`~repro.payg.sim.payg_page_study`
(Monte Carlo), with Aegis as the default GEC scheme.
"""

from repro.payg.payg import GecPool, PaygBlock, payg_overhead_bits
from repro.payg.sim import PaygPageResult, payg_page_study

__all__ = [
    "GecPool",
    "PaygBlock",
    "PaygPageResult",
    "payg_overhead_bits",
    "payg_page_study",
]
