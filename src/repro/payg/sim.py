"""Monte Carlo evaluation of PAYG pages (extension experiment).

Event-driven like :mod:`repro.sim.page_sim`, but blocks share a finite GEC
pool: a block's first fault is absorbed by its LEC (ECP-1); the second
fault triggers a GEC allocation (an Aegis metadata slot); the page dies
when an allocation finds the pool empty or an allocated Aegis slot runs
out of slopes.

Inversion-wear amplification is not modelled here (it only shifts absolute
lifetimes; the PAYG story is about fault capacity per overhead bit), so
death times come straight from the endurance order statistics.

Execution rides the unified plane (:mod:`repro.sim.context`): page ``p``
draws every random number from ``rng_for(seed, p, 7)``, so the
:class:`~repro.sim.parallel.StudyRunner` fan-out produces bit-identical
studies for every worker count.  The pool-allocation walk has no batch
kernel, so any requested ``engine`` resolves to the scalar path
transparently.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.formations import Formation
from repro.pcm.lifetime import LifetimeModel, NormalLifetime
from repro.payg.payg import GecPool, payg_overhead_bits
from repro.sim import kernels
from repro.sim.checkers import AegisChecker
from repro.sim.context import ExecContext
from repro.sim.page_sim import DEFAULT_WRITE_PROBABILITY
from repro.sim.parallel import StudyRunner
from repro.sim.rng import rng_for
from repro.util.stats import MeanEstimate

#: substream salt separating PAYG pages from other studies' pages
_PAYG_SALT = 7


@dataclass(frozen=True)
class PaygPageResult:
    """Aggregate over simulated PAYG pages."""

    formation_name: str
    pool_entries: int
    blocks_per_page: int
    faults: MeanEstimate
    lifetime: MeanEstimate
    gec_allocations: MeanEstimate
    pool_exhaustion_deaths: int
    overhead_bits_per_block: float


@dataclass(frozen=True)
class PaygTask:
    """Everything a worker needs to simulate any page of one PAYG study."""

    form: Formation
    blocks_per_page: int
    pool_entries: int
    lec_pointers: int
    seed: int
    lifetime_model: LifetimeModel | None
    write_probability: float


def _simulate_payg_page(
    form: Formation,
    blocks_per_page: int,
    pool_entries: int,
    lec_pointers: int,
    rng: np.random.Generator,
    lifetime_model: LifetimeModel,
    write_probability: float,
) -> tuple[float, int, int, bool]:
    """One page: returns (lifetime, faults recovered, GEC allocations,
    died-of-pool-exhaustion)."""
    n_bits = form.n_bits
    n_cells = blocks_per_page * n_bits
    death_times = lifetime_model.sample(n_cells, rng) / write_probability
    order = np.argsort(death_times)
    pool = GecPool(pool_entries)
    block_faults: list[list[int]] = [[] for _ in range(blocks_per_page)]
    gec_checkers: dict[int, AegisChecker] = {}
    deaths = 0
    for cell in order:
        cell = int(cell)
        now = float(death_times[cell])
        deaths += 1
        block, offset = divmod(cell, n_bits)
        stuck = int(rng.integers(0, 2))
        block_faults[block].append(offset)
        checker = gec_checkers.get(block)
        if checker is not None:
            if not checker.add_fault(offset, stuck):
                return now, deaths - 1, pool.allocated, False
            continue
        if len(block_faults[block]) <= lec_pointers:
            continue
        # LEC exceeded: this block needs a GEC slot now
        if not pool.try_allocate():
            return now, deaths - 1, pool.allocated, True
        checker = AegisChecker(form.rect)
        gec_checkers[block] = checker
        # replay the block's faults into its new Aegis slot (their
        # positions are known from the LEC entry and the verification
        # reads of the allocating write)
        for fault_offset in block_faults[block]:
            if not checker.add_fault(fault_offset, stuck):
                return now, deaths - 1, pool.allocated, False
    raise AssertionError("page outlived every cell")  # pragma: no cover


def simulate_payg_page(
    task: PaygTask, page_index: int
) -> tuple[float, int, int, bool]:
    """One PAYG page of a task — the picklable unit of fan-out."""
    model = (
        task.lifetime_model if task.lifetime_model is not None else NormalLifetime()
    )
    return _simulate_payg_page(
        task.form,
        task.blocks_per_page,
        task.pool_entries,
        task.lec_pointers,
        rng_for(task.seed, page_index, _PAYG_SALT),
        model,
        task.write_probability,
    )


def payg_page_study(
    form: Formation,
    *,
    pool_entries: int,
    blocks_per_page: int = 64,
    lec_pointers: int = 1,
    n_pages: int = 64,
    seed: int = 2013,
    lifetime_model: LifetimeModel | None = None,
    write_probability: float = DEFAULT_WRITE_PROBABILITY,
    ctx: ExecContext | None = None,
) -> PaygPageResult:
    """Simulate PAYG pages (LEC = ECP-``lec_pointers``, GEC = Aegis
    ``form``) and report capacity, lifetime, and pool behaviour.

    ``ctx`` supplies the execution plane (seed, workers, engine); when
    absent, a serial context built from ``seed`` is used.  Results are
    bit-identical for every worker count.
    """
    if ctx is None:
        ctx = ExecContext(seed=seed)
    kernels.validate_engine(ctx.engine)
    task = PaygTask(
        form=form,
        blocks_per_page=blocks_per_page,
        pool_entries=pool_entries,
        lec_pointers=lec_pointers,
        seed=ctx.seed,
        lifetime_model=lifetime_model,
        write_probability=write_probability,
    )

    def reduce(results: list[tuple[float, int, int, bool]]) -> PaygPageResult:
        estimates = StudyRunner.mean_columns(
            [row[:3] for row in results], ("lifetime", "faults", "allocations")
        )
        return PaygPageResult(
            formation_name=form.name,
            pool_entries=pool_entries,
            blocks_per_page=blocks_per_page,
            faults=estimates["faults"],
            lifetime=estimates["lifetime"],
            gec_allocations=estimates["allocations"],
            pool_exhaustion_deaths=sum(int(row[3]) for row in results),
            overhead_bits_per_block=payg_overhead_bits(
                blocks_per_page,
                form.n_bits,
                pool_entries,
                form.aegis_overhead_bits,
                lec_pointers=lec_pointers,
            ),
        )

    with StudyRunner("payg", ctx) as runner:
        return runner.run(
            simulate_payg_page,
            task,
            range(n_pages),
            reduce=reduce,
            formation=form.name,
            n_pages=n_pages,
        )
