"""Monte Carlo evaluation of PAYG pages (extension experiment).

Event-driven like :mod:`repro.sim.page_sim`, but blocks share a finite GEC
pool: a block's first fault is absorbed by its LEC (ECP-1); the second
fault triggers a GEC allocation (an Aegis metadata slot); the page dies
when an allocation finds the pool empty or an allocated Aegis slot runs
out of slopes.

Inversion-wear amplification is not modelled here (it only shifts absolute
lifetimes; the PAYG story is about fault capacity per overhead bit), so
death times come straight from the endurance order statistics.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.formations import Formation
from repro.pcm.lifetime import LifetimeModel, NormalLifetime
from repro.payg.payg import GecPool, payg_overhead_bits
from repro.sim.checkers import AegisChecker
from repro.sim.page_sim import DEFAULT_WRITE_PROBABILITY
from repro.sim.rng import rng_for
from repro.util.stats import MeanEstimate, mean_ci


@dataclass(frozen=True)
class PaygPageResult:
    """Aggregate over simulated PAYG pages."""

    formation_name: str
    pool_entries: int
    blocks_per_page: int
    faults: MeanEstimate
    lifetime: MeanEstimate
    gec_allocations: MeanEstimate
    pool_exhaustion_deaths: int
    overhead_bits_per_block: float


def _simulate_payg_page(
    form: Formation,
    blocks_per_page: int,
    pool_entries: int,
    lec_pointers: int,
    rng: np.random.Generator,
    lifetime_model: LifetimeModel,
    write_probability: float,
) -> tuple[float, int, int, bool]:
    """One page: returns (lifetime, faults recovered, GEC allocations,
    died-of-pool-exhaustion)."""
    n_bits = form.n_bits
    n_cells = blocks_per_page * n_bits
    death_times = lifetime_model.sample(n_cells, rng) / write_probability
    order = np.argsort(death_times)
    pool = GecPool(pool_entries)
    block_faults: list[list[int]] = [[] for _ in range(blocks_per_page)]
    gec_checkers: dict[int, AegisChecker] = {}
    deaths = 0
    for cell in order:
        cell = int(cell)
        now = float(death_times[cell])
        deaths += 1
        block, offset = divmod(cell, n_bits)
        stuck = int(rng.integers(0, 2))
        block_faults[block].append(offset)
        checker = gec_checkers.get(block)
        if checker is not None:
            if not checker.add_fault(offset, stuck):
                return now, deaths - 1, pool.allocated, False
            continue
        if len(block_faults[block]) <= lec_pointers:
            continue
        # LEC exceeded: this block needs a GEC slot now
        if not pool.try_allocate():
            return now, deaths - 1, pool.allocated, True
        checker = AegisChecker(form.rect)
        gec_checkers[block] = checker
        # replay the block's faults into its new Aegis slot (their
        # positions are known from the LEC entry and the verification
        # reads of the allocating write)
        for fault_offset in block_faults[block]:
            if not checker.add_fault(fault_offset, stuck):
                return now, deaths - 1, pool.allocated, False
    raise AssertionError("page outlived every cell")  # pragma: no cover


def payg_page_study(
    form: Formation,
    *,
    pool_entries: int,
    blocks_per_page: int = 64,
    lec_pointers: int = 1,
    n_pages: int = 64,
    seed: int = 2013,
    lifetime_model: LifetimeModel | None = None,
    write_probability: float = DEFAULT_WRITE_PROBABILITY,
) -> PaygPageResult:
    """Simulate PAYG pages (LEC = ECP-``lec_pointers``, GEC = Aegis
    ``form``) and report capacity, lifetime, and pool behaviour."""
    model = lifetime_model if lifetime_model is not None else NormalLifetime()
    faults, lifetimes, allocations = [], [], []
    exhaustion_deaths = 0
    for page_index in range(n_pages):
        rng = rng_for(seed, page_index, 7)
        lifetime, recovered, allocated, exhausted = _simulate_payg_page(
            form,
            blocks_per_page,
            pool_entries,
            lec_pointers,
            rng,
            model,
            write_probability,
        )
        faults.append(recovered)
        lifetimes.append(lifetime)
        allocations.append(allocated)
        exhaustion_deaths += int(exhausted)
    return PaygPageResult(
        formation_name=form.name,
        pool_entries=pool_entries,
        blocks_per_page=blocks_per_page,
        faults=mean_ci(faults),
        lifetime=mean_ci(lifetimes),
        gec_allocations=mean_ci(allocations),
        pool_exhaustion_deaths=exhaustion_deaths,
        overhead_bits_per_block=payg_overhead_bits(
            blocks_per_page,
            form.n_bits,
            pool_entries,
            form.aegis_overhead_bits,
            lec_pointers=lec_pointers,
        ),
    )
