"""Device-level survival curves (Figure 9) from page lifetimes.

Under perfect wear leveling every live page receives the same share of the
write stream, so all live pages have equal *age* (writes received) at any
moment and the page with the smallest age-at-death dies first.  With page
ages-at-death ``A_(1) <= A_(2) <= ...`` over a population of ``P`` pages,
the total device writes issued when the ``k``-th page dies is

    ``G_k = sum_{j=1..k} (A_(j) - A_(j-1)) * (P - j + 1)``

(between the ``j-1``-th and ``j``-th deaths, ``P - j + 1`` pages share the
stream).  This converts the independent per-page simulations of
:mod:`repro.sim.page_sim` into the paper's survival-rate-vs-total-writes
curves and the §3.2 *half lifetime* metric with no further simulation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.sim.page_sim import PageStudy


@dataclass(frozen=True)
class SurvivalCurve:
    """Survival fraction of a page population vs total device page writes."""

    spec_key: str
    label: str
    overhead_bits: int
    death_writes: tuple[float, ...]  # G_k, total writes at each page death
    survival_after: tuple[float, ...]  # fraction alive after that death

    @property
    def half_lifetime(self) -> float:
        """Total page writes at which half the pages have died (§3.2)."""
        population = len(self.death_writes)
        threshold = (population + 1) // 2
        return self.death_writes[threshold - 1]

    def survival_at(self, total_writes: float) -> float:
        """Fraction of pages alive after ``total_writes`` device writes."""
        deaths = np.searchsorted(self.death_writes, total_writes, side="right")
        return 1.0 - deaths / len(self.death_writes)

    def sample(self, n_points: int = 20) -> list[tuple[float, float]]:
        """Evenly spaced (writes, survival) points for plotting/printing."""
        grid = np.linspace(0, self.death_writes[-1], n_points)
        return [(float(g), self.survival_at(float(g))) for g in grid]


def survival_curve_from_lifetimes(
    page_lifetimes: np.ndarray,
    *,
    spec_key: str = "",
    label: str = "",
    overhead_bits: int = 0,
) -> SurvivalCurve:
    """Build the device survival curve from per-page ages-at-death."""
    ages = np.sort(np.asarray(page_lifetimes, dtype=np.float64))
    population = ages.size
    if population == 0:
        raise ValueError("survival curve needs at least one page")
    gaps = np.diff(np.concatenate([[0.0], ages]))
    live_counts = population - np.arange(population)
    death_writes = np.cumsum(gaps * live_counts)
    survival_after = 1.0 - (np.arange(population) + 1) / population
    return SurvivalCurve(
        spec_key=spec_key,
        label=label,
        overhead_bits=overhead_bits,
        death_writes=tuple(float(w) for w in death_writes),
        survival_after=tuple(float(s) for s in survival_after),
    )


def survival_curve_from_study(study: PageStudy) -> SurvivalCurve:
    """Device survival curve for a completed page study."""
    return survival_curve_from_lifetimes(
        study.lifetimes(),
        spec_key=study.spec_key,
        label=study.label,
        overhead_bits=study.overhead_bits,
    )
