"""Deterministic random-stream management for the Monte Carlo engines.

Every experiment takes one integer seed; independent streams for pages,
trials, and schemes are spawned from it with numpy's ``SeedSequence`` so
results are reproducible regardless of execution order, and so the same
page population can be replayed under different schemes (a variance
reduction the paper's paired comparisons implicitly rely on).
"""

from __future__ import annotations

import numpy as np


def spawn_rngs(seed: int, count: int) -> list[np.random.Generator]:
    """``count`` independent generators derived from one seed."""
    seq = np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in seq.spawn(count)]


def rng_for(seed: int, *keys: int) -> np.random.Generator:
    """A generator keyed by ``(seed, *keys)`` — stable across runs and
    independent across distinct key tuples."""
    return np.random.default_rng(np.random.SeedSequence(entropy=seed, spawn_key=keys))
