"""Scheme specifications: one object per evaluated configuration.

A :class:`SchemeSpec` bundles everything the simulators and experiment
drivers need to evaluate one scheme configuration:

* the display ``label`` used in the paper's figures,
* the per-block ``overhead_bits`` (printed above the paper's bars),
* a factory for the fast Monte Carlo :class:`~repro.sim.checkers.BlockChecker`,
* a factory for the bit-accurate controller (for cross-validation and the
  slow device model), and
* whether the scheme performs extra *inversion writes* on fault-containing
  groups (true for the cache-less partition schemes; this drives the wear
  amplification model, DESIGN.md §4).

Both factories are :func:`functools.partial` bindings of module-level
functions (never lambdas or closures) so that a spec — and therefore a
whole simulation task — can be pickled across the process boundary of
:mod:`repro.sim.parallel`.

``figure5_roster`` / ``figure8_roster`` / ``variants_roster`` reproduce the
exact scheme lists of the paper's figures.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass
from functools import partial

import numpy as np

from repro.core.aegis import AegisScheme
from repro.core.aegis_rw import AegisRwScheme
from repro.core.aegis_rw_p import AegisRwPScheme
from repro.core.formations import Formation, formation, rdis_cost, safer_cost
from repro.pcm.cell import CellArray
from repro.schemes.base import RecoveryScheme
from repro.schemes.ecp import EcpScheme
from repro.schemes.hamming import HammingScheme
from repro.schemes.ideal import NoProtectionScheme
from repro.schemes.rdis import RdisScheme
from repro.schemes.safer import SaferCacheScheme, SaferScheme
from repro.sim import checkers
from repro.core.formations import ecp_cost_for_ftc, hamming_cost, rdis_dimensions

CheckerFactory = Callable[[np.random.Generator], object]
ControllerFactory = Callable[[CellArray], RecoveryScheme]


@dataclass(frozen=True)
class SchemeSpec:
    """Everything needed to evaluate one scheme configuration."""

    key: str
    label: str
    n_bits: int
    overhead_bits: int
    make_checker: CheckerFactory
    make_controller: ControllerFactory
    inversion_wear: bool = False
    #: declarative batch-kernel tag consumed by :mod:`repro.sim.kernels`
    #: (``None`` for sampled schemes, which always run the scalar path)
    kernel: tuple[object, ...] | None = None

    @property
    def overhead_fraction(self) -> float:
        """Overhead relative to the data block (the paper quotes e.g. 13%
        for Aegis 9x61)."""
        return self.overhead_bits / self.n_bits


# ---------------------------------------------------------------------------
# Picklable factory targets (bound with functools.partial by the spec
# constructors below; module-level so the bindings survive pickling)
# ---------------------------------------------------------------------------


def _aegis_checker(form: Formation, rng: np.random.Generator) -> object:
    return checkers.AegisChecker(form.rect)


def _aegis_rw_checker(
    form: Formation, samples: int, rng: np.random.Generator
) -> object:
    return checkers.AegisRwChecker(form.rect, rng, samples)


def _aegis_rw_p_checker(
    form: Formation, pointers: int, samples: int, rng: np.random.Generator
) -> object:
    return checkers.AegisRwPChecker(form.rect, pointers, rng, samples)


def _aegis_dynamic_checker(
    form: Formation, samples: int, rng: np.random.Generator
) -> object:
    return checkers.AegisDynamicChecker(form.rect, rng, samples)


def _ecp_checker(pointers: int, rng: np.random.Generator) -> object:
    return checkers.EcpChecker(pointers)


def _safer_exhaustive_checker(
    n_bits: int, group_count: int, rng: np.random.Generator
) -> object:
    return checkers.SaferChecker(n_bits, group_count)


def _safer_incremental_checker(
    n_bits: int, group_count: int, rng: np.random.Generator
) -> object:
    return checkers.SaferIncrementalChecker(n_bits, group_count)


def _safer_cache_checker(
    n_bits: int, group_count: int, samples: int, rng: np.random.Generator
) -> object:
    return checkers.SaferCacheChecker(n_bits, group_count, rng, samples)


def _rdis_checker(
    n_bits: int, rows: int, cols: int, depth: int, samples: int,
    rng: np.random.Generator,
) -> object:
    return checkers.RdisChecker(n_bits, rows, cols, depth, rng, samples)


def _hamming_checker(n_bits: int, rng: np.random.Generator) -> object:
    return checkers.HammingChecker(n_bits, rng)


def _no_protection_checker(rng: np.random.Generator) -> object:
    return checkers.NoProtectionChecker()


def _aegis_controller(form: Formation, cells: CellArray) -> RecoveryScheme:
    return AegisScheme(cells, form)


def _aegis_rw_controller(form: Formation, cells: CellArray) -> RecoveryScheme:
    return AegisRwScheme(cells, form)


def _aegis_rw_p_controller(
    form: Formation, pointers: int, cells: CellArray
) -> RecoveryScheme:
    return AegisRwPScheme(cells, form, pointers)


def _ecp_controller(pointers: int, cells: CellArray) -> RecoveryScheme:
    return EcpScheme(cells, pointers)


def _safer_controller(
    group_count: int, policy: str, cells: CellArray
) -> RecoveryScheme:
    return SaferScheme(cells, group_count, policy=policy)


def _safer_cache_controller(group_count: int, cells: CellArray) -> RecoveryScheme:
    return SaferCacheScheme(cells, group_count)


def _rdis_controller(depth: int, cells: CellArray) -> RecoveryScheme:
    return RdisScheme(cells, depth)


def _hamming_controller(cells: CellArray) -> RecoveryScheme:
    return HammingScheme(cells)


def _no_protection_controller(cells: CellArray) -> RecoveryScheme:
    return NoProtectionScheme(cells)


# ---------------------------------------------------------------------------
# Spec constructors
# ---------------------------------------------------------------------------


def aegis_spec(a_size: int, b_size: int, n_bits: int) -> SchemeSpec:
    form = formation(a_size, b_size, n_bits)
    return SchemeSpec(
        key=f"aegis-{a_size}x{b_size}",
        label=f"Aegis {a_size}x{b_size}",
        n_bits=n_bits,
        overhead_bits=form.aegis_overhead_bits,
        make_checker=partial(_aegis_checker, form),
        make_controller=partial(_aegis_controller, form),
        inversion_wear=True,
        kernel=("aegis", a_size, b_size),
    )


def aegis_rw_spec(
    a_size: int, b_size: int, n_bits: int, samples: int = checkers.DEFAULT_SAMPLES
) -> SchemeSpec:
    form = formation(a_size, b_size, n_bits)
    return SchemeSpec(
        key=f"aegis-rw-{a_size}x{b_size}",
        label=f"Aegis-rw {a_size}x{b_size}",
        n_bits=n_bits,
        overhead_bits=form.aegis_overhead_bits,
        make_checker=partial(_aegis_rw_checker, form, samples),
        make_controller=partial(_aegis_rw_controller, form),
        inversion_wear=False,
    )


def aegis_rw_p_spec(
    a_size: int,
    b_size: int,
    pointers: int,
    n_bits: int,
    samples: int = checkers.DEFAULT_SAMPLES,
) -> SchemeSpec:
    form = formation(a_size, b_size, n_bits)
    return SchemeSpec(
        key=f"aegis-rw-p-{a_size}x{b_size}-p{pointers}",
        label=f"Aegis-rw-p {a_size}x{b_size} (p={pointers})",
        n_bits=n_bits,
        overhead_bits=form.aegis_rw_p_overhead_bits(pointers),
        make_checker=partial(_aegis_rw_p_checker, form, pointers, samples),
        make_controller=partial(_aegis_rw_p_controller, form, pointers),
        inversion_wear=False,
    )


def ecp_spec(pointers: int, n_bits: int) -> SchemeSpec:
    return SchemeSpec(
        key=f"ecp{pointers}",
        label=f"ECP{pointers}",
        n_bits=n_bits,
        overhead_bits=ecp_cost_for_ftc(pointers, n_bits),
        make_checker=partial(_ecp_checker, pointers),
        make_controller=partial(_ecp_controller, pointers),
        inversion_wear=False,
        kernel=("ecp", pointers),
    )


def safer_spec(group_count: int, n_bits: int, policy: str = "incremental") -> SchemeSpec:
    """SAFER-N.  The default ``incremental`` policy is the paper-faithful
    grow-only partition vector; ``exhaustive`` is the generous upper bound
    (see the policy ablation benchmark)."""
    suffix = "" if policy == "incremental" else "-exh"
    if policy == "exhaustive":
        checker_factory = partial(_safer_exhaustive_checker, n_bits, group_count)
    else:
        checker_factory = partial(_safer_incremental_checker, n_bits, group_count)
    return SchemeSpec(
        key=f"safer{group_count}{suffix}",
        label=f"SAFER{group_count}{suffix}",
        n_bits=n_bits,
        overhead_bits=safer_cost(group_count, n_bits),
        make_checker=checker_factory,
        make_controller=partial(_safer_controller, group_count, policy),
        inversion_wear=True,
        kernel=(f"safer-{policy}", group_count),
    )


def safer_cache_spec(
    group_count: int, n_bits: int, samples: int = checkers.DEFAULT_SAMPLES
) -> SchemeSpec:
    return SchemeSpec(
        key=f"safer{group_count}-cache",
        label=f"SAFER{group_count}-cache",
        n_bits=n_bits,
        overhead_bits=safer_cost(group_count, n_bits),
        make_checker=partial(_safer_cache_checker, n_bits, group_count, samples),
        make_controller=partial(_safer_cache_controller, group_count),
        inversion_wear=False,
    )


def rdis_spec(
    n_bits: int, depth: int = 3, samples: int = checkers.DEFAULT_SAMPLES
) -> SchemeSpec:
    rows, cols = rdis_dimensions(n_bits)
    return SchemeSpec(
        key=f"rdis-{depth}",
        label=f"RDIS-{depth}",
        n_bits=n_bits,
        overhead_bits=rdis_cost(n_bits, depth),
        make_checker=partial(_rdis_checker, n_bits, rows, cols, depth, samples),
        make_controller=partial(_rdis_controller, depth),
        inversion_wear=False,
    )


def hamming_spec(n_bits: int) -> SchemeSpec:
    return SchemeSpec(
        key="hamming",
        label="Hamming(72,64)",
        n_bits=n_bits,
        overhead_bits=hamming_cost(n_bits),
        make_checker=partial(_hamming_checker, n_bits),
        make_controller=_hamming_controller,
        inversion_wear=False,
        kernel=("hamming", 64),
    )


def no_protection_spec(n_bits: int) -> SchemeSpec:
    return SchemeSpec(
        key="none",
        label="None",
        n_bits=n_bits,
        overhead_bits=0,
        make_checker=_no_protection_checker,
        make_controller=_no_protection_controller,
        inversion_wear=False,
        kernel=("none",),
    )


def aegis_dynamic_spec(
    a_size: int, b_size: int, n_bits: int, samples: int = 32
) -> SchemeSpec:
    """Ablation spec: plain Aegis under the sampled dynamic-closure
    criterion instead of the static all-faults-separable cut."""
    form = formation(a_size, b_size, n_bits)
    return SchemeSpec(
        key=f"aegis-dyn-{a_size}x{b_size}",
        label=f"Aegis {a_size}x{b_size} (dynamic)",
        n_bits=n_bits,
        overhead_bits=form.aegis_overhead_bits,
        make_checker=partial(_aegis_dynamic_checker, form, samples),
        make_controller=partial(_aegis_controller, form),
        inversion_wear=True,
    )


# ---------------------------------------------------------------------------
# The paper's figure rosters
# ---------------------------------------------------------------------------


def figure5_roster(n_bits: int) -> list[SchemeSpec]:
    """Schemes compared in Figures 5-7 for one block size."""
    specs = [
        ecp_spec(4, n_bits),
        ecp_spec(5, n_bits),
        ecp_spec(6, n_bits),
        rdis_spec(n_bits),
        safer_spec(32, n_bits),
        safer_spec(64, n_bits),
    ]
    if n_bits == 512:
        specs.append(safer_spec(128, n_bits))
        specs += [
            aegis_spec(23, 23, n_bits),
            aegis_spec(17, 31, n_bits),
            aegis_spec(9, 61, n_bits),
        ]
    elif n_bits == 256:
        specs += [
            aegis_spec(16, 17, n_bits),
            aegis_spec(12, 23, n_bits),
            aegis_spec(9, 31, n_bits),
        ]
    else:
        raise ValueError(f"no figure roster for {n_bits}-bit blocks")
    return specs


def figure8_roster(n_bits: int = 512) -> list[SchemeSpec]:
    """Schemes whose block-failure-probability curves Figure 8 plots."""
    return [
        ecp_spec(6, n_bits),
        safer_spec(64, n_bits),
        safer_spec(128, n_bits),
        safer_cache_spec(64, n_bits),
        safer_cache_spec(128, n_bits),
        rdis_spec(n_bits),
        aegis_spec(17, 31, n_bits),
        aegis_spec(9, 61, n_bits),
    ]


def figure9_roster(n_bits: int = 512) -> list[SchemeSpec]:
    """Schemes in the Figure 9 survival-curve comparison."""
    return [
        no_protection_spec(n_bits),
        ecp_spec(6, n_bits),
        safer_spec(32, n_bits),
        safer_cache_spec(32, n_bits),
        safer_spec(64, n_bits),
        safer_spec(128, n_bits),
        safer_cache_spec(128, n_bits),
        aegis_spec(17, 31, n_bits),
        aegis_spec(9, 61, n_bits),
    ]


#: the representative Aegis-rw-p configurations of §3.3
RW_P_CHOICES = ((23, 23, 4), (17, 31, 5), (9, 61, 9), (8, 71, 9))


def variants_roster(n_bits: int = 512) -> list[SchemeSpec]:
    """Aegis vs Aegis-rw vs Aegis-rw-p (Figures 11-13)."""
    specs: list[SchemeSpec] = []
    for a_size, b_size, pointers in RW_P_CHOICES:
        specs.append(aegis_spec(a_size, b_size, n_bits))
        specs.append(aegis_rw_spec(a_size, b_size, n_bits))
        specs.append(aegis_rw_p_spec(a_size, b_size, pointers, n_bits))
    return specs
