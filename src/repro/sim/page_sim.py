"""Event-driven page-lifetime Monte Carlo (Figures 5, 6, 7, 11, 12, 13).

Simulates one 4 KB page (a set of protected data blocks) from first write
to first unrecoverable fault without iterating over individual writes:

* every cell draws an endurance limit from the lifetime model (§3.1);
* with differential writes a cell is programmed on a fraction
  ``write_probability`` (0.5) of page writes, so its *base* death time in
  page-write units is ``endurance / write_probability``;
* cell deaths are processed in time order; each death adds a fault to its
  block's incremental checker (:mod:`repro.sim.checkers`), and the first
  checker death ends the page;
* for cache-less partition schemes, cells sharing a group with a fault
  accrue extra inversion-write wear: their remaining endurance burns at
  ``write_probability + inversion_wear_rate`` instead, which pulls their
  death time forward (handled with a small heap of re-scheduled deaths).

The page's no-protection baseline lifetime (needed for the Figure 6/12
improvement ratios) is the first cell death of the *same* endurance sample,
a paired comparison that removes sampling noise from the ratio.
"""

from __future__ import annotations

import heapq
from collections.abc import Callable, Sequence
from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.obs.metrics import get_metrics
from repro.obs.tracer import get_tracer
from repro.pcm.faults import FaultModel, HardStuckAt, fault_model_for
from repro.pcm.lifetime import LifetimeModel, NormalLifetime
from repro.sim import kernels
from repro.sim.context import ExecContext
from repro.sim.parallel import PageTask, StudyRunner
from repro.sim.rng import rng_for
from repro.sim.roster import SchemeSpec
from repro.util.stats import MeanEstimate, RunningMean, mean_ci

#: the paper's differential-write programming probability
DEFAULT_WRITE_PROBABILITY = 0.5

#: extra per-page-write programming rate for cells in fault-containing
#: groups of cache-less schemes (one expected group re-write every other
#: page write, half of whose cells actually flip)
DEFAULT_INVERSION_WEAR = 0.25

_NORMAL, _ACCELERATED, _DEAD = 0, 1, 2


@dataclass(frozen=True)
class FaultEvent:
    """One cell death during a page simulation (for tracing/inspection)."""

    time: float            # page-write age at which the cell died
    block: int             # data-block index within the page
    offset: int            # in-block bit offset
    stuck_value: int
    block_fault_count: int  # faults in that block after this one
    fatal: bool            # True when this fault killed the page


#: observer invoked on every fault arrival
FaultObserver = Callable[[FaultEvent], None]


@dataclass(frozen=True)
class PageResult:
    """Outcome of one simulated page."""

    lifetime_writes: float
    faults_recovered: int
    baseline_lifetime: float

    @property
    def improvement(self) -> float:
        """Lifetime multiple over the unprotected page."""
        return self.lifetime_writes / self.baseline_lifetime


@dataclass(frozen=True)
class PageStudy:
    """Aggregate over many simulated pages of one scheme."""

    spec_key: str
    label: str
    overhead_bits: int
    faults: MeanEstimate
    lifetime: MeanEstimate
    baseline_lifetime: MeanEstimate
    results: tuple[PageResult, ...]

    @property
    def improvement(self) -> float:
        """Ratio of mean lifetimes (the Figure 6 bar heights)."""
        return self.lifetime.mean / self.baseline_lifetime.mean

    @property
    def improvement_per_bit(self) -> float:
        """Lifetime-improvement contribution of each overhead bit
        (Figure 7; improvement is measured over the 1x baseline)."""
        if self.overhead_bits == 0:
            return 0.0
        return (self.improvement - 1.0) / self.overhead_bits

    def lifetimes(self) -> np.ndarray:
        return np.array([r.lifetime_writes for r in self.results])


#: cells per batched dynamics call; bounds the kernel's working set
MAX_BATCH_CELLS = 4_000_000


def simulate_page(
    spec: SchemeSpec,
    blocks_per_page: int,
    rng: np.random.Generator,
    *,
    lifetime_model: LifetimeModel | None = None,
    write_probability: float = DEFAULT_WRITE_PROBABILITY,
    inversion_wear_rate: float = DEFAULT_INVERSION_WEAR,
    observer: FaultObserver | None = None,
    engine: str = "auto",
    fault_model: "FaultModel | str | None" = None,
) -> PageResult:
    """Simulate one page under ``spec`` until its first unrecoverable fault.

    ``observer``, when given, receives a :class:`FaultEvent` for every cell
    death in arrival order — a tracing hook for debugging and for studies
    that need the fault timeline rather than just the endpoints.  An
    observer forces the scalar ``engine`` (the vector kernels advance all
    blocks in lock step and have no per-event callback point); otherwise
    both engines draw the page's endurance sample from ``rng`` first and
    return bit-identical results.

    ``fault_model`` selects the failure statistics
    (:mod:`repro.pcm.faults`): the model reshapes the sampled death times
    (and any masking) *before* engine dispatch, from the same ``rng``
    position on both engines, so every model stays bit-identical across
    ``engine`` and ``workers``.  The hard default takes exactly the
    historical code path.
    """
    if not 0 < write_probability <= 1:
        raise ConfigurationError("write probability must be in (0, 1]")
    model = lifetime_model if lifetime_model is not None else NormalLifetime()
    fmodel = fault_model_for(fault_model)
    hard = isinstance(fmodel, HardStuckAt)
    if observer is None and kernels.resolve_engine(engine, spec) == "vector":
        endurance = model.sample(blocks_per_page * spec.n_bits, rng)
        base_death = endurance / write_probability
        if hard:
            shaped, masked = base_death, None
        else:
            shaped, masked = fmodel.transform_base_death(
                base_death, spec.n_bits, rng
            )
        outcome = None
        if kernels.tie_fraction(shaped) <= kernels.HEAVY_TIE_FRACTION:
            outcome = _pages_from_endurances(
                spec,
                blocks_per_page,
                [(shaped, base_death, masked)],
                write_probability,
                inversion_wear_rate,
            )[0]
        if outcome is not None:
            return outcome
        # pathologically tied sample, or cell deaths tying the page death
        # time exactly (the one case the batched fault count cannot
        # resolve): replay the scalar scheduler on the already-drawn
        # sample (``rng`` is positioned exactly as if the scalar path had
        # sampled and transformed it)
        return _simulate_page_scalar(
            spec,
            blocks_per_page,
            rng,
            model,
            write_probability,
            inversion_wear_rate,
            None,
            endurance=endurance,
            transformed=None if hard else (shaped, masked),
        )
    return _simulate_page_scalar(
        spec,
        blocks_per_page,
        rng,
        model,
        write_probability,
        inversion_wear_rate,
        observer,
        fault_model=None if isinstance(fmodel, HardStuckAt) else fmodel,
    )


def _simulate_page_scalar(
    spec: SchemeSpec,
    blocks_per_page: int,
    rng: np.random.Generator,
    model: LifetimeModel,
    write_probability: float,
    inversion_wear_rate: float,
    observer: FaultObserver | None,
    endurance: np.ndarray | None = None,
    fault_model: FaultModel | None = None,
    transformed: tuple[np.ndarray, np.ndarray | None] | None = None,
) -> PageResult:
    n_bits = spec.n_bits
    n_cells = blocks_per_page * n_bits
    if endurance is None:
        endurance = model.sample(n_cells, rng)
    base_death = endurance / write_probability
    original_death = base_death
    masked = None
    if transformed is not None:
        # the vector path already drew and applied the model transform on
        # this sample; reuse it — redrawing would shift the substream
        base_death, masked = transformed
    elif fault_model is not None and not isinstance(fault_model, HardStuckAt):
        base_death, masked = fault_model.transform_base_death(
            base_death, n_bits, rng
        )
    order = np.argsort(base_death)
    status = np.zeros(n_cells, dtype=np.int8)
    block_checkers = [spec.make_checker(rng) for _ in range(blocks_per_page)]
    accel_rate = write_probability + inversion_wear_rate
    apply_wear = spec.inversion_wear and inversion_wear_rate > 0
    heap: list[tuple[float, int]] = []
    cursor = 0
    deaths = 0
    # paired no-protection baseline: always the first *intrinsic* cell
    # death — masked cells still die physically (identical to
    # base_death[order[0]] on the untransformed hard path)
    baseline = float(original_death.min())

    while True:
        while cursor < n_cells and status[order[cursor]] != _NORMAL:
            cursor += 1
        t_base = float(base_death[order[cursor]]) if cursor < n_cells else np.inf
        t_heap = heap[0][0] if heap else np.inf
        if t_base <= t_heap:
            if cursor >= n_cells:
                raise AssertionError(
                    "page outlived every cell"
                )  # pragma: no cover - checkers always fail eventually
            now, cell = t_base, int(order[cursor])
            cursor += 1
        else:
            now, cell = heapq.heappop(heap)
            cell = int(cell)
            if status[cell] == _DEAD:
                continue
        status[cell] = _DEAD
        deaths += 1
        block, offset = divmod(cell, n_bits)
        stuck_value = int(rng.integers(0, 2))
        alive = block_checkers[block].add_fault(offset, stuck_value)
        if observer is not None:
            observer(
                FaultEvent(
                    time=now,
                    block=block,
                    offset=offset,
                    stuck_value=stuck_value,
                    block_fault_count=len(block_checkers[block].fault_offsets),
                    fatal=not alive,
                )
            )
        if not alive:
            recovered = deaths - 1
            if masked is not None:
                # masked partial faults never reached a checker but did
                # arrive (and were survived) before the fatal fault
                recovered += int((original_death[masked] <= now).sum())
            return PageResult(
                lifetime_writes=now,
                faults_recovered=recovered,
                baseline_lifetime=baseline,
            )
        if apply_wear:
            members = block_checkers[block].group_members(offset)
            for member in members:
                mate = block * n_bits + int(member)
                if status[mate] != _NORMAL:
                    continue
                status[mate] = _ACCELERATED
                remaining = max(float(base_death[mate]) - now, 0.0)
                rescheduled = now + remaining * write_probability / accel_rate
                heapq.heappush(heap, (rescheduled, mate))


def _pages_from_endurances(
    spec: SchemeSpec,
    blocks_per_page: int,
    pages: "list[tuple[np.ndarray, np.ndarray, np.ndarray | None]]",
    write_probability: float,
    inversion_wear_rate: float,
) -> list[PageResult | None]:
    """Batched page outcomes for a list of prepared death-time samples.

    Each entry of ``pages`` is ``(shaped, original, masked)``: the
    fault-model-transformed flat death times actually simulated, the
    intrinsic (untransformed) death times for the paired baseline and
    masked-fault accounting, and the free-mask flags (``None`` under the
    hard model, where ``shaped is original``).

    All pages' blocks are stacked into one ``(pages * blocks, n_bits)``
    population and advanced by a single :func:`repro.sim.kernels.block_dynamics`
    call; a page's lifetime is its earliest block death, its recovered-fault
    count the number of recorded cell deaths strictly before that time
    (plus any masked faults whose intrinsic death preceded it).

    The batch scheduler replicates the scalar event order exactly, so the
    count is exact whenever the page's death time is unique among its
    recorded deaths (the fatal fault itself is always recorded).  When
    another death ties it, the split of same-time events into
    before/after the fatal one depends on the scalar scheduler's *global*
    (cross-block) ordering, which the per-block batch does not carry —
    those pages come back as ``None`` for the caller to replay on the
    scalar path.
    """
    n_bits = spec.n_bits
    n_pages = len(pages)
    base_death = np.stack([shaped for shaped, _, _ in pages]).reshape(
        n_pages * blocks_per_page, n_bits
    )
    result = kernels.block_dynamics(
        spec,
        base_death,
        write_probability=write_probability,
        inversion_wear_rate=inversion_wear_rate,
        record_events=True,
        stop_groups=np.repeat(np.arange(n_pages), blocks_per_page),
    )
    outcomes: list[PageResult | None] = []
    for page, (_, original, masked) in enumerate(pages):
        rows = slice(page * blocks_per_page, (page + 1) * blocks_per_page)
        lifetime = result.death_time[rows].min()
        events = result.event_times[rows]
        if int((events == lifetime).sum()) > 1:
            outcomes.append(None)
            continue
        recovered = int((events < lifetime).sum())
        if masked is not None:
            recovered += int((original[masked] <= lifetime).sum())
        outcomes.append(
            PageResult(
                lifetime_writes=float(lifetime),
                faults_recovered=recovered,
                baseline_lifetime=float(original.min()),
            )
        )
    return outcomes


def simulate_pages(
    spec: SchemeSpec,
    blocks_per_page: int,
    page_indices: Sequence[int],
    seed: int,
    *,
    lifetime_model: LifetimeModel | None = None,
    write_probability: float = DEFAULT_WRITE_PROBABILITY,
    inversion_wear_rate: float = DEFAULT_INVERSION_WEAR,
    engine: str = "auto",
    fault_model: "FaultModel | str | None" = None,
) -> list[PageResult]:
    """Simulate a run of pages, each drawing from ``rng_for(seed, index)``.

    The batched counterpart of calling :func:`simulate_page` per index:
    with a vector-capable scheme, the pages' endurance samples are drawn
    per-page from their own substreams (preserving the parallel layer's
    reproducibility contract), fault-model transforms applied from the
    same substream positions, and then simulated together in batches of
    at most :data:`MAX_BATCH_CELLS` cells.  The rare pages the batch
    cannot resolve exactly (pathologically tied samples, or a death tying
    the page's own death time — routine under drift bursts, whose whole
    point is simultaneous deaths) are replayed on the scalar scheduler,
    so the returned list is bit-identical for every engine.
    """
    if not 0 < write_probability <= 1:
        raise ConfigurationError("write probability must be in (0, 1]")
    model = lifetime_model if lifetime_model is not None else NormalLifetime()
    fmodel = fault_model_for(fault_model)
    hard = isinstance(fmodel, HardStuckAt)
    scalar_model = None if hard else fmodel
    indices = list(page_indices)
    if kernels.resolve_engine(engine, spec) != "vector":
        return [
            _simulate_page_scalar(
                spec,
                blocks_per_page,
                rng_for(seed, index),
                model,
                write_probability,
                inversion_wear_rate,
                None,
                fault_model=scalar_model,
            )
            for index in indices
        ]
    n_cells = blocks_per_page * spec.n_bits
    results: list[PageResult | None] = [None] * len(indices)
    pending: list[tuple[int, tuple, np.ndarray, np.random.Generator]] = []
    batch_pages = max(1, MAX_BATCH_CELLS // max(n_cells, 1))

    def flush() -> None:
        if not pending:
            return
        outcomes = _pages_from_endurances(
            spec,
            blocks_per_page,
            [prepared for _, prepared, _, _ in pending],
            write_probability,
            inversion_wear_rate,
        )
        for (position, prepared, sample, rng), outcome in zip(pending, outcomes):
            if outcome is None:
                # a death ties the page's death time exactly: replay on
                # the scalar scheduler for the paper-exact fault count
                outcome = _simulate_page_scalar(
                    spec,
                    blocks_per_page,
                    rng,
                    model,
                    write_probability,
                    inversion_wear_rate,
                    None,
                    endurance=sample,
                    transformed=None if hard else (prepared[0], prepared[2]),
                )
            results[position] = outcome
        pending.clear()

    for position, index in enumerate(indices):
        rng = rng_for(seed, index)
        endurance = model.sample(n_cells, rng)
        base_death = endurance / write_probability
        if hard:
            shaped, masked = base_death, None
        else:
            shaped, masked = fmodel.transform_base_death(
                base_death, spec.n_bits, rng
            )
        prepared = (shaped, base_death, masked)
        if kernels.tie_fraction(shaped) > kernels.HEAVY_TIE_FRACTION:
            results[position] = _simulate_page_scalar(
                spec,
                blocks_per_page,
                rng,
                model,
                write_probability,
                inversion_wear_rate,
                None,
                endurance=endurance,
                transformed=None if hard else (shaped, masked),
            )
        else:
            pending.append((position, prepared, endurance, rng))
            if len(pending) >= batch_pages:
                flush()
    flush()
    return results


def run_page_study(
    spec: SchemeSpec,
    *,
    n_pages: int = 128,
    blocks_per_page: int | None = None,
    seed: int = 2013,
    lifetime_model: LifetimeModel | None = None,
    write_probability: float = DEFAULT_WRITE_PROBABILITY,
    inversion_wear_rate: float = DEFAULT_INVERSION_WEAR,
    target_relative_ci: float | None = None,
    max_pages: int = 2048,
    workers: int | None = 1,
    observer: FaultObserver | None = None,
    engine: str = "auto",
    fault_model: "FaultModel | str | None" = None,
    ctx: ExecContext | None = None,
) -> PageStudy:
    """Simulate ``n_pages`` independent 4 KB pages under one scheme.

    ``blocks_per_page`` defaults to a 4 KB page of the spec's block size
    (64 x 512-bit or 128 x 256-bit).  Page ``i`` uses a stream keyed by the
    page index only, so different schemes see the same endurance draws.

    When ``target_relative_ci`` is set, pages beyond ``n_pages`` are added
    until the fault count's 95% CI half-width drops below that fraction of
    the mean (capped at ``max_pages``) — sequential precision control for
    publication-grade numbers.  The interval is maintained with a running
    Welford accumulator, so the check is O(1) per page.

    ``workers`` fans page simulations out over a process pool
    (:mod:`repro.sim.parallel`); ``None``/``0`` mean all CPU cores.  The
    substream contract — page ``i`` always draws from ``rng_for(seed, i)``
    — makes the result bit-identical for every worker count, including the
    sequential-stopping page count.  ``engine`` composes with ``workers``:
    each worker advances its chunk of pages through the batch kernels
    (:mod:`repro.sim.kernels`) when the scheme has one, so process fan-out
    and intra-process vectorization multiply.  A tracing ``observer``
    forces the serial scalar path (callbacks cannot cross process
    boundaries or batched steps).

    ``ctx`` is the execution plane's preferred spelling: when given, its
    ``seed``/``workers``/``engine``/``fault_model`` fields override the
    corresponding keyword arguments, so callers thread one
    :class:`ExecContext` instead of four knobs.
    """
    if ctx is not None:
        seed, workers, engine = ctx.seed, ctx.workers, ctx.engine
        fault_model = ctx.fault_model
    if blocks_per_page is None:
        if (4096 * 8) % spec.n_bits:
            raise ConfigurationError(f"4 KB page is not a multiple of {spec.n_bits} bits")
        blocks_per_page = (4096 * 8) // spec.n_bits
    if target_relative_ci is not None and not 0 < target_relative_ci < 1:
        raise ConfigurationError("target relative CI must be in (0, 1)")

    fmodel = fault_model_for(fault_model)
    task = PageTask(
        spec=spec,
        blocks_per_page=blocks_per_page,
        seed=seed,
        lifetime_model=lifetime_model,
        write_probability=write_probability,
        inversion_wear_rate=inversion_wear_rate,
        engine=engine,
        fault_model=fmodel,
    )
    results: list[PageResult] = []
    faults_acc = RunningMean()

    def accept(result: PageResult) -> None:
        results.append(result)
        faults_acc.push(float(result.faults_recovered))

    def precise_enough() -> bool:
        if target_relative_ci is None or len(results) < max(8, n_pages):
            return False
        estimate = faults_acc.estimate()
        return estimate.half_width <= target_relative_ci * max(estimate.mean, 1e-12)

    # study-phase spans go to the process-wide tracer (``repro run
    # --trace``); they are recorded parent-side only, so the exported
    # trace stays worker-count invariant like the study itself
    tracer = get_tracer()
    runner = (
        StudyRunner("page", ExecContext(seed=seed, workers=workers, engine=engine))
        if observer is None
        else None
    )
    with tracer.span("page_study", spec=spec.key, n_pages=n_pages) as study_span:
        if runner is not None:
            with runner:
                # phase 1: the fixed block of pages every study simulates
                with tracer.span("page_sim", phase="fixed_block"):
                    for result in runner.map_pages(task, range(n_pages)):
                        accept(result)
                # phase 2: sequential stopping, reproduced exactly —
                # speculative waves are walked in page order and truncated
                # at the page where the serial loop would have stopped
                with tracer.span("sequential_stopping"):
                    while (
                        target_relative_ci is not None
                        and len(results) < max_pages
                        and not precise_enough()
                    ):
                        wave = range(
                            len(results),
                            min(
                                max_pages,
                                len(results) + max(runner.workers * 2, 8),
                            ),
                        )
                        for result in runner.map_pages(task, wave):
                            if len(results) >= max_pages or precise_enough():
                                break  # discard the speculative tail
                            accept(result)
        else:
            with tracer.span("page_sim", phase="serial"):
                page_index = 0
                while page_index < n_pages or (
                    target_relative_ci is not None
                    and page_index < max_pages
                    and not precise_enough()
                ):
                    accept(
                        simulate_page(
                            spec,
                            blocks_per_page,
                            rng_for(seed, page_index),
                            lifetime_model=lifetime_model,
                            write_probability=write_probability,
                            inversion_wear_rate=inversion_wear_rate,
                            observer=observer,
                            fault_model=fmodel,
                        )
                    )
                    page_index += 1
        study_span.cost(pages=len(results))
        registry = get_metrics()
        if registry is not None:
            registry.inc("pages_simulated_total", len(results), spec=spec.key)
        with tracer.span("reduce", spec=spec.key):
            study = PageStudy(
                spec_key=spec.key,
                label=spec.label,
                overhead_bits=spec.overhead_bits,
                faults=mean_ci([r.faults_recovered for r in results]),
                lifetime=mean_ci([r.lifetime_writes for r in results]),
                baseline_lifetime=mean_ci([r.baseline_lifetime for r in results]),
                results=tuple(results),
            )
    return study
