"""Vectorised batch simulation at the paper's full 8 MB scale.

The per-page engine (:mod:`repro.sim.page_sim`) is general — any checker,
wear amplification, tracing — but runs pages one at a time.  For the
*static* schemes (plain Aegis and ECP) a block's fate depends only on its
fault arrival order and times, which lets the whole population be
simulated as flat numpy arrays:

* a block only ever sees its first ``max_faults`` cell deaths, so instead
  of sampling 512 endurances per block, the first ``k`` order statistics
  of the endurance distribution are sampled directly (uniform spacings
  through the inverse CDF) together with ``k`` distinct fault positions —
  memory stays at tens of MB for 131 072 blocks;
* Aegis survival is the poisoned-slope condition maintained as per-block
  ``uint64`` bitmasks: at arrival ``f``, the collision slopes of the new
  fault against each earlier fault are table lookups vectorised across
  all blocks;
* page death is the earliest block death time within each page.

Limitations (by design, documented): no inversion-wear amplification and
no data-dependent (sampled) schemes — use the general engine for those.
``tests/test_batch.py`` cross-validates the batch engine against the
per-page engine distributionally.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

import numpy as np

from repro.core.collision import collision_rom_for
from repro.core.formations import Formation
from repro.errors import ConfigurationError
from repro.pcm.lifetime import PAPER_COV, PAPER_MEAN_LIFETIME
from repro.util.stats import MeanEstimate, mean_ci

_ndtri = None


def _resolve_ndtri():
    """Normal inverse CDF: scipy's exact ``ndtri`` when available, else the
    numpy-only approximation (pyproject declares numpy alone; scipy must
    stay optional)."""
    global _ndtri
    if _ndtri is None:
        try:
            from scipy.special import ndtri as _ndtri  # noqa: F811
        except ImportError:  # pragma: no cover - depends on environment
            from repro.util.stats import ndtri_approx as _ndtri
    return _ndtri


@dataclass(frozen=True)
class BatchResult:
    """Population outcome of a batch run."""

    label: str
    n_pages: int
    blocks_per_page: int
    faults_per_page: MeanEstimate
    page_lifetimes: np.ndarray  # page-write age at death, per page

    @property
    def mean_lifetime(self) -> float:
        return float(self.page_lifetimes.mean())


def _first_death_times(
    n_blocks: int,
    n_bits: int,
    max_faults: int,
    rng: np.random.Generator,
    *,
    mean_lifetime: float,
    cov: float,
    write_probability: float,
) -> np.ndarray:
    """Times (page-write age) of each block's first ``max_faults`` cell
    deaths, shape ``(n_blocks, max_faults)``, ascending along axis 1.

    Uses the classic identity: the first ``k`` of ``n`` uniform order
    statistics are cumulative exponential spacings; mapping through the
    normal inverse CDF yields endurance order statistics directly.
    """
    if max_faults >= n_bits:
        raise ConfigurationError("max_faults must be below the block size")
    gaps = rng.standard_exponential((n_blocks, max_faults))
    # classic identity: U_(k) = (E_1+...+E_k) / (E_1+...+E_{n+1}); only the
    # first max_faults spacings are materialised, the remaining n+1-k sum
    # exactly as one Gamma(n+1-k) draw per block
    partial = np.cumsum(gaps, axis=1)
    remainder = rng.gamma(float(n_bits + 1 - max_faults), 1.0, size=(n_blocks, 1))
    uniforms = partial / (partial[:, -1:] + remainder)
    endurance = mean_lifetime * (1.0 + cov * _resolve_ndtri()(uniforms))
    np.maximum(endurance, 1.0, out=endurance)
    np.sort(endurance, axis=1)  # ndtri is monotone; sort guards edge ties
    return endurance / write_probability


def _fault_positions(
    n_blocks: int, n_bits: int, max_faults: int, rng: np.random.Generator
) -> np.ndarray:
    """Distinct fault offsets per block, shape ``(n_blocks, max_faults)``.

    Floyd-like vectorised rejection: draw with replacement and redraw
    collisions column by column (cheap for ``max_faults << n_bits``).
    """
    positions = rng.integers(0, n_bits, size=(n_blocks, max_faults), dtype=np.int64)
    for column in range(1, max_faults):
        while True:
            clash = (
                positions[:, column : column + 1] == positions[:, :column]
            ).any(axis=1)
            if not clash.any():
                break
            positions[clash, column] = rng.integers(0, n_bits, size=int(clash.sum()))
    return positions


def _aegis_death_index(
    positions: np.ndarray, form: Formation
) -> np.ndarray:
    """Fault index (1-based) at which each block dies under plain Aegis:
    the first arrival that completes the poisoned-slope set."""
    if form.b_size > 63:
        raise ConfigurationError("batch Aegis supports B <= 63 (uint64 bitmask)")
    rom = collision_rom_for(form.rect)._table
    n_blocks, max_faults = positions.shape
    poisoned = np.zeros(n_blocks, dtype=np.uint64)
    full = np.uint64((1 << form.b_size) - 1)
    death = np.full(n_blocks, max_faults + 1, dtype=np.int64)
    alive = np.ones(n_blocks, dtype=bool)
    for f in range(1, max_faults):
        new = positions[:, f]
        for j in range(f):
            slopes = rom[new, positions[:, j]].astype(np.int64)
            hit = slopes >= 0
            bits = np.zeros(n_blocks, dtype=np.uint64)
            bits[hit] = np.uint64(1) << slopes[hit].astype(np.uint64)
            poisoned |= bits
        newly_dead = alive & (poisoned == full)
        death[newly_dead] = f + 1  # this arrival is the fatal fault
        alive &= ~newly_dead
    return death


def batch_aegis_study(
    form: Formation,
    *,
    n_pages: int = 2048,
    blocks_per_page: int = 64,
    max_faults: int = 48,
    seed: int = 2013,
    mean_lifetime: float = PAPER_MEAN_LIFETIME,
    cov: float = PAPER_COV,
    write_probability: float = 0.5,
) -> BatchResult:
    """Full-population plain-Aegis page study (e.g. the 8 MB chip)."""
    rng = np.random.default_rng(np.random.SeedSequence(entropy=seed, spawn_key=(99,)))
    n_blocks = n_pages * blocks_per_page
    times = _first_death_times(
        n_blocks, form.n_bits, max_faults, rng,
        mean_lifetime=mean_lifetime, cov=cov, write_probability=write_probability,
    )
    positions = _fault_positions(n_blocks, form.n_bits, max_faults, rng)
    death_index = _aegis_death_index(positions, form)
    return _assemble(
        f"Aegis {form.name}", times, death_index, n_pages, blocks_per_page
    )


@lru_cache(maxsize=None)
def _pext_table(addr_bits: int) -> np.ndarray:
    """``T[P, offset]`` = offset's bits at the positions selected by the
    bitmask ``P``, packed ascending — a vectorised parallel-bit-extract."""
    size = 1 << addr_bits
    table = np.zeros((size, size), dtype=np.int16)
    offsets = np.arange(size, dtype=np.int64)
    for mask in range(size):
        rank = 0
        value = np.zeros(size, dtype=np.int64)
        for bit in range(addr_bits):
            if (mask >> bit) & 1:
                value |= ((offsets >> bit) & 1) << rank
                rank += 1
        table[mask] = value
    return table


def _safer_death_index(
    positions: np.ndarray, n_bits: int, group_count: int
) -> np.ndarray:
    """Fault index (1-based) at which each block dies under grow-only
    SAFER-N: the first arrival whose collision cannot be resolved with the
    vector already full.

    The vector extension picks the lowest unselected address bit at which
    the colliding pair differs (the greedy collision-minimising choice of
    the reference checker measures identically at population level —
    cross-validated in tests)."""
    addr_bits = max(1, (n_bits - 1).bit_length())
    max_positions = max(1, (group_count - 1).bit_length())
    table = _pext_table(addr_bits)
    n_blocks, max_faults = positions.shape
    selected = np.zeros(n_blocks, dtype=np.int64)  # bitmask of chosen positions
    n_selected = np.zeros(n_blocks, dtype=np.int64)
    death = np.full(n_blocks, max_faults + 1, dtype=np.int64)
    alive = np.ones(n_blocks, dtype=bool)
    rows = np.arange(n_blocks)
    for f in range(1, max_faults):
        new = positions[:, f]
        for _ in range(max_positions + 1):
            vals_new = table[selected, new]
            collide_with = np.full(n_blocks, -1, dtype=np.int64)
            for j in range(f):
                unresolved = alive & (collide_with < 0)
                if not unresolved.any():
                    break
                hits = unresolved & (table[selected, positions[:, j]] == vals_new)
                collide_with[hits] = j
            colliding = alive & (collide_with >= 0)
            if not colliding.any():
                break
            dying = colliding & (n_selected >= max_positions)
            death[dying] = f + 1
            alive &= ~dying
            colliding &= alive
            if not colliding.any():
                break
            partner = positions[rows, np.maximum(collide_with, 0)]
            differing = (new ^ partner) & ~selected
            # a colliding pair always differs at an unselected position
            # (identical selected bits are what made the values equal)
            lowest = differing & -differing
            selected[colliding] |= lowest[colliding]
            n_selected[colliding] += 1
    return death


def batch_safer_study(
    group_count: int,
    n_bits: int,
    *,
    n_pages: int = 2048,
    blocks_per_page: int = 64,
    max_faults: int = 40,
    seed: int = 2013,
    mean_lifetime: float = PAPER_MEAN_LIFETIME,
    cov: float = PAPER_COV,
    write_probability: float = 0.5,
) -> BatchResult:
    """Full-population grow-only SAFER-N page study."""
    rng = np.random.default_rng(np.random.SeedSequence(entropy=seed, spawn_key=(97,)))
    n_blocks = n_pages * blocks_per_page
    times = _first_death_times(
        n_blocks, n_bits, max_faults, rng,
        mean_lifetime=mean_lifetime, cov=cov, write_probability=write_probability,
    )
    positions = _fault_positions(n_blocks, n_bits, max_faults, rng)
    death_index = _safer_death_index(positions, n_bits, group_count)
    return _assemble(
        f"SAFER{group_count}", times, death_index, n_pages, blocks_per_page
    )


def batch_ecp_study(
    pointers: int,
    n_bits: int,
    *,
    n_pages: int = 2048,
    blocks_per_page: int = 64,
    seed: int = 2013,
    mean_lifetime: float = PAPER_MEAN_LIFETIME,
    cov: float = PAPER_COV,
    write_probability: float = 0.5,
) -> BatchResult:
    """Full-population ECP page study (death at fault ``pointers + 1``)."""
    rng = np.random.default_rng(np.random.SeedSequence(entropy=seed, spawn_key=(98,)))
    n_blocks = n_pages * blocks_per_page
    max_faults = pointers + 1
    times = _first_death_times(
        n_blocks, n_bits, max_faults + 1, rng,
        mean_lifetime=mean_lifetime, cov=cov, write_probability=write_probability,
    )
    death_index = np.full(n_blocks, max_faults, dtype=np.int64)
    return _assemble(f"ECP{pointers}", times, death_index, n_pages, blocks_per_page)


def _assemble(
    label: str,
    times: np.ndarray,
    death_index: np.ndarray,
    n_pages: int,
    blocks_per_page: int,
) -> BatchResult:
    max_faults = times.shape[1]
    survivors = int((death_index > max_faults).sum())
    if survivors > max(1, death_index.size // 200):
        raise ConfigurationError(
            f"{survivors} of {death_index.size} blocks outlived the sampled "
            f"window of {max_faults} faults; raise max_faults"
        )
    clipped = np.minimum(death_index, max_faults)
    block_death_time = times[np.arange(times.shape[0]), clipped - 1]
    per_page_blocks = block_death_time.reshape(n_pages, blocks_per_page)
    page_lifetime = per_page_blocks.min(axis=1)
    # faults recovered: every block's deaths strictly before the page's end
    before = (
        times.reshape(n_pages, blocks_per_page, max_faults)
        < page_lifetime[:, None, None]
    ).sum(axis=(1, 2))
    return BatchResult(
        label=label,
        n_pages=n_pages,
        blocks_per_page=blocks_per_page,
        faults_per_page=mean_ci(before.astype(np.float64)),
        page_lifetimes=page_lifetime,
    )
