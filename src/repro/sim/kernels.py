"""Vectorized batch-trial Monte Carlo kernels.

The scalar engines in :mod:`repro.sim.block_sim` and
:mod:`repro.sim.page_sim` walk one trial and one fault arrival at a time
through Python-level :meth:`~repro.sim.checkers.BlockChecker.add_fault`
calls.  For the *static* schemes — plain Aegis, ECP, SAFER and the
unprotected baseline, whose survival is a pure set property of the fault
locations — the per-arrival state update is a handful of integer
operations, so an entire ``(trials, n_bits)`` block population can be
advanced in lock step with numpy: one fancy-indexed collision-ROM lookup,
one poisoned-slope bitset OR, one partition-vector extension per step,
for *all* trials at once.

Bit-identity contract
---------------------
Every kernel reproduces the scalar path exactly, not just statistically:

* Trial ``t`` consumes the same substream ``rng_for(seed, t)`` draws in
  the same order.  Static checkers never draw from the generator, and
  their survival verdict ignores the stuck-at *values*, so the scalar
  path's per-arrival ``rng.integers(0, 2)`` draws cannot influence any
  returned quantity — the kernels elide them.
* The event-driven wear dynamics replicate the scalar scheduler's
  selection order, including its tie-breaks: at equal event times the
  base-endurance cursor beats the acceleration heap, and the heap orders
  equal times by cell index.  The batched selection key ``(time,
  accelerated?, cell index)`` encodes exactly that.
* The wear formula mirrors the scalar expression's IEEE operation order
  (``now + remaining * write_probability / accel_rate``) so the floats
  agree to the last bit.

Trials whose sampled endurances contain duplicate death times (possible
under :class:`~repro.pcm.lifetime.FixedLifetime`) are reported for
transparent scalar fallback: the scalar scheduler's order among exact
ties depends on its unstable ``argsort``, which a batched kernel cannot
cheaply replicate.  Under the continuous default models ties have
probability zero.

Coverage is declared on each :class:`~repro.sim.roster.SchemeSpec` via
its ``kernel`` tag; :func:`resolve_engine` maps the public
``engine="auto"|"vector"|"scalar"`` switch to the path actually taken.
Sampled (data-dependent) schemes — Aegis-rw variants, SAFER-cache,
RDIS — carry no tag and always take the scalar path.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations

import numpy as np

from repro.core.collision import collision_rom_for
from repro.core.formations import formation
from repro.core.partition import partition_for
from repro.errors import ConfigurationError
from repro.obs.metrics import get_metrics
from repro.obs.tracer import get_tracer
from repro.util.bitops import ceil_log2

#: valid values of the public ``engine`` switch
ENGINES = ("auto", "vector", "scalar")

#: the Aegis kernel tracks poisoned slopes in a per-trial uint64 bitset
MAX_SLOPE_BITS = 63

_NORMAL, _ACCELERATED, _DEAD = 0, 1, 2

_ONE = np.uint64(1)


def kernel_supported(spec) -> bool:
    """Whether a batch kernel covers ``spec`` (static scheme, in-range)."""
    tag = getattr(spec, "kernel", None)
    if not tag:
        return False
    if tag[0] == "aegis":
        return tag[2] <= MAX_SLOPE_BITS  # uint64 poisoned-slope bitset
    return tag[0] in _BUILDERS


def validate_engine(engine: str) -> str:
    """Check an engine name against the public switch values.

    Shared by every surface that accepts ``engine=`` — including
    simulators whose dynamics have no batch kernel yet (pairing, PAYG,
    FREE-p remap), which validate the request here and then fall back to
    their scalar path transparently, exactly like :func:`resolve_engine`
    does for kernel-less schemes.
    """
    if engine not in ENGINES:
        raise ConfigurationError(
            f"engine must be one of {ENGINES}, got {engine!r}"
        )
    return engine


def resolve_engine(engine: str, spec) -> str:
    """Map the public engine switch to the path actually taken.

    ``"scalar"`` always runs the checker loop; ``"vector"`` and ``"auto"``
    use the batch kernel when one covers the spec and fall back to the
    scalar path transparently otherwise.
    """
    validate_engine(engine)
    if engine == "scalar":
        return "scalar"
    return "vector" if kernel_supported(spec) else "scalar"


# ---------------------------------------------------------------------------
# Row-bitset primitives shared with the service-layer kernels
# ---------------------------------------------------------------------------


def pack_rows_u64(rows: np.ndarray) -> np.ndarray:
    """Pack ``(R, n)`` rows of 0/1 (or bool) cells into ``(R, ceil(n/64))``
    uint64 fault bitsets, little-endian within each word.

    The service-layer batch kernels (:mod:`repro.service.kernels`) carry
    per-block fault state in these bitsets so whole-drain predicates are
    word-wide operations instead of per-cell loops.
    """
    rows = np.asarray(rows)
    if rows.ndim != 2:
        raise ConfigurationError("pack_rows_u64 expects a (rows, bits) matrix")
    packed = np.packbits(rows.astype(bool), axis=1, bitorder="little")
    pad = (-packed.shape[1]) % 8
    if pad:
        packed = np.pad(packed, ((0, 0), (0, pad)))
    return packed.view(np.uint64)


def popcount_rows_u64(words: np.ndarray) -> np.ndarray:
    """Per-row population count of ``(R, words)`` uint64 bitsets."""
    return np.bitwise_count(words).sum(axis=1, dtype=np.int64)


def xor_popcount_rows(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Per-row Hamming distance between two ``(R, n)`` 0/1 matrices.

    For a differential write this *is* the cell-write cost: the number of
    cells whose stored value differs from the target form.
    """
    return popcount_rows_u64(pack_rows_u64(np.asarray(a) != np.asarray(b)))


# ---------------------------------------------------------------------------
# Batch checkers: the vectorized counterparts of repro.sim.checkers
# ---------------------------------------------------------------------------


class _BatchChecker:
    """Lock-step survival state for ``n_trials`` independent blocks.

    ``add_faults`` consumes one fault arrival per trial per call (the
    ``f``-th call carries every trial's ``f``-th fault); ``active`` masks
    trials whose row still matters — rows outside it may carry garbage
    offsets and must not change state.
    """

    #: subclasses that never look back at earlier arrivals skip the buffer
    needs_history = False

    #: extra per-trial state arrays sliced on row compaction
    _row_state: tuple[str, ...] = ()

    def __init__(self, n_bits: int, n_trials: int) -> None:
        self.n_bits = n_bits
        self.n_trials = n_trials
        self.alive = np.ones(n_trials, dtype=bool)
        self._hist = (
            np.empty((n_trials, 16), dtype=np.int64) if self.needs_history else None
        )
        self._count = 0

    def compact(self, keep: np.ndarray) -> None:
        """Drop the rows outside the boolean ``keep`` mask.

        The driver compacts its working set to the still-active trials as
        the population dies off; every per-trial state array shrinks in
        step so later calls only pay for live rows.
        """
        self.n_trials = int(keep.sum())
        self.alive = self.alive[keep]
        if self._hist is not None:
            self._hist = np.ascontiguousarray(self._hist[keep])
        for name in self._row_state:
            setattr(self, name, getattr(self, name)[keep])

    def _push(self, offsets: np.ndarray) -> int:
        """Record the new arrival column; returns the count of *prior* faults."""
        prior = self._count
        if self._hist is not None:
            if prior == self._hist.shape[1]:
                grown = np.empty((self.n_trials, 2 * prior), dtype=np.int64)
                grown[:, :prior] = self._hist
                self._hist = grown
            self._hist[:, prior] = offsets
        self._count = prior + 1
        return prior

    def add_faults(self, offsets: np.ndarray, active: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def member_masks(self, offsets: np.ndarray) -> np.ndarray:
        """Per-trial boolean masks over block bits: the recovery group of
        each trial's newest fault (the cells that suffer inversion wear)."""
        raise NotImplementedError

    def member_cols(self, offsets: np.ndarray) -> np.ndarray | None:
        """Sparse form of :meth:`member_masks`: a ``(trials, k)`` array of
        member cell indices padded with ``-1``, or ``None`` when the
        scheme's groups are too large for the sparse path to pay off."""
        return None


class _AegisBatch(_BatchChecker):
    """Vectorized :class:`~repro.sim.checkers.AegisChecker`.

    Theorem 2: each fault pair poisons exactly one slope, read off the
    shared collision ROM by fancy indexing; a trial's poisoned set is a
    uint64 bitset and the block dies when all ``B`` bits are set.
    """

    needs_history = True
    _row_state = ("poisoned",)

    def __init__(self, a_size: int, b_size: int, n_bits: int, n_trials: int) -> None:
        super().__init__(n_bits, n_trials)
        form = formation(a_size, b_size, n_bits)
        self._rom = collision_rom_for(form.rect)._table
        self._part = partition_for(form.rect)._table
        self.b_size = b_size
        self.poisoned = np.zeros(n_trials, dtype=np.uint64)
        self._full = np.uint64((1 << b_size) - 1)
        # inverse partition: (slope, group) -> member cells, -1-padded;
        # groups are tiny (~a_size cells), which is what makes the sparse
        # wear path worthwhile
        n_slopes = self._part.shape[0]
        n_groups = int(self._part.max()) + 1
        width = max(int(np.bincount(row).max()) for row in self._part)
        members = np.full((n_slopes, n_groups, width), -1, dtype=np.int64)
        for slope, row in enumerate(self._part):
            cells = np.argsort(row, kind="stable")
            grouped = row[cells]
            starts = np.flatnonzero(
                np.concatenate(([True], grouped[1:] != grouped[:-1]))
            )
            bounds = np.append(starts, len(row))
            for start, end in zip(bounds[:-1], bounds[1:]):
                members[slope, grouped[start], : end - start] = cells[start:end]
        self._members = members

    def add_faults(self, offsets: np.ndarray, active: np.ndarray) -> np.ndarray:
        prior = self._push(offsets)
        if prior:
            slopes = self._rom[offsets[:, None], self._hist[:, :prior]]
            valid = slopes >= 0
            shifts = np.where(valid, slopes, 0).astype(np.uint64)
            bits = np.bitwise_or.reduce(
                np.where(valid, _ONE << shifts, np.uint64(0)), axis=1
            )
            self.poisoned = np.where(active, self.poisoned | bits, self.poisoned)
        self.alive &= ~(active & (self.poisoned == self._full))
        return self.alive

    def _current_slope(self) -> np.ndarray:
        """Each trial's recovery slope: the lowest unpoisoned one."""
        unpoisoned = ~self.poisoned & self._full
        lowest = unpoisoned & (np.uint64(0) - unpoisoned)
        return np.where(
            unpoisoned > 0,
            np.bitwise_count(lowest - _ONE),
            0,
        ).astype(np.int64)

    def member_masks(self, offsets: np.ndarray) -> np.ndarray:
        slope = self._current_slope()
        rows = self._part[slope]  # (trials, n_bits) group ids at each slope
        group = rows[np.arange(self.n_trials), offsets]
        return rows == group[:, None]

    def member_cols(self, offsets: np.ndarray) -> np.ndarray:
        slope = self._current_slope()
        return self._members[slope, self._part[slope, offsets]]


class _EcpBatch(_BatchChecker):
    """Vectorized :class:`~repro.sim.checkers.EcpChecker`: every trial
    dies on arrival ``pointers + 1`` (arrival counts advance in lock step,
    so the counter is shared)."""

    def __init__(self, pointers: int, n_bits: int, n_trials: int) -> None:
        super().__init__(n_bits, n_trials)
        self.pointers = pointers

    def add_faults(self, offsets: np.ndarray, active: np.ndarray) -> np.ndarray:
        self._push(offsets)
        if self._count > self.pointers:
            self.alive &= ~active
        return self.alive


class _NoneBatch(_BatchChecker):
    """The unprotected baseline: the first fault is fatal."""

    def add_faults(self, offsets: np.ndarray, active: np.ndarray) -> np.ndarray:
        self.alive &= ~active
        return self.alive


class _HammingBatch(_BatchChecker):
    """Vectorized :class:`~repro.sim.checkers.HammingChecker`: a trial
    dies when two faults land in one SEC-DED word.  (The scalar checker
    is filed with the sampled family but never draws — word collocation
    alone decides death.)"""

    needs_history = True

    def __init__(self, word_bits: int, n_bits: int, n_trials: int) -> None:
        super().__init__(n_bits, n_trials)
        self.word_bits = word_bits

    def add_faults(self, offsets: np.ndarray, active: np.ndarray) -> np.ndarray:
        prior = self._push(offsets)
        if prior:
            words = self._hist[:, :prior] // self.word_bits
            collide = (words == (offsets // self.word_bits)[:, None]).any(axis=1)
            self.alive &= ~(active & collide)
        return self.alive


class _SaferIncrementalBatch(_BatchChecker):
    """Vectorized :class:`~repro.sim.checkers.SaferIncrementalChecker`.

    Two structural facts collapse the scalar re-partition loop into one
    vector step per arrival (validated against the scalar checker in
    ``tests/test_kernels.py``):

    * Partition equality is transitive, so between arrivals no two stored
      faults share a value — only the *new* fault can collide, and with
      exactly one earlier fault (the first scan match).
    * Every candidate extension position separates that unique pair, so
      ``best_extension``'s collision score is 0 for all candidates and
      its lowest-index tie-break always picks the lowest differing
      address bit; one extension resolves the collision.
    """

    needs_history = True
    _row_state = ("sel_mask", "n_sel")

    def __init__(self, group_count: int, n_bits: int, n_trials: int) -> None:
        super().__init__(n_bits, n_trials)
        self.max_positions = ceil_log2(group_count)
        self.sel_mask = np.zeros(n_trials, dtype=np.int64)
        self.n_sel = np.zeros(n_trials, dtype=np.int64)

    def add_faults(self, offsets: np.ndarray, active: np.ndarray) -> np.ndarray:
        prior = self._push(offsets)
        if prior:
            prev = self._hist[:, :prior]
            match = ((prev ^ offsets[:, None]) & self.sel_mask[:, None]) == 0
            collided = match.any(axis=1) & active & self.alive
            if collided.any():
                partner = prev[np.arange(self.n_trials), match.argmax(axis=1)]
                dying = collided & (self.n_sel >= self.max_positions)
                self.alive &= ~dying
                extend = collided & ~dying
                differing = partner ^ offsets
                lowest = differing & -differing
                self.sel_mask = np.where(extend, self.sel_mask | lowest, self.sel_mask)
                self.n_sel = np.where(extend, self.n_sel + 1, self.n_sel)
        return self.alive

    def member_masks(self, offsets: np.ndarray) -> np.ndarray:
        cells = np.arange(self.n_bits, dtype=np.int64)
        return ((cells[None, :] ^ offsets[:, None]) & self.sel_mask[:, None]) == 0


class _SaferExhaustiveBatch(_BatchChecker):
    """Vectorized :class:`~repro.sim.checkers.SaferChecker` (exhaustive
    policy): a per-trial boolean row over every candidate partition
    vector; a vector dies when the new fault equals an earlier fault
    under it, the trial dies when its row empties."""

    needs_history = True
    _row_state = ("alive_vectors",)

    def __init__(self, group_count: int, n_bits: int, n_trials: int) -> None:
        super().__init__(n_bits, n_trials)
        addr_bits = ceil_log2(n_bits)
        max_positions = ceil_log2(group_count)
        masks = []
        for vector in combinations(range(addr_bits), max_positions):
            mask = 0
            for position in vector:
                mask |= 1 << position
            masks.append(mask)
        self.vector_masks = np.asarray(masks, dtype=np.int64)
        self.alive_vectors = np.ones((n_trials, len(masks)), dtype=bool)

    def add_faults(self, offsets: np.ndarray, active: np.ndarray) -> np.ndarray:
        prior = self._push(offsets)
        if prior:
            diff = self._hist[:, :prior] ^ offsets[:, None]  # (trials, prior)
            doomed = np.zeros_like(self.alive_vectors)
            for start in range(0, prior, 16):  # bound the (T, f, V) temporary
                chunk = diff[:, start : start + 16, None] & self.vector_masks
                doomed |= (chunk == 0).any(axis=1)
            update = active & self.alive
            self.alive_vectors[update] &= ~doomed[update]
            self.alive &= ~(update & ~self.alive_vectors.any(axis=1))
        return self.alive

    def member_masks(self, offsets: np.ndarray) -> np.ndarray:
        first = self.vector_masks[self.alive_vectors.argmax(axis=1)]
        cells = np.arange(self.n_bits, dtype=np.int64)
        return ((cells[None, :] ^ offsets[:, None]) & first[:, None]) == 0


_BUILDERS = {
    "aegis": lambda tag, n_bits, n_trials: _AegisBatch(tag[1], tag[2], n_bits, n_trials),
    "ecp": lambda tag, n_bits, n_trials: _EcpBatch(tag[1], n_bits, n_trials),
    "safer-incremental": lambda tag, n_bits, n_trials: _SaferIncrementalBatch(
        tag[1], n_bits, n_trials
    ),
    "safer-exhaustive": lambda tag, n_bits, n_trials: _SaferExhaustiveBatch(
        tag[1], n_bits, n_trials
    ),
    "hamming": lambda tag, n_bits, n_trials: _HammingBatch(tag[1], n_bits, n_trials),
    "none": lambda tag, n_bits, n_trials: _NoneBatch(n_bits, n_trials),
}


def batch_checker_for(spec, n_trials: int) -> _BatchChecker:
    """Construct the batch checker covering ``spec`` for ``n_trials`` rows."""
    if not kernel_supported(spec):
        raise ConfigurationError(f"no batch kernel covers scheme {spec.key!r}")
    tag = spec.kernel
    return _BUILDERS[tag[0]](tag, spec.n_bits, n_trials)


# ---------------------------------------------------------------------------
# Drivers
# ---------------------------------------------------------------------------


def _observe_kernel(spec, op: str, trials: int, steps: int) -> None:
    registry = get_metrics()
    if registry is not None:
        registry.observe(
            "stage_cost",
            float(trials * steps),
            stage="kernel",
            op=op,
            scheme=spec.key,
        )


def death_indices(spec, positions: np.ndarray) -> np.ndarray:
    """Fault count at death for every trial of a failure-curve study.

    ``positions`` holds each trial's fault-arrival permutation, row ``t``
    being ``rng_for(seed, t).permutation(n_bits)`` — the exact draw the
    scalar path makes, so the returned counts are bit-identical to
    looping :func:`repro.sim.block_sim.faults_at_death`.
    """
    trials, n_bits = positions.shape
    deaths = np.zeros(trials, dtype=np.int64)
    active = np.ones(trials, dtype=bool)
    tracer = get_tracer()
    with tracer.span("kernel", op="death_indices", spec=spec.key, trials=trials) as span:
        checker = batch_checker_for(spec, trials)
        for step in range(n_bits):
            alive = checker.add_faults(
                np.ascontiguousarray(positions[:, step], dtype=np.int64), active
            )
            newly_dead = active & ~alive
            deaths[newly_dead] = step + 1
            active &= alive
            if not active.any():
                span.cost(steps=step + 1)
                _observe_kernel(spec, "death_indices", trials, step + 1)
                return deaths
    raise AssertionError(
        f"{spec.label}: block survived all {n_bits} faults"
    )  # pragma: no cover - every covered scheme dies before saturation


#: duplicate-death-time fraction above which a sample is considered
#: pathologically tied (e.g. ``FixedLifetime``) and the lock-step batch
#: would grind through near-simultaneous events; callers route such
#: samples straight to the scalar scheduler instead
HEAVY_TIE_FRACTION = 0.01


def tie_fraction(base_death: np.ndarray) -> float:
    """Fraction of adjacent sorted death times that are exact duplicates.

    ``+inf`` entries (free-masked cells under the partial fault model,
    which never produce events) are excluded from the duplicate count —
    they would otherwise read as pathological ties and defeat the batch
    path for every masked sample.
    """
    ordered = np.sort(base_death, axis=-1)
    dup = (ordered[..., 1:] == ordered[..., :-1]) & np.isfinite(ordered[..., 1:])
    return float(dup.mean())


# ---------------------------------------------------------------------------
# Fault-model input transforms
#
# The pluggable fault models (:mod:`repro.pcm.faults`) reshape a trial's
# *inputs* — death times, arrival order, mask flags — and then run the
# unchanged engines above.  Because the reshaping happens before engine
# dispatch and draws its randomness in a fixed order, scalar and vector
# runs of the new models stay bit-identical for free; these are the
# vectorized forms of those transforms.
# ---------------------------------------------------------------------------


def burst_collapse(values: np.ndarray, span: int, bursty: np.ndarray) -> np.ndarray:
    """Collapse each bursty aligned span of a flat array onto its minimum.

    ``values`` is any per-cell quantity (death times, arrival ranks);
    ``bursty`` flags each of the ``ceil(n / span)`` spans.  Cells of a
    bursty span all take the span minimum — the drift-burst avalanche —
    while other cells are untouched.  Returns a new array.
    """
    values = np.asarray(values, dtype=np.float64)
    n = values.shape[0]
    n_spans = -(-n // span)
    pad = n_spans * span - n
    padded = np.concatenate([values, np.full(pad, np.inf)]) if pad else values
    mins = padded.reshape(n_spans, span).min(axis=1)
    span_of = np.repeat(np.arange(n_spans), span)[:n]
    out = values.copy()
    collapse = np.asarray(bursty, dtype=bool)[span_of]
    out[collapse] = mins[span_of[collapse]]
    return out


def masked_arrival_order(
    positions: np.ndarray, flags: np.ndarray, budget: int
) -> tuple[np.ndarray, np.ndarray | None]:
    """Rewrite one trial's arrival permutation for free partial masks.

    ``positions`` is the cell-id arrival order, ``flags`` marks which
    *arrivals* are partial; the first ``budget`` partial arrivals are
    masked — they never reach the checker, so they move to the end of the
    stream.  Returns ``(stream, arrival_numbers)`` where
    ``arrival_numbers[j]`` is the 1-based *original* arrival count to
    report when stream entry ``j`` is fatal (the masked tail saturates at
    ``n``; a checker always dies long before reaching it).  ``None``
    means the identity mapping — nothing was masked.
    """
    if budget <= 0:
        return positions, None
    flags = np.asarray(flags, dtype=bool)
    masked = flags & (np.cumsum(flags) <= budget)
    if not masked.any():
        return positions, None
    keep = ~masked
    stream = np.concatenate([positions[keep], positions[masked]])
    numbers = np.concatenate(
        [
            np.flatnonzero(keep) + 1,
            np.full(int(masked.sum()), positions.shape[0], dtype=np.int64),
        ]
    )
    return stream, numbers


def mask_partial_deaths(
    base_death: np.ndarray, flags: np.ndarray, n_bits: int, budget: int
) -> np.ndarray:
    """Select the free-masked cells of a flat block-major population.

    ``flags`` marks partial-prone *cells*; each block masks its first
    ``budget`` partial cells in base-death order (stable tie-break by
    cell index, matching the scalar walk).  Returns a boolean mask over
    the flat population.
    """
    masked = np.zeros(base_death.shape[0], dtype=bool)
    flags = np.asarray(flags, dtype=bool)
    if budget <= 0 or not flags.any():
        return masked
    grid = np.asarray(base_death, dtype=np.float64).reshape(-1, n_bits)
    fgrid = flags.reshape(-1, n_bits)
    order = np.argsort(grid, axis=1, kind="stable")
    sorted_flags = np.take_along_axis(fgrid, order, axis=1)
    pick = sorted_flags & (np.cumsum(sorted_flags, axis=1) <= budget)
    rows, cols = np.nonzero(pick)
    masked[rows * n_bits + order[rows, cols]] = True
    return masked


@dataclass(frozen=True)
class DynamicsResult:
    """Outcome of a batched event-driven wear simulation."""

    death_time: np.ndarray        # (trials,) page-write age at block death
    death_faults: np.ndarray      # (trials,) faults at death, fatal included
    event_times: np.ndarray | None  # (trials, steps) +inf-padded death log


def _wear_sparse(
    cols: np.ndarray,
    active: np.ndarray,
    normal: np.ndarray,
    base_death: np.ndarray,
    current: np.ndarray,
    tie_order: np.ndarray,
    now: np.ndarray,
    n_bits: int,
    write_probability: float,
    accel_rate: float,
) -> None:
    """Apply inversion wear to the gathered member cells only.

    ``cols`` is the ``(trials, k)`` -1-padded member-index form; touching
    just those cells replaces several full-matrix passes per step with
    ``O(trials * k)`` gather/scatter work.
    """
    act = np.flatnonzero(active)
    safe = cols[act]
    valid = safe >= 0
    np.maximum(safe, 0, out=safe)
    valid &= normal[act[:, None], safe]
    rr = np.broadcast_to(act[:, None], safe.shape)[valid]
    cc = safe[valid]
    if not rr.size:
        return
    # the scalar wear expression, same IEEE operation order:
    # now + remaining * write_probability / accel_rate
    vals = base_death[rr, cc] - now[rr]
    np.maximum(vals, 0.0, out=vals)
    vals *= write_probability
    vals /= accel_rate
    vals += now[rr]
    current[rr, cc] = vals
    tie_order[rr, cc] = cc + n_bits
    normal[rr, cc] = False


def _static_dynamics(
    spec,
    base_death: np.ndarray,
    *,
    record_events: bool,
    stop_groups: np.ndarray | None,
) -> DynamicsResult:
    """The no-wear degenerate of :func:`block_dynamics`: death times never
    move, so each row's fault order is frozen as the argsort of its base
    death times (ties resolve in the same introsort order the scalar
    scheduler uses) and the event loop reduces to walking sorted columns
    through the batch checker."""
    trials, n_bits = base_death.shape
    order = np.argsort(base_death, axis=1)
    times = np.take_along_axis(base_death, order, axis=1)
    death_time = np.full(trials, np.inf)
    death_faults = np.zeros(trials, dtype=np.int64)
    group_min = None
    groups = stop_groups
    if stop_groups is not None:
        group_min = np.full(int(stop_groups.max()) + 1, np.inf)
    event_columns: list[np.ndarray] | None = [] if record_events else None
    row_ids = np.arange(trials)
    n_rows = trials
    active = np.ones(n_rows, dtype=bool)

    tracer = get_tracer()
    with tracer.span("kernel", op="block_dynamics", spec=spec.key, trials=trials) as span:
        checker = batch_checker_for(spec, trials)
        steps = 0
        for step in range(n_bits):
            if not active.any():
                break
            now = times[:, step]
            if group_min is not None:
                active &= ~(now > group_min[groups])
                if not active.any():
                    break
            if record_events:
                column = np.full(trials, np.inf)
                column[row_ids[active]] = now[active]
                event_columns.append(column)
            alive = checker.add_faults(np.ascontiguousarray(order[:, step]), active)
            newly_dead = active & ~alive
            if newly_dead.any():
                dead_rows = row_ids[newly_dead]
                death_time[dead_rows] = now[newly_dead]
                death_faults[dead_rows] = step + 1
                if group_min is not None:
                    np.minimum.at(group_min, groups[newly_dead], now[newly_dead])
            active &= alive
            steps = step + 1
            n_active = int(active.sum())
            if n_active and n_active * 2 < n_rows:
                keep = active
                row_ids = row_ids[keep]
                times = np.ascontiguousarray(times[keep])
                order = np.ascontiguousarray(order[keep])
                if groups is not None:
                    groups = groups[keep]
                checker.compact(keep)
                n_rows = n_active
                active = np.ones(n_rows, dtype=bool)
        else:  # pragma: no cover - every covered scheme dies before saturation
            if active.any():
                raise AssertionError(f"{spec.label}: block outlived every cell")
        span.cost(steps=steps)
    _observe_kernel(spec, "block_dynamics", trials, steps)
    events = None
    if record_events:
        events = (
            np.stack(event_columns, axis=1)
            if event_columns
            else np.empty((trials, 0))
        )
    return DynamicsResult(
        death_time=death_time, death_faults=death_faults, event_times=events
    )


def block_dynamics(
    spec,
    base_death: np.ndarray,
    *,
    write_probability: float,
    inversion_wear_rate: float,
    record_events: bool = False,
    stop_groups: np.ndarray | None = None,
) -> DynamicsResult:
    """Run the event-driven death/wear loop for a ``(trials, n_bits)``
    population in lock step: step ``f`` processes the ``f``-th cell death
    of every still-active trial at once.

    The per-trial selection key ``(event time, accelerated?, tie rank)``
    replicates the scalar scheduler exactly, duplicates included: among
    base deaths the tie rank is the cell's position in the *same*
    ``np.argsort`` the scalar path runs (so equal times resolve in the
    identical, if arbitrary, introsort order), accelerated cells rank
    after every base cell of equal time (the cursor beats the heap) and
    among themselves by cell index (the heap's secondary key).

    ``stop_groups`` labels each trial row with a group id (a page); once
    some row of a group has died, rows of that group whose next event
    can no longer precede the group's earliest death are retired early —
    their ``death_time`` stays ``+inf``.  Retirement never changes any
    recorded event at or below the group minimum, which is all a page
    study reads.
    """
    base_death = np.ascontiguousarray(base_death, dtype=np.float64)
    trials, n_bits = base_death.shape
    accel_rate = write_probability + inversion_wear_rate
    apply_wear = spec.inversion_wear and inversion_wear_rate > 0
    if not apply_wear:
        # without wear the death order is frozen at t=0: it is exactly the
        # argsort of the base death times, so the event loop degenerates
        # to walking sorted columns through the checker
        return _static_dynamics(
            spec, base_death, record_events=record_events, stop_groups=stop_groups
        )

    current = base_death.copy()
    order = np.argsort(base_death, axis=1)  # the scalar path's own sort
    tie_order = np.empty((trials, n_bits), dtype=np.int64)
    np.put_along_axis(
        tie_order,
        order,
        np.broadcast_to(np.arange(n_bits, dtype=np.int64), (trials, n_bits)),
        axis=1,
    )
    # tie rank once accelerated: after all base ranks, ordered by cell index
    base_rank = np.arange(n_bits, dtype=np.int64)
    accel_rank = base_rank + n_bits
    normal = np.ones((trials, n_bits), dtype=bool)
    death_time = np.full(trials, np.inf)
    death_faults = np.zeros(trials, dtype=np.int64)
    group_min = None
    groups = stop_groups
    if stop_groups is not None:
        group_min = np.full(int(stop_groups.max()) + 1, np.inf)
    event_columns: list[np.ndarray] = [] if record_events else None

    # the working set compacts to the surviving rows as the population
    # dies off; ``row_ids`` maps compacted rows back to caller rows
    row_ids = np.arange(trials)
    n_rows = trials
    active = np.ones(n_rows, dtype=bool)
    rows = np.arange(n_rows)
    candidate = np.empty((n_rows, n_bits), dtype=bool)
    accel_order = np.broadcast_to(accel_rank, (n_rows, n_bits))
    max_rank = np.iinfo(np.int64).max

    tracer = get_tracer()
    with tracer.span("kernel", op="block_dynamics", spec=spec.key, trials=trials) as span:
        checker = batch_checker_for(spec, trials)
        steps = 0
        for step in range(n_bits):
            if not active.any():
                break
            # argmin alone picks the right cell except on exact duplicate
            # times (it breaks ties by column, the scalar path by tie
            # rank); detect tied rows and redo just those with the rank key
            chosen = current.argmin(axis=1)
            now = current[rows, chosen]
            np.equal(current, now[:, None], out=candidate)
            tied = np.flatnonzero(np.count_nonzero(candidate, axis=1) > 1)
            if tied.size:
                sub = np.where(candidate[tied], tie_order[tied], max_rank)
                chosen[tied] = sub.argmin(axis=1)
            if group_min is not None:
                # retire rows whose next event falls strictly after their
                # group's earliest known death (events *at* the group
                # minimum must still be recorded for the tie audit)
                active &= ~(now > group_min[groups])
                if not active.any():
                    break
            if record_events:
                column = np.full(trials, np.inf)
                column[row_ids[active]] = now[active]
                event_columns.append(column)
            live = rows[active]
            current[live, chosen[live]] = np.inf
            normal[live, chosen[live]] = False
            alive = checker.add_faults(chosen, active)
            newly_dead = active & ~alive
            if newly_dead.any():
                dead_rows = row_ids[newly_dead]
                death_time[dead_rows] = now[newly_dead]
                death_faults[dead_rows] = step + 1
                if group_min is not None:
                    np.minimum.at(group_min, groups[newly_dead], now[newly_dead])
            active &= alive
            steps = step + 1
            if active.any():
                cols = checker.member_cols(chosen)
                if cols is not None:
                    _wear_sparse(
                        cols,
                        active,
                        normal,
                        base_death,
                        current,
                        tie_order,
                        now,
                        n_bits,
                        write_probability,
                        accel_rate,
                    )
                else:
                    target = checker.member_masks(chosen)
                    np.logical_and(target, normal, out=target)
                    np.logical_and(target, active[:, None], out=target)
                    if target.any():
                        # the scalar wear expression, same IEEE operation
                        # order: now + remaining * wp / accel_rate
                        wear = np.subtract(base_death, now[:, None])
                        np.maximum(wear, 0.0, out=wear)
                        wear *= write_probability
                        wear /= accel_rate
                        wear += now[:, None]
                        np.copyto(current, wear, where=target)
                        np.copyto(tie_order, accel_order, where=target)
                        normal &= ~target
            n_active = int(active.sum())
            if n_active and n_active * 2 < n_rows:
                keep = active
                row_ids = row_ids[keep]
                base_death = np.ascontiguousarray(base_death[keep])
                current = np.ascontiguousarray(current[keep])
                tie_order = np.ascontiguousarray(tie_order[keep])
                normal = np.ascontiguousarray(normal[keep])
                if groups is not None:
                    groups = groups[keep]
                checker.compact(keep)
                n_rows = n_active
                active = np.ones(n_rows, dtype=bool)
                rows = np.arange(n_rows)
                candidate = np.empty((n_rows, n_bits), dtype=bool)
                accel_order = np.broadcast_to(accel_rank, (n_rows, n_bits))
        else:  # pragma: no cover - every covered scheme dies before saturation
            if active.any():
                raise AssertionError(f"{spec.label}: block outlived every cell")
        span.cost(steps=steps)
    _observe_kernel(spec, "block_dynamics", trials, steps)
    events = None
    if record_events:
        events = (
            np.stack(event_columns, axis=1)
            if event_columns
            else np.empty((trials, 0))
        )
    return DynamicsResult(
        death_time=death_time, death_faults=death_faults, event_times=events
    )
