"""Incremental block-recoverability checkers for the Monte Carlo engines.

The bit-accurate controllers in :mod:`repro.core` and :mod:`repro.schemes`
service every write; at the paper's scale (1e8-write endurance, billions of
page writes) that is infeasible, and also unnecessary: between two cell
deaths the fault set of a block is constant, so the only question the
simulation must answer is *"with this fault set, can the scheme still store
arbitrary data?"* — asked once per fault arrival.

Each checker consumes fault arrivals one at a time via
:meth:`BlockChecker.add_fault` and answers that question incrementally.
Two families exist:

* **static** checkers, for schemes whose recoverability is data-independent
  (plain Aegis, SAFER without a cache, ECP): the survival condition is an
  exact set property of the fault locations.  For Aegis it is "some slope
  separates all faults" — by Theorem 2 each fault pair poisons exactly one
  slope, so the block lives while fewer than ``B`` slopes are poisoned.
* **sampled** checkers, for schemes whose recoverability depends on the
  written data (Aegis-rw/-rw-p, SAFER-cache, RDIS, Hamming): each fault
  arrival draws ``samples`` random data patterns at the fault positions —
  standing in for the millions of real writes that hit the block before
  the next fault arrives — and the block dies on the first unrecoverable
  pattern, exactly the paper's failure criterion.

Every checker is cross-validated against its bit-accurate controller in
``tests/test_checkers.py``.
"""

from __future__ import annotations

from functools import lru_cache
from itertools import combinations
from typing import Protocol

import numpy as np

from repro.core.collision import NO_COLLISION, collision_rom_for
from repro.core.geometry import Rectangle
from repro.core.partition import partition_for
from repro.errors import ConfigurationError
from repro.schemes.safer import best_extension, grow_vector_for_mixing, vector_value
from repro.util.bitops import ceil_log2

#: default number of data patterns sampled per fault arrival
DEFAULT_SAMPLES = 128


class BlockChecker(Protocol):
    """Incremental survival oracle for one data block."""

    def add_fault(self, offset: int, stuck_value: int) -> bool:
        """Record a new stuck cell; ``False`` means the block just failed."""

    def group_members(self, offset: int) -> np.ndarray:
        """Bits sharing a recovery group with ``offset`` under the current
        configuration — the cells that suffer extra inversion-write wear.
        Empty for schemes without group inversion."""


def _draw_patterns(
    rng: np.random.Generator, samples: int, n_faults: int
) -> np.ndarray:
    """Random data bits at the fault positions, shape ``(samples, n_faults)``."""
    return rng.integers(0, 2, size=(samples, n_faults), dtype=np.uint8)


@lru_cache(maxsize=None)
def _safer_vectors(addr_bits: int, max_positions: int) -> tuple[tuple[int, ...], ...]:
    """All candidate SAFER partition vectors for a block geometry — shared
    across the thousands of checkers a page study constructs."""
    return tuple(combinations(range(addr_bits), max_positions))


@lru_cache(maxsize=None)
def _vector_group_ids(n_bits: int, vector: tuple[int, ...]) -> np.ndarray:
    """Group ID of every block bit under a SAFER partition vector, as a
    shared read-only ``int64`` array."""
    offsets = np.arange(n_bits, dtype=np.int64)
    ids = np.zeros(n_bits, dtype=np.int64)
    for i, position in enumerate(vector):
        ids |= ((offsets >> position) & 1) << i
    ids.flags.writeable = False
    return ids


# ---------------------------------------------------------------------------
# Plain Aegis (static)
# ---------------------------------------------------------------------------


class AegisChecker:
    """Static survival for plain ``A x B`` Aegis.

    Alive iff some slope separates all faults into distinct groups.  Each
    new fault poisons at most one new slope per existing fault (the unique
    colliding slope of the pair, Theorem 2); the block dies when all ``B``
    slopes are poisoned.
    """

    def __init__(self, rect: Rectangle) -> None:
        self.rect = rect
        self._rom = collision_rom_for(rect)
        self._partition = partition_for(rect)
        self.fault_offsets: list[int] = []
        # the offsets again, in a preallocated growable buffer: the ROM row
        # lookup below needs an int64 array every arrival, and rebuilding it
        # from the list is O(f) per fault (O(f^2) per trial)
        self._offset_buffer = np.empty(16, dtype=np.int64)
        self.poisoned: set[int] = set()
        self.alive = True

    def add_fault(self, offset: int, stuck_value: int) -> bool:
        if not self.alive:
            return False
        count = len(self.fault_offsets)
        if count:
            slopes = self._rom._table[offset, self._offset_buffer[:count]]
            self.poisoned.update(int(s) for s in slopes if s != NO_COLLISION)
        if count == self._offset_buffer.shape[0]:
            grown = np.empty(2 * count, dtype=np.int64)
            grown[:count] = self._offset_buffer
            self._offset_buffer = grown
        self._offset_buffer[count] = offset
        self.fault_offsets.append(offset)
        self.alive = len(self.poisoned) < self.rect.b_size
        return self.alive

    def current_slope(self) -> int | None:
        """Lowest unpoisoned slope (the configuration a controller would
        settle on), or ``None`` when dead."""
        for slope in range(self.rect.b_size):
            if slope not in self.poisoned:
                return slope
        return None

    def group_members(self, offset: int) -> np.ndarray:
        slope = self.current_slope()
        if slope is None:
            return np.empty(0, dtype=np.int64)
        group = self._partition.group_of(offset, slope)
        return self._partition.members_array(group, slope)


# ---------------------------------------------------------------------------
# Aegis-rw (sampled)
# ---------------------------------------------------------------------------


class AegisRwChecker:
    """Sampled survival for Aegis-rw.

    A data pattern is recoverable iff some slope has no (W, R) cross-pair
    collision.  For each sampled pattern the poisoned-slope set is the
    collision slopes of all W x R fault pairs; the pattern fails when that
    set covers all ``B`` slopes.  Patterns with too few cross pairs to cover
    ``B`` slopes are skipped analytically.
    """

    def __init__(
        self,
        rect: Rectangle,
        rng: np.random.Generator,
        samples: int = DEFAULT_SAMPLES,
    ) -> None:
        self.rect = rect
        self.rng = rng
        self.samples = samples
        self._rom = collision_rom_for(rect)
        self._partition = partition_for(rect)
        self.fault_offsets: list[int] = []
        self.alive = True

    def _pair_matrix(self) -> np.ndarray:
        offs = np.asarray(self.fault_offsets, dtype=np.int64)
        return self._rom._table[np.ix_(offs, offs)]

    def add_fault(self, offset: int, stuck_value: int) -> bool:
        if not self.alive:
            return False
        self.fault_offsets.append(offset)
        f = len(self.fault_offsets)
        b = self.rect.b_size
        # max cross pairs over any W/R split; below B no pattern can fail
        if (f // 2) * ((f + 1) // 2) < b:
            return True
        matrix = self._pair_matrix()
        wrong = _draw_patterns(self.rng, self.samples, f).astype(bool)
        self.alive = not _any_pattern_covers_all_slopes(matrix, wrong, b)
        return self.alive

    def group_members(self, offset: int) -> np.ndarray:
        """Aegis-rw performs single-pass writes (no extra inversion wear)."""
        return np.empty(0, dtype=np.int64)


def _any_pattern_covers_all_slopes(
    matrix: np.ndarray, wrong: np.ndarray, b_size: int
) -> bool:
    """True when some sampled W/R split poisons every slope.

    ``matrix`` is the f x f pairwise collision-slope table; ``wrong`` is a
    (samples, f) boolean W-mask per pattern.
    """
    cross = wrong[:, :, None] ^ wrong[:, None, :]
    valid = matrix >= 0
    k_idx, i_idx, j_idx = np.nonzero(cross & valid[None, :, :])
    if k_idx.size == 0:
        return False
    poisoned = np.zeros((wrong.shape[0], b_size), dtype=bool)
    poisoned[k_idx, matrix[i_idx, j_idx]] = True
    return bool(poisoned.all(axis=1).any())


# ---------------------------------------------------------------------------
# Aegis-rw-p (sampled)
# ---------------------------------------------------------------------------


class AegisRwPChecker:
    """Sampled survival for Aegis-rw-p with a ``p``-pointer budget.

    A pattern is recoverable iff some unpoisoned slope exists at which the
    W-fault groups or the R-fault groups fit within ``p`` pointers.  Fast
    paths: patterns with ``min(f_W, f_R) <= p`` succeed at any unpoisoned
    slope (group count <= fault count), so the expensive per-slope group
    counting only runs for patterns where both sides exceed the budget.
    """

    def __init__(
        self,
        rect: Rectangle,
        pointers: int,
        rng: np.random.Generator,
        samples: int = DEFAULT_SAMPLES,
    ) -> None:
        if pointers < 1:
            raise ConfigurationError("Aegis-rw-p needs at least one pointer")
        self.rect = rect
        self.pointers = pointers
        self.rng = rng
        self.samples = samples
        self._rom = collision_rom_for(rect)
        self._partition = partition_for(rect)
        self.fault_offsets: list[int] = []
        self.alive = True

    def add_fault(self, offset: int, stuck_value: int) -> bool:
        if not self.alive:
            return False
        self.fault_offsets.append(offset)
        f = len(self.fault_offsets)
        b = self.rect.b_size
        if f <= self.pointers and (f // 2) * ((f + 1) // 2) < b:
            return True  # every split fits the budget and leaves a free slope
        offs = np.asarray(self.fault_offsets, dtype=np.int64)
        matrix = self._rom._table[np.ix_(offs, offs)]
        # fault group IDs under every slope: (B, f)
        groups = self._partition._table[:, offs]
        wrong = _draw_patterns(self.rng, self.samples, f).astype(bool)
        for pattern in wrong:
            if not self._pattern_recoverable(matrix, groups, pattern, b):
                self.alive = False
                return False
        return True

    def _pattern_recoverable(
        self,
        matrix: np.ndarray,
        groups: np.ndarray,
        wrong: np.ndarray,
        b_size: int,
    ) -> bool:
        f_w = int(wrong.sum())
        f_r = wrong.size - f_w
        if f_w == 0:
            return True  # nothing to invert
        # poisoned slopes of this split
        cross = wrong[:, None] ^ wrong[None, :]
        slopes = matrix[cross & (matrix >= 0)]
        poisoned = np.zeros(b_size, dtype=bool)
        poisoned[slopes] = True
        unpoisoned = np.flatnonzero(~poisoned)
        if unpoisoned.size == 0:
            return False
        if min(f_w, f_r) <= self.pointers:
            return True  # any unpoisoned slope fits
        # count distinct W groups and R groups per unpoisoned slope
        w_groups = groups[np.ix_(unpoisoned, np.flatnonzero(wrong))]
        r_groups = groups[np.ix_(unpoisoned, np.flatnonzero(~wrong))]
        for w_row, r_row in zip(w_groups, r_groups):
            if len(np.unique(w_row)) <= self.pointers:
                return True
            if len(np.unique(r_row)) <= self.pointers:
                return True
        return False

    def group_members(self, offset: int) -> np.ndarray:
        """Single-pass writes: no extra inversion wear."""
        return np.empty(0, dtype=np.int64)


# ---------------------------------------------------------------------------
# SAFER (static, exhaustive or incremental) and SAFER-cache (sampled)
# ---------------------------------------------------------------------------


class SaferChecker:
    """Static survival for SAFER-N with the exhaustive re-partition policy.

    Maintains the set of still-viable partition vectors (all combinations
    of ``m`` of the address bits); a vector dies when two faults share a
    value under it.  The block lives while some vector survives.
    """

    def __init__(self, n_bits: int, group_count: int) -> None:
        self.n_bits = n_bits
        self.addr_bits = ceil_log2(n_bits)
        self.max_positions = ceil_log2(group_count)
        self._live: dict[tuple[int, ...], int] = dict.fromkeys(
            _safer_vectors(self.addr_bits, self.max_positions), 0
        )  # vector -> bitmask of used group values
        self.fault_offsets: list[int] = []
        self.alive = True

    def add_fault(self, offset: int, stuck_value: int) -> bool:
        if not self.alive:
            return False
        self.fault_offsets.append(offset)
        doomed = []
        for vector, used in self._live.items():
            bit = 1 << vector_value(offset, vector)
            if used & bit:
                doomed.append(vector)
            else:
                self._live[vector] = used | bit
        for vector in doomed:
            del self._live[vector]
        self.alive = bool(self._live)
        return self.alive

    def current_vector(self) -> tuple[int, ...] | None:
        return next(iter(self._live), None)

    def group_members(self, offset: int) -> np.ndarray:
        vector = self.current_vector()
        if vector is None:
            return np.empty(0, dtype=np.int64)
        ids = _vector_group_ids(self.n_bits, vector)
        return np.flatnonzero(ids == vector_value(offset, vector))


class SaferIncrementalChecker:
    """Static survival for SAFER-N under the faithful incremental policy:
    the vector only grows, one distinguishing position per collision."""

    def __init__(self, n_bits: int, group_count: int) -> None:
        self.n_bits = n_bits
        self.addr_bits = ceil_log2(n_bits)
        self.max_positions = ceil_log2(group_count)
        self.positions: tuple[int, ...] = ()
        self.fault_offsets: list[int] = []
        self.alive = True

    def _collision(self) -> tuple[int, int] | None:
        seen: dict[int, int] = {}
        for offset in self.fault_offsets:
            value = vector_value(offset, self.positions)
            if value in seen:
                return seen[value], offset
            seen[value] = offset
        return None

    def add_fault(self, offset: int, stuck_value: int) -> bool:
        if not self.alive:
            return False
        self.fault_offsets.append(offset)
        while (pair := self._collision()) is not None:
            if len(self.positions) >= self.max_positions:
                self.alive = False
                return False
            added = best_extension(
                self.positions, self.fault_offsets, pair, self.addr_bits
            )
            if added is None:
                self.alive = False
                return False
            self.positions = (*self.positions, added)
        return True

    def group_members(self, offset: int) -> np.ndarray:
        ids = _vector_group_ids(self.n_bits, self.positions)
        return np.flatnonzero(ids == vector_value(offset, self.positions))


class SaferCacheChecker:
    """Sampled survival for SAFER-N-cache on the grow-only hardware vector.

    The fail cache relaxes the collision criterion — only a W fault and an
    R fault sharing a group force a re-partition — but the partition
    vector remains SAFER's append-only structure, so vector state persists
    across sampled patterns exactly as it would across real writes.  The
    block dies when a sampled pattern still has W/R mixing with the vector
    full.
    """

    def __init__(
        self,
        n_bits: int,
        group_count: int,
        rng: np.random.Generator,
        samples: int = DEFAULT_SAMPLES,
    ) -> None:
        if group_count < 2 or group_count & (group_count - 1):
            raise ConfigurationError(
                f"SAFER group count must be a power of two >= 2, got {group_count}"
            )
        self.n_bits = n_bits
        self.group_count = group_count
        self.rng = rng
        self.samples = samples
        self.addr_bits = ceil_log2(n_bits)
        self.max_positions = ceil_log2(group_count)
        self.positions: tuple[int, ...] = ()
        self.fault_offsets: list[int] = []
        self.alive = True

    def add_fault(self, offset: int, stuck_value: int) -> bool:
        if not self.alive:
            return False
        self.fault_offsets.append(offset)
        f = len(self.fault_offsets)
        # no early-out even at small f: the vector must grow in response to
        # the sampled traffic, exactly as the hardware's would
        wrong_masks = _draw_patterns(self.rng, self.samples, f).astype(bool)
        for wrong_mask in wrong_masks:
            wrong = [o for o, w in zip(self.fault_offsets, wrong_mask) if w]
            right = [o for o, w in zip(self.fault_offsets, wrong_mask) if not w]
            grown = grow_vector_for_mixing(
                self.positions, wrong, right, self.max_positions, self.addr_bits
            )
            if grown is None:
                self.alive = False
                return False
            self.positions = grown
        return True

    def group_members(self, offset: int) -> np.ndarray:
        """Cache-assisted single-pass writes: no extra inversion wear."""
        return np.empty(0, dtype=np.int64)


# ---------------------------------------------------------------------------
# ECP, RDIS, Hamming, no protection
# ---------------------------------------------------------------------------


class EcpChecker:
    """Static survival for ECP-p: the block dies with fault ``p + 1``
    (under random data the uncovered fault is written wrong almost
    immediately, the paper's 'almost vertical rise')."""

    def __init__(self, pointers: int) -> None:
        self.pointers = pointers
        self.fault_offsets: list[int] = []
        self.alive = True

    def add_fault(self, offset: int, stuck_value: int) -> bool:
        if not self.alive:
            return False
        self.fault_offsets.append(offset)
        self.alive = len(self.fault_offsets) <= self.pointers
        return self.alive

    def group_members(self, offset: int) -> np.ndarray:
        return np.empty(0, dtype=np.int64)


class RdisChecker:
    """Sampled survival for RDIS-``depth`` on the fault coordinates only.

    The recursive invertible-set construction touches healthy cells too,
    but recoverability is decided purely by whether every *fault* ends up
    consistent — so the per-pattern check runs on the fault coordinates,
    vectorised across all sampled patterns with row/column bitmasks.
    ``depth`` follows the paper's naming (RDIS-3): the mask toggles
    ``depth - 1`` times.
    """

    def __init__(
        self,
        n_bits: int,
        rows: int,
        cols: int,
        depth: int,
        rng: np.random.Generator,
        samples: int = DEFAULT_SAMPLES,
    ) -> None:
        if rows > 63 or cols > 63:
            raise ConfigurationError("RdisChecker bitmask fast path caps dims at 63")
        if depth < 2:
            raise ConfigurationError("RDIS needs depth >= 2")
        self.n_bits = n_bits
        self.rows = rows
        self.cols = cols
        self.depth = depth
        self.toggle_levels = depth - 1
        self.rng = rng
        self.samples = samples
        self.fault_offsets: list[int] = []
        self.stuck_values: list[int] = []
        self.alive = True
        # any 3 faults resolve within two toggles (tests/test_rdis.py)
        self._guarantee = 3 if self.toggle_levels >= 2 else 1

    def add_fault(self, offset: int, stuck_value: int) -> bool:
        if not self.alive:
            return False
        self.fault_offsets.append(offset)
        self.stuck_values.append(stuck_value)
        f = len(self.fault_offsets)
        if f <= self._guarantee:
            return True
        offs = np.asarray(self.fault_offsets, dtype=np.int64)
        stuck = np.asarray(self.stuck_values, dtype=np.uint8)
        frows = offs // self.cols
        fcols = offs % self.cols
        data = _draw_patterns(self.rng, self.samples, f)
        self.alive = not _any_rdis_failure(
            frows, fcols, stuck, data, self.toggle_levels
        )
        return self.alive

    def group_members(self, offset: int) -> np.ndarray:
        """Cache-assisted single-pass writes: no extra inversion wear."""
        return np.empty(0, dtype=np.int64)


def _any_rdis_failure(
    frows: np.ndarray,
    fcols: np.ndarray,
    stuck: np.ndarray,
    data: np.ndarray,
    levels: int,
) -> bool:
    """True when some sampled pattern is unrecoverable by RDIS-``levels``.

    Vectorised over patterns: marked rows/columns per pattern are int64
    bitmasks; region membership and the inversion mask are tracked per
    (pattern, fault).
    """
    samples, f = data.shape
    row_bits = np.int64(1) << frows  # (f,)
    col_bits = np.int64(1) << fcols
    mask = np.zeros((samples, f), dtype=np.uint8)
    in_region = np.ones((samples, f), dtype=bool)
    for _ in range(levels):
        wrong = in_region & (stuck[None, :] != (data ^ mask))
        if not wrong.any():
            break
        marked_rows = np.bitwise_or.reduce(
            np.where(wrong, row_bits[None, :], 0), axis=1
        )
        marked_cols = np.bitwise_or.reduce(
            np.where(wrong, col_bits[None, :], 0), axis=1
        )
        in_intersection = (
            ((marked_rows[:, None] >> frows[None, :]) & 1).astype(bool)
            & ((marked_cols[:, None] >> fcols[None, :]) & 1).astype(bool)
        )
        new_region = in_region & in_intersection
        mask ^= new_region.astype(np.uint8)
        in_region = new_region
    still_wrong = stuck[None, :] != (data ^ mask)
    return bool(still_wrong.any())


class HammingChecker:
    """Sampled survival for per-64-bit-word SEC-DED: a pattern fails when
    two faults in one word are both stuck-at-wrong."""

    def __init__(
        self,
        n_bits: int,
        rng: np.random.Generator,
        samples: int = DEFAULT_SAMPLES,
        word_bits: int = 64,
    ) -> None:
        self.n_bits = n_bits
        self.word_bits = word_bits
        self.rng = rng
        self.samples = samples
        self.fault_offsets: list[int] = []
        self.alive = True

    def add_fault(self, offset: int, stuck_value: int) -> bool:
        if not self.alive:
            return False
        self.fault_offsets.append(offset)
        words = np.asarray(self.fault_offsets, dtype=np.int64) // self.word_bits
        new_word = offset // self.word_bits
        collocated = int((words == new_word).sum())
        if collocated < 2:
            return True
        # two+ faults in one word: both wrong with prob 1 - (3/4)^pairs per
        # write; over the inter-fault write stream this is certain death
        self.alive = False
        return False

    def group_members(self, offset: int) -> np.ndarray:
        return np.empty(0, dtype=np.int64)


class NoProtectionChecker:
    """The unprotected baseline: the first fault is fatal."""

    def __init__(self) -> None:
        self.fault_offsets: list[int] = []
        self.alive = True

    def add_fault(self, offset: int, stuck_value: int) -> bool:
        self.fault_offsets.append(offset)
        self.alive = False
        return False

    def group_members(self, offset: int) -> np.ndarray:
        return np.empty(0, dtype=np.int64)


# ---------------------------------------------------------------------------
# Dynamic-closure ablation checker for plain Aegis
# ---------------------------------------------------------------------------


class AegisDynamicChecker:
    """Sampled *dynamic* survival for plain Aegis (ablation aid).

    The static :class:`AegisChecker` declares a block dead as soon as no
    slope separates *all* faults.  The real controller only ever sees the
    faults a write's verification reads reveal, so a marginal block can
    limp on until an unlucky data pattern arrives.  This checker replays
    that detection closure for ``samples`` random patterns per fault
    arrival; comparing it against the static criterion quantifies how
    conservative the static cut is (see ``benchmarks/test_ablations.py``).
    """

    def __init__(
        self,
        rect: Rectangle,
        rng: np.random.Generator,
        samples: int = 32,
    ) -> None:
        self.rect = rect
        self.rng = rng
        self.samples = samples
        self._rom = collision_rom_for(rect)
        self._partition = partition_for(rect)
        self.fault_offsets: list[int] = []
        self.stuck_values: list[int] = []
        self.alive = True
        self.slope = 0

    def _pattern_fails(self, data: np.ndarray) -> bool:
        """Replay one write's detection closure without touching cells."""
        offs = np.asarray(self.fault_offsets, dtype=np.int64)
        stuck = np.asarray(self.stuck_values, dtype=np.uint8)
        inversion = np.zeros(self.rect.b_size, dtype=np.uint8)
        slope = self.slope
        detected: set[int] = set()
        table = self._partition._table
        for _ in range(4 * len(offs) + self.rect.b_size + 4):
            groups = table[slope, offs]
            stored_wanted = data ^ inversion[groups]
            wrong = np.flatnonzero(stuck != stored_wanted)
            new_wrong = [int(offs[i]) for i in wrong]
            if not new_wrong:
                self.slope = slope
                return False
            detected.update(new_wrong)
            found = self._partition.find_separating_slope(detected, start=slope)
            if found is None:
                return True
            new_slope, _ = found
            if new_slope == slope:
                for i in wrong:
                    inversion[groups[i]] ^= 1
            else:
                slope = new_slope
                inversion[:] = 0
        raise AssertionError("dynamic closure did not converge")  # pragma: no cover

    def add_fault(self, offset: int, stuck_value: int) -> bool:
        if not self.alive:
            return False
        self.fault_offsets.append(offset)
        self.stuck_values.append(stuck_value)
        f = len(self.fault_offsets)
        if (f * (f - 1)) // 2 < self.rect.b_size:
            return True  # all faults separable: no pattern can fail
        for pattern in _draw_patterns(self.rng, self.samples, f):
            if self._pattern_fails(pattern):
                self.alive = False
                return False
        return True

    def group_members(self, offset: int) -> np.ndarray:
        group = self._partition.group_of(offset, self.slope)
        return self._partition.members_array(group, self.slope)
