"""The unified execution plane: one :class:`ExecContext` for every study.

Before this module existed the repository had four execution harnesses:
``page_sim`` studies took ``workers=``/``engine=`` kwargs, while the
pairing, PAYG and FREE-p remap simulators each hand-rolled a serial
per-page loop, and every experiment driver re-declared the same knobs.
Adding one execution flag meant editing a dozen drivers.

:class:`ExecContext` is the single carrier of *how* a study executes —
seed, worker count, engine selection, observability switches — created
once (``repro.cli`` builds it from the parsed arguments) and threaded
through ``repro.experiments`` into every simulator.  Two properties make
the plane uniform:

* **Field additions are two edits.**  :meth:`ExecContext.from_args` maps
  argparse attributes to fields by name, and drivers receive the whole
  context object, so a new execution flag touches this dataclass and the
  CLI parser — nothing else (asserted in ``tests/test_exec_plane.py``).
* **Execution never changes results.**  ``seed`` and ``fault_model`` are
  the only fields that may alter a simulated number (the fault model is a
  *scenario* knob, deliberately carried here so every driver honors it);
  ``workers`` and ``engine`` are pure performance knobs under the
  substream contract of
  :mod:`repro.sim.rng`.  Memoisation layers still key on
  :attr:`cache_key` — the *full* context — so mixed-engine or
  mixed-worker invocations can never alias a cached artefact that was
  produced under different settings.
"""

from __future__ import annotations

from dataclasses import dataclass, fields, replace

from repro.errors import ConfigurationError

#: the public engine switch values (mirrors repro.sim.kernels.ENGINES,
#: duplicated here so this module stays import-light and cycle-free)
ENGINE_CHOICES = ("auto", "vector", "scalar")

#: the public fault-model switch values (mirrors
#: repro.pcm.faults.FAULT_MODEL_CHOICES, duplicated for the same reason)
FAULT_MODEL_CHOICES = ("hard", "partial", "drift")


@dataclass(frozen=True)
class ExecContext:
    """How a study executes: seed, fan-out, engine, observability.

    Frozen and picklable; every field has a default so ``ExecContext()``
    is the serial, auto-engine context the tests use.  ``workers=None``
    (or 0) means all CPU cores, matching :func:`repro.sim.parallel.resolve_workers`.
    """

    seed: int = 2013
    workers: int | None = 1
    engine: str = "auto"
    fault_model: str = "hard"
    trace: bool = False
    metrics: bool = False
    profile: bool = False

    def __post_init__(self) -> None:
        if self.engine not in ENGINE_CHOICES:
            raise ConfigurationError(
                f"engine must be one of {ENGINE_CHOICES}, got {self.engine!r}"
            )
        if self.fault_model not in FAULT_MODEL_CHOICES:
            raise ConfigurationError(
                f"fault model must be one of {FAULT_MODEL_CHOICES}, "
                f"got {self.fault_model!r}"
            )
        if self.workers is not None and self.workers < 0:
            raise ConfigurationError(
                f"workers must be non-negative or None, got {self.workers}"
            )

    @classmethod
    def from_args(cls, args: object, **overrides: object) -> "ExecContext":
        """Build a context from an ``argparse.Namespace``.

        Fields are matched to argument attributes *by name*, boolean
        fields by truthiness (so a ``--trace PATH`` option maps onto the
        ``trace`` flag).  Attributes the namespace lacks keep their
        defaults, which is what lets a new field reach every driver by
        editing only this class and the CLI parser.
        """
        values: dict[str, object] = {}
        for field in fields(cls):
            if field.name in overrides:
                values[field.name] = overrides[field.name]
                continue
            if not hasattr(args, field.name):
                continue
            raw = getattr(args, field.name)
            values[field.name] = bool(raw) if isinstance(field.default, bool) else raw
        return cls(**values)

    def with_options(self, **overrides: object) -> "ExecContext":
        """A copy with ``overrides`` applied; unknown names raise.

        The strict counterpart of ``dataclasses.replace`` used by the
        experiment dispatcher to fold legacy ``seed=``/``workers=``/
        ``engine=`` kwargs into the context.
        """
        known = {field.name for field in fields(self)}
        unknown = sorted(set(overrides) - known)
        if unknown:
            raise ConfigurationError(
                f"unknown ExecContext field(s): {', '.join(unknown)}; "
                f"known: {', '.join(sorted(known))}"
            )
        return replace(self, **overrides)  # type: ignore[arg-type]

    @property
    def cache_key(self) -> tuple:
        """Every field as a hashable tuple, for memoisation keys.

        Deliberately the *full* context: workers and engine do not change
        simulated numbers, but keying on them guarantees a cache can
        never hand back an artefact produced under different execution
        settings (mixed-engine invocations must not alias).
        """
        return tuple((field.name, getattr(self, field.name)) for field in fields(self))

    def describe(self) -> str:
        """One-line human-readable form (used by reports and logs).

        The fault model only appears when it deviates from the hard
        default, keeping every historical report string stable.
        """
        workers = "all-cores" if self.workers in (None, 0) else str(self.workers)
        line = f"seed={self.seed} workers={workers} engine={self.engine}"
        if self.fault_model != "hard":
            line += f" fault-model={self.fault_model}"
        return line
