"""Block-level Monte Carlo (Figures 8 and 10).

Figure 8 asks for the probability a single data block has failed once it
holds ``f`` faults.  Fault *positions* arrive in uniformly random order
(cell endurances are i.i.d., so death order is a uniform permutation) with
uniformly random stuck-at values; each arrival is fed to the scheme's
incremental checker and the fault count at death is recorded.

Figure 10 asks for a block's *lifetime in writes*, which additionally needs
the death times: endurances are sampled from the lifetime model, converted
to page-write time via the differential-write probability, and the lifetime
is the arrival time of the fatal fault (with the same inversion-wear
acceleration as the page simulator where applicable).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

import numpy as np

from repro.pcm.faults import FaultModel, HardStuckAt, fault_model_for
from repro.pcm.lifetime import LifetimeModel, NormalLifetime
from repro.sim import kernels
from repro.sim.page_sim import (
    DEFAULT_INVERSION_WEAR,
    DEFAULT_WRITE_PROBABILITY,
)
from repro.sim.rng import rng_for
from repro.sim.roster import SchemeSpec
from repro.util.stats import MeanEstimate, mean_ci

_NORMAL, _ACCELERATED, _DEAD = 0, 1, 2


@dataclass(frozen=True)
class FailureCurve:
    """Empirical block failure probability by fault count (one Figure 8 line)."""

    spec_key: str
    label: str
    overhead_bits: int
    fault_counts: tuple[int, ...]
    probabilities: tuple[float, ...]

    def probability_at(self, fault_count: int) -> float:
        if fault_count < self.fault_counts[0]:
            return 0.0
        if fault_count >= self.fault_counts[-1]:
            return self.probabilities[-1]
        return self.probabilities[fault_count - self.fault_counts[0]]


def faults_at_death(
    spec: SchemeSpec,
    rng: np.random.Generator,
    fault_model: "FaultModel | str | None" = None,
) -> int:
    """Feed uniformly random fault arrivals to one block until it dies;
    returns the fault count at death (including the fatal fault).

    A non-hard ``fault_model`` reshapes the arrival stream (masked partial
    faults skip the checker, drift bursts arrive together); the reported
    count stays in *original* arrivals, masked faults included.
    """
    model = fault_model_for(fault_model)
    checker = spec.make_checker(rng)
    positions = rng.permutation(spec.n_bits)
    if isinstance(model, HardStuckAt):
        for count, offset in enumerate(positions, start=1):
            stuck_value = int(rng.integers(0, 2))
            if not checker.add_fault(int(offset), stuck_value):
                return count
        raise AssertionError(
            f"{spec.label}: block survived all {spec.n_bits} faults"
        )  # pragma: no cover - every scheme dies before saturation
    stream, numbers = model.transform_arrivals(positions, rng)
    for step, offset in enumerate(stream):
        stuck_value = int(rng.integers(0, 2))
        if not checker.add_fault(int(offset), stuck_value):
            return step + 1 if numbers is None else int(numbers[step])
    raise AssertionError(
        f"{spec.label}: block survived all {spec.n_bits} faults"
    )  # pragma: no cover - every scheme dies before saturation


def failure_curve(
    spec: SchemeSpec,
    *,
    trials: int = 2000,
    max_faults: int = 40,
    seed: int = 2013,
    engine: str = "auto",
    fault_model: "FaultModel | str | None" = None,
) -> FailureCurve:
    """Estimate P(block failed | f faults present) for f = 1..max_faults.

    ``engine`` selects the execution path: ``"scalar"`` walks each trial
    through the incremental checker, ``"vector"`` advances the whole trial
    population per fault arrival with the batch kernels of
    :mod:`repro.sim.kernels` (falling back to scalar for schemes without a
    kernel), ``"auto"`` picks the kernel whenever one exists.  Both paths
    consume the same ``rng_for(seed, trial)`` substreams and return
    bit-identical curves.  ``fault_model`` selects the arrival statistics
    (:mod:`repro.pcm.faults`); the hard default takes exactly the
    historical code path.
    """
    model = fault_model_for(fault_model)
    hard = isinstance(model, HardStuckAt)
    if trials > 0 and kernels.resolve_engine(engine, spec) == "vector":
        if hard:
            positions = np.stack(
                [
                    rng_for(seed, trial).permutation(spec.n_bits)
                    for trial in range(trials)
                ]
            )
            deaths = kernels.death_indices(spec, positions)
        else:
            # the model reshapes each trial's arrival stream from the same
            # substream position the scalar walk uses, so the unchanged
            # batch checker stays bit-identical to the scalar path
            streams = []
            number_rows = []
            for trial in range(trials):
                rng = rng_for(seed, trial)
                stream, numbers = model.transform_arrivals(
                    rng.permutation(spec.n_bits), rng
                )
                streams.append(stream)
                number_rows.append(numbers)
            raw = kernels.death_indices(spec, np.stack(streams))
            deaths = np.array(
                [
                    int(k) if numbers is None else int(numbers[int(k) - 1])
                    for k, numbers in zip(raw, number_rows)
                ]
            )
    else:
        deaths = np.array(
            [
                faults_at_death(spec, rng_for(seed, trial), model)
                for trial in range(trials)
            ]
        )
    counts = tuple(range(1, max_faults + 1))
    probabilities = tuple(float((deaths <= f).mean()) for f in counts)
    return FailureCurve(
        spec_key=spec.key,
        label=spec.label,
        overhead_bits=spec.overhead_bits,
        fault_counts=counts,
        probabilities=probabilities,
    )


@dataclass(frozen=True)
class BlockLifetimeStudy:
    """Block lifetime in writes (one Figure 10 point)."""

    spec_key: str
    label: str
    overhead_bits: int
    lifetime: MeanEstimate
    faults: MeanEstimate


def block_lifetime(
    spec: SchemeSpec,
    rng: np.random.Generator,
    *,
    lifetime_model: LifetimeModel | None = None,
    write_probability: float = DEFAULT_WRITE_PROBABILITY,
    inversion_wear_rate: float = DEFAULT_INVERSION_WEAR,
    engine: str = "auto",
    fault_model: "FaultModel | str | None" = None,
) -> tuple[float, int]:
    """One block's (lifetime in writes, faults at death) under ``spec``.

    Both engines sample the cell endurances from ``rng`` first (and apply
    the fault model's death-time transform from the same substream
    position) and the batched scheduler replicates the scalar tie-breaking
    exactly (duplicated death times included), so the vector path returns
    exactly what the scalar path would.
    """
    model = lifetime_model if lifetime_model is not None else NormalLifetime()
    fmodel = fault_model_for(fault_model)
    if kernels.resolve_engine(engine, spec) == "vector":
        endurance = model.sample(spec.n_bits, rng)
        base_death = endurance / write_probability
        shaped, masked = fmodel.transform_base_death(base_death, spec.n_bits, rng)
        result = kernels.block_dynamics(
            spec,
            shaped[None, :],
            write_probability=write_probability,
            inversion_wear_rate=inversion_wear_rate,
        )
        lifetime = float(result.death_time[0])
        faults = int(result.death_faults[0])
        if masked is not None:
            # masked partial faults never reach the checker but are still
            # faults present in the block at death
            faults += int((base_death[masked] <= lifetime).sum())
        return lifetime, faults
    return _block_lifetime_scalar(
        spec, rng, model, write_probability, inversion_wear_rate, fmodel
    )


def _block_lifetime_scalar(
    spec: SchemeSpec,
    rng: np.random.Generator,
    model: LifetimeModel,
    write_probability: float,
    inversion_wear_rate: float,
    fmodel: FaultModel | None = None,
) -> tuple[float, int]:
    n_bits = spec.n_bits
    endurance = model.sample(n_bits, rng)
    base_death = endurance / write_probability
    original_death = base_death
    masked = None
    if fmodel is not None and not isinstance(fmodel, HardStuckAt):
        base_death, masked = fmodel.transform_base_death(base_death, n_bits, rng)
    order = np.argsort(base_death)
    status = np.zeros(n_bits, dtype=np.int8)
    checker = spec.make_checker(rng)
    accel_rate = write_probability + inversion_wear_rate
    apply_wear = spec.inversion_wear and inversion_wear_rate > 0
    heap: list[tuple[float, int]] = []
    cursor = 0
    deaths = 0
    while True:
        while cursor < n_bits and status[order[cursor]] != _NORMAL:
            cursor += 1
        t_base = float(base_death[order[cursor]]) if cursor < n_bits else np.inf
        t_heap = heap[0][0] if heap else np.inf
        if t_base <= t_heap:
            if cursor >= n_bits:
                raise AssertionError(
                    "block outlived every cell"
                )  # pragma: no cover
            now, cell = t_base, int(order[cursor])
            cursor += 1
        else:
            now, cell = heapq.heappop(heap)
            cell = int(cell)
            if status[cell] == _DEAD:
                continue
        status[cell] = _DEAD
        deaths += 1
        stuck_value = int(rng.integers(0, 2))
        if not checker.add_fault(cell, stuck_value):
            if masked is not None:
                # masked partial faults skipped the checker but are still
                # faults present in the block at death
                deaths += int((original_death[masked] <= now).sum())
            return now, deaths
        if apply_wear:
            for member in checker.group_members(cell):
                mate = int(member)
                if status[mate] != _NORMAL:
                    continue
                status[mate] = _ACCELERATED
                remaining = max(float(base_death[mate]) - now, 0.0)
                heapq.heappush(
                    heap, (now + remaining * write_probability / accel_rate, mate)
                )


def block_lifetime_study(
    spec: SchemeSpec,
    *,
    trials: int = 200,
    seed: int = 2013,
    lifetime_model: LifetimeModel | None = None,
    write_probability: float = DEFAULT_WRITE_PROBABILITY,
    inversion_wear_rate: float = DEFAULT_INVERSION_WEAR,
    engine: str = "auto",
    fault_model: "FaultModel | str | None" = None,
) -> BlockLifetimeStudy:
    """Mean block lifetime over ``trials`` independent blocks.

    With a vector-capable scheme all trials advance through one batched
    :func:`repro.sim.kernels.block_dynamics` call that replicates the
    scalar scheduler's tie-breaking exactly, so the study is bit-identical
    to the scalar engine.
    """
    lifetimes: list[float] = []
    fault_counts: list[int] = []
    model = lifetime_model if lifetime_model is not None else NormalLifetime()
    fmodel = fault_model_for(fault_model)
    hard = isinstance(fmodel, HardStuckAt)
    if trials > 0 and kernels.resolve_engine(engine, spec) == "vector":
        rows = []
        corrections: list[tuple[np.ndarray, np.ndarray] | None] = []
        for trial in range(trials):
            rng = rng_for(seed, trial)
            base_death = model.sample(spec.n_bits, rng) / write_probability
            if hard:
                rows.append(base_death)
                corrections.append(None)
            else:
                shaped, masked = fmodel.transform_base_death(
                    base_death, spec.n_bits, rng
                )
                rows.append(shaped)
                corrections.append(
                    None if masked is None else (base_death, masked)
                )
        result = kernels.block_dynamics(
            spec,
            np.stack(rows),
            write_probability=write_probability,
            inversion_wear_rate=inversion_wear_rate,
        )
        lifetimes = [float(t) for t in result.death_time]
        fault_counts = [int(f) for f in result.death_faults]
        for trial, correction in enumerate(corrections):
            if correction is not None:
                base_death, masked = correction
                fault_counts[trial] += int(
                    (base_death[masked] <= lifetimes[trial]).sum()
                )
    else:
        for trial in range(trials):
            lifetime, faults = block_lifetime(
                spec,
                rng_for(seed, trial),
                lifetime_model=lifetime_model,
                write_probability=write_probability,
                inversion_wear_rate=inversion_wear_rate,
                engine="scalar",
                fault_model=fmodel,
            )
            lifetimes.append(lifetime)
            fault_counts.append(faults)
    return BlockLifetimeStudy(
        spec_key=spec.key,
        label=spec.label,
        overhead_bits=spec.overhead_bits,
        lifetime=mean_ci(lifetimes),
        faults=mean_ci(fault_counts),
    )
