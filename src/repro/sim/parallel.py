"""Parallel execution layer for the page-level Monte Carlo engine.

Page trials are embarrassingly parallel: page ``i`` of a study draws every
random number from the substream ``rng_for(seed, i)`` (:mod:`repro.sim.rng`),
so its :class:`~repro.sim.page_sim.PageResult` is a pure function of
``(spec, blocks_per_page, seed, i, model parameters)`` — independent of
which process computes it and in what order.  :class:`SimExecutor` exploits
that contract to fan page simulations out over a ``concurrent.futures``
process pool in deterministic contiguous chunks and reassemble the results
in page-index order, which makes ``workers=1`` and ``workers=N`` produce
bit-identical studies (asserted in ``tests/test_parallel.py`` and tracked
by ``benchmarks/bench_sim.py``).

The same structural trick Aegis applies at the bit level — partition the
work so per-partition state never interacts — applied at the trial level.

Design notes
------------
* Tasks cross the process boundary by pickle, which is why every
  :class:`~repro.sim.roster.SchemeSpec` factory is a module-level
  ``functools.partial`` rather than a lambda.
* Worker processes rebuild the per-formation lookup tables (collision ROM,
  partition tables) once each via the ``lru_cache``'d constructors in
  :mod:`repro.core` — cheap relative to even a single page simulation.
* The executor degrades to the serial path when ``workers`` resolves to 1,
  when a tracing ``observer`` is attached (callbacks cannot cross the
  process boundary), or when the platform refuses to start a pool — the
  results are identical either way, only wall-clock changes.
* An opt-in :class:`repro.obs.profiler.Profiler` (explicit or installed
  process-wide via ``--profile``) times the scatter/gather/serial phases;
  the timings are wall-clock and never touch the deterministic results.
"""

from __future__ import annotations

import os
from collections.abc import Iterator, Sequence
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.errors import ConfigurationError
from repro.obs.metrics import get_metrics
from repro.obs.profiler import NullProfiler, Profiler, get_profiler
from repro.obs.tracer import get_tracer
from repro.sim.context import ExecContext
from repro.sim.rng import rng_for
from repro.util.stats import MeanEstimate, mean_ci

try:  # pragma: no cover - alias is version-dependent
    from concurrent.futures.process import BrokenProcessPool as BrokenProcessPoolError
except ImportError:  # pragma: no cover
    BrokenProcessPoolError = RuntimeError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (page_sim imports us)
    from repro.pcm.faults import FaultModel
    from repro.pcm.lifetime import LifetimeModel
    from repro.sim.page_sim import PageResult
    from repro.sim.roster import SchemeSpec

#: pages handed to a worker per chunk; small enough to load-balance the
#: slow sampled schemes, large enough to amortise the pickle round-trip
DEFAULT_CHUNK_PAGES = 4

#: in-flight chunk futures per worker when no explicit window is given;
#: bounds both the submission queue and the out-of-order result buffer
DEFAULT_WINDOW_PER_WORKER = 4


def resolve_workers(workers: int | None) -> int:
    """Normalise a ``workers`` request: ``None``/``0`` mean all cores."""
    if workers is None or workers == 0:
        return os.cpu_count() or 1
    if workers < 0:
        raise ConfigurationError(f"workers must be positive, got {workers}")
    return workers


@dataclass(frozen=True)
class PageTask:
    """Everything a worker needs to simulate any page of one study.

    Frozen and fully picklable; the page index itself is supplied per
    chunk, so one task object describes the whole study.
    """

    spec: "SchemeSpec"
    blocks_per_page: int
    seed: int
    lifetime_model: "LifetimeModel | None"
    write_probability: float
    inversion_wear_rate: float
    engine: str = "auto"
    #: fault-model name or instance (repro.pcm.faults); "hard" = paper model
    fault_model: "FaultModel | str" = "hard"


def simulate_task_page(task: PageTask, page_index: int) -> "PageResult":
    """Simulate one page of a task — the unit of work on both paths."""
    from repro.sim.page_sim import simulate_page

    return simulate_page(
        task.spec,
        task.blocks_per_page,
        rng_for(task.seed, page_index),
        lifetime_model=task.lifetime_model,
        write_probability=task.write_probability,
        inversion_wear_rate=task.inversion_wear_rate,
        engine=task.engine,
        fault_model=task.fault_model,
    )


def simulate_task_pages(task: PageTask, page_indices: tuple[int, ...]) -> list:
    """Simulate a run of a task's pages in one call.

    The chunk-level unit of work: with a vector-capable scheme the whole
    run advances through the batch kernels together
    (:func:`repro.sim.page_sim.simulate_pages`), so worker processes and
    in-process batching multiply.  Per-page substreams keep the result
    equal to mapping :func:`simulate_task_page` over the indices.
    """
    from repro.sim.page_sim import simulate_pages

    return simulate_pages(
        task.spec,
        task.blocks_per_page,
        page_indices,
        task.seed,
        lifetime_model=task.lifetime_model,
        write_probability=task.write_probability,
        inversion_wear_rate=task.inversion_wear_rate,
        engine=task.engine,
        fault_model=task.fault_model,
    )


def _run_chunk(fn, task, indices: tuple[int, ...]) -> list:
    """Generic worker entry point: apply ``fn(task, index)`` over a chunk."""
    return [fn(task, index) for index in indices]


def _chunked(indices: Sequence[int], chunk_pages: int) -> list[tuple[int, ...]]:
    return [
        tuple(indices[start : start + chunk_pages])
        for start in range(0, len(indices), chunk_pages)
    ]


class SimExecutor:
    """Deterministic page-simulation fan-out over a process pool.

    ``run_pages`` returns results in page-index order regardless of
    completion order, so callers observe exactly the serial sequence.
    Chunks are dispatched under a bounded in-flight window
    (:attr:`window_chunks`) and consumed as they complete, so arbitrarily
    large scatters never queue more than a window of futures and a slow
    chunk never pins later results in pool memory; :meth:`imap_chunks`
    exposes the same machinery as a stream for out-of-core callers.

    The pool persists across calls for the executor's lifetime — the
    fleet campaign engine shares one executor (and its warm, pre-primed
    worker pool) across every study of a campaign.  Use as a context
    manager, or call :meth:`close` when done.
    """

    def __init__(
        self,
        workers: int | None = None,
        *,
        chunk_pages: int = DEFAULT_CHUNK_PAGES,
        profiler: "Profiler | NullProfiler | None" = None,
        window_chunks: int | None = None,
        initializer=None,
        initargs: tuple = (),
    ) -> None:
        if chunk_pages < 1:
            raise ConfigurationError(f"chunk_pages must be positive, got {chunk_pages}")
        if window_chunks is not None and window_chunks < 1:
            raise ConfigurationError(
                f"window_chunks must be positive, got {window_chunks}"
            )
        self.workers = resolve_workers(workers)
        self.chunk_pages = chunk_pages
        self.profiler = profiler
        #: bounded in-flight futures per scatter: backpressure instead of a
        #: million queued futures when a campaign streams millions of pages
        self.window_chunks = (
            window_chunks
            if window_chunks is not None
            else max(self.workers * DEFAULT_WINDOW_PER_WORKER, 8)
        )
        #: module-level pre-warm callable run once per worker process (the
        #: fleet engine primes the formation/collision/SAFER table caches
        #: here instead of lazily on each worker's first chunk)
        self._initializer = initializer
        self._initargs = tuple(initargs)
        self._pool: ProcessPoolExecutor | None = None
        self._pool_broken = False

    def _profiler(self) -> "Profiler | NullProfiler":
        """The explicit profiler, or the process-wide one (``--profile``).

        Resolved per call so a profiler installed after construction is
        still picked up; timings are wall-clock and never feed the
        deterministic results.
        """
        return self.profiler if self.profiler is not None else get_profiler()

    @property
    def parallel(self) -> bool:
        """Whether this executor will attempt to use worker processes."""
        return self.workers > 1 and not self._pool_broken

    def __enter__(self) -> "SimExecutor":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def _ensure_pool(self, n_chunks: int) -> ProcessPoolExecutor | None:
        if not self.parallel or n_chunks < 2:
            return None
        if self._pool is None:
            # the pool is sized for the executor's lifetime, not the first
            # request: a persistent executor shared across campaign studies
            # must not be capped by its smallest scatter
            try:
                self._pool = ProcessPoolExecutor(
                    max_workers=self.workers,
                    initializer=self._initializer,
                    initargs=self._initargs,
                )
            except (OSError, ValueError, RuntimeError):
                # sandboxed/exotic platforms without working multiprocessing:
                # fall back to the serial path for the rest of this executor
                self._pool_broken = True
                return None
        return self._pool

    def _gather_windowed(self, submit, total: int) -> Iterator:
        """Yield chunk results in chunk-index order under a bounded window.

        ``submit(index)`` schedules chunk ``index`` on the pool.  At most
        :attr:`window_chunks` futures are in flight; completed futures are
        consumed as they finish (their payloads move into a bounded reorder
        buffer and the future is released), so one slow chunk no longer
        pins every later chunk's result in pool memory or stalls further
        submissions.  Emission order is always submission order — the
        windowing is invisible to callers.
        """
        pending: dict = {}
        ready: dict[int, object] = {}
        next_submit = 0
        next_emit = 0
        while next_emit < total:
            while next_submit < total and len(pending) < self.window_chunks:
                pending[submit(next_submit)] = next_submit
                next_submit += 1
            if next_emit in ready:
                yield ready.pop(next_emit)
                next_emit += 1
                continue
            done, _ = wait(tuple(pending), return_when=FIRST_COMPLETED)
            for future in done:
                ready[pending.pop(future)] = future.result()

    def run_pages(self, task: PageTask, page_indices: Sequence[int]) -> list:
        """Simulate ``page_indices`` and return results in index order.

        Unlike the per-index :meth:`map_indices`, pages are dispatched in
        chunk-sized batches of :func:`simulate_task_pages` so the vector
        kernels amortise across a worker's whole chunk; on the serial path
        the entire request becomes one batched call.  Results are
        identical either way — batching is purely an execution strategy.
        """
        indices = list(page_indices)
        if not indices:
            return []
        profiler = self._profiler()
        chunks = _chunked(indices, self.chunk_pages)
        pool = self._ensure_pool(len(chunks))
        if pool is None:
            with profiler.phase("executor.serial"):
                return simulate_task_pages(task, tuple(indices))
        try:
            with profiler.phase("executor.gather"):
                results: list = []
                for chunk_results in self._gather_windowed(
                    lambda i: pool.submit(simulate_task_pages, task, chunks[i]),
                    len(chunks),
                ):
                    results.extend(chunk_results)
            return results
        except (OSError, RuntimeError, BrokenProcessPoolError):
            # a dead pool (killed worker, fork failure) must not lose the
            # study: recompute serially — determinism makes this safe
            self._pool_broken = True
            self.close()
            with profiler.phase("executor.serial"):
                return simulate_task_pages(task, tuple(indices))

    def map_indices(self, fn, task, indices: Sequence[int]) -> list:
        """Apply ``fn(task, index)`` over ``indices``, results in index order.

        The generic fan-out behind :meth:`run_pages`, also used by the
        service layer's load generator (:mod:`repro.service.loadgen`).
        ``fn`` must be a module-level callable and ``task`` picklable so
        chunks can cross the process boundary; ``fn(task, index)`` must be a
        pure function of its arguments, which is what makes every worker
        count produce identical results.
        """
        indices = list(indices)
        if not indices:
            return []
        profiler = self._profiler()
        chunks = _chunked(indices, self.chunk_pages)
        pool = self._ensure_pool(len(chunks))
        if pool is None:
            with profiler.phase("executor.serial"):
                return [fn(task, index) for index in indices]
        try:
            with profiler.phase("executor.gather"):
                results: list = []
                for chunk_results in self._gather_windowed(
                    lambda i: pool.submit(_run_chunk, fn, task, chunks[i]),
                    len(chunks),
                ):
                    results.extend(chunk_results)
            return results
        except (OSError, RuntimeError, BrokenProcessPoolError):
            # a dead pool (killed worker, fork failure) must not lose the
            # study: recompute serially — determinism makes this safe
            self._pool_broken = True
            self.close()
            with profiler.phase("executor.serial"):
                return [fn(task, index) for index in indices]

    def imap_chunks(self, fn, task, chunks: Sequence[tuple[int, ...]]) -> Iterator:
        """Stream ``fn(task, chunk)`` per chunk, in chunk order.

        The out-of-core primitive behind the fleet campaign engine
        (:mod:`repro.fleet`): unlike :meth:`run_pages`/:meth:`map_indices`
        nothing is accumulated here — each chunk's result is yielded as
        soon as every earlier chunk has been emitted, so a caller folding
        results into a running aggregate holds O(window) chunk results at
        peak, never O(study).  ``fn`` must be a module-level callable and
        ``fn(task, chunk)`` a pure function of its arguments; chunks are
        dispatched under the bounded in-flight window and emitted in
        deterministic chunk order, so the caller's fold order — and any
        digest over it — is identical for every worker count.

        A pool that breaks mid-stream does not lose the campaign: chunks
        not yet emitted are recomputed serially (already-yielded results
        stay valid — purity makes the recompute bit-identical).
        """
        chunks = [tuple(chunk) for chunk in chunks]
        if not chunks:
            return
        profiler = self._profiler()
        pool = self._ensure_pool(len(chunks))
        if pool is None:
            for chunk in chunks:
                with profiler.phase("executor.serial"):
                    result = fn(task, chunk)
                yield result
            return
        emitted = 0
        gather = self._gather_windowed(
            lambda i: pool.submit(fn, task, chunks[i]), len(chunks)
        )
        while True:
            # next() is wrapped — not the yield — so a consumer exception
            # thrown into the generator is never mistaken for a dead pool
            try:
                result = next(gather)
            except StopIteration:
                return
            except (OSError, RuntimeError, BrokenProcessPoolError):
                # recompute only the tail the pool never delivered
                self._pool_broken = True
                self.close()
                for chunk in chunks[emitted:]:
                    with profiler.phase("executor.serial"):
                        result = fn(task, chunk)
                    yield result
                return
            emitted += 1
            yield result


class StudyRunner:
    """The generic study harness of the unified execution plane.

    Every Monte Carlo study in this repository has the same shape: fan a
    picklable per-index task over :meth:`SimExecutor.map_indices`, merge
    the shards in deterministic index order, and reduce the merged rows
    into :class:`~repro.util.stats.MeanEstimate` aggregates.  This class
    owns that pattern once — extracted from ``page_sim.run_page_study``
    and shared by the pairing, PAYG and FREE-p remap simulators — so a
    study gains multi-core fan-out, span trees and worker-count-invariant
    results by supplying only its task dataclass and module-level
    per-index function.

    Span contract (recorded parent-side, so traces are bit-identical for
    every worker count): ``<name>_study`` wraps the whole run, with a
    ``fan_out`` child around the executor scatter/gather and, when a
    ``reduce`` callable is given, a ``reduce`` child around aggregation.
    """

    def __init__(
        self,
        name: str,
        ctx: "ExecContext | None" = None,
        *,
        chunk_pages: int = DEFAULT_CHUNK_PAGES,
        profiler: "Profiler | NullProfiler | None" = None,
        executor: "SimExecutor | None" = None,
    ) -> None:
        self.name = name
        self.ctx = ctx if ctx is not None else ExecContext()
        # a borrowed executor is the campaign engine's persistent pool:
        # studies share one warm worker pool instead of rebuilding (and
        # re-priming the lookup-table caches of) a cold pool per study,
        # so close() must leave it running for the next study
        self._owns_executor = executor is None
        self.executor = (
            executor
            if executor is not None
            else SimExecutor(self.ctx.workers, chunk_pages=chunk_pages, profiler=profiler)
        )

    @property
    def workers(self) -> int:
        """The resolved worker count (``None``/``0`` became all cores)."""
        return self.executor.workers

    def __enter__(self) -> "StudyRunner":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def close(self) -> None:
        """Shut the executor down — unless it was borrowed (persistent
        pools outlive the studies that share them)."""
        if self._owns_executor:
            self.executor.close()

    def map(self, fn, task, indices: Sequence[int]) -> list:
        """Bare deterministic fan-out (no spans): results in index order."""
        return self.executor.map_indices(fn, task, indices)

    def map_pages(self, task: PageTask, indices: Sequence[int]) -> list:
        """Bare page-batch fan-out, for :class:`PageTask`-shaped work."""
        return self.executor.run_pages(task, indices)

    def run(self, fn, task, indices: Sequence[int], *, reduce=None, **attrs):
        """Fan ``fn(task, i)`` over ``indices``; optionally reduce.

        Returns the index-ordered result list, or — when ``reduce`` is
        given — ``reduce(results)``, evaluated inside a ``reduce`` span
        so the study's aggregation phase shows up in trace trees.  The
        per-study item count is recorded on the process-wide metrics
        registry under ``study_items_total{study=<name>}``.
        """
        indices = list(indices)
        tracer = get_tracer()
        with tracer.span(
            f"{self.name}_study", workers=self.workers, **attrs
        ) as span:
            with tracer.span("fan_out", study=self.name):
                results = self.executor.map_indices(fn, task, indices)
            span.cost(items=len(results))
            registry = get_metrics()
            if registry is not None:
                registry.inc("study_items_total", len(results), study=self.name)
            if reduce is None:
                return results
            with tracer.span("reduce", study=self.name):
                return reduce(results)

    @staticmethod
    def mean_columns(
        results: Sequence[Sequence[float]], names: Sequence[str]
    ) -> dict[str, MeanEstimate]:
        """Per-column 95% CI estimates over row-shaped study results.

        ``names[i]`` labels column ``i`` of each result row — the shared
        accumulate-``MeanEstimate`` tail of every study.
        """
        return {
            name: mean_ci([float(row[column]) for row in results])
            for column, name in enumerate(names)
        }
