"""A deterministic closed-loop load generator for the memory-array service.

The generator shards a logical address space across independent
:class:`~repro.service.array.MemoryArray` instances (the way a production
array shards traffic across channels), drives each shard closed-loop with
one of the existing :class:`~repro.pcm.workload.Workload` generators, and
fans the shards over :class:`~repro.sim.parallel.SimExecutor` worker
processes.

Determinism contract
--------------------
Shard ``i`` draws every random number from ``rng_for(seed, i, 41)`` and
builds its own workload instance (the fork-safety contract of
:mod:`repro.pcm.workload`), so a shard's result is a pure function of
``(task, i)`` — independent of the worker count and of scheduling.  The
merged telemetry snapshot is therefore bit-identical for ``--workers
1/2/4``; only wall-clock throughput changes.  The shard count is part of
the experiment definition, *not* derived from the worker count, precisely
so that parallelism never changes the simulated numbers.

Every shard also keeps a shadow copy of the last payload written to each
address and audits read-after-write integrity — online on every read, and
in a final sweep over all surviving addresses — so the load generator
doubles as the service layer's end-to-end correctness check under
injected wear and stuck-at faults.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigurationError
from repro.obs.profiler import NullProfiler, Profiler
from repro.obs.timeseries import TimeSeriesRecorder
from repro.obs.tracer import NullTracer, Tracer
from repro.pcm.failcache import DirectMappedFailCache, SequentialBlockKeys
from repro.pcm.faults import fault_model_for
from repro.pcm.lifetime import LifetimeModel, NormalLifetime
from repro.pcm.workload import (
    HotColdWorkload,
    UniformWorkload,
    Workload,
    ZipfWorkload,
)
from repro.service.array import MemoryArray
from repro.service.controller import ServiceController
from repro.service.kernels import validate_engine
from repro.service.policy import validate_policy
from repro.service.telemetry import DEFAULT_EVENT_CAP, ServiceTelemetry
from repro.sim.parallel import SimExecutor
from repro.sim.rng import rng_for
from repro.sim.roster import SchemeSpec

#: workload kinds the generator can build per shard
WORKLOAD_KINDS = ("uniform", "zipf", "hotcold")


def build_workload(kind: str, params: dict[str, float] | None = None) -> Workload:
    """Construct a fresh workload instance from its registry name."""
    params = params or {}
    if kind == "uniform":
        return UniformWorkload()
    if kind == "zipf":
        return ZipfWorkload(alpha=float(params.get("alpha", 1.0)))
    if kind == "hotcold":
        return HotColdWorkload(
            hot_fraction=float(params.get("hot_fraction", 0.1)),
            hot_share=float(params.get("hot_share", 0.9)),
        )
    raise ConfigurationError(
        f"unknown workload {kind!r}; expected one of {WORKLOAD_KINDS}"
    )


@dataclass(frozen=True)
class ShardTask:
    """Everything a worker needs to run any shard of one load run.

    Frozen and picklable (the spec's factories are module-level partials);
    the shard index arrives separately, so one task describes the run.
    ``ops_extra`` spreads a non-divisible op count: shards below it run one
    extra op, keeping per-shard work independent of the worker count.
    """

    spec: SchemeSpec
    n_addresses: int
    spares: int
    ops_base: int
    ops_extra: int
    seed: int
    workload_kind: str
    workload_params: tuple[tuple[str, float], ...]
    lifetime_model: LifetimeModel
    read_fraction: float
    buffer_capacity: int
    degrade_threshold: int | None
    fail_cache_capacity: int | None
    use_fail_cache: bool
    proactive_migration: bool
    snapshot_interval: int
    #: drain engine for every shard ("auto" | "vector" | "scalar"); never
    #: part of the snapshot because results are engine-invariant
    engine: str = "auto"
    #: trace every N-th root span (0 disables tracing entirely)
    trace_sample: int = 0
    #: always keep root spans whose tree contains an error
    trace_errors: bool = True
    #: event-log ring capacity per shard (0 = unbounded)
    event_cap: int = DEFAULT_EVENT_CAP
    #: collect wall-clock phase timings (informational, non-deterministic)
    profile: bool = False
    #: op-clock bucket width for time-series sampling (0 disables it);
    #: buckets are on each shard's own op clock, so the merged series is
    #: worker-count and engine invariant like the rest of the snapshot
    series_bucket: int = 0
    #: cell fault statistics for every shard's array (a registry name of
    #: :mod:`repro.pcm.faults`); "hard" reproduces the historical runs
    #: byte-for-byte
    fault_model: str = "hard"
    #: controller scheme policy ("fixed" | "adaptive"); adaptive runs are
    #: exactly as worker/engine invariant as fixed ones
    policy: str = "fixed"

    def ops_for(self, shard_index: int) -> int:
        return self.ops_base + (1 if shard_index < self.ops_extra else 0)

    def make_tracer(self) -> Tracer | NullTracer:
        if self.trace_sample < 1:
            return NullTracer()
        return Tracer(sample_every=self.trace_sample, sample_errors=self.trace_errors)


@dataclass
class ShardResult:
    """One shard's deterministic telemetry plus its (informational) timing."""

    shard_index: int
    ops: int
    telemetry: ServiceTelemetry
    capacity: dict[str, object]
    elapsed: float
    #: wall-clock phase totals when profiling was requested (never merged
    #: into the deterministic snapshot)
    profile: dict | None = None


def run_shard(task: ShardTask, shard_index: int) -> ShardResult:
    """Run one shard — a pure function of ``(task, shard_index)`` except
    for the ``elapsed``/``profile`` wall-clock fields."""
    profiler = Profiler() if task.profile else NullProfiler()
    rng = rng_for(task.seed, shard_index, 41)
    telemetry = ServiceTelemetry(event_cap=task.event_cap, tracer=task.make_tracer())
    recorder = None
    if task.series_bucket:
        recorder = telemetry.attach_timeseries(
            TimeSeriesRecorder(
                telemetry.metrics, bucket_width=task.series_bucket, auto=True
            )
        )
    with profiler.phase("shard.build"):
        fail_cache = (
            DirectMappedFailCache(task.fail_cache_capacity, key_of=SequentialBlockKeys())
            if task.use_fail_cache
            else None
        )
        array = MemoryArray(
            task.n_addresses,
            task.spec.n_bits,
            task.spec.make_controller,
            spares=task.spares,
            lifetime_model=task.lifetime_model,
            fail_cache=fail_cache,
            degrade_fault_threshold=task.degrade_threshold,
            telemetry=telemetry,
            rng=rng,
            engine=task.engine,
            fault_model=task.fault_model,
            scheme_key=task.spec.key,
        )
        controller = ServiceController(
            array,
            buffer_capacity=task.buffer_capacity,
            proactive_migration=task.proactive_migration,
            policy=task.policy,
        )
        workload = build_workload(task.workload_kind, dict(task.workload_params))
    shadow: dict[int, np.ndarray] = {}
    ops = task.ops_for(shard_index)
    start = time.perf_counter()
    with profiler.phase("shard.drive"):
        for op in range(ops):
            address = workload.next_logical_page(task.n_addresses, rng)
            is_read = rng.random() < task.read_fraction
            if array.is_dead(address):
                telemetry.count("ops_rejected")
                continue
            if is_read:
                got = controller.read(address)
                expected = shadow.get(address)
                if expected is not None and not np.array_equal(got, expected):
                    telemetry.count("integrity_failures")
            else:
                payload = rng.integers(0, 2, task.spec.n_bits, dtype=np.uint8)
                controller.write(address, payload)
                shadow[address] = payload
            if task.snapshot_interval and (op + 1) % task.snapshot_interval == 0:
                telemetry.emit(
                    "health_snapshot", op=array.op_clock, **array.capacity_summary()
                )
        controller.close()
    # final read-after-write audit over every surviving written address
    with profiler.phase("shard.audit"):
        for address in sorted(shadow):
            if array.is_dead(address):
                continue
            telemetry.count("integrity_checked")
            if not np.array_equal(array.read(address), shadow[address]):
                telemetry.count("integrity_failures")
    if fail_cache is not None:
        telemetry.count("fail_cache_hits", fail_cache.hits)
        telemetry.count("fail_cache_misses", fail_cache.misses)
        telemetry.count("fail_cache_evictions", fail_cache.evictions)
    if recorder is not None:
        # catch-up sample: fold counters bumped outside the drain path
        # (audit, fail-cache totals) into the final bucket
        recorder.sample(array.op_clock)
    elapsed = time.perf_counter() - start
    return ShardResult(
        shard_index=shard_index,
        ops=ops,
        telemetry=telemetry,
        capacity=array.capacity_summary(),
        elapsed=elapsed,
        profile={"totals": profiler.totals, "calls": profiler.calls}
        if task.profile
        else None,
    )


@dataclass
class LoadReport:
    """The merged outcome of one load run.

    ``snapshot`` is the deterministic part (identical across worker
    counts); ``elapsed``/``ops_per_second`` are wall-clock and are not.
    """

    ops: int
    shards: int
    workers: int
    elapsed: float
    snapshot: dict
    telemetry: ServiceTelemetry
    per_shard: list[dict] = field(default_factory=list)
    #: merged wall-clock phase report (``--profile``); empty when disabled
    profile: dict = field(default_factory=dict)

    @property
    def ops_per_second(self) -> float:
        return self.ops / self.elapsed if self.elapsed > 0 else 0.0

    def write_telemetry_jsonl(self, path: str) -> int:
        """Export the merged event log + final snapshot as JSONL."""
        return self.telemetry.write_jsonl(path)

    def write_trace_jsonl(self, path: str) -> int:
        """Export the merged span trees + trace snapshot as JSONL (the
        deterministic ``--trace`` artifact); returns the line count."""
        tracer = self.telemetry.tracer
        if not getattr(tracer, "enabled", False):
            raise ConfigurationError(
                "tracing was not enabled for this run (pass trace_sample >= 1)"
            )
        assert isinstance(tracer, Tracer)
        return tracer.write_jsonl(path)

    def write_metrics(self, path: str) -> int:
        """Export the labeled metrics registry in Prometheus text format."""
        return self.telemetry.metrics.write_prometheus(path)

    def write_series_jsonl(self, path: str) -> int:
        """Export the merged op-clock time series as JSONL (requires the
        run to have sampled, i.e. ``series_bucket >= 1``)."""
        recorder = self.telemetry.timeseries
        if recorder is None:
            raise ConfigurationError(
                "time series were not recorded for this run (pass series_bucket >= 1)"
            )
        return recorder.write_jsonl(path)


def _merge_capacity(capacities: list[dict]) -> dict:
    merged: dict[str, object] = {}
    for capacity in capacities:
        for name, value in capacity.items():
            if name == "capacity_fraction":
                continue
            merged[name] = merged.get(name, 0) + value
    total = merged.get("total_addresses", 0)
    live = merged.get("live_addresses", 0)
    merged["capacity_fraction"] = round(live / total, 6) if total else 0.0
    return merged


def run_load(
    spec: SchemeSpec,
    *,
    ops: int,
    seed: int = 2013,
    shards: int = 4,
    workers: int | None = 1,
    n_addresses: int = 64,
    spares: int = 16,
    workload: str = "zipf",
    workload_params: dict[str, float] | None = None,
    lifetime_model: LifetimeModel | None = None,
    read_fraction: float = 0.25,
    buffer_capacity: int = 8,
    degrade_threshold: int | None = None,
    fail_cache_capacity: int | None = 1024,
    use_fail_cache: bool = True,
    proactive_migration: bool = False,
    snapshot_interval: int = 0,
    engine: str = "auto",
    trace_sample: int = 0,
    trace_errors: bool = True,
    event_cap: int = DEFAULT_EVENT_CAP,
    profile: bool = False,
    series_bucket: int = 0,
    fault_model: str = "hard",
    policy: str = "fixed",
    executor: SimExecutor | None = None,
) -> LoadReport:
    """Drive ``ops`` operations through ``shards`` independent arrays.

    ``n_addresses``/``spares`` are per shard (total logical capacity is
    ``shards * n_addresses``).  ``workers`` only changes wall-clock; the
    returned :attr:`LoadReport.snapshot` is worker-count invariant.
    ``engine`` picks the drain path (``"vector"``/``"scalar"``/``"auto"``)
    for every shard; like ``workers`` it only changes wall-clock, so it is
    deliberately absent from the snapshot's ``config`` block.

    ``trace_sample=N`` records every N-th serviced operation as a span
    tree (failed writes are always kept while ``trace_errors`` is on);
    the merged trace rides :attr:`LoadReport.telemetry` and exports via
    :meth:`LoadReport.write_trace_jsonl` — deterministic like the
    snapshot.  ``profile=True`` additionally collects wall-clock phase
    timings into :attr:`LoadReport.profile`, which is *not* part of the
    determinism contract.  ``series_bucket=N`` samples the metrics into
    N-op op-clock buckets after every drain (see
    :mod:`repro.obs.timeseries`); the merged series lands in the
    snapshot's ``timeseries`` block and is exactly as worker/engine
    invariant as the rest.
    """
    if ops < 1:
        raise ConfigurationError("a load run needs at least one op")
    if shards < 1:
        raise ConfigurationError("a load run needs at least one shard")
    if not 0 <= read_fraction <= 1:
        raise ConfigurationError("read fraction must be in [0, 1]")
    if trace_sample < 0:
        raise ConfigurationError("trace sample must be >= 0 (0 disables tracing)")
    if series_bucket < 0:
        raise ConfigurationError(
            "series bucket width must be >= 0 (0 disables time series)"
        )
    fault_model_for(fault_model)  # fail fast, not inside a worker process
    task = ShardTask(
        spec=spec,
        n_addresses=n_addresses,
        spares=spares,
        ops_base=ops // shards,
        ops_extra=ops % shards,
        seed=seed,
        workload_kind=workload,
        workload_params=tuple(sorted((workload_params or {}).items())),
        lifetime_model=(
            lifetime_model if lifetime_model is not None else NormalLifetime()
        ),
        read_fraction=read_fraction,
        buffer_capacity=buffer_capacity,
        degrade_threshold=degrade_threshold,
        fail_cache_capacity=fail_cache_capacity,
        use_fail_cache=use_fail_cache,
        proactive_migration=proactive_migration,
        snapshot_interval=snapshot_interval,
        engine=validate_engine(engine),
        trace_sample=trace_sample,
        trace_errors=trace_errors,
        event_cap=event_cap,
        profile=profile,
        series_bucket=series_bucket,
        fault_model=fault_model,
        policy=validate_policy(policy),
    )
    own_executor = executor is None
    # one shard per chunk: shards are few and coarse, so load-balance fully
    runner = executor if executor is not None else SimExecutor(workers, chunk_pages=1)
    start = time.perf_counter()
    try:
        results: list[ShardResult] = runner.map_indices(
            run_shard, task, range(shards)
        )
    finally:
        if own_executor:
            runner.close()
    elapsed = time.perf_counter() - start
    merged = ServiceTelemetry(event_cap=event_cap, tracer=task.make_tracer())
    for result in results:
        merged.merge(result.telemetry, shard=result.shard_index)
    profiler = Profiler()
    for result in results:
        if result.profile:
            for name, seconds in result.profile["totals"].items():
                profiler.add(name, seconds, result.profile["calls"].get(name, 0))
    capacity = _merge_capacity([result.capacity for result in results])
    config = {
        "spec": spec.key,
        "ops": ops,
        "shards": shards,
        "addresses_per_shard": n_addresses,
        "spares_per_shard": spares,
        "workload": workload,
        "seed": seed,
        "read_fraction": read_fraction,
    }
    # non-default dimensions only, so historical snapshots stay byte-identical
    if fault_model != "hard":
        config["fault_model"] = fault_model
    if policy != "fixed":
        config["policy"] = policy
    snapshot = {
        "config": config,
        "capacity": capacity,
        **merged.snapshot(),
    }
    return LoadReport(
        ops=ops,
        shards=shards,
        workers=runner.workers,
        elapsed=elapsed,
        snapshot=snapshot,
        telemetry=merged,
        profile=profiler.report() if profile else {},
        per_shard=[
            {
                "shard": result.shard_index,
                "ops": result.ops,
                "elapsed": round(result.elapsed, 4),
                "live_addresses": result.capacity["live_addresses"],
            }
            for result in results
        ],
    )
