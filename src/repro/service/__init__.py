"""The memory-array service layer: serving traffic over the PCM model.

The reproduction's other packages *measure* Aegis; this one *serves* with
it.  ``repro.service`` turns the bit-accurate substrate into an
addressable array with a production-shaped request path and graceful
degradation:

:mod:`repro.service.array`
    :class:`MemoryArray` — a logical block address space routed through
    the wear-leveling policies, backed by per-block recovery controllers,
    with a healthy → degraded → retired health machine and FREE-p-style
    spare remapping (data loss only on pool exhaustion, signalled by the
    typed :class:`~repro.errors.RetiredBlockError`).
:mod:`repro.service.controller`
    :class:`ServiceController` — the request pipeline: coalescing write
    buffer, fail-cache consultation, differential write + verification
    read, retry-with-repartition escalation, spare remap.
:mod:`repro.service.telemetry`
    :class:`ServiceTelemetry` — counters, service-cost/latency histograms
    built from the controllers' write receipts, health snapshots, and a
    bounded JSONL event log; since the observability layer landed it is a
    compatibility shim over :class:`repro.obs.MetricsRegistry` and can
    carry a :class:`repro.obs.Tracer` through worker processes (see
    ``docs/observability.md``).
:mod:`repro.service.kernels`
    The vectorized drain plane — numpy batch kernels that service a whole
    write-buffer drain at once (:func:`drain_vector`), the columnar
    :class:`BlockStore` views behind them, and the
    :func:`resolve_engine`/:func:`kernel_for` dispatch that decides when
    ``engine="auto"`` can take the batched path.  Bit-identical to the
    scalar pipeline by construction (``tests/test_service_kernels.py``).
:mod:`repro.service.health`
    The per-block health state machine.
:mod:`repro.service.policy`
    Adaptive per-block scheme selection — the deterministic
    :class:`SchemePolicyEngine` scoring an option table of schemes from
    observed block conditions (faults, maskable faults, write share,
    fault bursts), driven by ``ServiceController(policy="adaptive")``
    through :meth:`MemoryArray.switch_scheme`.
:mod:`repro.service.loadgen`
    A deterministic sharded closed-loop load generator over the existing
    workload generators and :class:`~repro.sim.parallel.SimExecutor` —
    the engine behind ``aegis-repro serve-bench`` and the ``ext-service``
    experiment.
"""

from repro.service.array import MemoryArray
from repro.service.controller import ServiceController
from repro.service.health import BlockHealth, HealthTracker
from repro.service.kernels import (
    BlockStore,
    drain_vector,
    kernel_for,
    resolve_engine,
    validate_engine,
)
from repro.service.loadgen import (
    LoadReport,
    ShardResult,
    ShardTask,
    build_workload,
    run_load,
    run_shard,
)
from repro.service.policy import (
    POLICY_CHOICES,
    BlockConditions,
    SchemeOption,
    SchemePolicyEngine,
    default_policy_options,
    validate_policy,
)
from repro.service.telemetry import Histogram, ServiceTelemetry

__all__ = [
    "POLICY_CHOICES",
    "BlockConditions",
    "BlockHealth",
    "BlockStore",
    "HealthTracker",
    "Histogram",
    "LoadReport",
    "MemoryArray",
    "SchemeOption",
    "SchemePolicyEngine",
    "ServiceController",
    "ServiceTelemetry",
    "ShardResult",
    "ShardTask",
    "build_workload",
    "default_policy_options",
    "drain_vector",
    "kernel_for",
    "resolve_engine",
    "run_load",
    "run_shard",
    "validate_engine",
    "validate_policy",
]
