"""Per-block health state machine: healthy → degraded → retired.

The paper's device model is binary — a block serves writes until its first
unrecoverable fault, then it is dead.  A *served* array wants an
intermediate signal: a block whose accumulated stuck-at faults approach its
scheme's tolerance is still correct but expensive (inversion writes,
repartition walks) and one fault from data loss.  :class:`HealthTracker`
watches each physical block's fault count and classifies it:

``HEALTHY``
    fault count below the degrade threshold.
``DEGRADED``
    at or above the threshold — still serving, but flagged for proactive
    migration and telemetry (the FREE-p/PAYG sizing signal).
``RETIRED``
    permanently out of service, either because its scheme failed a write
    (reactive) or because the array migrated its address away (proactive).

Transitions are monotonic (a block never heals) and every transition is
reported to telemetry, which is how capacity-over-time reaches the
operator.
"""

from __future__ import annotations

from enum import Enum

from repro.errors import ConfigurationError
from repro.service.telemetry import ServiceTelemetry


class BlockHealth(Enum):
    HEALTHY = "healthy"
    DEGRADED = "degraded"
    RETIRED = "retired"


class HealthTracker:
    """Tracks the health state of ``n_blocks`` physical blocks.

    Parameters
    ----------
    n_blocks:
        Physical blocks under management (data + spares).
    degrade_threshold:
        Fault count at which a healthy block becomes degraded.  Callers
        typically derive it from the scheme's hard FTC (one below, so the
        flag raises before the guarantee is spent).
    telemetry:
        Optional sink for transition counters and events.
    """

    def __init__(
        self,
        n_blocks: int,
        degrade_threshold: int,
        *,
        telemetry: ServiceTelemetry | None = None,
    ) -> None:
        if n_blocks < 1:
            raise ConfigurationError("health tracker needs at least one block")
        if degrade_threshold < 1:
            raise ConfigurationError("degrade threshold must be positive")
        self.degrade_threshold = degrade_threshold
        self.telemetry = telemetry
        self._states = [BlockHealth.HEALTHY] * n_blocks

    def __len__(self) -> int:
        return len(self._states)

    def state_of(self, block_index: int) -> BlockHealth:
        return self._states[block_index]

    def observe_faults(self, block_index: int, fault_count: int, *, op: int = 0) -> BlockHealth:
        """Update a block's state from its current fault count; returns the
        (possibly new) state.  Retired blocks never change state."""
        state = self._states[block_index]
        if state is BlockHealth.HEALTHY and fault_count >= self.degrade_threshold:
            self._states[block_index] = BlockHealth.DEGRADED
            if self.telemetry is not None:
                self.telemetry.count("blocks_degraded")
                self.telemetry.metrics.inc("health_transitions_total", to="degraded")
                self.telemetry.emit(
                    "degrade", op=op, block=block_index, faults=fault_count
                )
        return self._states[block_index]

    def degrade(self, block_index: int, *, op: int = 0, reason: str = "forced") -> None:
        """Force a healthy block into ``DEGRADED`` (idempotent; retired
        blocks stay retired).  Used by cluster control planes to drain an
        array — the forced transition is visible in
        ``health_transitions_total{to="degraded", reason=...}``."""
        if self._states[block_index] is not BlockHealth.HEALTHY:
            return
        self._states[block_index] = BlockHealth.DEGRADED
        if self.telemetry is not None:
            self.telemetry.count("blocks_degraded")
            self.telemetry.metrics.inc(
                "health_transitions_total", to="degraded", reason=reason
            )
            self.telemetry.emit("degrade", op=op, block=block_index, reason=reason)

    def retire(self, block_index: int, *, op: int = 0, reason: str = "write_failed") -> None:
        """Take a block out of service permanently (idempotent)."""
        if self._states[block_index] is BlockHealth.RETIRED:
            return
        self._states[block_index] = BlockHealth.RETIRED
        if self.telemetry is not None:
            self.telemetry.count("blocks_retired")
            self.telemetry.metrics.inc(
                "health_transitions_total", to="retired", reason=reason
            )
            self.telemetry.emit("retire", op=op, block=block_index, reason=reason)

    # -- aggregate views ----------------------------------------------------

    def count(self, state: BlockHealth) -> int:
        return sum(1 for s in self._states if s is state)

    def summary(self) -> dict[str, int]:
        """State population counts, for snapshots."""
        return {
            "healthy": self.count(BlockHealth.HEALTHY),
            "degraded": self.count(BlockHealth.DEGRADED),
            "retired": self.count(BlockHealth.RETIRED),
        }
