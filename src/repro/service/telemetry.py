"""Service telemetry: counters, cost/latency histograms, and an event log.

Production memory controllers are judged by their observability as much as
their correctness: per-op service cost, health transitions, and capacity
over time are what an operator sizes the spare pool against ("Redundancy
Allocation of Partitioned Linear Block Codes" motivates exactly this —
provisioning redundancy against *observed* demand).  This module gives the
service layer that surface:

* :class:`Histogram` — fixed-bucket histograms of per-op service cost
  (cell programming operations, the wear/energy proxy) and latency (write
  passes, from the controllers' :class:`~repro.schemes.base.WriteReceipt`).
* :class:`ServiceTelemetry` — named counters, the histograms, and a
  structured event log (remaps, retirements, degradations, periodic health
  snapshots) suitable for JSONL export.

Everything here is deliberately *deterministic*: no wall-clock timestamps
(events are stamped with the operation counter), plain-int state, and a
merge operation that is order-insensitive for counters and histograms —
so a sharded run merges to the same snapshot whatever the worker count.
Wall-clock throughput is measured by the load generator *outside* the
telemetry object.
"""

from __future__ import annotations

import bisect
import json
from dataclasses import dataclass, field

from repro.errors import ConfigurationError
from repro.schemes.base import WriteReceipt

#: bucket upper bounds for per-op cell-programming cost (512-bit blocks
#: program ≤ ~256 cells per differential write; inversion re-writes push
#: the tail beyond that)
DEFAULT_COST_EDGES = (16, 32, 64, 96, 128, 160, 192, 224, 256, 320, 448, 640)

#: bucket upper bounds for per-op latency in write passes (1 = single-pass;
#: verification reads, repartition trials and inversion writes add passes)
DEFAULT_LATENCY_EDGES = (1, 2, 3, 4, 6, 8, 12, 16, 24, 32)


@dataclass
class Histogram:
    """A fixed-bucket histogram with an unbounded overflow bucket.

    ``edges`` are inclusive upper bounds; a value larger than the last edge
    lands in the overflow bucket.  Buckets are plain counts, so merging two
    histograms (same edges) is element-wise addition.
    """

    edges: tuple[float, ...]
    counts: list[int] = field(default_factory=list)
    total: int = 0
    sum: float = 0.0

    def __post_init__(self) -> None:
        if not self.edges or list(self.edges) != sorted(self.edges):
            raise ConfigurationError("histogram edges must be non-empty and sorted")
        if not self.counts:
            self.counts = [0] * (len(self.edges) + 1)
        elif len(self.counts) != len(self.edges) + 1:
            raise ConfigurationError("histogram counts do not match edges")

    def observe(self, value: float) -> None:
        self.counts[bisect.bisect_left(self.edges, value)] += 1
        self.total += 1
        self.sum += value

    @property
    def mean(self) -> float:
        return self.sum / self.total if self.total else 0.0

    def quantile(self, q: float) -> float:
        """Upper bound of the bucket containing the ``q``-quantile (the
        usual bucketed-histogram estimate; overflow reports the last edge)."""
        if not 0 <= q <= 1:
            raise ConfigurationError("quantile must be in [0, 1]")
        if self.total == 0:
            return 0.0
        rank = q * self.total
        seen = 0
        for index, count in enumerate(self.counts):
            seen += count
            if seen >= rank and count:
                return float(self.edges[min(index, len(self.edges) - 1)])
        return float(self.edges[-1])

    def merge(self, other: "Histogram") -> None:
        if other.edges != self.edges:
            raise ConfigurationError("cannot merge histograms with different edges")
        for index, count in enumerate(other.counts):
            self.counts[index] += count
        self.total += other.total
        self.sum += other.sum

    def to_dict(self) -> dict:
        return {
            "edges": list(self.edges),
            "counts": list(self.counts),
            "total": self.total,
            "sum": round(self.sum, 6),
            "mean": round(self.mean, 4),
        }


class ServiceTelemetry:
    """Counters, histograms and the event log of one memory-array service.

    The object is picklable (plain dicts/lists), so a sharded load
    generator can build one per shard in worker processes and merge them in
    shard order on the way back — :meth:`merge` plus :meth:`snapshot` are
    the determinism-bearing surface the cross-worker tests assert on.
    """

    def __init__(
        self,
        *,
        cost_edges: tuple[float, ...] = DEFAULT_COST_EDGES,
        latency_edges: tuple[float, ...] = DEFAULT_LATENCY_EDGES,
    ) -> None:
        self.counters: dict[str, int] = {}
        self.service_cost = Histogram(cost_edges)
        self.latency = Histogram(latency_edges)
        self.events: list[dict] = []

    # -- recording ----------------------------------------------------------

    def count(self, name: str, amount: int = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + amount

    def record_receipt(self, receipt: WriteReceipt) -> None:
        """Fold one serviced write's receipt into the cost/latency view."""
        self.service_cost.observe(receipt.cell_writes)
        self.latency.observe(
            1
            + receipt.verification_reads
            + receipt.repartitions
            + receipt.inversion_writes
        )
        self.count("cell_writes_total", receipt.cell_writes)
        self.count("verification_reads_total", receipt.verification_reads)
        self.count("repartitions_total", receipt.repartitions)
        self.count("inversion_writes_total", receipt.inversion_writes)

    def emit(self, event: str, **fields: object) -> None:
        """Append a structured event (stamped by the caller, not the clock)."""
        record: dict = {"event": event}
        record.update(fields)
        self.events.append(record)

    # -- aggregation --------------------------------------------------------

    def merge(self, other: "ServiceTelemetry", *, shard: int | None = None) -> None:
        """Fold another telemetry object (e.g. one shard's) into this one.

        Counter/histogram merging is order-insensitive; events are appended
        in call order, optionally tagged with the source ``shard`` so the
        combined log stays attributable.
        """
        for name, value in other.counters.items():
            self.count(name, value)
        self.service_cost.merge(other.service_cost)
        self.latency.merge(other.latency)
        for event in other.events:
            tagged = dict(event)
            if shard is not None:
                tagged["shard"] = shard
            self.events.append(tagged)

    def snapshot(self) -> dict:
        """The deterministic state summary: sorted counters + histograms.

        This is the object the cross-worker determinism contract is
        asserted on, so it must never contain wall-clock readings, memory
        addresses, or anything else execution-dependent.
        """
        return {
            "counters": {name: self.counters[name] for name in sorted(self.counters)},
            "service_cost": self.service_cost.to_dict(),
            "latency": self.latency.to_dict(),
            "events_logged": len(self.events),
        }

    def write_jsonl(self, path: str) -> int:
        """Write the event log plus a final snapshot line as JSONL; returns
        the number of lines written."""
        with open(path, "w") as handle:
            for event in self.events:
                handle.write(json.dumps(event, sort_keys=True) + "\n")
            handle.write(
                json.dumps({"event": "final_snapshot", **self.snapshot()}, sort_keys=True)
                + "\n"
            )
        return len(self.events) + 1
