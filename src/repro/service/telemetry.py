"""Service telemetry: counters, cost/latency histograms, and an event log.

Production memory controllers are judged by their observability as much as
their correctness: per-op service cost, health transitions, and capacity
over time are what an operator sizes the spare pool against ("Redundancy
Allocation of Partitioned Linear Block Codes" motivates exactly this —
provisioning redundancy against *observed* demand).  This module gives the
service layer that surface:

* :class:`Histogram` — fixed-bucket histograms of per-op service cost
  (cell programming operations, the wear/energy proxy) and latency (write
  passes, from the controllers' :class:`~repro.schemes.base.WriteReceipt`).
  Since the observability layer landed this is a re-export of
  :class:`repro.obs.metrics.Histogram` — the registry generalized it.
* :class:`ServiceTelemetry` — named counters, the histograms, and a
  structured event log (remaps, retirements, degradations, periodic health
  snapshots) suitable for JSONL export.

``ServiceTelemetry`` is now a compatibility shim over
:class:`repro.obs.metrics.MetricsRegistry`: the historical flat counters
(``count``/``.counters``) are the registry's label-less series, while new
call sites record labeled series (``writes_total{scheme=..., outcome=...}``)
through :attr:`ServiceTelemetry.metrics` directly.  A
:class:`repro.obs.tracer.Tracer` can be attached so the pipeline's span
instrumentation rides the same object through worker processes.

Everything here is deliberately *deterministic*: no wall-clock timestamps
(events are stamped with the operation counter), plain-int state, and a
merge operation that is order-insensitive for counters, histograms and
labeled metrics — so a sharded run merges to the same snapshot whatever
the worker count.  Wall-clock throughput is measured by the load
generator *outside* the telemetry object, and wall-clock profiling lives
in :mod:`repro.obs.profiler`.

The event log is a bounded ring: beyond ``event_cap`` entries the oldest
events are dropped (and counted in ``events_dropped``), so a million-op
load run cannot grow memory without bound.
"""

from __future__ import annotations

import json
from collections import deque
from typing import TYPE_CHECKING

from repro.errors import ConfigurationError
from repro.obs.metrics import Histogram, MetricsRegistry
from repro.obs.tracer import NullTracer, Tracer
from repro.schemes.base import WriteReceipt

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from repro.obs.timeseries import TimeSeriesRecorder

__all__ = [
    "DEFAULT_COST_EDGES",
    "DEFAULT_EVENT_CAP",
    "DEFAULT_LATENCY_EDGES",
    "Histogram",
    "ServiceTelemetry",
]

#: bucket upper bounds for per-op cell-programming cost (512-bit blocks
#: program ≤ ~256 cells per differential write; inversion re-writes push
#: the tail beyond that)
DEFAULT_COST_EDGES = (16, 32, 64, 96, 128, 160, 192, 224, 256, 320, 448, 640)

#: bucket upper bounds for per-op latency in write passes (1 = single-pass;
#: verification reads, repartition trials and inversion writes add passes)
DEFAULT_LATENCY_EDGES = (1, 2, 3, 4, 6, 8, 12, 16, 24, 32)

#: default event-log ring capacity; 0 disables the cap
DEFAULT_EVENT_CAP = 100_000


class ServiceTelemetry:
    """Counters, histograms and the event log of one memory-array service.

    The object is picklable (plain dicts/lists/deques), so a sharded load
    generator can build one per shard in worker processes and merge them in
    shard order on the way back — :meth:`merge` plus :meth:`snapshot` are
    the determinism-bearing surface the cross-worker tests assert on.

    Parameters
    ----------
    cost_edges, latency_edges:
        Bucket bounds of the two built-in histograms.
    event_cap:
        Ring capacity of the event log (``0`` = unbounded); overflowing
        drops the *oldest* events and counts them in ``events_dropped``.
    tracer:
        Optional :class:`repro.obs.tracer.Tracer` the pipeline's span
        instrumentation writes to; defaults to a shared no-op tracer.
    """

    def __init__(
        self,
        *,
        cost_edges: tuple[float, ...] = DEFAULT_COST_EDGES,
        latency_edges: tuple[float, ...] = DEFAULT_LATENCY_EDGES,
        event_cap: int = DEFAULT_EVENT_CAP,
        tracer: Tracer | NullTracer | None = None,
    ) -> None:
        if event_cap < 0:
            raise ConfigurationError("event cap cannot be negative")
        self.metrics = MetricsRegistry()
        self.service_cost = Histogram(cost_edges)
        self.latency = Histogram(latency_edges)
        self.event_cap = event_cap
        self.events: deque[dict] = deque()
        self.events_dropped = 0
        self.tracer: Tracer | NullTracer = tracer if tracer is not None else NullTracer()
        #: optional :class:`repro.obs.timeseries.TimeSeriesRecorder`; set
        #: via :meth:`attach_timeseries` to give the metrics a time axis
        self.timeseries: "TimeSeriesRecorder | None" = None

    def attach_timeseries(self, recorder: "TimeSeriesRecorder") -> "TimeSeriesRecorder":
        """Attach an op-clock time-series recorder over :attr:`metrics`.

        When the recorder is ``auto``, the service pipeline samples it
        after every buffer drain; explicit control planes (the cluster)
        call :meth:`repro.obs.timeseries.TimeSeriesRecorder.sample`
        themselves at their own deterministic points.
        """
        self.timeseries = recorder
        return recorder

    @property
    def counters(self) -> dict[str, int]:
        """The historical flat-counter view: the registry's label-less
        counter series as a plain dict (read-only compatibility surface)."""
        return self.metrics.flat_counters()

    # -- recording ----------------------------------------------------------

    def count(self, name: str, amount: int = 1) -> None:
        self.metrics.inc(name, amount)

    def record_receipt(self, receipt: WriteReceipt) -> None:
        """Fold one serviced write's receipt into the cost/latency view."""
        self.service_cost.observe(receipt.cell_writes)
        self.latency.observe(
            1
            + receipt.verification_reads
            + receipt.repartitions
            + receipt.inversion_writes
        )
        self.count("cell_writes_total", receipt.cell_writes)
        self.count("verification_reads_total", receipt.verification_reads)
        self.count("repartitions_total", receipt.repartitions)
        self.count("inversion_writes_total", receipt.inversion_writes)

    def emit(self, event: str, **fields: object) -> None:
        """Append a structured event (stamped by the caller, not the clock)."""
        record: dict = {"event": event}
        record.update(fields)
        self._append_event(record)

    def _append_event(self, record: dict) -> None:
        if self.event_cap and len(self.events) >= self.event_cap:
            self.events.popleft()
            self.events_dropped += 1
        self.events.append(record)

    # -- aggregation --------------------------------------------------------

    def merge(self, other: "ServiceTelemetry", *, shard: int | None = None) -> None:
        """Fold another telemetry object (e.g. one shard's) into this one.

        Counter/histogram/labeled-metric merging is order-insensitive;
        events are appended in call order (subject to this object's ring
        cap), optionally tagged with the source ``shard`` so the combined
        log stays attributable.  An attached tracer absorbs the other's
        kept span trees, shard-tagged the same way.
        """
        self.metrics.merge(other.metrics)
        self.service_cost.merge(other.service_cost)
        self.latency.merge(other.latency)
        self.events_dropped += other.events_dropped
        for event in other.events:
            tagged = dict(event)
            if shard is not None:
                tagged["shard"] = shard
            self._append_event(tagged)
        self.tracer.merge(other.tracer, shard=shard)
        if other.timeseries is not None:
            if self.timeseries is None:
                # adopt an empty same-geometry recorder so the commutative
                # bucket merge below is the only aggregation path
                from repro.obs.timeseries import TimeSeriesRecorder

                self.timeseries = TimeSeriesRecorder(
                    self.metrics,
                    bucket_width=other.timeseries.bucket_width,
                    capacity=other.timeseries.capacity,
                    auto=other.timeseries.auto,
                )
            self.timeseries.merge(other.timeseries)

    def snapshot(self) -> dict:
        """The deterministic state summary: sorted counters + histograms,
        the labeled-metric series, and the trace aggregate.

        This is the object the cross-worker determinism contract is
        asserted on, so it must never contain wall-clock readings, memory
        addresses, or anything else execution-dependent.
        """
        registry = self.metrics.snapshot()
        flat = self.counters
        labeled = {
            series: value
            for series, value in registry["counters"].items()
            if series not in flat
        }
        snapshot = {
            "counters": {name: flat[name] for name in sorted(flat)},
            "service_cost": self.service_cost.to_dict(),
            "latency": self.latency.to_dict(),
            "events_logged": len(self.events),
            "events_dropped": self.events_dropped,
            "labeled_counters": labeled,
            "gauges": registry["gauges"],
            "labeled_histograms": registry["histograms"],
        }
        if getattr(self.tracer, "enabled", False):
            snapshot["trace"] = self.tracer.snapshot()
        if self.timeseries is not None:
            snapshot["timeseries"] = self.timeseries.snapshot()
        return snapshot

    def write_jsonl(self, path: str) -> int:
        """Write the event log plus a final snapshot line as JSONL; returns
        the number of lines written."""
        with open(path, "w") as handle:
            for event in self.events:
                handle.write(json.dumps(event, sort_keys=True) + "\n")
            handle.write(
                json.dumps({"event": "final_snapshot", **self.snapshot()}, sort_keys=True)
                + "\n"
            )
        return len(self.events) + 1
