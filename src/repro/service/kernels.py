"""Vectorized service data plane: batch kernels for the write pipeline.

PR 4 proved the batch-kernel technique on the Monte Carlo side
(:mod:`repro.sim.kernels`); this module applies it one layer up, to the
production-shaped service pipeline.  A drained write-buffer batch —
addresses, payloads, per-block fault state — is advanced through
fail-cache consult, health check, differential write + verification and
escalation detection as whole-batch numpy operations, with three pieces:

* :class:`BlockStore` — columnar adoption of every block's cell arrays
  (stored values, stuck masks, stuck values, write counts, endurance)
  into ``(blocks, bits)`` matrices whose *rows are the blocks' own
  arrays* (views, not copies), so scalar code and batch kernels mutate
  the same state.
* Per-scheme kernels (:class:`_XorMaskKernel` for Aegis/SAFER/the
  unprotected baseline, :class:`_EcpKernel`, :class:`_HammingKernel`)
  that classify which rows of a drain are *fast* — serviceable in one
  differential write pass with a clean verification read — and commit
  the scheme-side state for those rows in batch.
* :func:`drain_vector` — the whole-drain driver: classify, then walk the
  batch in row order as alternating [fast run][escalation row] segments.
  Fast runs commit as one fancy-indexed batch write (gather → XOR
  popcount cell-write costs via the uint64 bitset helpers in
  :mod:`repro.sim.kernels` → wear → scatter); escalation rows (unmapped
  or dead addresses, proactive migrations, repartition walks, spare
  remaps, invalid payloads) fall back to the scalar per-row pipeline.

Bit-identity contract
---------------------
The vector engine reproduces the scalar engine exactly: telemetry
snapshots, trace JSONL and final array state are byte-identical
(asserted across schemes/seeds/workers in ``tests/test_service_kernels.py``).
The argument has three legs:

* **Fast rows are provably single-pass.**  Each kernel's predicate is
  evaluated against pre-drain state, which equals pre-write state
  because a drain's rows target distinct logical addresses and the
  logical→physical map is injective — distinct rows touch distinct
  blocks.  A fast row's scalar execution performs exactly one
  differential write and one clean verification read, touches no RNG,
  emits no events or spans, and yields receipt
  ``(cell_writes, 1, 0, 0)`` — all reproduced in batch.
* **Escalation rows run the scalar code itself**, in row order, between
  fast segments, so mid-drain exceptions (strict retirement, invalid
  payloads) leave the array in the same state under both engines.
* **Telemetry is commutative.**  Histograms batch via
  ``searchsorted``/exact integer float sums
  (:meth:`repro.obs.metrics.Histogram.observe_many`), counters add, and
  span sequences are identical because per-drain spans replaced the
  per-write spans in both engines.

Misclassifying a row as slow only costs speed (the scalar path is always
correct); only the fast-direction predicates must be exact, and they are
conservative everywhere cheapness demands it.
"""

from __future__ import annotations

import numpy as np

from repro.core.aegis import AegisScheme
from repro.errors import ConfigurationError
from repro.schemes.base import WriteReceipt
from repro.schemes.ecp import EcpScheme
from repro.schemes.hamming import CHECK_BITS, DATA_BITS, HammingScheme, _H
from repro.schemes.ideal import NoProtectionScheme
from repro.schemes.safer import SaferScheme
from repro.service.health import BlockHealth
from repro.sim.kernels import (
    ENGINES,
    pack_rows_u64,
    popcount_rows_u64,
    validate_engine,
)

__all__ = [
    "ENGINES",
    "BlockStore",
    "drain_vector",
    "kernel_for",
    "resolve_engine",
    "validate_engine",
]

#: attribute under which the per-array kernel (or ``None``) is memoised
_KERNEL_ATTR = "_service_kernel_cache"

#: shared empty consult result (never mutated by consumers)
EMPTY_FAULTS: dict[int, int] = {}


class BlockStore:
    """Columnar matrices over every block's cell state, adopted by view.

    Construction stacks each :class:`~repro.pcm.cell.CellArray`'s private
    arrays into ``(blocks, bits)`` matrices and rebinds the cell arrays'
    fields to the matrix *rows*, so every scalar mutation (differential
    writes, fault injection, wear) lands in the matrices and every batch
    mutation is immediately visible to scalar code.  This is safe because
    ``CellArray`` and ``ProtectedBlock`` mutate their arrays strictly in
    place (verified against masked assignment, ``+=`` and element
    injection — never rebinding).

    Adoption happens *after* normal block construction, so the per-block
    endurance sampling consumes the shared RNG in exactly the seed order
    the scalar-only array used.
    """

    def __init__(self, blocks: list) -> None:
        if not blocks:
            raise ConfigurationError("a block store needs at least one block")
        count = len(blocks)
        bits = blocks[0].cells.n_bits
        self.n_bits = bits
        self.stored = np.empty((count, bits), dtype=np.uint8)
        self.stuck = np.zeros((count, bits), dtype=bool)
        self.stuck_value = np.empty((count, bits), dtype=np.uint8)
        self.write_counts = np.empty((count, bits), dtype=np.int64)
        self.endurance = np.empty((count, bits), dtype=np.float64)
        for index, block in enumerate(blocks):
            cells = block.cells
            if cells.n_bits != bits:
                raise ConfigurationError("block store needs uniform block widths")
            self.stored[index] = cells._stored
            self.stuck[index] = cells._stuck
            self.stuck_value[index] = cells._stuck_value
            self.write_counts[index] = cells._write_counts
            self.endurance[index] = block.endurance
            cells._stored = self.stored[index]
            cells._stuck = self.stuck[index]
            cells._stuck_value = self.stuck_value[index]
            cells._write_counts = self.write_counts[index]
            block.endurance = self.endurance[index]

    def fault_words(self, physical: np.ndarray) -> np.ndarray:
        """Per-block uint64 fault bitsets for the given physical rows."""
        return pack_rows_u64(self.stuck[physical])

    def fault_counts(self, physical: np.ndarray) -> np.ndarray:
        """Stuck-cell counts for the given physical rows."""
        return np.count_nonzero(self.stuck[physical], axis=1)


# ---------------------------------------------------------------------------
# Per-scheme kernels: fast-row classification + scheme-side batch commit
# ---------------------------------------------------------------------------


class _XorMaskKernel:
    """Aegis / SAFER / unprotected: stored form = data XOR inversion mask.

    A row is fast iff no stuck cell disagrees with its target form — then
    the scalar ``_encode_write`` returns after one pass with a clean
    verification read, flipping no inversion bits and learning no faults.
    The per-block inversion vectors are adopted into a ``(blocks, groups)``
    matrix (both schemes mutate them strictly in place) so "is any
    inversion bit set" is one batch reduction; the expensive per-block
    mask expansion is cached keyed on the scheme's partition state, which
    only changes when the scalar fallback handles a new fault.
    """

    def __init__(self, array, kind: str) -> None:
        self.array = array
        self.store: BlockStore = array.store
        self.kind = kind
        if kind == "none":
            self.inversion = None
        else:
            blocks = array.blocks
            groups = len(blocks[0].scheme.inversion)
            inversion = np.zeros((len(blocks), groups), dtype=np.uint8)
            for index, block in enumerate(blocks):
                inversion[index] = block.scheme.inversion
                block.scheme.inversion = inversion[index]
            self.inversion = inversion
        self._mask_cache: dict[int, tuple[object, np.ndarray]] = {}

    def _mask_for(self, physical: int) -> np.ndarray:
        scheme = self.array.blocks[physical].scheme
        if self.kind == "aegis":
            key: object = (scheme.slope, scheme.inversion.tobytes())
        else:
            key = (scheme.positions, scheme.inversion.tobytes())
        cached = self._mask_cache.get(physical)
        if cached is not None and cached[0] == key:
            return cached[1]
        mask = scheme._inversion_mask().astype(np.uint8)
        self._mask_cache[physical] = (key, mask)
        return mask

    def plan(
        self, phys: np.ndarray, payloads: np.ndarray, candidates: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        fast = candidates.copy()
        forms = payloads
        rows = np.flatnonzero(candidates)
        if rows.size == 0:
            return fast, forms
        if self.inversion is not None:
            inverted = rows[self.inversion[phys[rows]].any(axis=1)]
            if inverted.size:
                forms = payloads.copy()
                for row in inverted:
                    forms[row] = payloads[row] ^ self._mask_for(int(phys[row]))
        p = phys[rows]
        conflict = (
            self.store.stuck[p] & (self.store.stuck_value[p] != forms[rows])
        ).any(axis=1)
        fast[rows[conflict]] = False
        return fast, forms

    def commit(
        self,
        row_ids: range,
        p: np.ndarray,
        data_rows: np.ndarray,
        form_rows: np.ndarray,
    ) -> np.ndarray | None:
        return None


class _EcpKernel:
    """ECP with ideal replacement cells (the roster configuration).

    A row is fast iff the entries already allocated plus the stuck-at-wrong
    offsets of the new data fit the pointer budget — then the scalar path
    refreshes every entry, allocates the uncovered offsets in verify order
    and returns ``(cell_writes, 1, 0, 0)``.  The commit replays exactly
    those dict updates (entry dicts hold at most ``pointers`` keys).
    """

    def __init__(self, array) -> None:
        self.array = array
        self.store: BlockStore = array.store
        self.pointers = array.blocks[0].scheme.pointers
        self._pending: dict[int, list[int]] = {}

    def plan(
        self, phys: np.ndarray, payloads: np.ndarray, candidates: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        fast = candidates.copy()
        self._pending = {}
        rows = np.flatnonzero(candidates)
        if rows.size == 0:
            return fast, payloads
        p = phys[rows]
        mismatches = self.store.stuck[p] & (
            self.store.stuck_value[p] != payloads[rows]
        )
        any_mismatch = mismatches.any(axis=1)
        blocks = self.array.blocks
        for position, row in enumerate(rows):
            entries = blocks[int(phys[row])].scheme.entries
            if not entries and not any_mismatch[position]:
                continue
            fresh = (
                [
                    int(offset)
                    for offset in np.flatnonzero(mismatches[position])
                    if int(offset) not in entries
                ]
                if any_mismatch[position]
                else []
            )
            if len(entries) + len(fresh) > self.pointers:
                fast[row] = False
                continue
            self._pending[int(row)] = fresh
        return fast, payloads

    def commit(
        self,
        row_ids: range,
        p: np.ndarray,
        data_rows: np.ndarray,
        form_rows: np.ndarray,
    ) -> np.ndarray | None:
        blocks = self.array.blocks
        pending = self._pending
        for index, row in enumerate(row_ids):
            todo = pending.get(row)
            if todo is None:
                continue
            entries = blocks[int(p[index])].scheme.entries
            data = data_rows[index]
            for offset in entries:
                entries[offset] = int(data[offset])
            for offset in todo:
                entries[offset] = int(data[offset])
        return None


class _HammingKernel:
    """(72, 64) SEC-DED: batch-encode check words for fault-free rows.

    A row is fast iff its main cells *and* its check cells hold zero
    stuck faults — the stored codewords then equal the encoded data, so
    every word decodes clean.  The check-bit images for a whole segment
    come from one parity-matrix matmul; the side check arrays are adopted
    columnar here (the main arrays live in the shared block store) and
    take the same differential-write/count bookkeeping, minus wear: block
    endurance covers main cells only, exactly like the scalar path.
    """

    def __init__(self, array) -> None:
        self.array = array
        self.store: BlockStore = array.store
        scheme = array.blocks[0].scheme
        self.words = scheme.words
        check_bits = self.words * CHECK_BITS
        count = len(array.blocks)
        self.c_stored = np.empty((count, check_bits), dtype=np.uint8)
        self.c_stuck = np.zeros((count, check_bits), dtype=bool)
        self.c_stuck_value = np.empty((count, check_bits), dtype=np.uint8)
        self.c_write_counts = np.empty((count, check_bits), dtype=np.int64)
        for index, block in enumerate(array.blocks):
            checks = block.scheme._checks
            self.c_stored[index] = checks._stored
            self.c_stuck[index] = checks._stuck
            self.c_stuck_value[index] = checks._stuck_value
            self.c_write_counts[index] = checks._write_counts
            checks._stored = self.c_stored[index]
            checks._stuck = self.c_stuck[index]
            checks._stuck_value = self.c_stuck_value[index]
            checks._write_counts = self.c_write_counts[index]
        self._h7t = _H[:7, :DATA_BITS].T.astype(np.int64)

    def plan(
        self, phys: np.ndarray, payloads: np.ndarray, candidates: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        fast = candidates.copy()
        rows = np.flatnonzero(candidates)
        if rows.size:
            p = phys[rows]
            conflict = self.store.stuck[p].any(axis=1) | self.c_stuck[p].any(axis=1)
            fast[rows[conflict]] = False
        return fast, payloads

    def commit(
        self,
        row_ids: range,
        p: np.ndarray,
        data_rows: np.ndarray,
        form_rows: np.ndarray,
    ) -> np.ndarray | None:
        count = p.shape[0]
        data = data_rows.reshape(count, self.words, DATA_BITS).astype(np.int64)
        checks7 = (data @ self._h7t) % 2
        parity = (data.sum(axis=2) + checks7.sum(axis=2)) % 2
        image = np.concatenate([checks7, parity[:, :, None]], axis=2)
        image = image.reshape(count, self.words * CHECK_BITS).astype(np.uint8)
        stored = self.c_stored[p]
        programmed = stored != image
        # no stuck check cells on the fast path, so every differing cell takes
        self.c_stored[p] = image
        counts = self.c_write_counts[p]
        counts += programmed
        self.c_write_counts[p] = counts
        return popcount_rows_u64(pack_rows_u64(programmed))


# ---------------------------------------------------------------------------
# Kernel selection / engine resolution
# ---------------------------------------------------------------------------


def _build_kernel(array):
    block = array.blocks[0]
    if not getattr(block.cells, "differential_writes", True):
        return None
    scheme = block.scheme
    scheme_type = type(scheme)  # exact: subclasses override the write walk
    if scheme_type is AegisScheme:
        return _XorMaskKernel(array, "aegis")
    if scheme_type is SaferScheme:
        return _XorMaskKernel(array, "safer")
    if scheme_type is NoProtectionScheme:
        return _XorMaskKernel(array, "none")
    if scheme_type is EcpScheme and scheme._replacements is None:
        return _EcpKernel(array)
    if scheme_type is HammingScheme:
        return _HammingKernel(array)
    return None


def kernel_for(array):
    """The array's batch kernel, or ``None`` when no kernel covers its
    scheme (sampled/data-dependent schemes: Aegis-rw, SAFER-cache, RDIS,
    fragile-replacement ECP) — memoised per array."""
    cached = array.__dict__.get(_KERNEL_ATTR, _KERNEL_ATTR)
    if cached is not _KERNEL_ATTR:
        return cached
    kernel = _build_kernel(array)
    array.__dict__[_KERNEL_ATTR] = kernel
    return kernel


def resolve_engine(engine: str, array) -> str:
    """Map the public engine switch to the drain path actually taken.

    Mirrors :func:`repro.sim.kernels.resolve_engine` one layer up:
    ``"scalar"`` always runs the per-row pipeline; ``"vector"`` and
    ``"auto"`` take the batched drain when a kernel covers the array's
    scheme and fall back transparently otherwise.
    """
    validate_engine(engine)
    if engine == "scalar":
        return "scalar"
    return "vector" if kernel_for(array) is not None else "scalar"


# ---------------------------------------------------------------------------
# The batched drain driver
# ---------------------------------------------------------------------------


def drain_vector(
    controller,
    addresses: np.ndarray,
    payloads: np.ndarray,
    known: list[dict[int, int]],
) -> tuple[WriteReceipt, int, int]:
    """Service one drained batch with the vector engine.

    Returns ``(merged receipt, writes serviced, writes lost)`` — the same
    aggregate the scalar drain produces.  Rows are processed strictly in
    first-enqueue order as alternating fast segments (batch commit) and
    escalation rows (``controller._service_row``), so both engines leave
    identical state even when an escalation raises mid-drain.
    """
    array = controller.array
    kernel = kernel_for(array)
    batch = int(addresses.shape[0])
    phys = array._map[addresses]
    escalate = phys < 0  # unmapped (first touch) and dead addresses
    np.bitwise_or(escalate, (payloads > 1).any(axis=1), out=escalate)
    if array._switched:
        # policy-switched blocks no longer run the base scheme the batch
        # kernel was built for; their rows take the scalar pipeline
        switched = np.fromiter(
            array._switched, count=len(array._switched), dtype=np.int64
        )
        np.bitwise_or(escalate, np.isin(phys, switched), out=escalate)
    if controller.proactive_migration:
        health = array.health
        for row in range(batch):
            if (
                known[row]
                and not escalate[row]
                and health.state_of(int(phys[row])) is BlockHealth.DEGRADED
            ):
                escalate[row] = True
    fast, forms = kernel.plan(phys, payloads, ~escalate)
    total = WriteReceipt()
    serviced = 0
    lost = 0
    row = 0
    while row < batch:
        if fast[row]:
            stop = row + 1
            while stop < batch and fast[stop]:
                stop += 1
            cell_writes = _commit_segment(
                controller, kernel, addresses, phys, payloads, forms, row, stop
            )
            total.cell_writes += cell_writes
            total.verification_reads += stop - row
            serviced += stop - row
            row = stop
        else:
            receipt = controller._service_row(
                int(addresses[row]), payloads[row], known[row]
            )
            if receipt is None:
                lost += 1
            else:
                total.merge(receipt)
                serviced += 1
            row += 1
    return total, serviced, lost


def _commit_segment(
    controller,
    kernel,
    addresses: np.ndarray,
    phys: np.ndarray,
    payloads: np.ndarray,
    forms: np.ndarray,
    start: int,
    stop: int,
) -> int:
    """Commit one contiguous run of fast rows as a batch; returns the
    segment's total cell writes."""
    array = controller.array
    store: BlockStore = array.store
    p = phys[start:stop]
    form_rows = forms[start:stop]
    data_rows = payloads[start:stop]
    count = stop - start

    # -- differential write (gather → update → scatter) ---------------------
    stored = store.stored[p]
    stuck = store.stuck[p]
    programmed = stored != form_rows
    healthy = programmed & ~stuck
    # branchless masked merge: stored <- form where healthy (boolean-mask
    # assignment is an order of magnitude slower for these shapes)
    stored ^= (stored ^ form_rows) * healthy.view(np.uint8)
    store.stored[p] = stored
    write_counts = store.write_counts[p]
    write_counts += programmed
    store.write_counts[p] = write_counts
    cell_writes = popcount_rows_u64(pack_rows_u64(programmed))

    # -- wear (matches ProtectedBlock._apply_wear: post-write, freeze at the
    #    just-stored value, int counts compared against float endurance) ----
    worn_out = (write_counts >= store.endurance[p]) & ~stuck
    if worn_out.any():
        stuck |= worn_out
        store.stuck[p] = stuck
        stuck_value = store.stuck_value[p]
        store.stuck_value[p] = np.where(worn_out, stored, stuck_value)
    fault_counts = np.count_nonzero(stuck, axis=1)

    # -- scheme-side commit (ECP entry refresh/alloc, Hamming check words) --
    extra = kernel.commit(range(start, stop), p, data_rows, form_rows)
    if extra is not None:
        cell_writes = cell_writes + extra
    cell_writes_total = int(cell_writes.sum())

    # -- per-row bookkeeping (ops, health, fail cache, stats) ---------------
    # faulty rows get their exact per-row op clock (the degrade event's op
    # field must match the scalar path); healthy rows advance it in bulk
    blocks = array.blocks
    base = array.op_clock
    if fault_counts.any():
        health = array.health
        for index in np.flatnonzero(fault_counts):
            physical = int(p[index])
            array.op_clock = base + int(index) + 1
            health.observe_faults(
                physical, int(fault_counts[index]), op=array.op_clock
            )
            array._record_faults(physical)
    array.op_clock = base + count
    cw_list = cell_writes.tolist()
    for index, physical in enumerate(p.tolist()):
        block = blocks[physical]
        stats = block.stats
        stats.writes += 1
        stats.cell_writes += cw_list[index]
        stats.verification_reads += 1
        block.writes_serviced += 1
    # per-row cost attribution: fast rows report the exact cell-write count
    # the scalar receipt would, keeping tenant-bucketed histograms
    # engine-invariant
    cost_hook = controller.cost_hook
    if cost_hook is not None:
        address_list = addresses[start:stop].tolist()
        for index, address in enumerate(address_list):
            cost_hook(int(address), cw_list[index])

    # -- batch telemetry (same series, same values as the per-row path) -----
    telemetry = controller.telemetry
    metrics = telemetry.metrics
    metrics.inc_key(array._k_writes_serviced, count)
    metrics.inc_key(array._k_writes_ok, count)
    metrics.observe_many(
        "stage_cost",
        cell_writes,
        edges=telemetry.service_cost.edges,
        stage="differential_write",
        scheme=array.scheme_name,
    )
    telemetry.service_cost.observe_many(cell_writes)
    telemetry.latency.observe_repeat(2, count)  # 1 pass + 1 verification read
    telemetry.count("cell_writes_total", cell_writes_total)
    telemetry.count("verification_reads_total", count)
    telemetry.count("repartitions_total", 0)
    telemetry.count("inversion_writes_total", 0)
    return cell_writes_total
