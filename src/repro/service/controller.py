"""The service request pipeline in front of :class:`MemoryArray`.

Write path (the production-shaped pipeline of DESIGN.md §2, assembled from
the pieces the reproduction already models bit-accurately):

1. **Coalescing write buffer** (:class:`~repro.pcm.writebuffer.WriteBuffer`)
   — repeated writes to one address collapse to the last payload; the
   buffer drains in first-enqueue order when full or on :meth:`flush`,
   handing back the whole batch as columnar arrays.
2. **Fail-cache consultation** — one batched consult per drain: the
   controller asks the array's
   :class:`~repro.pcm.failcache.DirectMappedFailCache` for each target
   block's known faults (§2.4's pre-write classification); blocks the
   columnar fault state proves clean skip the cache probes entirely.
   When a target block is already ``DEGRADED`` it is proactively
   migrated to a spare before spending more wear on it.
3. **Differential write + verification read** — the whole batch at once
   under the vector engine (:func:`repro.service.kernels.drain_vector`),
   or row by row under the scalar engine; either way exactly the device
   model's semantics (only differing cells are programmed; every write
   verifies).
4. **Retry-with-repartition escalation** — rows that cannot complete in
   one clean pass (repartition walks, spare remaps, proactive
   migrations, first-touch allocations) fall out of the batch to the
   scalar per-row pipeline, in row order, so the rare path stays
   bit-identical whatever the engine.
5. **Typed failure** — only a write that finds the pool exhausted raises
   :class:`~repro.errors.RetiredBlockError`.  During a buffered flush the
   controller absorbs it into telemetry (``writes_lost``) so one dead
   address never stalls the rest of the drain; pass ``strict=True`` to
   re-raise instead.

Read path: store-to-load forwarding from the write buffer (a read-only
view of the pending payload — no copy), then the array (scheme-decoded,
stuck-at faults masked).

Observability is aggregated per drain: one ``buffer_drain`` root span
wraps a ``fail_cache_consult`` child (batch consult statistics) and a
``differential_write`` stage child carrying the batch's receipt costs,
with the rare escalation spans (``proactive_migration``, ``spare_remap``,
``repartition``) nested inside in row order.  Both engines emit exactly
this sequence, which is what keeps trace JSONL and telemetry snapshots
byte-identical across ``engine="vector"``/``"scalar"`` and any worker
count.  Every serviced write still lands in the cost/latency histograms —
the quantitative version of the paper's §2.4/§3.2 service-cost narrative.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError, RetiredBlockError
from repro.pcm.writebuffer import WriteBuffer
from repro.schemes.base import WriteReceipt
from repro.service import kernels as service_kernels
from repro.service.array import MemoryArray
from repro.service.health import BlockHealth
from repro.service.policy import (
    BlockConditions,
    SchemePolicyEngine,
    validate_policy,
)
from repro.service.telemetry import ServiceTelemetry


class ServiceController:
    """Buffered, telemetered request pipeline over one :class:`MemoryArray`.

    Parameters
    ----------
    array:
        The array to serve; the controller shares its telemetry sink.
    buffer_capacity:
        Write-buffer entries before an automatic drain.
    proactive_migration:
        Migrate ``DEGRADED`` blocks to spares before writing them again
        (step 2 above); costs spares earlier, saves inversion-write wear.
    strict:
        Re-raise :class:`RetiredBlockError` from buffered flushes instead
        of recording the loss and continuing.
    engine:
        Drain engine: ``"vector"`` batches each drain through the numpy
        kernels, ``"scalar"`` services row by row, ``"auto"`` (and
        ``None``, the default) picks vector when a kernel covers the
        array's scheme.  ``None`` inherits the array's ``engine`` field.
        The resolved choice is exposed as :attr:`engine`; results are
        identical either way.
    policy:
        ``"fixed"`` (default) keeps every block on the array's base
        scheme — the historical behavior, byte-identical.  ``"adaptive"``
        evaluates the :class:`~repro.service.policy.SchemePolicyEngine`
        every ``policy_interval`` drains over the addresses written since
        the last evaluation and re-encodes blocks whose observed
        conditions (faults, maskable faults, write share, fault bursts)
        favor a different scheme, counting each move in
        ``policy_switches_total{from,to}``.  Decisions read only
        post-drain state, so adaptive runs stay bit-identical across
        workers and engines.
    policy_engine:
        The scorer for ``policy="adaptive"``; defaults to
        :class:`SchemePolicyEngine` over the standard option table.
    policy_interval:
        Drains between policy evaluations (``adaptive`` only).
    policy_cooldown:
        Evaluations an address sits out after a switch (hysteresis
        against re-encode flapping).
    """

    def __init__(
        self,
        array: MemoryArray,
        *,
        buffer_capacity: int = 32,
        proactive_migration: bool = False,
        strict: bool = False,
        engine: str | None = None,
        policy: str = "fixed",
        policy_engine: SchemePolicyEngine | None = None,
        policy_interval: int = 4,
        policy_cooldown: int = 2,
    ) -> None:
        self.array = array
        self.buffer = WriteBuffer(buffer_capacity, n_bits=array.block_bits)
        self.proactive_migration = proactive_migration
        self.strict = strict
        requested = array.engine if engine is None else engine
        self.engine = service_kernels.resolve_engine(requested, array)
        self._vector = self.engine == "vector"
        self.policy = validate_policy(policy)
        self._adaptive = self.policy == "adaptive"
        self.policy_engine = (
            policy_engine
            if policy_engine is not None
            else (
                SchemePolicyEngine(block_bits=array.block_bits)
                if self._adaptive
                else None
            )
        )
        if policy_interval < 1:
            raise ConfigurationError("policy interval must be >= 1")
        self.policy_interval = policy_interval
        self.policy_cooldown = policy_cooldown
        self._drains = 0
        self._policy_rounds = 0
        #: address -> writes drained since the last policy evaluation
        self._policy_writes: dict[int, int] = {}
        #: physical block -> fault count at the last evaluation
        self._policy_faults: dict[int, int] = {}
        #: address -> evaluation round of its last switch
        self._policy_switched_at: dict[int, int] = {}
        #: total scheme switches performed by this controller's policy
        self.policy_switches = 0
        #: optional per-row cost attribution callback ``(address, cell_writes)``
        #: invoked once per serviced row under *both* engines (fast vector
        #: rows report the same per-row cell-write count the scalar receipt
        #: would), so multi-tenant owners can bucket service cost per tenant
        #: without losing engine invariance
        self.cost_hook = None
        metrics = self.telemetry.metrics
        self._k_write_requests = metrics.series_key("write_requests")
        self._k_read_requests = metrics.series_key("read_requests")
        self._k_buffer_read_hits = metrics.series_key("buffer_read_hits")
        self._k_enqueued = metrics.series_key("buffer_requests_total", kind="enqueued")
        self._k_coalesced = metrics.series_key(
            "buffer_requests_total", kind="coalesced"
        )

    @property
    def telemetry(self) -> ServiceTelemetry:
        return self.array.telemetry

    # -- request path -------------------------------------------------------

    def write(self, address: int, payload: np.ndarray) -> None:
        """Accept a write request (serviced at the next drain)."""
        telemetry = self.telemetry
        telemetry.metrics.inc_key(self._k_write_requests)
        with telemetry.tracer.span("buffer_enqueue", address=address) as span:
            coalesced = self.buffer.put(address, payload)
            span.set(coalesced=coalesced)
        telemetry.metrics.inc_key(
            self._k_coalesced if coalesced else self._k_enqueued
        )
        if self.buffer.full:
            self.flush()

    def read(self, address: int) -> np.ndarray:
        """Serve a read: write-buffer forwarding first, then the array."""
        telemetry = self.telemetry
        telemetry.metrics.inc_key(self._k_read_requests)
        forwarded = self.buffer.lookup(address)
        if forwarded is not None:
            telemetry.metrics.inc_key(self._k_buffer_read_hits)
            return forwarded
        return self.array.read(address)

    def flush(self) -> int:
        """Drain the write buffer in enqueue order; returns writes drained
        (coalesced duplicates were already folded by the buffer)."""
        telemetry = self.telemetry
        tracer = telemetry.tracer
        array = self.array
        with tracer.span("buffer_drain", scheme=array.scheme_name) as root:
            addresses, payloads = self.buffer.drain()
            count = int(addresses.shape[0])
            root.set(entries=count)
            if count == 0:
                return 0
            known = self._consult_batch(addresses)
            with tracer.span("differential_write") as stage:
                if self._vector:
                    total, serviced, lost = service_kernels.drain_vector(
                        self, addresses, payloads, known
                    )
                else:
                    total, serviced, lost = self._drain_scalar(
                        addresses, payloads, known
                    )
                stage.cost(
                    cell_writes=total.cell_writes,
                    verification_reads=total.verification_reads,
                    repartitions=total.repartitions,
                    inversion_writes=total.inversion_writes,
                )
            root.cost(
                cell_writes=total.cell_writes,
                passes=serviced
                + total.verification_reads
                + total.repartitions
                + total.inversion_writes,
            )
            if lost:
                root.fail()
        if self._adaptive:
            for address in addresses.tolist():
                address = int(address)
                self._policy_writes[address] = self._policy_writes.get(address, 0) + 1
            self._drains += 1
            if self._drains % self.policy_interval == 0:
                self._evaluate_policy()
        recorder = telemetry.timeseries
        if recorder is not None and recorder.auto:
            # time-series sampling point: one per drain, on the op clock
            recorder.sample(array.op_clock)
        return count

    def close(self) -> None:
        """Drain any pending writes (call before reading final state)."""
        self.flush()

    # -- adaptive scheme policy ---------------------------------------------

    def _evaluate_policy(self) -> None:
        """One adaptive-policy pass over the addresses written since the
        last evaluation (sorted, so the decision order — and therefore
        every switch and its telemetry — is deterministic).

        Conditions are read from post-drain state, which the service
        kernels keep bit-identical across engines, so ``adaptive`` runs
        are exactly as worker/engine invariant as ``fixed`` ones.
        """
        array = self.array
        engine = self.policy_engine
        self._policy_rounds += 1
        round_index = self._policy_rounds
        window = self._policy_writes
        self._policy_writes = {}
        total_writes = sum(window.values())
        if total_writes == 0:
            return
        tracer = self.telemetry.tracer
        for address in sorted(window):
            physical = array.physical_of(address)
            if physical is None or array.is_dead(address):
                continue
            current_key = array.scheme_key_of(physical)
            if current_key is None:
                continue
            block = array.blocks[physical]
            fault_count = block.fault_count
            burst = fault_count - self._policy_faults.get(physical, 0)
            self._policy_faults[physical] = fault_count
            if fault_count == 0:
                # nothing observed to act on — re-encoding a pristine block
                # spends wear for a purely speculative overhead trade
                continue
            switched_at = self._policy_switched_at.get(address)
            if (
                switched_at is not None
                and round_index - switched_at < self.policy_cooldown
            ):
                continue
            conditions = BlockConditions(
                fault_count=fault_count,
                maskable_faults=len(block.cells.maskable_offsets),
                write_share=window[address] / total_writes,
                fault_burst=max(0, burst),
            )
            target = engine.choose(conditions, current_key)
            if target is None:
                continue
            with tracer.span(
                "policy_switch", address=address, to_scheme=target.key
            ):
                switched = array.switch_scheme(
                    address, target.spec.make_controller, target.key
                )
            if not switched:
                continue
            self.policy_switches += 1
            self._policy_switched_at[address] = round_index
            self.telemetry.metrics.inc(
                "policy_switches_total",
                **{"from": current_key, "to": target.key},
            )
            self.telemetry.emit(
                "policy_switch",
                op=array.op_clock,
                address=address,
                from_scheme=current_key,
                to_scheme=target.key,
                faults=fault_count,
            )

    # -- pipeline internals -------------------------------------------------

    def _consult_batch(self, addresses: np.ndarray) -> list[dict[int, int]]:
        """Fail-cache consultation for the whole drain (step 2).

        Raises for out-of-range addresses exactly where the per-row
        consult would (in row order), before any row is serviced.
        """
        array = self.array
        telemetry = self.telemetry
        with telemetry.tracer.span("fail_cache_consult") as consult:
            known = self._known_for(addresses)
            hits = sum(1 for entry in known if entry)
            consult.set(
                consults=len(known),
                hits=hits,
                known_faults=sum(len(entry) for entry in known),
            )
        misses = len(known) - hits
        metrics = telemetry.metrics
        if hits:
            metrics.inc(
                "fail_cache_consults_total",
                hits,
                scheme=array.scheme_name,
                result="hit",
            )
        if misses:
            metrics.inc(
                "fail_cache_consults_total",
                misses,
                scheme=array.scheme_name,
                result="miss",
            )
        return known

    def _known_for(self, addresses: np.ndarray) -> list[dict[int, int]]:
        array = self.array
        count = int(addresses.shape[0])
        valid = (addresses >= 0) & (addresses < array.n_addresses)
        if array.fail_cache is None or not valid.all():
            # row-order fallback: validates (and raises) per address like
            # the per-row consult; without a cache every result is empty
            return [array.known_faults(int(address)) for address in addresses]
        # columnar shortcut: a mapped block with zero stuck cells yields no
        # cache probes and no statistics, so only faulty blocks consult
        phys = array._map[addresses]
        known: list[dict[int, int]] = [service_kernels.EMPTY_FAULTS] * count
        mapped = np.flatnonzero(phys >= 0)
        if mapped.size:
            faulty = mapped[array.store.stuck[phys[mapped]].any(axis=1)]
            for row in faulty:
                known[int(row)] = array.known_faults(int(addresses[row]))
        return known

    def _drain_scalar(
        self,
        addresses: np.ndarray,
        payloads: np.ndarray,
        known: list[dict[int, int]],
    ) -> tuple[WriteReceipt, int, int]:
        """Service one drained batch row by row (the scalar engine)."""
        total = WriteReceipt()
        serviced = 0
        lost = 0
        for row in range(int(addresses.shape[0])):
            receipt = self._service_row(
                int(addresses[row]), payloads[row], known[row]
            )
            if receipt is None:
                lost += 1
            else:
                total.merge(receipt)
                serviced += 1
        return total, serviced, lost

    def _service_row(
        self, address: int, payload: np.ndarray, known: dict[int, int]
    ) -> WriteReceipt | None:
        """Service one row through the full pipeline (steps 2b-5).

        The scalar engine runs every row through here; the vector engine
        only the rows that escalate out of the batch.  Returns ``None``
        when the write was lost to spare-pool exhaustion (absorbed unless
        ``strict``).
        """
        array = self.array
        tracer = self.telemetry.tracer
        if (
            self.proactive_migration
            and known
            and array.health_of(address) is BlockHealth.DEGRADED
        ):
            with tracer.span("proactive_migration", address=address):
                array.migrate(address)
        try:
            receipt = array.write(address, payload)
        except RetiredBlockError as error:
            self.telemetry.count("writes_lost")
            # the typed context (array/block/scheme) is what a cluster
            # router keys migration decisions on — surface it as a
            # structured event rather than a string
            self.telemetry.emit(
                "write_lost",
                op=array.op_clock,
                address=error.address,
                array=error.array,
                block=error.block,
                scheme=error.scheme,
            )
            if self.strict:
                raise
            return None
        if receipt.repartitions:
            with tracer.span("repartition", op=array.op_clock) as span:
                span.cost(repartitions=receipt.repartitions)
        self.telemetry.record_receipt(receipt)
        if self.cost_hook is not None:
            self.cost_hook(address, receipt.cell_writes)
        return receipt
