"""The service request pipeline in front of :class:`MemoryArray`.

Write path (the production-shaped pipeline of DESIGN.md §2, assembled from
the pieces the reproduction already models bit-accurately):

1. **Coalescing write buffer** (:class:`~repro.pcm.writebuffer.WriteBuffer`)
   — repeated writes to one address collapse to the last payload; the
   buffer drains in first-enqueue order when full or on :meth:`flush`.
2. **Fail-cache consultation** — the controller asks the array's
   :class:`~repro.pcm.failcache.DirectMappedFailCache` for the target
   block's known faults (§2.4's pre-write classification) and, when the
   block is already ``DEGRADED``, proactively migrates it to a spare
   before spending more wear on it.
3. **Differential write + verification read** — inside
   :class:`~repro.pcm.block.ProtectedBlock` / the recovery scheme, exactly
   as in the device model (only differing cells are programmed; every
   write verifies).
4. **Retry-with-repartition escalation** — the scheme walks its partition
   configurations (slope bumps, vector extensions) internally; if the
   block still cannot take the data, the array remaps the address to a
   spare and replays the payload, bounded by the spare pool.
5. **Typed failure** — only a write that finds the pool exhausted raises
   :class:`~repro.errors.RetiredBlockError`.  During a buffered flush the
   controller absorbs it into telemetry (``writes_lost``) so one dead
   address never stalls the rest of the drain; pass ``strict=True`` to
   re-raise instead.

Read path: store-to-load forwarding from the write buffer, then the array
(scheme-decoded, stuck-at faults masked).

Every serviced write's :class:`~repro.schemes.base.WriteReceipt` lands in
the telemetry histograms, giving per-op service cost and latency — the
quantitative version of the paper's §2.4/§3.2 service-cost narrative.
"""

from __future__ import annotations

import numpy as np

from repro.errors import RetiredBlockError
from repro.pcm.writebuffer import WriteBuffer
from repro.service.array import MemoryArray
from repro.service.health import BlockHealth
from repro.service.telemetry import ServiceTelemetry


class ServiceController:
    """Buffered, telemetered request pipeline over one :class:`MemoryArray`.

    Parameters
    ----------
    array:
        The array to serve; the controller shares its telemetry sink.
    buffer_capacity:
        Write-buffer entries before an automatic drain.
    proactive_migration:
        Migrate ``DEGRADED`` blocks to spares before writing them again
        (step 2 above); costs spares earlier, saves inversion-write wear.
    strict:
        Re-raise :class:`RetiredBlockError` from buffered flushes instead
        of recording the loss and continuing.
    """

    def __init__(
        self,
        array: MemoryArray,
        *,
        buffer_capacity: int = 32,
        proactive_migration: bool = False,
        strict: bool = False,
    ) -> None:
        self.array = array
        self.buffer = WriteBuffer(buffer_capacity)
        self.proactive_migration = proactive_migration
        self.strict = strict

    @property
    def telemetry(self) -> ServiceTelemetry:
        return self.array.telemetry

    # -- request path -------------------------------------------------------

    def write(self, address: int, payload: np.ndarray) -> None:
        """Accept a write request (serviced at the next drain)."""
        self.telemetry.count("write_requests")
        with self.telemetry.tracer.span("buffer_enqueue", address=address) as span:
            coalesced = self.buffer.put(address, payload)
            span.set(coalesced=coalesced)
        self.telemetry.metrics.inc(
            "buffer_requests_total", kind="coalesced" if coalesced else "enqueued"
        )
        if self.buffer.full:
            self.flush()

    def read(self, address: int) -> np.ndarray:
        """Serve a read: write-buffer forwarding first, then the array."""
        self.telemetry.count("read_requests")
        forwarded = self.buffer.lookup(address)
        if forwarded is not None:
            self.telemetry.count("buffer_read_hits")
            return forwarded
        return self.array.read(address)

    def flush(self) -> int:
        """Drain the write buffer in enqueue order; returns writes serviced
        (coalesced duplicates were already folded by the buffer)."""
        with self.telemetry.tracer.span("buffer_drain") as span:
            entries = self.buffer.drain()
            span.set(entries=len(entries))
        for address, payload in entries:
            self._service_write(address, payload)
        return len(entries)

    def close(self) -> None:
        """Drain any pending writes (call before reading final state)."""
        self.flush()

    # -- pipeline internals -------------------------------------------------

    def _service_write(self, address: int, payload: np.ndarray) -> None:
        tracer = self.telemetry.tracer
        with tracer.span(
            "service_write", address=address, scheme=self.array.scheme_name
        ) as root:
            with tracer.span("fail_cache_consult") as consult:
                known = self.array.known_faults(address)  # fail-cache consultation
                consult.set(known_faults=len(known))
            self.telemetry.metrics.inc(
                "fail_cache_consults_total",
                scheme=self.array.scheme_name,
                result="hit" if known else "miss",
            )
            if (
                self.proactive_migration
                and known
                and self.array.health_of(address) is BlockHealth.DEGRADED
            ):
                with tracer.span("proactive_migration", address=address):
                    self.array.migrate(address)
            try:
                receipt = self.array.write(address, payload)
            except RetiredBlockError:
                root.fail()
                self.telemetry.count("writes_lost")
                if self.strict:
                    raise
                return
            root.cost(
                cell_writes=receipt.cell_writes,
                passes=1
                + receipt.verification_reads
                + receipt.repartitions
                + receipt.inversion_writes,
            )
            if receipt.repartitions:
                with tracer.span("repartition", op=self.array.op_clock) as span:
                    span.cost(repartitions=receipt.repartitions)
        self.telemetry.record_receipt(receipt)
