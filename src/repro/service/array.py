"""An addressable memory array over the bit-accurate PCM model.

:class:`MemoryArray` turns the reproduction's device substrate into
something that can *serve*: a logical block address space with
``write(addr, payload)`` / ``read(addr)``, backed by per-block recovery
controllers (Aegis/ECP/SAFER via any
:class:`~repro.pcm.block.SchemeFactory`), placed by the existing
wear-leveling policies, and protected by a FREE-p-style spare pool
(:class:`~repro.remap.pool.SparePool`).

The contract the rest of the service layer builds on:

* A write that the block's scheme cannot complete does **not** surface
  :class:`~repro.errors.UncorrectableError` to the caller.  The array
  retires the block (health machine → ``RETIRED``), allocates a fresh
  physical block from the pool, replays the payload there, and rewires the
  logical address — the caller sees a slower write, not data loss.
* Only when the pool is exhausted does the array raise the typed
  :class:`~repro.errors.RetiredBlockError`; the affected address is then
  dead, every other address keeps serving, and capacity statistics record
  the loss — graceful degradation rather than array death.
* Reads of a never-written address return zeros (fresh PCM cells), so the
  array behaves like real memory rather than a key-value store.

Placement: a logical address claims a physical block on its first write
(and on every remap) through the wear-leveling policy restricted to free
blocks, then writes in place — the write-in-place + allocation-time
leveling model of PCM, with differential writes and verification reads
happening inside :class:`~repro.pcm.block.ProtectedBlock` exactly as in
the device model.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError, RetiredBlockError, UncorrectableError
from repro.pcm.block import ProtectedBlock, SchemeFactory
from repro.pcm.failcache import DirectMappedFailCache
from repro.pcm.faults import fault_model_for
from repro.pcm.lifetime import LifetimeModel, NormalLifetime
from repro.pcm.wear import PerfectWearLeveling, WearLevelingPolicy
from repro.remap.pool import SparePool
from repro.schemes.base import WriteReceipt
from repro.service.health import BlockHealth, HealthTracker
from repro.service.kernels import BlockStore, validate_engine
from repro.service.telemetry import ServiceTelemetry

#: degrade threshold when the scheme does not expose a hard FTC
DEFAULT_DEGRADE_FAULTS = 4


class MemoryArray:
    """A logical block address space over ``n_addresses + spares`` blocks.

    Parameters
    ----------
    n_addresses:
        Size of the logical block address space.
    block_bits:
        Data bits per block (the recovery schemes' block size).
    scheme_factory:
        Builds the per-block recovery controller (any
        :class:`~repro.sim.roster.SchemeSpec`'s ``make_controller`` works).
    spares:
        Extra physical blocks beyond the address space — the FREE-p pool.
    lifetime_model, wear_leveling, rng:
        As in :class:`~repro.pcm.device.PCMDevice`.
    fail_cache:
        Optional :class:`~repro.pcm.failcache.DirectMappedFailCache`; when
        present, the array records faults discovered by verification reads
        and serves the controller's pre-write consultation.
    degrade_fault_threshold:
        Fault count flagging a block ``DEGRADED``; defaults to one below
        the scheme's hard FTC when it exposes one.
    telemetry:
        Optional :class:`ServiceTelemetry` sink for counters and events.
    engine:
        Default drain engine (``"auto"``/``"vector"``/``"scalar"``) for
        controllers built over this array; resolved per controller by
        :func:`repro.service.kernels.resolve_engine`.
    name:
        Identity of this array in a multi-array deployment; carried on
        every :class:`~repro.errors.RetiredBlockError` so cluster routers
        can attribute failures without string-parsing.
    fault_model:
        Cell fault statistics (:mod:`repro.pcm.faults`): a model instance
        or registry name.  Shapes every block's sampled endurance
        (``shape_lifetime``) and governs injection/masking semantics on
        the cells.  The hard default reproduces the historical arrays
        byte-for-byte.
    scheme_key:
        Roster key of the base scheme (e.g. ``"aegis-9x61"``); the label
        :meth:`scheme_key_of` reports for blocks the adaptive policy has
        not switched.  Optional — arrays built without one simply cannot
        be switched by a policy engine.
    """

    def __init__(
        self,
        n_addresses: int,
        block_bits: int,
        scheme_factory: SchemeFactory,
        *,
        spares: int = 0,
        lifetime_model: LifetimeModel | None = None,
        wear_leveling: WearLevelingPolicy | None = None,
        fail_cache: DirectMappedFailCache | None = None,
        degrade_fault_threshold: int | None = None,
        telemetry: ServiceTelemetry | None = None,
        rng: np.random.Generator | None = None,
        engine: str = "auto",
        name: str = "array0",
        fault_model: object | None = None,
        scheme_key: str | None = None,
    ) -> None:
        if n_addresses < 1:
            raise ConfigurationError("a memory array needs at least one address")
        if spares < 0:
            raise ConfigurationError("spare count cannot be negative")
        self.name = name
        self.rng = rng if rng is not None else np.random.default_rng()
        self.n_addresses = n_addresses
        self.block_bits = block_bits
        self.spares = spares
        self.fault_model = fault_model_for(fault_model)
        self.scheme_key = scheme_key
        # the hard default passes the caller's model through untouched
        # (None included), keeping historical arrays byte-identical
        shaped_lifetime = (
            lifetime_model
            if self.fault_model.key == "hard"
            else self.fault_model.shape_lifetime(
                lifetime_model if lifetime_model is not None else NormalLifetime()
            )
        )
        self.blocks = [
            ProtectedBlock(
                block_bits,
                scheme_factory,
                lifetime_model=shaped_lifetime,
                rng=self.rng,
                fault_model=self.fault_model,
            )
            for _ in range(n_addresses + spares)
        ]
        self.wear_leveling = (
            wear_leveling if wear_leveling is not None else PerfectWearLeveling()
        )
        self.fail_cache = fail_cache
        self.telemetry = telemetry if telemetry is not None else ServiceTelemetry()
        #: scheme label for labeled metrics/spans (all blocks share a scheme)
        self.scheme_name = getattr(
            self.blocks[0].scheme, "name", type(self.blocks[0].scheme).__name__
        )
        if degrade_fault_threshold is None:
            hard_ftc = getattr(self.blocks[0].scheme, "hard_ftc", None)
            degrade_fault_threshold = (
                max(1, int(hard_ftc) - 1)
                if isinstance(hard_ftc, int)
                else DEFAULT_DEGRADE_FAULTS
            )
        self.health = HealthTracker(
            len(self.blocks), degrade_fault_threshold, telemetry=self.telemetry
        )
        self.pool = SparePool(len(self.blocks))
        self._map = np.full(n_addresses, -1, dtype=np.int64)
        self._dead: set[int] = set()
        #: physical blocks whose scheme no longer matches the array's base
        #: scheme; the vector drain escalates these rows to the scalar
        #: pipeline (the batch kernels are built for the base scheme only)
        self._switched: set[int] = set()
        #: physical block -> roster key of its switched scheme
        self._scheme_keys: dict[int, str] = {}
        #: operations serviced (write or read) — the deterministic clock
        #: events are stamped with
        self.op_clock = 0
        self.engine = validate_engine(engine)
        #: columnar view over every block's cell state (rows are the cell
        #: arrays' own storage); always built — it is view-adoption, so
        #: the scalar path pays nothing for it
        self.store = BlockStore(self.blocks)
        # precomputed counter-series keys for the per-op hot path
        metrics = self.telemetry.metrics
        self._k_writes_serviced = metrics.series_key("writes_serviced")
        self._k_writes_ok = metrics.series_key(
            "writes_total", scheme=self.scheme_name, outcome="ok"
        )
        self._k_writes_remapped = metrics.series_key(
            "writes_total", scheme=self.scheme_name, outcome="remapped"
        )
        self._k_reads_serviced = metrics.series_key("reads_serviced")
        self._k_reads_total = metrics.series_key("reads_total", scheme=self.scheme_name)

    # -- address/state views ------------------------------------------------

    def _check_address(self, address: int) -> None:
        if not 0 <= address < self.n_addresses:
            raise ConfigurationError(
                f"address {address} outside logical space of {self.n_addresses}"
            )

    def is_dead(self, address: int) -> bool:
        """True when the address's data was lost to spare-pool exhaustion."""
        self._check_address(address)
        return address in self._dead

    def is_mapped(self, address: int) -> bool:
        self._check_address(address)
        return int(self._map[address]) >= 0

    def physical_of(self, address: int) -> int | None:
        """Physical block currently backing ``address`` (``None`` if unmapped)."""
        self._check_address(address)
        physical = int(self._map[address])
        return physical if physical >= 0 else None

    def health_of(self, address: int) -> BlockHealth:
        """Health of the block backing ``address`` (unmapped = healthy)."""
        physical = self.physical_of(address)
        if physical is None:
            return BlockHealth.HEALTHY
        return self.health.state_of(physical)

    def scheme_key_of(self, physical: int) -> str | None:
        """Roster key of the scheme currently on physical block
        ``physical`` (the base ``scheme_key`` unless a policy switched it)."""
        return self._scheme_keys.get(physical, self.scheme_key)

    def known_faults(self, address: int) -> dict[int, int]:
        """Fail-cache view of the faults under ``address`` (empty without a
        cache or mapping) — the pipeline's pre-write consultation."""
        physical = self.physical_of(address)
        if physical is None or self.fail_cache is None:
            return {}
        return self.fail_cache.known_faults(self.blocks[physical].cells)

    # -- data path ----------------------------------------------------------

    def _allocate(self, address: int, *, failed_block: int | None = None) -> int:
        physical = self.pool.allocate(address, self.wear_leveling, self.rng)
        if physical is None:
            self._dead.add(address)
            self.telemetry.count("addresses_lost")
            self.telemetry.metrics.inc(
                "writes_total", scheme=self.scheme_name, outcome="lost"
            )
            self.telemetry.emit("address_lost", op=self.op_clock, address=address)
            raise RetiredBlockError(
                f"address {address}: spare pool exhausted",
                address=address,
                array=self.name,
                block=failed_block,
                scheme=self.scheme_name,
            )
        self._map[address] = physical
        return physical

    def _record_faults(self, physical: int) -> None:
        """Feed faults surfaced by the write's verification reads into the
        fail cache (the paper's discovery path, §2.4)."""
        if self.fail_cache is None:
            return
        cells = self.blocks[physical].cells
        for offset in cells.fault_offsets:
            self.fail_cache.record(cells, offset, cells.stuck_value_of(offset))

    def write(self, address: int, payload: np.ndarray) -> WriteReceipt:
        """Store ``payload`` at ``address``, surviving block failures.

        Raises :class:`RetiredBlockError` only when a block failure finds
        the spare pool empty — the address is then permanently dead.
        """
        self._check_address(address)
        if address in self._dead:
            raise RetiredBlockError(
                f"address {address} was retired (data lost)",
                address=address,
                array=self.name,
                scheme=self.scheme_name,
            )
        self.op_clock += 1
        tracer = self.telemetry.tracer
        physical = self.physical_of(address)
        if physical is None:
            physical = self._allocate(address)
        receipt = WriteReceipt()
        remapped = False
        # bounded by the pool: each failed attempt consumes one spare, and
        # a freshly allocated block (no faults yet) always accepts the write
        for _attempt in range(self.pool.remaining + 1):
            try:
                attempt_receipt = self.blocks[physical].write(payload)
            except UncorrectableError:
                with tracer.span("spare_remap", op=self.op_clock, address=address):
                    physical = self._remap(address, physical)
                remapped = True
                continue
            receipt.merge(attempt_receipt)
            self.health.observe_faults(
                physical, self.blocks[physical].fault_count, op=self.op_clock
            )
            self._record_faults(physical)
            metrics = self.telemetry.metrics
            metrics.inc_key(self._k_writes_serviced)
            metrics.inc_key(self._k_writes_remapped if remapped else self._k_writes_ok)
            metrics.observe(
                "stage_cost",
                receipt.cell_writes,
                edges=self.telemetry.service_cost.edges,
                stage="differential_write",
                scheme=self.scheme_name,
            )
            return receipt
        raise AssertionError("remap loop exceeded spare pool")  # pragma: no cover

    def _remap(self, address: int, failed_physical: int) -> int:
        """Retire a failed block and rewire ``address`` to a fresh one."""
        self.health.retire(failed_physical, op=self.op_clock)
        self.wear_leveling.on_page_failed(failed_physical)
        self._map[address] = -1
        # raises (with the failed block's identity) when the pool is dry
        physical = self._allocate(address, failed_block=failed_physical)
        self.telemetry.count("remaps")
        self.telemetry.metrics.inc("remaps_total", scheme=self.scheme_name)
        self.telemetry.emit(
            "remap",
            op=self.op_clock,
            address=address,
            failed_block=failed_physical,
            spare=physical,
        )
        return physical

    def read(self, address: int) -> np.ndarray:
        """The payload last stored at ``address`` (zeros when never written).

        Raises :class:`RetiredBlockError` for a dead address — the service
        signal that this data is gone.
        """
        self._check_address(address)
        if address in self._dead:
            raise RetiredBlockError(
                f"address {address} was retired (data lost)",
                address=address,
                array=self.name,
                scheme=self.scheme_name,
            )
        self.op_clock += 1
        metrics = self.telemetry.metrics
        metrics.inc_key(self._k_reads_serviced)
        metrics.inc_key(self._k_reads_total)
        physical = int(self._map[address])
        if physical < 0:
            return np.zeros(self.block_bits, dtype=np.uint8)
        return self.blocks[physical].read()

    def migrate(self, address: int) -> bool:
        """Proactively move a (typically degraded) address to a fresh block.

        Returns ``False`` — leaving the data in place — when the pool has
        no block to give; never raises, because migration is an
        optimisation, not a correctness requirement.
        """
        physical = self.physical_of(address)
        if physical is None or address in self._dead:
            return False
        if self.pool.remaining == 0:
            return False
        data = self.blocks[physical].read()
        self.health.retire(physical, op=self.op_clock, reason="migrated")
        self.wear_leveling.on_page_failed(physical)
        self._map[address] = -1
        fresh = self._allocate(address)
        self.blocks[fresh].write(data)
        self.telemetry.count("migrations")
        self.telemetry.metrics.inc("migrations_total", scheme=self.scheme_name)
        self.telemetry.emit(
            "migrate", op=self.op_clock, address=address, from_block=physical, to_block=fresh
        )
        return True

    def switch_scheme(self, address: int, factory: SchemeFactory, scheme_key: str) -> bool:
        """Re-encode the block behind ``address`` under a different scheme.

        The adaptive policy's escalation primitive: the payload is decoded
        under the incumbent scheme, the block's cells are rebound to a
        fresh controller from ``factory``, and the payload is replayed
        through the normal write path — so a re-encode the new scheme
        cannot complete takes exactly the ordinary failure road (retire,
        spare remap, :class:`RetiredBlockError` on pool exhaustion)
        rather than inventing a second one.  Switched physical blocks are
        recorded so the vector drain routes them to the scalar pipeline.

        Returns ``False`` (block untouched) for unmapped, dead, or
        already-failed addresses, and when the re-encode lost the address
        to pool exhaustion.
        """
        self._check_address(address)
        physical = self.physical_of(address)
        if physical is None or address in self._dead:
            return False
        block = self.blocks[physical]
        if block.failed:
            return False
        data = block.read()
        block.scheme = factory(block.cells)
        self._switched.add(physical)
        self._scheme_keys[physical] = scheme_key
        try:
            self.write(address, data)
        except RetiredBlockError:
            return False
        self.telemetry.count("scheme_switches")
        self.telemetry.emit(
            "scheme_switch",
            op=self.op_clock,
            address=address,
            block=physical,
            scheme=scheme_key,
        )
        return True

    # -- capacity accounting ------------------------------------------------

    @property
    def live_addresses(self) -> int:
        return self.n_addresses - len(self._dead)

    @property
    def dead_addresses(self) -> tuple[int, ...]:
        return tuple(sorted(self._dead))

    @property
    def fault_count(self) -> int:
        """Stuck cells across every physical block."""
        return sum(block.fault_count for block in self.blocks)

    def capacity_summary(self) -> dict[str, object]:
        """Deterministic capacity/health roll-up for snapshots."""
        mapped = int((self._map >= 0).sum())
        return {
            "total_addresses": self.n_addresses,
            "live_addresses": self.live_addresses,
            "dead_addresses": len(self._dead),
            "mapped_addresses": mapped,
            "free_blocks": self.pool.remaining,
            "capacity_fraction": round(self.live_addresses / self.n_addresses, 6),
            **{f"blocks_{k}": v for k, v in self.health.summary().items()},
        }
