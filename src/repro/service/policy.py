"""Adaptive per-block scheme selection for the service layer.

The paper picks one recovery scheme per deployment and sticks with it;
this module lets the service pick per *block*, from observed conditions.
Different blocks see different lives — a hot block under a Zipf workload
burns endurance orders of magnitude faster than a cold one, a block under
the drift fault model collects faults in bursts, and a block whose faults
are partially stuck (maskable) needs less correction muscle than its raw
fault count suggests.  A fixed scheme pays one overhead everywhere; an
adaptive policy spends overhead only where the observed conditions say it
buys lifetime.

Three pieces:

* :class:`SchemeOption` — one candidate scheme: a roster
  :class:`~repro.sim.roster.SchemeSpec` plus its *hard FTC* (the fault
  count it guarantees to survive), the quantity the scoring trades
  against overhead bits.
* :class:`BlockConditions` — the per-block observation vector the
  controller assembles at each evaluation: stuck-cell count, maskable
  (partially-stuck) fault count, the block's share of recent write
  traffic, and the fault-arrival burst since the last look.
* :class:`SchemePolicyEngine` — the deterministic scorer.  Every option
  gets ``demand * protection - overhead_weight * overhead`` where demand
  grows with write pressure and burstiness, protection is the saturating
  FTC headroom above the block's *effective* (maskable-discounted) fault
  count, and overhead is the option's bit cost relative to the block.
  A switch is proposed only when the best option clears the incumbent by
  the hysteresis margin — flapping between near-tied schemes would pay
  re-encode wear for nothing.

Determinism contract
--------------------
Scoring is pure arithmetic over the conditions — no RNG, no wall clock —
and ties break lexicographically on the option key, so the same observed
state always yields the same decision.  The controller evaluates from
post-drain state (engine-invariant by the service-kernel bit-identity
contract) in sorted address order, which is what keeps adaptive runs
bit-identical across ``--workers`` and ``--engine`` (asserted in
``tests/test_policy.py``).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.formations import aegis_hard_ftc, safer_hard_ftc
from repro.errors import ConfigurationError
from repro.sim.roster import SchemeSpec, aegis_spec, ecp_spec, safer_spec

#: controller policy modes (``fixed`` = historical single-scheme behavior)
POLICY_CHOICES = ("fixed", "adaptive")


@dataclass(frozen=True)
class SchemeOption:
    """One candidate scheme the policy may place on a block.

    ``hard_ftc`` is the fault count the scheme *guarantees* to survive
    (Table 1's hard FTC); the policy never proposes a scheme whose hard
    FTC does not clear the block's effective fault count, so a switch can
    never land on a scheme that immediately fails the re-encode.
    """

    spec: SchemeSpec
    hard_ftc: int

    @property
    def key(self) -> str:
        return self.spec.key

    @property
    def overhead_bits(self) -> int:
        return self.spec.overhead_bits


@dataclass(frozen=True)
class BlockConditions:
    """Observed per-block state driving one policy evaluation.

    ``write_share`` is the block's fraction of the evaluation window's
    writes (hotness); ``fault_burst`` is how many faults arrived since
    the previous evaluation (the time-correlation signal the drift model
    produces); ``maskable_faults`` counts stuck cells the fault model can
    mask at lower cost than full correction (partially-stuck cells).
    """

    fault_count: int
    maskable_faults: int = 0
    write_share: float = 0.0
    fault_burst: int = 0

    @property
    def effective_faults(self) -> int:
        """Faults the scheme actually has to correct: maskable
        partially-stuck cells discount the raw count (they can be held at
        a readable level without spending correction resources)."""
        return max(0, self.fault_count - self.maskable_faults)


def default_policy_options(block_bits: int = 512) -> tuple[SchemeOption, ...]:
    """The standard option table: the service-layer schemes with batch
    kernels, spanning the overhead/FTC trade (36..91 bits, FTC 6..11)."""
    return (
        SchemeOption(aegis_spec(17, 31, block_bits), aegis_hard_ftc(31)),
        SchemeOption(aegis_spec(9, 61, block_bits), aegis_hard_ftc(61)),
        SchemeOption(ecp_spec(6, block_bits), 6),
        SchemeOption(safer_spec(64, block_bits), safer_hard_ftc(64)),
    )


class SchemePolicyEngine:
    """Deterministic option-table scorer for per-block scheme selection.

    Parameters
    ----------
    options:
        Candidate :class:`SchemeOption` table (default:
        :func:`default_policy_options`).  Keys must be unique.
    block_bits:
        Data bits per block, the denominator of the overhead term.
    hysteresis:
        Score margin the best option must clear over the incumbent
        before a switch is proposed.
    overhead_weight:
        Weight of the overhead term against the protection term.
    headroom_cap:
        FTC headroom beyond which extra protection buys nothing (the
        saturation point of the protection term).
    """

    def __init__(
        self,
        options: tuple[SchemeOption, ...] | None = None,
        *,
        block_bits: int = 512,
        hysteresis: float = 0.05,
        overhead_weight: float = 0.6,
        headroom_cap: int = 8,
    ) -> None:
        self.options = (
            tuple(options) if options is not None else default_policy_options(block_bits)
        )
        if not self.options:
            raise ConfigurationError("a policy engine needs at least one option")
        keys = [option.key for option in self.options]
        if len(set(keys)) != len(keys):
            raise ConfigurationError(f"duplicate policy option keys: {keys}")
        for option in self.options:
            if option.hard_ftc < 1:
                raise ConfigurationError(
                    f"option {option.key!r} needs a positive hard FTC"
                )
        if not 0 <= hysteresis:
            raise ConfigurationError("hysteresis must be >= 0")
        if headroom_cap < 1:
            raise ConfigurationError("headroom cap must be >= 1")
        self.block_bits = block_bits
        self.hysteresis = hysteresis
        self.overhead_weight = overhead_weight
        self.headroom_cap = headroom_cap
        self._by_key = {option.key: option for option in self.options}

    def option_for(self, key: str) -> SchemeOption | None:
        """The option registered under ``key`` (``None`` when the table
        does not cover it — e.g. an array serving a sampled scheme)."""
        return self._by_key.get(key)

    def score(self, option: SchemeOption, conditions: BlockConditions) -> float:
        """Utility of holding the block under ``option`` — pure arithmetic.

        Protection is the saturating FTC headroom above the effective
        fault count; demand scales it by how much the block matters
        (write share) and how fast faults are arriving (burst); overhead
        is the flat bit cost.  An option whose hard FTC cannot cover the
        effective faults scores its (negative) headroom outright, so a
        block at risk always prefers any option that still covers it.
        """
        headroom = option.hard_ftc - conditions.effective_faults
        overhead = self.overhead_weight * option.overhead_bits / self.block_bits
        if headroom <= 0:
            return float(headroom) - overhead
        pressure = min(1.0, 4.0 * conditions.write_share)
        burst = min(1.0, conditions.fault_burst / 4.0)
        demand = min(1.0, 0.3 + 0.45 * pressure + 0.25 * burst)
        protection = min(headroom, self.headroom_cap) / self.headroom_cap
        return demand * protection - overhead

    def choose(
        self, conditions: BlockConditions, current_key: str
    ) -> SchemeOption | None:
        """The option to switch the block to, or ``None`` to stay put.

        Returns ``None`` when the incumbent scheme is not in the option
        table (nothing to compare against — the policy never evicts a
        scheme it cannot score), when the incumbent is already the best,
        or when the best lead is within the hysteresis margin.
        """
        current = self._by_key.get(current_key)
        if current is None:
            return None
        # lexicographic tie-break on key keeps the decision deterministic
        best = max(
            self.options,
            key=lambda option: (self.score(option, conditions), option.key),
        )
        if best.key == current_key:
            return None
        if self.score(best, conditions) <= self.score(current, conditions) + self.hysteresis:
            return None
        return best


def validate_policy(policy: str) -> str:
    """Validate a controller policy mode string (mirrors
    :func:`repro.service.kernels.validate_engine`)."""
    if policy not in POLICY_CHOICES:
        raise ConfigurationError(
            f"unknown policy {policy!r}; expected one of {POLICY_CHOICES}"
        )
    return policy
