"""Exception hierarchy for the Aegis reproduction library.

Every error raised by this package derives from :class:`ReproError`, so
callers can catch one type to handle any library failure.  The two most
important subclasses are :class:`UncorrectableError`, raised by a recovery
scheme when a data block can no longer store arbitrary data, and
:class:`ConfigurationError`, raised when a scheme or simulation is
constructed with parameters that violate the paper's constraints (for
example a non-prime ``B`` in an ``A x B`` Aegis formation).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by :mod:`repro`."""


class ConfigurationError(ReproError, ValueError):
    """A scheme, device, or simulation was configured with invalid parameters."""


class UncorrectableError(ReproError):
    """A write could not be completed because faults exceed the scheme's capability.

    Attributes
    ----------
    fault_offsets:
        In-block bit offsets of the faults present when the write failed,
        when known.  Empty tuple when the scheme does not track them.
    """

    def __init__(self, message: str, fault_offsets: tuple[int, ...] = ()) -> None:
        super().__init__(message)
        self.fault_offsets = tuple(fault_offsets)


class BlockRetiredError(ReproError):
    """An operation targeted a data block that has already been retired."""


class RetiredBlockError(ReproError):
    """A logical address can no longer be served: its block failed and the
    spare pool is exhausted.

    This is the *service-level* end-of-capacity signal raised by
    :class:`repro.service.MemoryArray`, distinct from
    :class:`BlockRetiredError` (a physical block refusing traffic — which
    the service layer absorbs by remapping to a spare).  Once raised for an
    address, that address is dead: the array keeps serving every other
    address, so capacity degrades gracefully instead of the whole array
    failing.

    Attributes
    ----------
    address:
        The logical block address that was lost, when known.
    """

    def __init__(self, message: str, address: int | None = None) -> None:
        super().__init__(message)
        self.address = address


class CacheMissError(ReproError):
    """A fail-cache lookup required by a cache-assisted scheme missed.

    Raised only when a cache-assisted variant (Aegis-rw, Aegis-rw-p,
    SAFER-cache) is configured with ``strict=True`` and the fail cache does
    not contain every fault of the block being written.
    """
