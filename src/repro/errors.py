"""Exception hierarchy for the Aegis reproduction library.

Every error raised by this package derives from :class:`ReproError`, so
callers can catch one type to handle any library failure.  The two most
important subclasses are :class:`UncorrectableError`, raised by a recovery
scheme when a data block can no longer store arbitrary data, and
:class:`ConfigurationError`, raised when a scheme or simulation is
constructed with parameters that violate the paper's constraints (for
example a non-prime ``B`` in an ``A x B`` Aegis formation).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by :mod:`repro`."""


class ConfigurationError(ReproError, ValueError):
    """A scheme, device, or simulation was configured with invalid parameters."""


class FaultInjectionError(ReproError, ValueError):
    """A fault injection targeted a cell that cannot take it.

    Raised by :meth:`repro.pcm.cell.CellArray.inject_fault` (through the
    array's fault model) when the offset is outside the array, the stuck
    value is not a bit, or the cell is already stuck — a stuck cell is
    permanently frozen, so re-injecting it would silently rewrite device
    history.  Subclasses :class:`ValueError` so callers that treated the
    historical ad-hoc ``ValueError`` keep working.

    Attributes
    ----------
    offset:
        The offending in-array cell offset, when known.
    """

    def __init__(self, message: str, offset: int | None = None) -> None:
        super().__init__(message)
        self.offset = offset


class UncorrectableError(ReproError):
    """A write could not be completed because faults exceed the scheme's capability.

    Attributes
    ----------
    fault_offsets:
        In-block bit offsets of the faults present when the write failed,
        when known.  Empty tuple when the scheme does not track them.
    """

    def __init__(self, message: str, fault_offsets: tuple[int, ...] = ()) -> None:
        super().__init__(message)
        self.fault_offsets = tuple(fault_offsets)


class BlockRetiredError(ReproError):
    """An operation targeted a data block that has already been retired."""


class RetiredBlockError(ReproError):
    """A logical address can no longer be served: its block failed and the
    spare pool is exhausted.

    This is the *service-level* end-of-capacity signal raised by
    :class:`repro.service.MemoryArray`, distinct from
    :class:`BlockRetiredError` (a physical block refusing traffic — which
    the service layer absorbs by remapping to a spare).  Once raised for an
    address, that address is dead: the array keeps serving every other
    address, so capacity degrades gracefully instead of the whole array
    failing.

    The error carries full placement context so a cluster router can make
    migration and rebalancing decisions from the typed attributes instead
    of string-parsing the message.

    Attributes
    ----------
    address:
        The logical block address that was lost, when known.
    array:
        Name of the :class:`~repro.service.MemoryArray` that raised, when
        known — the routing key a cluster front-end steers traffic by.
    block:
        Physical block index whose failure exhausted the pool (``None``
        for an address that was already dead, where no new block failed).
    scheme:
        Recovery-scheme label of the raising array, when known.
    """

    def __init__(
        self,
        message: str,
        address: int | None = None,
        *,
        array: str | None = None,
        block: int | None = None,
        scheme: str | None = None,
    ) -> None:
        super().__init__(message)
        self.address = address
        self.array = array
        self.block = block
        self.scheme = scheme


class BackpressureError(ReproError):
    """A write was refused by admission control: the target array's write
    buffer is saturated and the requester's QoS class does not entitle it
    to keep filling the queue.

    Latency-sensitive (interactive) writers are never backpressured —
    their writes trigger the drain instead; bulk writers receive this
    error with a ``retry_after`` hint (operations to wait before
    retrying) so closed-loop clients can implement deterministic retry.

    Attributes
    ----------
    retry_after:
        Suggested number of operations (or milliseconds, at the asyncio
        front-end) to wait before retrying.
    array:
        Name of the saturated array.
    tenant:
        Tenant whose write was refused, when known.
    """

    def __init__(
        self,
        message: str,
        *,
        retry_after: int = 1,
        array: str | None = None,
        tenant: str | None = None,
    ) -> None:
        super().__init__(message)
        self.retry_after = retry_after
        self.array = array
        self.tenant = tenant


class ClusterCapacityError(ReproError):
    """No array in the cluster has a free logical address for a new key.

    Raised only on *first placement* of a key when every live array's
    logical address space is exhausted; existing keys keep serving.
    """


class CacheMissError(ReproError):
    """A fail-cache lookup required by a cache-assisted scheme missed.

    Raised only when a cache-assisted variant (Aegis-rw, Aegis-rw-p,
    SAFER-cache) is configured with ``strict=True`` and the fail cache does
    not contain every fault of the block being written.
    """
