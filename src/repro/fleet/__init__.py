"""Streaming fleet-campaign engine (ROADMAP open item 3).

A *campaign* simulates a fleet of pages — millions of blocks over years
of simulated traffic — under one or more recovery schemes, without ever
holding the fleet in memory.  The package exploits the same structural
trick Aegis applies to data blocks: partition the work so per-partition
state never interacts.  Every page's trajectory is a pure function of
``rng_for(seed, page)``, so workers can fold their chunk of pages into a
compact, commutatively-mergeable :class:`~repro.fleet.aggregate.SchemeAggregate`
and ship O(aggregate) bytes across the process boundary instead of
O(pages) pickled results.

Layers:

* :mod:`repro.fleet.aggregate` — the shard-side reduction contract:
  Welford moments, bounded lifetime histograms, exact retention counts,
  and the campaign digest.
* :mod:`repro.fleet.campaign` — the streaming runner: windowed
  scheduling over a persistent warm pool, deterministic merge order,
  JSONL checkpoint/resume, and the time-series/SLO feed.

Surfaced as ``repro fleet-bench`` and the ``ext-fleet`` experiment;
benchmarked by ``benchmarks/bench_fleet.py`` (BENCH_fleet.json).
"""

from repro.fleet.aggregate import (
    CampaignAggregate,
    SchemeAggregate,
    default_retention_edges,
)
from repro.fleet.campaign import (
    DEFAULT_CAMPAIGN_SCHEMES,
    FLEET_SCHEMES,
    WEAR_POLICIES,
    CampaignReport,
    CampaignRunner,
    CampaignSpec,
    default_fleet_slos,
    fleet_spec,
    read_checkpoint,
    run_campaign,
    wear_lifetime,
)

__all__ = [
    "DEFAULT_CAMPAIGN_SCHEMES",
    "FLEET_SCHEMES",
    "WEAR_POLICIES",
    "CampaignAggregate",
    "CampaignReport",
    "CampaignRunner",
    "CampaignSpec",
    "SchemeAggregate",
    "default_fleet_slos",
    "default_retention_edges",
    "fleet_spec",
    "read_checkpoint",
    "run_campaign",
    "wear_lifetime",
]
