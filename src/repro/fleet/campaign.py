"""Streaming campaign runner: warm pools, checkpoints, SLO feed.

A campaign runs every page of every scheme through
:meth:`repro.sim.parallel.SimExecutor.imap_chunks`, folding each worker
shard into a :class:`~repro.fleet.aggregate.CampaignAggregate` the moment
it is emitted.  Peak memory is O(window × chunk) regardless of fleet
size, and the only per-chunk IPC payload is the compact shard state.

Determinism contract (what makes kill/resume bit-identical):

* every page draws from ``rng_for(seed, page)``, so any slice of the
  fleet is independently computable;
* workers fold pages in page order, the parent merges shards in
  chunk-index order (``imap_chunks`` emits in chunk order for every
  worker count and window size);
* checkpoints serialize the aggregate with full float precision (JSON
  ``repr`` round-trip), so resuming from chunk *k* performs exactly the
  float operations the uninterrupted run performs from chunk *k*.

Checkpoint format: JSONL, one ``meta`` record (config digest + cursor)
followed by one ``scheme`` record per partially- or fully-finished
scheme.  Files are written atomically (tmp + ``os.replace``), so a kill
mid-checkpoint leaves the previous checkpoint intact.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import signal
import time
from dataclasses import dataclass, field

from repro.errors import ConfigurationError
from repro.fleet.aggregate import (
    CampaignAggregate,
    SchemeAggregate,
    default_retention_edges,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.slo import SLOSpec, write_slo_jsonl
from repro.obs.timeseries import TimeSeriesRecorder
from repro.pcm.faults import FAULT_MODEL_CHOICES
from repro.pcm.lifetime import NormalLifetime, WearSkewLifetime
from repro.sim import roster
from repro.sim.context import ExecContext
from repro.sim.page_sim import DEFAULT_INVERSION_WEAR, DEFAULT_WRITE_PROBABILITY
from repro.sim.parallel import (
    PageTask,
    SimExecutor,
    _chunked,
    simulate_task_page,
    simulate_task_pages,
)

#: checkpoint file format version (bumped on incompatible layout changes)
CHECKPOINT_VERSION = 1

#: the campaign scheme roster: short stable keys -> spec factories taking
#: the block size in bits.  Keys are what CampaignSpec.schemes, the CLI
#: ``--schemes`` flag and checkpoint records carry.
FLEET_SCHEMES = {
    "aegis-9x61": lambda n_bits: roster.aegis_spec(9, 61, n_bits),
    "aegis-17x31": lambda n_bits: roster.aegis_spec(17, 31, n_bits),
    "aegis-rw-9x61": lambda n_bits: roster.aegis_rw_spec(9, 61, n_bits),
    "ecp6": lambda n_bits: roster.ecp_spec(6, n_bits),
    "safer64": lambda n_bits: roster.safer_spec(64, n_bits),
    "hamming": lambda n_bits: roster.hamming_spec(n_bits),
    "none": lambda n_bits: roster.no_protection_spec(n_bits),
}

#: default roster: the paper's headline scheme against the two strongest
#: prior-art baselines (all vector-capable, so campaigns stay fast)
DEFAULT_CAMPAIGN_SCHEMES = ("aegis-9x61", "ecp6", "safer64")

#: wear-leveling policies as campaign grid dimensions: name ->
#: (hot_fraction, hot_rate) for :class:`~repro.pcm.lifetime.WearSkewLifetime`.
#: "perfect" is the identity (the paper's assumption: traffic spread
#: evenly); weaker policies concentrate hot_rate× traffic on a quarter of
#: the cells — "none" models no leveling at all, "start-gap" and
#: "security-refresh" the residual skew of the published levelers.
WEAR_POLICIES = {
    "perfect": (0.0, 1.0),
    "none": (0.25, 2.5),
    "start-gap": (0.25, 1.2),
    "security-refresh": (0.25, 1.05),
}

#: the policy with no effect on results (kept out of digests and keys)
DEFAULT_WEAR_POLICY = "perfect"


def wear_lifetime(model: NormalLifetime, policy: str):
    """Wrap a lifetime model in the skew a wear policy induces
    (identity — the same object — for ``"perfect"``)."""
    try:
        hot_fraction, hot_rate = WEAR_POLICIES[policy]
    except KeyError:
        raise ConfigurationError(
            f"unknown wear policy {policy!r}; known: "
            f"{', '.join(sorted(WEAR_POLICIES))}"
        ) from None
    if hot_fraction <= 0.0 or hot_rate == 1.0:
        return model
    return WearSkewLifetime(base=model, hot_fraction=hot_fraction, hot_rate=hot_rate)


def fleet_spec(name: str, block_bits: int = 512):
    """Resolve a campaign scheme key to its :class:`SchemeSpec`."""
    try:
        factory = FLEET_SCHEMES[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown fleet scheme {name!r}; known: {', '.join(sorted(FLEET_SCHEMES))}"
        ) from None
    return factory(block_bits)


def warm_fleet_caches(
    scheme_names: tuple[str, ...], block_bits: int, engine: str = "auto"
) -> None:
    """Pool initializer: prime every per-process cache a campaign touches.

    Runs one single-block page per scheme in the worker before it takes
    its first chunk, which builds the ``lru_cache``'d formation /
    partition / collision tables and the kernel ROMs exactly as real
    chunks will.  Module-level so :class:`ProcessPoolExecutor` can pickle
    it as an ``initializer``.
    """
    for name in scheme_names:
        task = PageTask(
            spec=fleet_spec(name, block_bits),
            blocks_per_page=1,
            seed=0,
            lifetime_model=None,
            write_probability=DEFAULT_WRITE_PROBABILITY,
            inversion_wear_rate=DEFAULT_INVERSION_WEAR,
            engine=engine,
        )
        simulate_task_page(task, 0)


@dataclass(frozen=True)
class FleetTask:
    """Per-scheme worker task: the page task plus the reduction params."""

    page_task: PageTask
    edges: tuple[float, ...]
    retention_age: float
    measure_bytes: bool = True


def reduce_fleet_chunk(task: FleetTask, indices: tuple[int, ...]) -> dict:
    """Worker entry point: simulate a chunk, return only its shard state.

    This is the shard-side reduction: the full ``PageResult`` list dies in
    the worker and a constant-size moment/histogram state crosses IPC.
    ``result_bytes`` records what the full-result path *would* have
    shipped (measured with the same pickle protocol the pool uses), so
    the parent can account the reduction ratio without ever paying it.
    """
    results = simulate_task_pages(task.page_task, indices)
    shard = SchemeAggregate(task.edges, task.retention_age)
    for result in results:
        shard.push(result)
    shard.chunks = 1
    if task.measure_bytes:
        shard.result_bytes = len(pickle.dumps(results, pickle.HIGHEST_PROTOCOL))
    return shard.state()


@dataclass(frozen=True)
class CampaignSpec:
    """What a campaign simulates (never how — that is :class:`ExecContext`).

    ``retention_age`` and ``edges`` default to a ladder around the
    campaign's characteristic page lifetime (mean endurance over the
    write probability), so the histograms track the interesting region of
    the survival curve for any endurance parameters.
    """

    schemes: tuple[str, ...] = DEFAULT_CAMPAIGN_SCHEMES
    pages_per_scheme: int = 64
    blocks_per_page: int = 8
    block_bits: int = 512
    chunk_pages: int = 8
    mean_endurance: float | None = None
    endurance_cov: float | None = None
    write_probability: float = DEFAULT_WRITE_PROBABILITY
    inversion_wear_rate: float = DEFAULT_INVERSION_WEAR
    retention_age: float | None = None
    edges: tuple[float, ...] | None = None
    measure_bytes: bool = True
    #: wear-leveling grid dimension: each scheme is aged once per policy
    #: (see :data:`WEAR_POLICIES`); the default single-"perfect" grid is
    #: digest-identical to campaigns predating the dimension
    wear_policies: tuple[str, ...] = (DEFAULT_WEAR_POLICY,)
    #: fault model the campaign ages under (repro.pcm.faults)
    fault_model: str = "hard"

    def __post_init__(self) -> None:
        if not self.schemes:
            raise ConfigurationError("a campaign needs at least one scheme")
        for name in self.schemes:
            if name not in FLEET_SCHEMES:
                raise ConfigurationError(
                    f"unknown fleet scheme {name!r}; known: "
                    f"{', '.join(sorted(FLEET_SCHEMES))}"
                )
        if not self.wear_policies:
            raise ConfigurationError("a campaign needs at least one wear policy")
        for policy in self.wear_policies:
            if policy not in WEAR_POLICIES:
                raise ConfigurationError(
                    f"unknown wear policy {policy!r}; known: "
                    f"{', '.join(sorted(WEAR_POLICIES))}"
                )
        if self.fault_model not in FAULT_MODEL_CHOICES:
            raise ConfigurationError(
                f"unknown fault model {self.fault_model!r}; known: "
                f"{', '.join(FAULT_MODEL_CHOICES)}"
            )
        if self.pages_per_scheme < 1:
            raise ConfigurationError("pages_per_scheme must be positive")
        if self.chunk_pages < 1:
            raise ConfigurationError("chunk_pages must be positive")

    def grid(self) -> tuple[tuple[str, str, str], ...]:
        """The (scheme, wear policy, aggregate key) jobs, in run order.

        The aggregate key is the bare scheme name under the default
        policy — so single-policy campaigns keep their historical keys —
        and ``scheme+policy`` otherwise.
        """
        return tuple(
            (
                name,
                policy,
                name if policy == DEFAULT_WEAR_POLICY else f"{name}+{policy}",
            )
            for name in self.schemes
            for policy in self.wear_policies
        )

    def lifetime_model(self) -> NormalLifetime:
        model = NormalLifetime()
        if self.mean_endurance is not None:
            model = NormalLifetime(mean_lifetime=self.mean_endurance, cov=model.cov)
        if self.endurance_cov is not None:
            model = NormalLifetime(mean_lifetime=model.mean_lifetime, cov=self.endurance_cov)
        return model

    def lifetime_scale(self) -> float:
        """Characteristic page lifetime in page writes."""
        return self.lifetime_model().mean / self.write_probability

    def resolved_retention_age(self) -> float:
        if self.retention_age is not None:
            return float(self.retention_age)
        return 0.25 * self.lifetime_scale()

    def resolved_edges(self) -> tuple[float, ...]:
        if self.edges is not None:
            return tuple(float(edge) for edge in self.edges)
        return default_retention_edges(self.lifetime_scale())

    def total_pages(self) -> int:
        return self.pages_per_scheme * len(self.grid())

    def config_digest(self, seed: int) -> str:
        """sha256 over every result-bearing parameter plus the seed.

        Checkpoints carry this digest; resume refuses a checkpoint whose
        digest differs, because folding its aggregate into a differently-
        parameterized campaign would silently corrupt the statistics.
        ``workers``/``engine`` are deliberately absent — they never change
        results, and resuming with a different fan-out is supported.
        """
        model = self.lifetime_model()
        payload = {
            "schemes": list(self.schemes),
            "pages_per_scheme": self.pages_per_scheme,
            "blocks_per_page": self.blocks_per_page,
            "block_bits": self.block_bits,
            "chunk_pages": self.chunk_pages,
            "mean_endurance": model.mean_lifetime,
            "endurance_cov": model.cov,
            "write_probability": self.write_probability,
            "inversion_wear_rate": self.inversion_wear_rate,
            "retention_age": self.resolved_retention_age(),
            "edges": list(self.resolved_edges()),
            "seed": seed,
        }
        # non-default dimensions only, so checkpoints and goldens written
        # before these knobs existed keep their digests byte-identical
        if tuple(self.wear_policies) != (DEFAULT_WEAR_POLICY,):
            payload["wear_policies"] = list(self.wear_policies)
        if self.fault_model != "hard":
            payload["fault_model"] = self.fault_model
        blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def default_fleet_slos(scheme_names: tuple[str, ...]) -> tuple[SLOSpec, ...]:
    """The campaign SLO roster for the PR-8 observability tier.

    One retention objective per scheme — the capacity-retention gauge
    must stay above a health floor in nearly every sampled bucket — plus
    the IPC-efficiency ratio: shard bytes must stay under 20% of what the
    full-result path would ship (the >=5x reduction, expressed as an SLO
    the error-budget machinery can burn against).
    """
    specs = tuple(
        SLOSpec.retention(
            f"fleet_retention_{name}",
            "fleet_retention{scheme=%s}" % name,
            minimum=0.05,
            objective=0.25,
        )
        for name in scheme_names
    )
    return specs + (
        SLOSpec.ratio(
            "fleet_ipc_overhead",
            "fleet_shard_bytes_total",
            "fleet_result_bytes_total",
            objective=0.2,
        ),
    )


def write_checkpoint(
    path: str, meta: dict, aggregate: CampaignAggregate
) -> None:
    """Atomically write a campaign checkpoint (tmp + ``os.replace``)."""
    records = [{"record": "meta", **meta}]
    for name, payload in aggregate.state().items():
        records.append({"record": "scheme", "name": name, **payload})
    tmp_path = path + ".tmp"
    with open(tmp_path, "w") as handle:
        for record in records:
            handle.write(json.dumps(record, sort_keys=True) + "\n")
    os.replace(tmp_path, path)


def read_checkpoint(path: str) -> tuple[dict, CampaignAggregate]:
    """Read a checkpoint back into ``(meta, aggregate)``."""
    meta: dict | None = None
    state: dict = {}
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            record = json.loads(line)
            kind = record.pop("record", None)
            if kind == "meta":
                meta = record
            elif kind == "scheme":
                name = record.pop("name")
                state[name] = record
            else:
                raise ConfigurationError(
                    f"unknown checkpoint record kind {kind!r} in {path}"
                )
    if meta is None:
        raise ConfigurationError(f"checkpoint {path} has no meta record")
    if int(meta.get("version", 0)) != CHECKPOINT_VERSION:
        raise ConfigurationError(
            f"checkpoint {path} has version {meta.get('version')!r}, "
            f"expected {CHECKPOINT_VERSION}"
        )
    return meta, CampaignAggregate.from_state(state)


@dataclass
class CampaignReport:
    """Everything a finished (or stopped) campaign run produced."""

    spec: CampaignSpec
    ctx: ExecContext
    aggregate: CampaignAggregate
    digest: str
    completed: bool
    cursor: tuple[int, int]
    pages: int
    elapsed: float
    checkpoints_written: int
    resumed_from: tuple[int, int] | None
    registry: MetricsRegistry
    recorder: TimeSeriesRecorder = field(repr=False, default=None)  # type: ignore[assignment]

    @property
    def pages_per_second(self) -> float:
        return self.pages / self.elapsed if self.elapsed > 0 else 0.0

    @property
    def reduction_ratio(self) -> float:
        """Full-result bytes over shard bytes (the headline perf win)."""
        shard = self.aggregate.shard_bytes
        return self.aggregate.result_bytes / shard if shard else 0.0

    def slo_specs(self) -> tuple[SLOSpec, ...]:
        return default_fleet_slos(tuple(key for _, _, key in self.spec.grid()))

    def write_series(self, path: str) -> int:
        """Export the retention time series + SLO verdicts as JSONL (the
        artifact ``repro slo-report`` renders)."""
        return write_slo_jsonl(path, self.recorder, self.slo_specs())

    def rows(self) -> list[dict]:
        """Per-scheme summary rows for tables and JSON output."""
        rows = []
        for _, _, key in self.spec.grid():
            agg = self.aggregate.schemes.get(key)
            if agg is None or agg.pages == 0:
                continue
            lifetime = agg.lifetime_estimate()
            rows.append(
                {
                    "scheme": key,
                    "pages": agg.pages,
                    "lifetime_mean": lifetime.mean,
                    "lifetime_half_width": lifetime.half_width,
                    "improvement_mean": agg.improvement_ratio,
                    "retention": agg.retention,
                    "retention_age": agg.retention_age,
                    "retention_curve": agg.retention_curve(),
                    "faults_recovered_mean": agg.faults.mean if agg.pages else 0.0,
                    "result_bytes": agg.result_bytes,
                    "shard_bytes": agg.shard_bytes,
                }
            )
        return rows

    def to_dict(self) -> dict:
        return {
            "digest": self.digest,
            "completed": self.completed,
            "pages": self.pages,
            "elapsed_seconds": self.elapsed,
            "pages_per_second": self.pages_per_second,
            "result_bytes": self.aggregate.result_bytes,
            "shard_bytes": self.aggregate.shard_bytes,
            "reduction_ratio": self.reduction_ratio,
            "checkpoints_written": self.checkpoints_written,
            "resumed_from": list(self.resumed_from) if self.resumed_from else None,
            "context": self.ctx.describe(),
            "schemes": self.rows(),
        }


class CampaignRunner:
    """Drive one campaign: stream, fold, checkpoint, feed the SLO tier.

    A runner may *borrow* a persistent :class:`SimExecutor` (the campaign
    engine's warm pool) via ``executor=``; otherwise it creates one whose
    pool initializer pre-warms every scheme's lookup tables once per
    worker, and closes it when the run finishes.
    """

    def __init__(
        self,
        spec: CampaignSpec,
        ctx: ExecContext | None = None,
        *,
        executor: SimExecutor | None = None,
        checkpoint_path: str | None = None,
        checkpoint_interval: int = 8,
        series_bucket: int | None = None,
    ) -> None:
        if checkpoint_interval < 1:
            raise ConfigurationError("checkpoint_interval must be positive")
        self.spec = spec
        self.ctx = ctx if ctx is not None else ExecContext()
        self.checkpoint_path = checkpoint_path
        self.checkpoint_interval = checkpoint_interval
        #: time-series bucket width on the pages-merged clock
        self.series_bucket = series_bucket or max(spec.chunk_pages, 1)
        self._executor = executor
        self._owns_executor = executor is None

    def _make_executor(self) -> SimExecutor:
        return SimExecutor(
            self.ctx.workers,
            chunk_pages=self.spec.chunk_pages,
            initializer=warm_fleet_caches,
            initargs=(self.spec.schemes, self.spec.block_bits, self.ctx.engine),
        )

    def _meta(self, cursor: tuple[int, int], checkpoints: int) -> dict:
        return {
            "version": CHECKPOINT_VERSION,
            "config_digest": self.spec.config_digest(self.ctx.seed),
            "cursor": {"scheme": cursor[0], "chunk": cursor[1]},
            "checkpoints": checkpoints,
            "context": {
                "seed": self.ctx.seed,
                "workers": self.ctx.workers,
                "engine": self.ctx.engine,
            },
        }

    def _load_cursor(self) -> tuple[tuple[int, int], CampaignAggregate, int]:
        if not self.checkpoint_path or not os.path.exists(self.checkpoint_path):
            raise ConfigurationError(
                f"cannot resume: no checkpoint at {self.checkpoint_path!r}"
            )
        meta, aggregate = read_checkpoint(self.checkpoint_path)
        expected = self.spec.config_digest(self.ctx.seed)
        if meta.get("config_digest") != expected:
            raise ConfigurationError(
                "checkpoint config digest mismatch: the checkpoint was "
                "written by a campaign with different result-bearing "
                "parameters (or a different seed) and cannot be resumed"
            )
        cursor = (int(meta["cursor"]["scheme"]), int(meta["cursor"]["chunk"]))
        return cursor, aggregate, int(meta.get("checkpoints", 0))

    def _rebuild_registry(
        self, registry: MetricsRegistry, aggregate: CampaignAggregate
    ) -> None:
        """Derive the counter state of a resumed campaign from its
        aggregate (deterministic, so resumed counters match the
        uninterrupted run's)."""
        for name, agg in aggregate.schemes.items():
            if agg.pages:
                registry.inc("fleet_pages_total", agg.pages, scheme=name)
            if agg.chunks:
                registry.inc("fleet_chunks_total", agg.chunks, scheme=name)
            if agg.result_bytes:
                registry.inc("fleet_result_bytes_total", agg.result_bytes)
            if agg.shard_bytes:
                registry.inc("fleet_shard_bytes_total", agg.shard_bytes)

    def run(
        self,
        *,
        resume: bool = False,
        stop_after_chunks: int | None = None,
        kill_after_checkpoints: int | None = None,
    ) -> CampaignReport:
        """Run (or resume) the campaign and return its report.

        ``stop_after_chunks`` stops cleanly after that many chunks *this
        run*, writing a checkpoint — the in-process kill drill the tests
        use.  ``kill_after_checkpoints`` SIGKILLs the process right after
        the Nth checkpoint lands — the out-of-process drill the CI
        fleet-smoke job uses.  Both exercise the same resume path.
        """
        spec, ctx = self.spec, self.ctx
        edges = spec.resolved_edges()
        retention_age = spec.resolved_retention_age()
        resumed_from: tuple[int, int] | None = None
        checkpoints_written = 0
        if resume:
            cursor, aggregate, checkpoints_written = self._load_cursor()
            resumed_from = cursor
        else:
            cursor, aggregate = (0, 0), CampaignAggregate()
        registry = MetricsRegistry()
        self._rebuild_registry(registry, aggregate)
        recorder = TimeSeriesRecorder(registry, bucket_width=self.series_bucket)
        pages_done = aggregate.pages
        if pages_done:
            # a resumed campaign's first sample is a catch-up bucket: the
            # restored totals land in the bucket at the restored clock
            recorder.sample(pages_done)
        chunks_this_run = 0
        since_checkpoint = 0
        executor = self._executor if self._executor is not None else self._make_executor()
        start = time.perf_counter()
        completed = False
        jobs = spec.grid()
        try:
            for job_index in range(cursor[0], len(jobs)):
                name, wear_policy, key = jobs[job_index]
                agg = aggregate.scheme(key, edges, retention_age)
                chunks = _chunked(range(spec.pages_per_scheme), spec.chunk_pages)
                start_chunk = cursor[1] if job_index == cursor[0] else 0
                if start_chunk >= len(chunks):
                    continue
                task = FleetTask(
                    page_task=PageTask(
                        spec=fleet_spec(name, spec.block_bits),
                        blocks_per_page=spec.blocks_per_page,
                        seed=ctx.seed,
                        lifetime_model=wear_lifetime(
                            spec.lifetime_model(), wear_policy
                        ),
                        write_probability=spec.write_probability,
                        inversion_wear_rate=spec.inversion_wear_rate,
                        engine=ctx.engine,
                        fault_model=spec.fault_model,
                    ),
                    edges=edges,
                    retention_age=retention_age,
                    measure_bytes=spec.measure_bytes,
                )
                stream = executor.imap_chunks(
                    reduce_fleet_chunk, task, chunks[start_chunk:]
                )
                for offset, shard in enumerate(stream):
                    chunk_index = start_chunk + offset
                    shard["shard_bytes"] = len(
                        pickle.dumps(shard, pickle.HIGHEST_PROTOCOL)
                    )
                    agg.merge_state(shard)
                    pages_done += len(chunks[chunk_index])
                    chunks_this_run += 1
                    since_checkpoint += 1
                    registry.inc(
                        "fleet_pages_total", len(chunks[chunk_index]), scheme=key
                    )
                    registry.inc("fleet_chunks_total", 1, scheme=key)
                    if shard.get("result_bytes"):
                        registry.inc(
                            "fleet_result_bytes_total", int(shard["result_bytes"])
                        )
                    registry.inc(
                        "fleet_shard_bytes_total", int(shard["shard_bytes"])
                    )
                    registry.set_gauge("fleet_retention", agg.retention, scheme=key)
                    registry.set_gauge(
                        "fleet_lifetime_mean", agg.lifetime.mean, scheme=key
                    )
                    recorder.sample(pages_done)
                    if chunk_index + 1 >= len(chunks):
                        next_cursor = (job_index + 1, 0)
                    else:
                        next_cursor = (job_index, chunk_index + 1)
                    if (
                        self.checkpoint_path
                        and since_checkpoint >= self.checkpoint_interval
                    ):
                        checkpoints_written += 1
                        since_checkpoint = 0
                        write_checkpoint(
                            self.checkpoint_path,
                            self._meta(next_cursor, checkpoints_written),
                            aggregate,
                        )
                        if (
                            kill_after_checkpoints is not None
                            and checkpoints_written >= kill_after_checkpoints
                        ):
                            # the out-of-process crash drill: the checkpoint
                            # just landed atomically, so resume must work
                            os.kill(os.getpid(), signal.SIGKILL)
                    if (
                        stop_after_chunks is not None
                        and chunks_this_run >= stop_after_chunks
                    ):
                        if self.checkpoint_path:
                            checkpoints_written += 1
                            write_checkpoint(
                                self.checkpoint_path,
                                self._meta(next_cursor, checkpoints_written),
                                aggregate,
                            )
                        return self._report(
                            aggregate,
                            registry,
                            recorder,
                            completed=False,
                            cursor=next_cursor,
                            pages=pages_done,
                            elapsed=time.perf_counter() - start,
                            checkpoints=checkpoints_written,
                            resumed_from=resumed_from,
                        )
                cursor = (job_index + 1, 0)
            completed = True
            if self.checkpoint_path:
                checkpoints_written += 1
                write_checkpoint(
                    self.checkpoint_path,
                    self._meta((len(jobs), 0), checkpoints_written),
                    aggregate,
                )
            return self._report(
                aggregate,
                registry,
                recorder,
                completed=True,
                cursor=(len(jobs), 0),
                pages=pages_done,
                elapsed=time.perf_counter() - start,
                checkpoints=checkpoints_written,
                resumed_from=resumed_from,
            )
        finally:
            if self._owns_executor:
                executor.close()

    def _report(
        self,
        aggregate: CampaignAggregate,
        registry: MetricsRegistry,
        recorder: TimeSeriesRecorder,
        *,
        completed: bool,
        cursor: tuple[int, int],
        pages: int,
        elapsed: float,
        checkpoints: int,
        resumed_from: tuple[int, int] | None,
    ) -> CampaignReport:
        return CampaignReport(
            spec=self.spec,
            ctx=self.ctx,
            aggregate=aggregate,
            digest=aggregate.digest(),
            completed=completed,
            cursor=cursor,
            pages=pages,
            elapsed=elapsed,
            checkpoints_written=checkpoints,
            resumed_from=resumed_from,
            registry=registry,
            recorder=recorder,
        )


def run_campaign(
    spec: CampaignSpec,
    ctx: ExecContext | None = None,
    *,
    executor: SimExecutor | None = None,
    checkpoint_path: str | None = None,
    checkpoint_interval: int = 8,
    resume: bool = False,
    stop_after_chunks: int | None = None,
    kill_after_checkpoints: int | None = None,
) -> CampaignReport:
    """One-call campaign entry point (what the CLI and tests use)."""
    runner = CampaignRunner(
        spec,
        ctx,
        executor=executor,
        checkpoint_path=checkpoint_path,
        checkpoint_interval=checkpoint_interval,
    )
    return runner.run(
        resume=resume,
        stop_after_chunks=stop_after_chunks,
        kill_after_checkpoints=kill_after_checkpoints,
    )
