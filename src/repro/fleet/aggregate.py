"""Shard-side reduction contract for fleet campaigns.

The campaign engine never ships :class:`~repro.sim.page_sim.PageResult`
lists across the process boundary.  Each worker folds its chunk of pages
into a :class:`SchemeAggregate` — four Welford moment triples, two
bounded histograms and an exact retention counter — and only that
constant-size state crosses IPC.  The parent merges shard states in
deterministic chunk-index order, which together with Chan's exact
combination rule (:meth:`repro.util.stats.RunningMean.merge`) makes the
merged floats bit-identical for any worker count, either engine, and any
checkpoint/resume split of the stream.

Digest contract: :meth:`CampaignAggregate.digest` hashes the canonical
JSON of the statistical state only.  Transport byte counters
(``result_bytes``/``shard_bytes``) are *excluded* — pickle sizes are an
implementation detail of the wire, not of the simulated fleet.
"""

from __future__ import annotations

import hashlib
import json
from typing import Iterable, Mapping

from repro.errors import ConfigurationError
from repro.obs.metrics import Histogram
from repro.util.stats import MeanEstimate, RunningMean

#: geometric ladder of retention-age multiples used to build default
#: histogram edges around a campaign's characteristic lifetime scale
_EDGE_FACTORS = (0.25, 0.5, 0.75, 1.0, 1.25, 1.5, 1.75, 2.0, 2.5, 3.0, 4.0, 6.0)

#: moment accumulators carried per scheme, in serialization order
_MOMENT_FIELDS = ("lifetime", "baseline", "faults", "improvement")


def default_retention_edges(scale: float) -> tuple[float, ...]:
    """Histogram edges as a fixed ladder of multiples of ``scale``.

    ``scale`` is the campaign's characteristic page lifetime (model mean
    endurance divided by the write probability), so the buckets track the
    interesting region of the survival curve regardless of the endurance
    parameters chosen.
    """
    if scale <= 0:
        raise ConfigurationError(f"retention edge scale must be positive, got {scale}")
    return tuple(factor * scale for factor in _EDGE_FACTORS)


class SchemeAggregate:
    """Streaming reduction of one scheme's page results.

    Mergeable (:meth:`merge_state`) and serializable (:meth:`state`)
    with bit-exact float round-tripping, so the same class serves as the
    worker-side shard accumulator, the parent-side campaign state and the
    checkpoint payload.
    """

    __slots__ = (
        "edges",
        "retention_age",
        "pages",
        "retained",
        "lifetime",
        "baseline",
        "faults",
        "improvement",
        "lifetime_hist",
        "baseline_hist",
        "chunks",
        "result_bytes",
        "shard_bytes",
    )

    def __init__(self, edges: tuple[float, ...], retention_age: float) -> None:
        self.edges = tuple(float(edge) for edge in edges)
        self.retention_age = float(retention_age)
        self.pages = 0
        self.retained = 0
        self.lifetime = RunningMean()
        self.baseline = RunningMean()
        self.faults = RunningMean()
        self.improvement = RunningMean()
        self.lifetime_hist = Histogram(edges=self.edges)
        self.baseline_hist = Histogram(edges=self.edges)
        # transport accounting (not part of the digest)
        self.chunks = 0
        self.result_bytes = 0
        self.shard_bytes = 0

    def push(self, result) -> None:
        """Fold one :class:`~repro.sim.page_sim.PageResult` in."""
        self.pages += 1
        lifetime = float(result.lifetime_writes)
        baseline = float(result.baseline_lifetime)
        self.lifetime.push(lifetime)
        self.baseline.push(baseline)
        self.faults.push(float(result.faults_recovered))
        self.improvement.push(float(result.improvement))
        self.lifetime_hist.observe(lifetime)
        self.baseline_hist.observe(baseline)
        if lifetime > self.retention_age:
            self.retained += 1

    # -- serialization ------------------------------------------------

    def state(self) -> dict:
        """JSON-able shard state (full float precision via ``repr``)."""
        state = {
            "pages": self.pages,
            "retained": self.retained,
            "chunks": self.chunks,
            "result_bytes": self.result_bytes,
            "shard_bytes": self.shard_bytes,
        }
        for name in _MOMENT_FIELDS:
            state[name] = getattr(self, name).state()
        for name in ("lifetime_hist", "baseline_hist"):
            hist = getattr(self, name)
            state[name] = {"counts": list(hist.counts), "total": hist.total, "sum": hist.sum}
        return state

    @classmethod
    def from_state(
        cls, edges: tuple[float, ...], retention_age: float, state: Mapping
    ) -> "SchemeAggregate":
        """Bit-exact inverse of :meth:`state`."""
        agg = cls(edges, retention_age)
        agg.pages = int(state["pages"])
        agg.retained = int(state["retained"])
        agg.chunks = int(state.get("chunks", 0))
        agg.result_bytes = int(state.get("result_bytes", 0))
        agg.shard_bytes = int(state.get("shard_bytes", 0))
        for name in _MOMENT_FIELDS:
            setattr(agg, name, RunningMean.from_state(state[name]))
        for name in ("lifetime_hist", "baseline_hist"):
            payload = state[name]
            hist = getattr(agg, name)
            hist.counts = [int(count) for count in payload["counts"]]
            hist.total = int(payload["total"])
            hist.sum = float(payload["sum"])
        return agg

    def merge_state(self, state: Mapping) -> None:
        """Fold a worker shard's :meth:`state` into this aggregate.

        Exact for the integer fields; for the float moments the result
        depends on merge order, so callers must merge in chunk-index
        order (the campaign runner does).
        """
        self.pages += int(state["pages"])
        self.retained += int(state["retained"])
        self.chunks += int(state.get("chunks", 0))
        self.result_bytes += int(state.get("result_bytes", 0))
        self.shard_bytes += int(state.get("shard_bytes", 0))
        for name in _MOMENT_FIELDS:
            getattr(self, name).merge(RunningMean.from_state(state[name]))
        for name in ("lifetime_hist", "baseline_hist"):
            payload = state[name]
            hist = getattr(self, name)
            if len(payload["counts"]) != len(hist.counts):
                raise ConfigurationError("cannot merge shard histogram with different edges")
            hist.counts = [a + int(b) for a, b in zip(hist.counts, payload["counts"])]
            hist.total += int(payload["total"])
            hist.sum += float(payload["sum"])

    # -- derived views ------------------------------------------------

    @property
    def retention(self) -> float:
        """Fraction of pages whose lifetime exceeds the retention age."""
        return self.retained / self.pages if self.pages else 0.0

    def retention_curve(self) -> list[tuple[float, float]]:
        """``(age, fraction surviving beyond age)`` per histogram edge."""
        curve = []
        cumulative = 0
        for edge, count in zip(self.edges, self.lifetime_hist.counts):
            cumulative += count
            alive = 1.0 - cumulative / self.pages if self.pages else 0.0
            curve.append((edge, alive))
        return curve

    def lifetime_estimate(self, confidence: float = 0.95) -> MeanEstimate:
        return self.lifetime.estimate(confidence)

    def improvement_estimate(self, confidence: float = 0.95) -> MeanEstimate:
        """Moments of the *per-page* ratio — heavy-tailed (a page whose
        unprotected baseline lands in the endurance distribution's far
        left tail contributes an enormous ratio), so reports should
        prefer :attr:`improvement_ratio`."""
        return self.improvement.estimate(confidence)

    @property
    def improvement_ratio(self) -> float:
        """Ratio of mean lifetimes — the paper's Figure 6 definition,
        robust where the mean of per-page ratios is not."""
        return self.lifetime.mean / self.baseline.mean if self.baseline.mean else 0.0

    def digest_state(self) -> dict:
        """The digest-bearing subset of :meth:`state`.

        Statistical state only: transport byte counters vary with pickle
        protocol and are excluded by contract.
        """
        state = self.state()
        for transport in ("result_bytes", "shard_bytes"):
            del state[transport]
        return state


class CampaignAggregate:
    """Per-scheme aggregates for one campaign, in scheme order."""

    __slots__ = ("schemes",)

    def __init__(self) -> None:
        self.schemes: dict[str, SchemeAggregate] = {}

    def scheme(
        self, name: str, edges: tuple[float, ...], retention_age: float
    ) -> SchemeAggregate:
        """The named scheme's aggregate, created on first use."""
        if name not in self.schemes:
            self.schemes[name] = SchemeAggregate(edges, retention_age)
        return self.schemes[name]

    @property
    def pages(self) -> int:
        return sum(agg.pages for agg in self.schemes.values())

    @property
    def result_bytes(self) -> int:
        return sum(agg.result_bytes for agg in self.schemes.values())

    @property
    def shard_bytes(self) -> int:
        return sum(agg.shard_bytes for agg in self.schemes.values())

    def state(self) -> dict:
        return {
            name: {
                "edges": list(agg.edges),
                "retention_age": agg.retention_age,
                "state": agg.state(),
            }
            for name, agg in self.schemes.items()
        }

    @classmethod
    def from_state(cls, state: Mapping) -> "CampaignAggregate":
        campaign = cls()
        for name, payload in state.items():
            campaign.schemes[name] = SchemeAggregate.from_state(
                tuple(payload["edges"]), payload["retention_age"], payload["state"]
            )
        return campaign

    def digest(self) -> str:
        """sha256 over the canonical JSON of the statistical state.

        Floats serialize through ``repr`` (exact round-trip), keys are
        sorted, and transport counters are excluded, so two campaigns
        that simulated the same fleet — regardless of worker count,
        engine, window size or checkpoint splits — produce the same hex
        digest.
        """
        canonical = {name: agg.digest_state() for name, agg in sorted(self.schemes.items())}
        blob = json.dumps(canonical, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def fold_results(agg: SchemeAggregate, results: Iterable) -> SchemeAggregate:
    """Fold an iterable of page results into ``agg`` (page order)."""
    for result in results:
        agg.push(result)
    return agg
