"""Integration tests: the slow bit-accurate device model and the fast
event-driven simulator must tell the same story.

The fast path replaces per-write simulation with fault-arrival events, so
on small configurations (tiny endurance, real writes feasible) the two
must produce statistically indistinguishable fault-tolerance results.
"""

import numpy as np

from repro.core.aegis import AegisScheme
from repro.core.formations import formation
from repro.pcm.block import ProtectedBlock
from repro.pcm.device import PCMDevice
from repro.pcm.lifetime import NormalLifetime
from repro.pcm.page import Page
from repro.schemes.ecp import EcpScheme
from repro.sim.block_sim import faults_at_death
from repro.sim.rng import rng_for
from repro.sim.roster import aegis_spec, ecp_spec


def _drive_block_to_death(scheme_factory, rng, n_bits=512):
    """Bit-accurate path: real writes, tiny endurance, death by wear."""
    block = ProtectedBlock(
        n_bits,
        scheme_factory,
        lifetime_model=NormalLifetime(mean_lifetime=40, cov=0.25),
        rng=rng,
    )
    block.run_until_failure(max_writes=100_000)
    assert block.failed
    return block.fault_count


class TestDeviceVsSimulator:
    def test_ecp_fault_counts_agree(self):
        """ECP's faults-at-death is deterministic (p+1); both paths must
        find it."""
        slow = [
            _drive_block_to_death(lambda c: EcpScheme(c, 4), np.random.default_rng(s))
            for s in range(8)
        ]
        fast = [faults_at_death(ecp_spec(4, 512), rng_for(9, s)) for s in range(8)]
        # at tiny endurance (mean 40, cov 25%) several cells die within the
        # same write, so the slow path overshoots p+1 = 5 by the cluster
        # that arrives with the fatal write — but never undershoots it
        assert all(f == 5 for f in fast)
        assert all(5 <= s <= 12 for s in slow)

    def test_aegis_fault_counts_same_region(self):
        """Aegis 9x61 faults-at-death from real writes lands in the same
        region the fast checker predicts (soft FTC well beyond hard FTC)."""
        slow = [
            _drive_block_to_death(
                lambda c: AegisScheme(c, formation(9, 61, 512)),
                np.random.default_rng(100 + s),
            )
            for s in range(5)
        ]
        fast = [faults_at_death(aegis_spec(9, 61, 512), rng_for(8, s)) for s in range(40)]
        lo, hi = min(fast), max(fast)
        # the slow path sees clustered deaths near end-of-life (several
        # cells die within one write), so allow a margin above the fast
        # checker's per-arrival resolution
        for s in slow:
            assert lo <= s <= hi + 15

    def test_page_failure_on_first_block_death(self):
        rng = np.random.default_rng(0)
        page = Page(
            512,
            4,
            lambda c: EcpScheme(c, 2),
            lifetime_model=NormalLifetime(mean_lifetime=30, cov=0.25),
            rng=rng,
        )
        writes, recovered = page.run_until_failure(max_writes=100_000)
        assert page.failed
        failed_blocks = [b for b in page.blocks if b.failed]
        assert len(failed_blocks) == 1  # exactly the first death ends the page

    def test_device_survival_monotone(self):
        rng = np.random.default_rng(1)
        device = PCMDevice(
            6, 128, 2,
            lambda c: EcpScheme(c, 1),
            lifetime_model=NormalLifetime(mean_lifetime=25, cov=0.25),
            rng=rng,
        )
        rates = [device.survival_rate]
        while device.live_page_count:
            device.issue_write()
            rates.append(device.survival_rate)
        assert rates[0] == 1.0
        assert rates[-1] == 0.0
        assert all(a >= b for a, b in zip(rates, rates[1:]))

    def test_survival_conversion_matches_mechanistic_device(self):
        """The analytic own-age -> device-writes conversion (the G_k
        formula behind Figure 9) must agree with the mechanistic device
        driven write-by-write under perfect round-robin leveling."""
        from repro.sim.survival import survival_curve_from_lifetimes

        rng = np.random.default_rng(17)
        device = PCMDevice(
            6, 128, 1,
            lambda c: EcpScheme(c, 1),
            lifetime_model=NormalLifetime(mean_lifetime=40, cov=0.25),
            rng=rng,
        )
        device.run_until_dead(max_writes=500_000)
        mechanistic_deaths = list(device.page_death_times)
        # per-page ages at death: writes each page itself served (+1 for
        # the fatal write the page rejected)
        ages = [page.writes_serviced + 1 for page in device.pages]
        curve = survival_curve_from_lifetimes(ages)
        for analytic, mechanistic in zip(curve.death_writes, mechanistic_deaths):
            # round-robin phase offsets make the two differ by at most the
            # population size per death
            assert abs(analytic - mechanistic) <= device.n_pages + 1

    def test_protected_device_outlives_weak_device(self):
        def half_life_of(pointer_count, seed):
            device = PCMDevice(
                4, 512, 2,
                lambda c: EcpScheme(c, pointer_count),
                lifetime_model=NormalLifetime(mean_lifetime=25, cov=0.25),
                rng=np.random.default_rng(seed),
            )
            device.run_until_dead(max_writes=500_000)
            return device.half_lifetime()

        weak = np.mean([half_life_of(1, s) for s in range(3)])
        strong = np.mean([half_life_of(6, s) for s in range(3)])
        assert strong > weak
