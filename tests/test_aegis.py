"""Tests for the basic (cache-less) Aegis controller."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.aegis import AegisScheme
from repro.core.formations import formation
from repro.errors import BlockRetiredError, UncorrectableError
from repro.pcm.cell import CellArray
from repro.schemes.base import roundtrip
from tests.conftest import random_data


def make_scheme(n_bits=512, a=9, b=61, faults=()):
    cells = CellArray(n_bits)
    for offset, stuck in faults:
        cells.inject_fault(offset, stuck_value=stuck)
    return AegisScheme(cells, formation(a, b, n_bits)), cells


class TestBasics:
    def test_identity(self):
        scheme, _ = make_scheme()
        assert scheme.name == "Aegis 9x61"
        assert scheme.overhead_bits == 67  # the figure annotation
        assert scheme.hard_ftc == 11

    def test_width_mismatch_rejected(self):
        cells = CellArray(256)
        with pytest.raises(ValueError):
            AegisScheme(cells, formation(9, 61, 512))

    def test_faultless_roundtrip(self, rng):
        scheme, _ = make_scheme()
        for _ in range(5):
            assert roundtrip(scheme, random_data(rng, 512))

    def test_bad_data_shape_rejected(self):
        scheme, _ = make_scheme()
        with pytest.raises(ValueError):
            scheme.write(np.zeros(100, dtype=np.uint8))

    def test_non_binary_data_rejected(self):
        scheme, _ = make_scheme()
        with pytest.raises(ValueError):
            scheme.write(np.full(512, 2, dtype=np.uint8))


class TestFaultRecovery:
    def test_single_stuck_at_wrong(self):
        scheme, cells = make_scheme(faults=[(100, 1)])
        data = np.zeros(512, dtype=np.uint8)  # wants 0, cell stuck at 1
        receipt = scheme.write(data)
        assert np.array_equal(scheme.read(), data)
        assert receipt.inversion_writes >= 1  # the group got inverted
        # the group containing offset 100 is flagged
        group = scheme.partition.group_of(100, scheme.slope)
        assert scheme.inversion[group] == 1

    def test_single_stuck_at_right_needs_nothing(self):
        scheme, _ = make_scheme(faults=[(100, 1)])
        data = np.ones(512, dtype=np.uint8)
        receipt = scheme.write(data)
        assert np.array_equal(scheme.read(), data)
        assert receipt.inversion_writes == 0
        assert receipt.repartitions == 0

    def test_hard_ftc_always_recoverable(self, rng):
        # any 11 faults are guaranteed for 9x61 (C(11,2)+1 = 56 <= 61)
        for trial in range(10):
            offsets = rng.choice(512, size=11, replace=False)
            faults = [(int(o), int(rng.integers(0, 2))) for o in offsets]
            scheme, _ = make_scheme(faults=faults)
            for _ in range(5):
                assert roundtrip(scheme, random_data(rng, 512))

    def test_collision_triggers_repartition(self):
        # two faults in the same slope-0 group (same row of the 9x61 grid),
        # both stuck at the wrong value for all-zero data
        scheme, cells = make_scheme(faults=[(0, 1), (1, 1)])
        rect = scheme.formation.rect
        assert rect.group_of(0, 0) == rect.group_of(1, 0)  # collide at slope 0
        data = np.zeros(512, dtype=np.uint8)
        receipt = scheme.write(data)
        assert np.array_equal(scheme.read(), data)
        assert receipt.repartitions >= 1
        assert scheme.slope != 0

    def test_known_faults_accumulate(self, rng):
        scheme, cells = make_scheme(faults=[(7, 1), (300, 0)])
        # drive writes until both faults have been observed as stuck-at-wrong
        for _ in range(20):
            scheme.write(random_data(rng, 512))
        assert scheme.known_fault_offsets == {7, 300}


class TestFailure:
    def test_unseparable_faults_fail(self, rng):
        # a full 2-column grid pattern poisons every slope: use a small
        # formation to construct it exactly (B=23, columns 0 and 1)
        n, a, b = 512, 23, 23
        offsets = []
        for row in range(b):
            offsets.append(0 + a * row)  # column 0
            offsets.append(1 + a * row)  # column 1
        offsets = [o for o in offsets if o < n]
        faults = [(o, 1) for o in offsets]
        scheme, _ = make_scheme(n_bits=n, a=a, b=b, faults=faults)
        with pytest.raises(UncorrectableError):
            scheme.write(np.zeros(n, dtype=np.uint8))
        assert scheme.retired

    def test_retired_block_rejects_traffic(self):
        scheme, _ = make_scheme(n_bits=512, a=23, b=23)
        scheme._retired = True
        with pytest.raises(BlockRetiredError):
            scheme.write(np.zeros(512, dtype=np.uint8))


class TestStatefulSequences:
    @settings(max_examples=25, deadline=None)
    @given(st.data())
    def test_random_fault_then_write_sequences(self, data):
        """Interleave fault injections (within hard FTC) and writes; every
        successful write must read back exactly."""
        rng = np.random.default_rng(data.draw(st.integers(0, 2**32 - 1)))
        scheme, cells = make_scheme(n_bits=512, a=17, b=31)
        n_faults = data.draw(st.integers(min_value=0, max_value=8))  # hard FTC 8
        offsets = rng.choice(512, size=n_faults, replace=False)
        for i, offset in enumerate(offsets):
            cells.inject_fault(int(offset), stuck_value=int(rng.integers(0, 2)))
            payload = random_data(rng, 512)
            scheme.write(payload)
            assert np.array_equal(scheme.read(), payload)
