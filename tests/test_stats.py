"""Tests for the statistics helpers."""

import math

import numpy as np
import pytest

from repro.util.stats import (
    MeanEstimate,
    geometric_mean,
    half_life,
    mean_ci,
    survival_curve,
)


class TestMeanCi:
    def test_basic(self):
        est = mean_ci([1.0, 2.0, 3.0, 4.0])
        assert est.mean == pytest.approx(2.5)
        assert est.n == 4
        assert est.low < 2.5 < est.high

    def test_single_sample_infinite_interval(self):
        est = mean_ci([5.0])
        assert est.mean == 5.0
        assert math.isinf(est.half_width)

    def test_coverage_roughly_95(self):
        rng = np.random.default_rng(0)
        covered = 0
        for _ in range(300):
            est = mean_ci(rng.normal(10, 2, size=40))
            if est.low <= 10 <= est.high:
                covered += 1
        assert 270 <= covered <= 299  # ~95% with slack

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            mean_ci([])

    def test_unknown_confidence(self):
        with pytest.raises(ValueError):
            mean_ci([1, 2], confidence=0.5)

    def test_confidence_levels_ordered(self):
        data = [1.0, 2.0, 3.0, 4.0, 5.0]
        assert mean_ci(data, 0.90).half_width < mean_ci(data, 0.99).half_width


class TestSurvival:
    def test_survival_curve(self):
        deaths = [1.0, 2.0, 3.0, 4.0]
        grid = np.array([0.0, 1.5, 2.5, 10.0])
        assert survival_curve(deaths, grid).tolist() == [1.0, 0.75, 0.5, 0.0]

    def test_half_life(self):
        assert half_life([1, 2, 3, 4, 100]) == 3

    def test_half_life_empty(self):
        with pytest.raises(ValueError):
            half_life([])


class TestGeometricMean:
    def test_basic(self):
        assert geometric_mean([1, 100]) == pytest.approx(10.0)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])
