"""Tests for the statistics helpers."""

import math

import numpy as np
import pytest

from repro.util.stats import (
    RunningMean,
    geometric_mean,
    half_life,
    mean_ci,
    ndtri_approx,
    survival_curve,
)


class TestMeanCi:
    def test_basic(self):
        est = mean_ci([1.0, 2.0, 3.0, 4.0])
        assert est.mean == pytest.approx(2.5)
        assert est.n == 4
        assert est.low < 2.5 < est.high

    def test_single_sample_infinite_interval(self):
        est = mean_ci([5.0])
        assert est.mean == 5.0
        assert math.isinf(est.half_width)

    def test_coverage_roughly_95(self):
        rng = np.random.default_rng(0)
        covered = 0
        for _ in range(300):
            est = mean_ci(rng.normal(10, 2, size=40))
            if est.low <= 10 <= est.high:
                covered += 1
        assert 270 <= covered <= 299  # ~95% with slack

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            mean_ci([])

    def test_unknown_confidence(self):
        with pytest.raises(ValueError):
            mean_ci([1, 2], confidence=0.5)

    def test_confidence_levels_ordered(self):
        data = [1.0, 2.0, 3.0, 4.0, 5.0]
        assert mean_ci(data, 0.90).half_width < mean_ci(data, 0.99).half_width


class TestSurvival:
    def test_survival_curve(self):
        deaths = [1.0, 2.0, 3.0, 4.0]
        grid = np.array([0.0, 1.5, 2.5, 10.0])
        assert survival_curve(deaths, grid).tolist() == [1.0, 0.75, 0.5, 0.0]

    def test_half_life(self):
        assert half_life([1, 2, 3, 4, 100]) == 3

    def test_half_life_empty(self):
        with pytest.raises(ValueError):
            half_life([])


class TestRunningMean:
    """The one-pass accumulator must match the batch estimator exactly."""

    def test_matches_mean_ci(self):
        rng = np.random.default_rng(1)
        data = rng.exponential(50.0, size=200).tolist()
        acc = RunningMean()
        for value in data:
            acc.push(value)
        batch = mean_ci(data)
        streaming = acc.estimate()
        assert streaming.n == batch.n
        assert streaming.mean == pytest.approx(batch.mean, rel=1e-12)
        assert streaming.half_width == pytest.approx(batch.half_width, rel=1e-9)

    def test_incremental_prefixes(self):
        """Every prefix estimate agrees with mean_ci on that prefix — the
        property the adaptive stopping rule in run_page_study relies on."""
        data = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0]
        acc = RunningMean()
        for i, value in enumerate(data, start=1):
            acc.push(value)
            if i >= 2:
                batch = mean_ci(data[:i])
                est = acc.estimate()
                assert est.mean == pytest.approx(batch.mean, rel=1e-12)
                assert est.half_width == pytest.approx(
                    batch.half_width, rel=1e-9
                )

    def test_single_sample_infinite_interval(self):
        acc = RunningMean()
        acc.push(7.0)
        est = acc.estimate()
        assert est.mean == 7.0
        assert math.isinf(est.half_width)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            RunningMean().estimate()

    def test_constant_stream_zero_variance(self):
        acc = RunningMean()
        for _ in range(10):
            acc.push(2.5)
        assert acc.variance == pytest.approx(0.0, abs=1e-15)
        assert acc.estimate().half_width == pytest.approx(0.0, abs=1e-12)


class TestNdtriApprox:
    """numpy-only fallback for scipy.special.ndtri."""

    def test_known_quantiles(self):
        assert ndtri_approx(0.5) == pytest.approx(0.0, abs=1e-12)
        assert ndtri_approx(0.975) == pytest.approx(1.959963984540054, rel=1e-9)
        assert ndtri_approx(0.841344746068543) == pytest.approx(1.0, rel=1e-9)

    def test_symmetry(self):
        for p in (0.01, 0.1, 0.3, 0.45):
            assert ndtri_approx(p) == pytest.approx(-ndtri_approx(1 - p), rel=1e-9)

    def test_matches_scipy_when_available(self):
        scipy_special = pytest.importorskip("scipy.special")
        p = np.linspace(1e-12, 1 - 1e-12, 2001)
        ours = ndtri_approx(p)
        theirs = scipy_special.ndtri(p)
        assert np.allclose(ours, theirs, rtol=1e-8, atol=1e-10)

    def test_vectorised_and_edges(self):
        out = ndtri_approx(np.array([0.0, 0.5, 1.0]))
        assert out[0] == -math.inf
        assert out[1] == pytest.approx(0.0, abs=1e-12)
        assert out[2] == math.inf

    def test_roundtrip_through_cdf(self):
        p = np.array([1e-9, 1e-4, 0.2, 0.8, 1 - 1e-4])
        x = ndtri_approx(p)
        cdf = 0.5 * np.array([math.erfc(-v / math.sqrt(2)) for v in x])
        assert np.allclose(cdf, p, rtol=1e-7)


class TestGeometricMean:
    def test_basic(self):
        assert geometric_mean([1, 100]) == pytest.approx(10.0)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])
