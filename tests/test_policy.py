"""Adaptive per-block scheme selection (repro.service.policy).

The scoring engine is pure arithmetic with deterministic tie-breaks, the
array's ``switch_scheme`` primitive preserves data through a re-encode,
and a full adaptive run is bit-identical across engines and worker
counts while actually switching schemes under a mixed fault regime.
"""

from __future__ import annotations

import hashlib
import json

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.fleet.campaign import (
    DEFAULT_WEAR_POLICY,
    WEAR_POLICIES,
    CampaignSpec,
    wear_lifetime,
)
from repro.pcm.lifetime import FixedLifetime, NormalLifetime, WearSkewLifetime
from repro.service.array import MemoryArray
from repro.service.loadgen import run_load
from repro.service.policy import (
    POLICY_CHOICES,
    BlockConditions,
    SchemeOption,
    SchemePolicyEngine,
    default_policy_options,
    validate_policy,
)
from repro.sim.roster import aegis_spec, ecp_spec


def _digest(obj) -> str:
    return hashlib.sha256(
        json.dumps(obj, sort_keys=True, default=float).encode()
    ).hexdigest()


class TestConditions:
    def test_effective_faults_discounts_maskable(self):
        conditions = BlockConditions(fault_count=5, maskable_faults=3)
        assert conditions.effective_faults == 2

    def test_effective_faults_never_negative(self):
        conditions = BlockConditions(fault_count=1, maskable_faults=4)
        assert conditions.effective_faults == 0


class TestOptionTable:
    def test_default_table_spans_the_overhead_ftc_trade(self):
        options = default_policy_options(512)
        keys = {option.key for option in options}
        assert keys == {"aegis-17x31", "aegis-9x61", "ecp6", "safer64"}
        overheads = sorted(option.overhead_bits for option in options)
        assert overheads[0] < overheads[-1]  # a real trade, not a tie
        assert all(option.hard_ftc >= 1 for option in options)

    def test_validate_policy(self):
        assert POLICY_CHOICES == ("fixed", "adaptive")
        assert validate_policy("adaptive") == "adaptive"
        with pytest.raises(ConfigurationError):
            validate_policy("greedy")


class TestEngineConstruction:
    def test_rejects_empty_table(self):
        with pytest.raises(ConfigurationError):
            SchemePolicyEngine(())

    def test_rejects_duplicate_keys(self):
        option = SchemeOption(ecp_spec(6, 512), 6)
        with pytest.raises(ConfigurationError):
            SchemePolicyEngine((option, option))

    def test_rejects_nonpositive_ftc(self):
        with pytest.raises(ConfigurationError):
            SchemePolicyEngine((SchemeOption(ecp_spec(6, 512), 0),))


class TestScoring:
    def test_scoring_is_deterministic(self):
        engine = SchemePolicyEngine()
        conditions = BlockConditions(fault_count=3, write_share=0.2, fault_burst=2)
        scores = [
            [engine.score(option, conditions) for option in engine.options]
            for _ in range(3)
        ]
        assert scores[0] == scores[1] == scores[2]

    def test_uncovered_options_are_disqualified(self):
        # an option whose hard FTC cannot cover the faults scores below
        # every option that still covers them
        engine = SchemePolicyEngine()
        conditions = BlockConditions(fault_count=7)  # above ecp6's FTC of 6
        ecp = engine.option_for("ecp6")
        aegis = engine.option_for("aegis-9x61")
        assert engine.score(ecp, conditions) < 0
        assert engine.score(aegis, conditions) > engine.score(ecp, conditions)

    def test_choose_escalates_an_at_risk_block(self):
        engine = SchemePolicyEngine()
        conditions = BlockConditions(fault_count=6, write_share=0.5, fault_burst=4)
        chosen = engine.choose(conditions, "ecp6")
        assert chosen is not None
        assert chosen.hard_ftc > conditions.effective_faults

    def test_choose_stays_put_when_already_cheapest(self):
        # on a quiet block the raw scorer favors the cheapest-overhead
        # option; holding it already means there is nowhere better to go
        # (the controller's zero-fault gate handles the pristine case)
        engine = SchemePolicyEngine()
        quiet = BlockConditions(fault_count=0)
        cheapest = min(engine.options, key=lambda option: option.overhead_bits)
        assert engine.choose(quiet, cheapest.key) is None

    def test_choose_ignores_unknown_incumbents(self):
        engine = SchemePolicyEngine()
        conditions = BlockConditions(fault_count=6, write_share=0.5, fault_burst=4)
        assert engine.choose(conditions, "hamming72") is None

    def test_hysteresis_suppresses_marginal_switches(self):
        # with an enormous margin no lead can clear it, so nothing moves
        engine = SchemePolicyEngine(hysteresis=10.0)
        conditions = BlockConditions(fault_count=6, write_share=0.5, fault_burst=4)
        assert engine.choose(conditions, "ecp6") is None


class TestSwitchScheme:
    def _array(self, **kwargs):
        return MemoryArray(
            4,
            512,
            ecp_spec(6, 512).make_controller,
            spares=2,
            lifetime_model=FixedLifetime(10**9),
            rng=np.random.default_rng(11),
            scheme_key="ecp6",
            **kwargs,
        )

    def test_switch_preserves_data_and_key(self, rng):
        array = self._array()
        payload = rng.integers(0, 2, size=512, dtype=np.uint8)
        array.write(0, payload)
        physical = array.physical_of(0)
        assert array.scheme_key_of(physical) == "ecp6"
        target = aegis_spec(9, 61, 512)
        assert array.switch_scheme(0, target.make_controller, target.key)
        assert array.scheme_key_of(array.physical_of(0)) == "aegis-9x61"
        assert np.array_equal(array.read(0), payload)

    def test_switch_refuses_unmapped_addresses(self):
        array = self._array()
        target = aegis_spec(9, 61, 512)
        # address 3 was never written, so no physical block backs it
        assert array.physical_of(3) is None
        assert not array.switch_scheme(3, target.make_controller, target.key)


class TestAdaptiveDrill:
    """A real adaptive run: switches happen, and the snapshot is invariant
    across engines and worker counts (the determinism contract)."""

    @staticmethod
    def _run(engine: str, workers: int):
        return run_load(
            ecp_spec(6, 512),
            ops=1200,
            seed=2013,
            shards=2,
            workers=workers,
            n_addresses=12,
            spares=4,
            lifetime_model=NormalLifetime(mean_lifetime=40.0),
            engine=engine,
            fault_model="drift",
            policy="adaptive",
        )

    def test_switches_surface_in_labeled_counters(self):
        snapshot = self._run("vector", 1).telemetry.snapshot()
        switches = {
            key: count
            for key, count in snapshot["labeled_counters"].items()
            if key.startswith("policy_switches_total{")
        }
        assert switches, "expected at least one policy switch under drift"
        assert all('from="' in key and 'to="' in key for key in switches)
        assert sum(switches.values()) >= 1

    def test_snapshot_engine_and_worker_invariant(self):
        digests = {
            _digest(self._run(engine, workers).telemetry.snapshot())
            for engine in ("vector", "scalar")
            for workers in (1, 2)
        }
        assert len(digests) == 1

    def test_fixed_policy_emits_no_switches(self):
        report = run_load(
            ecp_spec(6, 512),
            ops=600,
            seed=2013,
            shards=2,
            workers=1,
            n_addresses=12,
            spares=4,
            lifetime_model=NormalLifetime(mean_lifetime=40.0),
            engine="vector",
            fault_model="drift",
            policy="fixed",
        )
        snapshot = report.telemetry.snapshot()
        assert not any(
            key.startswith("policy_switches_total{")
            for key in snapshot["labeled_counters"]
        )


class TestWearPolicyGrid:
    """The fleet campaign's wear-policy dimension (satellite S2)."""

    def _spec(self, **kwargs):
        return CampaignSpec(
            schemes=("aegis-9x61", "ecp6"),
            pages_per_scheme=4,
            blocks_per_page=2,
            chunk_pages=2,
            mean_endurance=500.0,
            **kwargs,
        )

    def test_default_grid_keeps_historical_keys(self):
        spec = self._spec()
        assert spec.grid() == (
            ("aegis-9x61", "perfect", "aegis-9x61"),
            ("ecp6", "perfect", "ecp6"),
        )

    def test_grid_keys_encode_nondefault_policies(self):
        spec = self._spec(wear_policies=("perfect", "none"))
        keys = [key for _, _, key in spec.grid()]
        assert keys == ["aegis-9x61", "aegis-9x61+none", "ecp6", "ecp6+none"]
        assert spec.total_pages() == 4 * len(spec.grid())

    def test_config_digest_stable_at_defaults(self):
        # the new dimensions must not perturb digests of old campaigns
        assert self._spec().config_digest(7) == self._spec(
            wear_policies=(DEFAULT_WEAR_POLICY,), fault_model="hard"
        ).config_digest(7)

    def test_config_digest_tracks_new_dimensions(self):
        base = self._spec().config_digest(7)
        assert self._spec(wear_policies=("perfect", "none")).config_digest(7) != base
        assert self._spec(fault_model="drift").config_digest(7) != base

    def test_unknown_wear_policy_rejected(self):
        with pytest.raises(ConfigurationError):
            self._spec(wear_policies=("write-through",))
        with pytest.raises(ConfigurationError):
            self._spec(wear_policies=())

    def test_unknown_fault_model_rejected(self):
        with pytest.raises(ConfigurationError):
            self._spec(fault_model="soft")

    def test_wear_lifetime_wrapping(self):
        model = NormalLifetime(mean_lifetime=100.0)
        assert wear_lifetime(model, "perfect") is model
        skewed = wear_lifetime(model, "none")
        assert isinstance(skewed, WearSkewLifetime)
        assert (skewed.hot_fraction, skewed.hot_rate) == WEAR_POLICIES["none"]
        with pytest.raises(ConfigurationError):
            wear_lifetime(model, "write-through")
